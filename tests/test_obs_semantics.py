"""Observation must never change behavior.

Regression guard for the instrumentation layer: enabling obs tracing
changes no query result, no closure content, and no probe outcome —
on both the movies and university datasets.  (The counters are free to
differ; the *semantics* are not.)
"""

from __future__ import annotations

import pytest

from repro.datasets import movies, university
from repro.obs import NULL_TRACER, Tracer, use_tracer
from repro.obs import tracer as tracer_module

_QUERIES = {
    "movies": [
        "(x, ∈, FILM)",
        "(x, DIRECTED-BY, TARKOVSKY)",
        "(x, ∈, SCIENCE-FICTION) and (x, DIRECTED-BY, y)",
        "(SOLARIS-1972, r, y)",
        "exists y: (x, WROTE, y) and (y, ∈, FILM)",
    ],
    "university": [
        "(x, LOVES, OPERA)",
        "(x, ENJOYS, MUSIC)",
        university.STUDENTS_LOVE_FREE,
        university.QUARTERBACKS_FROM_USC,
        "(z, ∈, QUARTERBACK) and (z, ATTENDED, USC)",
    ],
}

_LOADERS = {"movies": movies.load, "university": university.load}


@pytest.fixture(autouse=True)
def _pristine_global_tracer():
    saved = (tracer_module.TRACER, tracer_module.ENABLED)
    tracer_module.TRACER, tracer_module.ENABLED = NULL_TRACER, False
    yield
    tracer_module.TRACER, tracer_module.ENABLED = saved


def _observe(dataset):
    """Closure contents, query values, and probe outcomes — everything
    that counts as the system's observable behavior."""
    db = _LOADERS[dataset]()
    closure = db.closure()
    outcome = {
        "closure": frozenset(closure.store),
        "iterations": closure.iterations,
        "rule_firings": dict(closure.rule_firings),
        "queries": {q: frozenset(db.query(q)) for q in _QUERIES[dataset]},
        "navigation": db.navigate("(x, *, *)"
                                  if dataset == "movies"
                                  else "(TOM, *, *)").render(),
    }
    if dataset == "university":
        probe = db.probe(university.STUDENTS_LOVE_FREE)
        outcome["probe"] = (probe.succeeded, len(probe.waves),
                            [sorted(((s.describe(), frozenset(s.value))
                                     for s in wave.successes),
                                    key=lambda pair: pair[0])
                             for wave in probe.waves])
    return outcome


@pytest.mark.parametrize("dataset", sorted(_QUERIES))
def test_tracing_changes_nothing(dataset):
    baseline = _observe(dataset)
    with use_tracer(Tracer()) as tracer:
        traced = _observe(dataset)
    assert traced == baseline
    # Sanity: the traced run actually collected something, so this test
    # would notice if instrumentation silently disappeared.
    assert tracer.counters


@pytest.mark.parametrize("dataset", sorted(_QUERIES))
def test_enable_disable_round_trip_is_neutral(dataset):
    """Results after tracing has been enabled and disabled again match
    the never-traced baseline."""
    from repro.obs import disable_tracing, enable_tracing

    baseline = _observe(dataset)
    enable_tracing(fresh=True)
    _observe(dataset)
    disable_tracing()
    assert _observe(dataset) == baseline
