"""Unit tests for the indexed FactStore, including property-based
checks that every access pattern agrees with a full scan."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.facts import Fact, Template, Variable, var
from repro.core.store import FactStore

X, Y, Z = var("x"), var("y"), var("z")


def make_store():
    return FactStore([
        Fact("JOHN", "LIKES", "FELIX"),
        Fact("JOHN", "LIKES", "MARY"),
        Fact("JOHN", "WORKS-FOR", "SHIPPING"),
        Fact("MARY", "LIKES", "FELIX"),
        Fact("B1", "CITES", "B1"),
        Fact("B1", "CITES", "B2"),
    ])


class TestMutation:
    def test_add_and_contains(self):
        store = FactStore()
        assert store.add(Fact("A", "R", "B"))
        assert Fact("A", "R", "B") in store
        assert len(store) == 1

    def test_add_duplicate_returns_false(self):
        store = FactStore()
        assert store.add(Fact("A", "R", "B"))
        assert not store.add(Fact("A", "R", "B"))
        assert len(store) == 1

    def test_add_all_counts_new(self):
        store = FactStore()
        added = store.add_all(
            [Fact("A", "R", "B"), Fact("A", "R", "B"), Fact("C", "R", "D")])
        assert added == 2

    def test_discard(self):
        store = make_store()
        assert store.discard(Fact("JOHN", "LIKES", "FELIX"))
        assert Fact("JOHN", "LIKES", "FELIX") not in store
        assert not store.discard(Fact("JOHN", "LIKES", "FELIX"))

    def test_discard_cleans_indexes(self):
        store = FactStore([Fact("A", "R", "B")])
        store.discard(Fact("A", "R", "B"))
        assert list(store.match(Template("A", Y, Z))) == []
        assert not store.has_entity("A")
        assert "R" not in store.relationships()

    def test_discard_keeps_shared_entities(self):
        store = FactStore([Fact("A", "R", "B"), Fact("A", "S", "C")])
        store.discard(Fact("A", "R", "B"))
        assert store.has_entity("A")
        assert not store.has_entity("B")

    def test_clear(self):
        store = make_store()
        store.clear()
        assert len(store) == 0
        assert not store.entities()

    def test_copy_is_independent(self):
        store = make_store()
        copied = store.copy()
        copied.add(Fact("NEW", "R", "B"))
        assert Fact("NEW", "R", "B") not in store


class TestIntrospection:
    def test_entities_cover_all_positions(self):
        store = FactStore([Fact("A", "R", "B")])
        assert store.entities() == {"A", "R", "B"}

    def test_relationships(self):
        assert make_store().relationships() == {
            "LIKES", "WORKS-FOR", "CITES"}

    def test_has_entity_in_any_position(self):
        store = FactStore([Fact("A", "R", "B")])
        assert store.has_entity("R")
        assert not store.has_entity("Z")


class TestMatching:
    def test_fully_ground(self):
        store = make_store()
        assert list(store.match(Template("JOHN", "LIKES", "FELIX"))) == [
            Fact("JOHN", "LIKES", "FELIX")]
        assert list(store.match(Template("JOHN", "LIKES", "NOBODY"))) == []

    def test_by_source(self):
        facts = set(make_store().match(Template("JOHN", Y, Z)))
        assert facts == {
            Fact("JOHN", "LIKES", "FELIX"),
            Fact("JOHN", "LIKES", "MARY"),
            Fact("JOHN", "WORKS-FOR", "SHIPPING"),
        }

    def test_by_source_relationship(self):
        facts = set(make_store().match(Template("JOHN", "LIKES", Z)))
        assert facts == {
            Fact("JOHN", "LIKES", "FELIX"), Fact("JOHN", "LIKES", "MARY")}

    def test_by_relationship_target(self):
        facts = set(make_store().match(Template(X, "LIKES", "FELIX")))
        assert facts == {
            Fact("JOHN", "LIKES", "FELIX"), Fact("MARY", "LIKES", "FELIX")}

    def test_by_source_target(self):
        facts = set(make_store().match(Template("JOHN", Y, "FELIX")))
        assert facts == {Fact("JOHN", "LIKES", "FELIX")}

    def test_open_template_matches_everything(self):
        store = make_store()
        assert set(store.match(Template(X, Y, Z))) == set(store)

    def test_repeated_variable_filters(self):
        facts = set(make_store().match(Template(X, "CITES", X)))
        assert facts == {Fact("B1", "CITES", "B1")}

    def test_match_under_binding(self):
        store = make_store()
        facts = set(store.match(Template(X, "LIKES", Z), {X: "MARY"}))
        assert facts == {Fact("MARY", "LIKES", "FELIX")}

    def test_solutions_extend_binding(self):
        store = make_store()
        solutions = list(store.solutions(Template("JOHN", "LIKES", Z)))
        assert {s[Z] for s in solutions} == {"FELIX", "MARY"}

    def test_solutions_repeated_variable(self):
        store = make_store()
        solutions = list(store.solutions(Template(X, "CITES", X)))
        assert solutions == [{X: "B1"}]

    def test_count_estimate_matches_reality_without_repeats(self):
        store = make_store()
        for pattern in (Template("JOHN", Y, Z), Template(X, "LIKES", Z),
                        Template(X, Y, "FELIX"), Template(X, Y, Z)):
            assert store.count_estimate(pattern) == len(
                list(store.match(pattern)))

    def test_facts_mentioning(self):
        store = make_store()
        mentioning = store.facts_mentioning("FELIX")
        assert mentioning == {
            Fact("JOHN", "LIKES", "FELIX"), Fact("MARY", "LIKES", "FELIX")}

    def test_facts_mentioning_relationship_position(self):
        store = FactStore([Fact("A", "LIKES", "B")])
        assert store.facts_mentioning("LIKES") == {Fact("A", "LIKES", "B")}


# ----------------------------------------------------------------------
# Property-based: indexes agree with a full scan on every pattern shape.
# ----------------------------------------------------------------------
_entities = st.sampled_from(["A", "B", "C", "D", "R", "S"])
_facts = st.builds(Fact, _entities, _entities, _entities)
_fact_lists = st.lists(_facts, max_size=40)


def _pattern_from_shape(shape, probe: Fact) -> Template:
    components = []
    names = iter(("x", "y", "z"))
    for keep, component in zip(shape, probe):
        next_name = next(names)
        components.append(component if keep else Variable(next_name))
    return Template(*components)


@settings(max_examples=60)
@given(facts=_fact_lists, probe=_facts,
       shape=st.tuples(st.booleans(), st.booleans(), st.booleans()))
def test_match_agrees_with_scan(facts, probe, shape):
    store = FactStore(facts)
    pattern = _pattern_from_shape(shape, probe)
    indexed = set(store.match(pattern))
    scanned = {f for f in facts if pattern.match(f) is not None}
    assert indexed == scanned


@settings(max_examples=60)
@given(facts=_fact_lists)
def test_add_then_discard_roundtrip(facts):
    store = FactStore()
    for f in facts:
        store.add(f)
    assert len(store) == len(set(facts))
    for f in set(facts):
        assert store.discard(f)
    assert len(store) == 0
    assert not store.entities()
    assert not store.relationships()


@settings(max_examples=40)
@given(facts=_fact_lists, probe=_facts)
def test_repeated_variable_pattern_agrees_with_scan(facts, probe):
    store = FactStore(facts)
    x = Variable("x")
    pattern = Template(x, probe.relationship, x)
    indexed = set(store.match(pattern))
    scanned = {f for f in facts if pattern.match(f) is not None}
    assert indexed == scanned
