"""Integration tests on the film world — every mechanism at once."""

from __future__ import annotations

import pytest

from repro.browse.paths import association_paths, semantic_distance
from repro.core.facts import Fact
from repro.datasets import movies
from repro.db import Database


@pytest.fixture(scope="module")
def film_db():
    return movies.load()


class TestWorldSanity:
    def test_consistent(self, film_db):
        assert film_db.check_integrity() == []

    def test_size(self, film_db):
        assert len(film_db.facts) > 120
        assert film_db.closure().derived_count > 100


class TestInference:
    def test_inversion_derives_director_credits(self, film_db):
        assert film_db.query("(TARKOVSKY, DIRECTED, y)") == {
            ("SOLARIS-1972",), ("STALKER-1979",)}

    def test_synonym_vocabulary_bridge(self, film_db):
        """HELMED-BY (the other catalogue's word) answers like
        DIRECTED-BY."""
        assert film_db.query("(x, HELMED-BY, KUBRICK)") == film_db.query(
            "(x, DIRECTED-BY, KUBRICK)")

    def test_genre_alias(self, film_db):
        assert film_db.query("(x, in, SF)") == film_db.query(
            "(x, in, SCIENCE-FICTION)")

    def test_membership_climbs_multiple_inheritance(self, film_db):
        memberships = {
            c for (c,) in film_db.query("(DR-STRANGELOVE, in, c)")}
        # SATIRE ≺ COMEDY and SATIRE ≺ DRAMA — both inherited.
        assert {"SATIRE", "COMEDY", "DRAMA", "FEATURE-FILM",
                "FILM", "ARTWORK"} <= memberships

    def test_class_relationships_do_not_leak(self, film_db):
        """Director credits must not propagate to genres or other
        instances."""
        assert not film_db.ask(
            "(PSYCHOLOGICAL-SF, DIRECTED-BY, TARKOVSKY)")
        assert not film_db.ask("(STALKER-1979, DIRECTED-BY, SODERBERGH)")

    def test_class_level_fact_inherited_by_instances(self, film_db):
        """FILMMAKER CREATES ARTWORK reaches every director."""
        assert film_db.ask("(KUROSAWA, CREATES, ARTWORK)")

    def test_remake_inverted(self, film_db):
        assert film_db.ask("(SOLARIS-1972, REMADE-AS, SOLARIS-2002)")


class TestQueries:
    def test_numeric_rating_filter(self, film_db):
        value = film_db.query(
            "exists r: (x, in, SCIENCE-FICTION) and (x, RATING, r)"
            " and (r, >, 91)")
        assert value == {("2001-ASO",), ("STALKER-1979",)}

    def test_join_across_roles(self, film_db):
        """Directors who adapted a novel."""
        value = film_db.query(
            "exists f, n: (f, DIRECTED-BY, d) and (f, BASED-ON, n)"
            " and (n, in, NOVEL)")
        assert value == {("TARKOVSKY",), ("SODERBERGH",)}

    def test_relation_operator_over_films(self, film_db):
        table = film_db.relation("WESTERN", ("DIRECTED-BY", "DIRECTOR"))
        rows = {row.instance: row.cells for row in table.rows}
        assert rows == {
            "HIGH-NOON": (("ZINNEMANN",),),
            "THE-SEARCHERS": (("FORD",),),
        }

    def test_function_view_runtime(self, film_db):
        runtime = film_db.function("RUNTIME")
        assert runtime("IKIRU") == ("143",)
        assert runtime.is_single_valued()


class TestBrowsing:
    def test_navigation_neighborhood(self, film_db):
        result = film_db.navigate("(SOLARIS-1972, *, *)")
        assert "TARKOVSKY" in result.groups["DIRECTED-BY"]
        assert "SOLARIS-2002" in result.groups["REMADE-AS"]

    def test_paths_author_to_character(self, film_db):
        paths = association_paths(film_db.view(), "LEM", "KELVIN",
                                  max_length=3)
        assert paths
        assert paths[0].render() == (
            "LEM --WROTE--> SOLARIS-1972 --STARS--> BANIONIS"
            " --PLAYED--> KELVIN")

    def test_semantic_distances(self, film_db):
        view = film_db.view()
        assert semantic_distance(view, "TARKOVSKY", "SOLARIS-1972") == 1
        assert semantic_distance(view, "LEM", "KELVIN") == 3

    def test_probe_retracts_genre_and_director(self, film_db):
        result = film_db.probe(
            "(z, in, WESTERN) and (z, DIRECTED-BY, KUBRICK)")
        assert not result.succeeded
        described = {s.describe() for s in result.successes}
        assert "FEATURE-FILM instead of WESTERN" in described

    def test_probe_select_returns_kubrick_features(self, film_db):
        result = film_db.probe(
            "(z, in, WESTERN) and (z, DIRECTED-BY, KUBRICK)")
        for success in result.successes:
            if success.describe() == "FEATURE-FILM instead of WESTERN":
                assert success.value == {
                    ("2001-ASO",), ("DR-STRANGELOVE",)}
                break
        else:
            pytest.fail("expected the FEATURE-FILM retraction")


class TestLazyOnFilms:
    def test_lazy_equals_materialized(self, film_db):
        for text in ("(TARKOVSKY, DIRECTED, y)",
                     "(x, HELMED-BY, KUBRICK)",
                     "(x, in, SF)"):
            assert film_db.query_lazy(text) == film_db.query(text), text


class TestProvenanceOnFilms:
    def test_why_synonym_bridge(self):
        db = movies.load(Database(trace=True))
        tree = db.why("(2001-ASO, HELMED-BY, KUBRICK)")
        support = tree.stored_support()
        assert Fact("HELMED-BY", "≈", "DIRECTED-BY") in support
        assert Fact("2001-ASO", "DIRECTED-BY", "KUBRICK") in support
