"""Cross-process metrics: registries, snapshot algebra, Prometheus
exposition, and the tracer's gauge aggregates (which share the same
min/max/sum/count shape)."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS,
    GaugeAggregate,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    active_metrics,
    disable_metrics,
    enable_metrics,
    merge_snapshots,
    metrics_enabled,
    parse_prometheus,
    to_prometheus,
    use_metrics,
)
from repro.obs.tracer import NULL_TRACER, Tracer


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------
class TestGaugeAggregate:
    def test_tracks_min_max_sum_last(self):
        gauge = GaugeAggregate()
        for value in (3.0, 1.0, 2.0):
            gauge.set(value)
        stats = gauge.as_dict()
        assert stats["last"] == 2.0
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0
        assert stats["sum"] == 6.0
        assert stats["count"] == 3
        assert gauge.mean == pytest.approx(2.0)

    def test_empty_gauge_is_zeroed(self):
        stats = GaugeAggregate().as_dict()
        assert stats["count"] == 0
        assert stats["sum"] == 0.0


class TestHistogram:
    def test_percentiles_without_samples(self):
        histogram = Histogram()
        for microseconds in range(1, 101):
            histogram.observe(microseconds * 1e-4)  # 0.1ms .. 10ms
        # No raw samples retained — only bucket counts.
        assert histogram.count == 100
        assert histogram.percentile(0.50) <= histogram.percentile(0.99)
        stats = histogram.as_dict()
        assert stats["count"] == 100
        assert stats["p50"] <= stats["p95"] <= stats["p99"]
        assert stats["min"] == pytest.approx(1e-4)
        assert stats["max"] == pytest.approx(1e-2)

    def test_overflow_bucket_reports_max(self):
        histogram = Histogram(bounds=(0.001, 0.01))
        histogram.observe(5.0)
        assert histogram.percentile(0.99) == pytest.approx(5.0)

    def test_bucket_count_matches_bounds(self):
        histogram = Histogram()
        # One overflow bucket beyond the last bound.
        assert len(histogram.counts) == len(DEFAULT_BUCKETS) + 1


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.count("requests")
        registry.count("requests", 2)
        registry.gauge("depth", 4.0)
        registry.observe("latency", 0.002)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["requests"] == 3
        assert snapshot["gauges"]["depth"]["last"] == 4.0
        assert snapshot["histograms"]["latency"]["count"] == 1
        assert registry.counter_value("requests") == 3
        assert registry.counter_value("absent") == 0

    def test_time_context_manager(self):
        registry = MetricsRegistry()
        with registry.time("op"):
            pass
        assert registry.snapshot()["histograms"]["op"]["count"] == 1

    def test_reset(self):
        registry = MetricsRegistry()
        registry.count("x")
        registry.reset()
        assert registry.snapshot()["counters"] == {}

    def test_thread_safety(self):
        registry = MetricsRegistry()

        def hammer():
            for _ in range(1000):
                registry.count("n")
                registry.observe("h", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = registry.snapshot()
        assert snapshot["counters"]["n"] == 4000
        assert snapshot["histograms"]["h"]["count"] == 4000


class TestEnablement:
    def test_disabled_by_default_and_null_is_inert(self):
        assert isinstance(METRICS, NullMetrics) or not metrics_enabled()
        null = NullMetrics()
        null.count("x")
        null.gauge("y", 1.0)
        null.observe("z", 0.1)
        assert null.snapshot() == {"counters": {}, "gauges": {},
                                   "histograms": {}}

    def test_enable_disable_cycle(self):
        registry = enable_metrics(fresh=True)
        try:
            assert metrics_enabled()
            registry.count("during")
            assert active_metrics() is registry
        finally:
            disable_metrics()
        assert not metrics_enabled()
        # Data stays readable after disable.
        assert active_metrics().counter_value("during") == 1

    def test_use_metrics_restores_state(self):
        before = active_metrics()
        with use_metrics(MetricsRegistry()) as registry:
            assert metrics_enabled()
            registry.count("scoped")
        assert active_metrics() is before
        assert not metrics_enabled()


# ----------------------------------------------------------------------
# Snapshot algebra
# ----------------------------------------------------------------------
class TestMergeSnapshots:
    def _snapshot(self, requests: int, latency: float) -> dict:
        registry = MetricsRegistry()
        registry.count("requests", requests)
        registry.gauge("depth", latency * 100)
        registry.observe("latency", latency)
        return registry.snapshot()

    def test_counters_add(self):
        merged = merge_snapshots([self._snapshot(2, 0.001),
                                  self._snapshot(3, 0.002)])
        assert merged["counters"]["requests"] == 5

    def test_gauges_combine(self):
        merged = merge_snapshots([self._snapshot(1, 0.001),
                                  self._snapshot(1, 0.005)])
        gauge = merged["gauges"]["depth"]
        assert gauge["min"] == pytest.approx(0.1)
        assert gauge["max"] == pytest.approx(0.5)
        assert gauge["count"] == 2

    def test_histograms_add_and_rederive(self):
        merged = merge_snapshots([self._snapshot(1, 0.001),
                                  self._snapshot(1, 0.002)])
        histogram = merged["histograms"]["latency"]
        assert histogram["count"] == 2
        assert histogram["min"] == pytest.approx(0.001)
        assert histogram["max"] == pytest.approx(0.002)

    def test_disjoint_series_union(self):
        left = MetricsRegistry()
        left.count("only.left")
        right = MetricsRegistry()
        right.count("only.right")
        merged = merge_snapshots([left.snapshot(), right.snapshot()])
        assert merged["counters"] == {"only.left": 1, "only.right": 1}

    def test_empty_input(self):
        merged = merge_snapshots([])
        assert merged == {"counters": {}, "gauges": {}, "histograms": {}}


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
class TestPrometheus:
    def test_round_trip(self):
        registry = MetricsRegistry()
        registry.count("serve.requests", 7)
        registry.gauge("serve.queue_depth", 3.0)
        registry.observe("serve.request_seconds.query", 0.002)
        text = to_prometheus(registry.snapshot())
        series = parse_prometheus(text)
        assert series["repro_serve_requests_total"] == 7
        assert series["repro_serve_queue_depth"] == 3.0
        assert series[
            "repro_serve_request_seconds_query_count"] == 1
        # Cumulative bucket series present with an +Inf terminator.
        assert any('le="+Inf"' in name for name in series)

    def test_type_headers(self):
        registry = MetricsRegistry()
        registry.count("c")
        registry.observe("h", 0.1)
        text = to_prometheus(registry.snapshot())
        assert "# TYPE repro_c_total counter" in text
        assert "# TYPE repro_h histogram" in text

    def test_name_sanitization(self):
        registry = MetricsRegistry()
        registry.count("serve.requests.try-hard")
        text = to_prometheus(registry.snapshot())
        assert "repro_serve_requests_try_hard_total" in text


# ----------------------------------------------------------------------
# Tracer gauge aggregates (satellite: last-value-only fix)
# ----------------------------------------------------------------------
class TestTracerGaugeAggregates:
    def test_gauges_property_returns_last_values(self):
        tracer = Tracer()
        tracer.gauge("temp", 2.0)
        tracer.gauge("temp", 2.5)
        assert tracer.gauges == {"temp": 2.5}

    def test_gauge_stats_fold_extremes(self):
        tracer = Tracer()
        for value in (5.0, 1.0, 3.0):
            tracer.gauge("lag", value)
        stats = tracer.gauge_stats["lag"].as_dict()
        assert stats == {"last": 3.0, "min": 1.0, "max": 5.0,
                         "sum": 9.0, "count": 3}

    def test_null_tracer_has_empty_gauge_stats(self):
        assert NULL_TRACER.gauges == {}
        assert NULL_TRACER.gauge_stats == {}

    def test_reset_clears_aggregates(self):
        tracer = Tracer()
        tracer.gauge("x", 1.0)
        tracer.reset()
        assert tracer.gauges == {}
        assert tracer.gauge_stats == {}
