"""The observability layer: spans, counters, exporters, EXPLAIN ANALYZE.

Covers the tracer substrate itself (nesting, timing monotonicity,
reset, the disabled no-op path), the per-layer instrumentation
(store, closure engine, evaluator, browsers), the exporters
(JSON-lines round-trip, text summary), and the plan-vs-actual
rendering of ``explain_analyze``.
"""

from __future__ import annotations

import io
import time

import pytest

from repro.core.facts import Fact
from repro.core.store import FactStore
from repro.datasets import paper, university
from repro.db import Database
from repro.datasets.synthetic import hierarchy_facts, membership_facts
from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    Tracer,
    active_tracer,
    disable_tracing,
    enable_tracing,
    pattern_shape,
    read_jsonl,
    summary,
    to_events,
    tracing_enabled,
    use_tracer,
    write_jsonl,
)
from repro.obs import tracer as tracer_module
from repro.query.parser import parse_template
from repro.rules.builtin import STANDARD_RULES
from repro.rules.engine import APPLY, semi_naive_closure
from repro.rules.rule import RelationshipClassifier, RuleContext


@pytest.fixture(autouse=True)
def _pristine_global_tracer():
    """Every test starts and ends with tracing off and no global
    tracer installed, whatever it did in between."""
    saved = (tracer_module.TRACER, tracer_module.ENABLED)
    tracer_module.TRACER, tracer_module.ENABLED = NULL_TRACER, False
    yield
    tracer_module.TRACER, tracer_module.ENABLED = saved


def _context(facts):
    return RuleContext(classifier=RelationshipClassifier(FactStore(facts)))


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_and_preorder_walk(self):
        tracer = Tracer()
        with tracer.span("outer", kind="test") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
            with tracer.span("sibling") as sibling:
                pass
        assert tracer.roots == [outer]
        assert middle.parent is outer
        assert inner.parent is middle
        assert sibling.parent is outer
        assert outer.children == [middle, sibling]
        assert [s.name for s in outer.walk()] == [
            "outer", "middle", "inner", "sibling"]
        assert (outer.depth, middle.depth, inner.depth) == (0, 1, 2)
        assert outer.attributes == {"kind": "test"}

    def test_timing_monotonicity(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                time.sleep(0.005)
        assert child.finished and parent.finished
        assert child.wall > 0
        # A child's wall time can never exceed its parent's.
        assert parent.wall >= child.wall
        assert parent.cpu >= 0 and child.cpu >= 0

    def test_set_attaches_attributes(self):
        tracer = Tracer()
        with tracer.span("s", a=1) as span:
            span.set(b=2)
            span.set(a=3)
        assert span.attributes == {"a": 3, "b": 2}

    def test_spans_filter_by_name(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("b"):
            pass
        assert len(tracer.spans()) == 3
        assert len(tracer.spans("b")) == 2
        assert tracer.spans("missing") == []

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing") as span:
                raise ValueError("boom")
        assert span.finished
        assert tracer._stack == []


# ----------------------------------------------------------------------
# Counters, gauges, reset
# ----------------------------------------------------------------------
class TestCountersAndReset:
    def test_count_and_gauge(self):
        tracer = Tracer()
        tracer.count("hits")
        tracer.count("hits", 4)
        tracer.gauge("temp", 1.5)
        tracer.gauge("temp", 2.5)
        assert tracer.counters == {"hits": 5}
        assert tracer.gauges == {"temp": 2.5}

    def test_record_conjunct_aggregates(self):
        tracer = Tracer()
        tracer.record_conjunct("(?x, R, ?y)", 4.0, 3)
        tracer.record_conjunct("(?x, R, ?y)", 2.0, 1)
        stats = tracer.conjuncts["(?x, R, ?y)"]
        assert (stats.evals, stats.rows) == (2, 4)
        assert stats.estimate_mean == 3.0
        assert stats.rows_mean == 2.0

    def test_reset_drops_everything(self):
        tracer = Tracer()
        with tracer.span("s"):
            tracer.count("c")
            tracer.gauge("g", 1.0)
            tracer.record_conjunct("k", 1.0, 1)
        tracer.reset()
        assert tracer.counters == {}
        assert tracer.gauges == {}
        assert tracer.roots == []
        assert tracer.conjuncts == {}
        # Counters restart from zero after a reset.
        tracer.count("c")
        assert tracer.counters == {"c": 1}

    def test_reset_keeps_open_spans_closable(self):
        tracer = Tracer()
        with tracer.span("open"):
            tracer.reset()  # must not break the in-flight span
        assert tracer.roots == []


# ----------------------------------------------------------------------
# The disabled path
# ----------------------------------------------------------------------
class TestDisabledPath:
    def test_null_tracer_is_inert(self):
        NULL_TRACER.count("x")
        NULL_TRACER.gauge("y", 1.0)
        NULL_TRACER.record_conjunct("k", 1.0, 2)
        assert NULL_TRACER.counters == {}
        assert NULL_TRACER.gauges == {}
        assert NULL_TRACER.spans() == []

    def test_null_span_identity(self):
        # Every span request yields the same no-op object, so the
        # disabled path allocates nothing.
        cm = NULL_TRACER.span("anything", a=1)
        assert cm is NULL_SPAN
        with cm as span:
            span.set(ignored=True)
        assert span is NULL_SPAN
        assert span.attributes == {}

    def test_enable_disable_cycle(self):
        assert not tracing_enabled()
        tracer = enable_tracing()
        assert tracing_enabled()
        assert isinstance(tracer, Tracer)
        tracer.count("kept")
        disable_tracing()
        assert not tracing_enabled()
        # Data stays readable after disabling …
        assert active_tracer().counters == {"kept": 1}
        # … and survives a plain re-enable, but not a fresh one.
        assert enable_tracing() is tracer
        assert enable_tracing(fresh=True) is not tracer

    def test_use_tracer_restores_state(self):
        scoped = Tracer()
        with use_tracer(scoped) as tracer:
            assert tracer is scoped
            assert tracing_enabled()
            assert active_tracer() is scoped
        assert not tracing_enabled()
        assert active_tracer() is NULL_TRACER

    def test_disabled_tracing_collects_nothing(self):
        db = paper.load()
        db.query("(x, EARNS, y)")
        assert active_tracer() is NULL_TRACER
        assert active_tracer().counters == {}


# ----------------------------------------------------------------------
# pattern_shape
# ----------------------------------------------------------------------
def test_pattern_shape():
    assert pattern_shape(parse_template("(JOHN, EARNS, y)")) == "sr"
    assert pattern_shape(parse_template("(x, y, z)")) == "open"
    assert pattern_shape(parse_template("(JOHN, EARNS, SALARY)")) == "srt"
    assert pattern_shape(parse_template("(x, EARNS, y)")) == "r"


# ----------------------------------------------------------------------
# Layer instrumentation
# ----------------------------------------------------------------------
class TestStoreInstrumentation:
    def test_add_remove_lookup_counters(self):
        with use_tracer(Tracer()) as tracer:
            store = FactStore()
            store.add(Fact("A", "R", "B"))
            store.add(Fact("A", "R", "B"))  # duplicate: not counted
            store.add(Fact("A", "R", "C"))
            store.discard(Fact("A", "R", "C"))
            list(store.match(parse_template("(A, R, x)")))
        assert tracer.counters["store.adds"] == 2
        assert tracer.counters["store.removes"] == 1
        assert tracer.counters["store.lookups"] >= 1

    def test_solutions_hits_keyed_by_shape(self):
        with use_tracer(Tracer()) as tracer:
            store = FactStore([Fact("A", "R", "B"), Fact("A", "R", "C")])
            found = list(store.solutions(parse_template("(A, R, x)"), {}))
        assert len(found) == 2
        assert tracer.counters["store.solutions.calls.sr"] == 1
        assert tracer.counters["store.solutions.hits.sr"] == 2


class TestEngineInstrumentation:
    def _workload(self):
        tree, leaves = hierarchy_facts(3, 2)
        facts = list(tree) + membership_facts(leaves, 2)
        facts.append(Fact("C0", "HAS-POLICY", "GENERAL-POLICY"))
        return facts

    def test_round_spans_and_counters(self):
        facts = self._workload()
        with use_tracer(Tracer()) as tracer:
            result = semi_naive_closure(facts, STANDARD_RULES,
                                        _context(facts))
        closure_spans = tracer.spans("closure.semi_naive")
        assert len(closure_spans) == 1
        assert closure_spans[0].attributes["derived"] == \
            result.derived_count
        rounds = tracer.spans("closure.round")
        assert len(rounds) == result.iterations
        assert tracer.counters["engine.rounds"] == result.iterations
        # Each round records its delta sizes.
        for span in rounds:
            assert "delta_in" in span.attributes
            assert "fresh_out" in span.attributes

    def test_rule_times_sum_to_closure_time(self):
        """The acceptance bound: per-rule cumulative seconds (plus the
        reserved apply entry) partition the fixpoint loop's total time
        to within ±5%."""
        import random

        tree, leaves = hierarchy_facts(4, 2)
        facts = list(tree) + membership_facts(leaves, 2)
        rng = random.Random(0)
        entities = [f"C{i}" for i in range(31)]
        for index in range(20):
            facts.append(Fact(rng.choice(entities), f"R{index % 8}",
                              rng.choice(entities)))
        context = _context(facts)
        semi_naive_closure(facts, STANDARD_RULES, context)  # warm caches
        with use_tracer(Tracer()) as tracer:
            result = semi_naive_closure(facts, STANDARD_RULES, context)
        total = tracer.gauges["engine.closure_seconds"]
        accounted = sum(result.rule_times.values())
        assert APPLY in result.rule_times
        assert total > 0
        assert abs(1.0 - accounted / total) <= 0.05

    def test_rule_times_empty_without_tracing(self):
        facts = self._workload()
        result = semi_naive_closure(facts, STANDARD_RULES, _context(facts))
        assert result.rule_times == {}


class TestQueryInstrumentation:
    def test_conjunct_records_match_execution(self):
        db = paper.load()
        db.closure()  # materialize outside the traced region
        with use_tracer(Tracer()) as tracer:
            value = db.query("(x, ∈, EMPLOYEE) and (x, EARNS, y)")
        stats = tracer.conjuncts["(?x, ∈, EMPLOYEE)"]
        assert stats.evals == 1
        assert stats.rows == 3  # JOHN, TOM, MARY
        earns = tracer.conjuncts["(?x, EARNS, ?y)"]
        # The compiled engine evaluates each conjunct once over the
        # whole binding table (set-at-a-time), not once per binding.
        assert earns.evals == 1
        assert earns.rows == len(value)
        spans = tracer.spans("query.evaluate")
        assert len(spans) == 1
        assert spans[0].attributes["rows"] == len(value)

    def test_conjunct_records_reference_engine(self):
        db = paper.load(Database(query_engine="reference"))
        db.closure()
        with use_tracer(Tracer()) as tracer:
            value = db.query("(x, ∈, EMPLOYEE) and (x, EARNS, y)")
        earns = tracer.conjuncts["(?x, EARNS, ?y)"]
        assert earns.evals == 3  # tuple-at-a-time: once per bound x
        assert earns.rows == len(value)

    def test_forall_domain_gauge(self):
        db = university.load()
        db.closure()
        with use_tracer(Tracer()) as tracer:
            db.query("(z, ∈, QUARTERBACK) and forall y: (z, ATTENDED, y)")
        # One anti-probe over both quarterback bindings (JAKE, BOB).
        assert tracer.counters["exec.forall.keys"] == 2
        assert tracer.gauges["query.forall.domain_size"] >= 2

    def test_forall_evals_reference_engine(self):
        db = university.load(Database(query_engine="reference"))
        db.closure()
        with use_tracer(Tracer()) as tracer:
            db.query("(z, ∈, QUARTERBACK) and forall y: (z, ATTENDED, y)")
        # Evaluated once per quarterback binding (JAKE, BOB).
        assert tracer.counters["query.forall.evals"] == 2
        assert tracer.gauges["query.forall.domain_size"] >= 2


class TestBrowseInstrumentation:
    def test_navigation_span_and_counter(self):
        db = paper.load()
        db.closure()
        with use_tracer(Tracer()) as tracer:
            result = db.navigate("(JOHN, *, *)")
        assert tracer.counters["browse.navigations"] == 1
        span = tracer.spans("browse.navigate")[0]
        assert span.attributes["facts"] == len(result.facts)

    def test_probe_counters(self):
        db = university.load()
        with use_tracer(Tracer()) as tracer:
            result = db.probe(university.STUDENTS_LOVE_FREE)
        assert tracer.counters["browse.probes"] == 1
        assert tracer.counters["browse.probe.waves"] == len(result.waves)
        attempted = sum(len(wave.attempted) for wave in result.waves)
        assert tracer.counters["browse.probe.retractions"] == attempted


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestExport:
    def _collected(self):
        tracer = Tracer()
        with tracer.span("outer", label="x"):
            with tracer.span("inner"):
                pass
        tracer.count("events", 3)
        tracer.gauge("level", 0.5)
        tracer.record_conjunct("(?x, R, ?y)", 2.0, 4)
        return tracer

    def test_jsonl_round_trip(self, tmp_path):
        tracer = self._collected()
        path = tmp_path / "trace.jsonl"
        written = write_jsonl(tracer, str(path))
        events = read_jsonl(str(path))
        assert len(events) == written
        assert events == to_events(tracer)
        # The span tree is reconstructible from the parent references.
        spans = [e for e in events if e["type"] == "span"]
        assert spans[0]["parent"] is None
        assert spans[1]["parent"] == spans[0]["id"]
        assert [e["type"] for e in events] == [
            "span", "span", "counter", "gauge", "conjunct"]

    def test_jsonl_file_handle(self):
        tracer = self._collected()
        buffer = io.StringIO()
        write_jsonl(tracer, buffer)
        events = read_jsonl(io.StringIO(buffer.getvalue()))
        assert events == to_events(tracer)

    def test_summary_sections(self):
        text = summary(self._collected(), title="test run")
        assert "== test run ==" in text
        assert "outer" in text and "inner" in text
        assert "events" in text
        assert "level" in text
        assert "(?x, R, ?y)" in text

    def test_summary_empty(self):
        assert "(nothing collected)" in summary(Tracer())


# ----------------------------------------------------------------------
# EXPLAIN ANALYZE
# ----------------------------------------------------------------------
class TestExplainAnalyze:
    def test_golden_rendering_on_paper_query(self):
        db = paper.load()
        analyzed = db.explain_analyze("(x, ∈, EMPLOYEE) and (x, EARNS, y)")
        text = analyzed.render()
        lines = [line.rstrip() for line in text.splitlines()]
        # Everything except the (non-deterministic) timing line is
        # golden.  The default engine is compiled: the explanation
        # carries the operator tree and the analyzed steps are the
        # plan's operators with est vs actual rows.
        assert lines[0] == "query: Q(x, y) = ((?x, ∈, EMPLOYEE) ∧" \
            " (?x, EARNS, ?y))"
        assert lines[1] == "safety: ok"
        assert lines[2] == "initial conjunct order:"
        assert lines[3] == "  1. (?x, ∈, EMPLOYEE)   [est 3.1; bound: -]"
        assert lines[4] == "  2. (?x, EARNS, ?y)   [est 1.4; bound: x]"
        assert lines[5] == "compiled plan: Q(x, y) = ((?x, ∈, EMPLOYEE)" \
            " ∧ (?x, EARNS, ?y))"
        assert lines[6] == "  pipeline (∧, 2 parts)   [est 3.1]"
        assert lines[7] == "    atom-join (?x, ∈, EMPLOYEE)   [est 3.1]"
        assert lines[8] == "    atom-join (?x, EARNS, ?y)   [est 1.4]"
        assert lines[10] == "plan vs actual:"
        assert lines[13] == \
            "  1  pipeline (∧, 2 parts)        3.1       9            1"
        assert lines[14] == \
            "  2  atom-join (?x, ∈, EMPLOYEE)  3.1       3            1"
        assert lines[15] == \
            "  3  atom-join (?x, EARNS, ?y)    1.4       9            1"
        assert lines[16] == "result rows: 9"
        assert lines[17].startswith("wall: ")
        assert analyzed.rows == 9
        assert analyzed.value == db.query("(x, ∈, EMPLOYEE) and (x, EARNS, y)")

    def test_golden_rendering_reference_engine(self):
        db = paper.load(Database(query_engine="reference"))
        analyzed = db.explain_analyze("(x, ∈, EMPLOYEE) and (x, EARNS, y)")
        lines = [line.rstrip() for line in analyzed.render().splitlines()]
        assert lines[6] == "plan vs actual:"
        assert lines[7] == \
            "  #  conjunct           est cost  actual rows  evals"
        assert lines[9] == "  1  (?x, ∈, EMPLOYEE)  3.1       3            1"
        assert lines[10] == "  2  (?x, EARNS, ?y)    1.4       9            3"
        assert lines[11] == "result rows: 9"
        assert analyzed.rows == 9

    def test_unsafe_query_not_executed(self):
        from repro.core.facts import var
        from repro.query.ast import Or, Query, atom

        x, y = var("x"), var("y")
        unsafe = Query.of(Or((atom(x, "R", y), atom(x, "R", "B"))), (x, y))
        db = paper.load()
        analyzed = db.explain_analyze(unsafe)
        assert not analyzed.executed
        assert "not executed" in analyzed.render()

    def test_leaves_global_tracing_untouched(self):
        db = paper.load()
        db.explain_analyze("(x, EARNS, y)")
        assert not tracing_enabled()
        assert active_tracer() is NULL_TRACER
