"""Navigation tests (§4.1), including the paper's session (E1)."""

from __future__ import annotations

import pytest

from repro.browse.navigation import navigate, star_template
from repro.core.entities import MEMBER
from repro.core.facts import Fact, Template, Variable
from repro.datasets import music


class TestStarTemplate:
    def test_all_free(self):
        t = star_template()
        assert all(isinstance(c, Variable) for c in t)

    def test_source_fixed(self):
        t = star_template(source="JOHN")
        assert t.source == "JOHN"
        assert isinstance(t.relationship, Variable)

    def test_distinct_star_variables(self):
        t = star_template(source="JOHN")
        assert t.relationship != t.target


class TestNavigationGrouping:
    def test_outgoing_groups_by_relationship(self, music_db):
        result = music_db.navigate("(JOHN, *, *)")
        assert result.grouped_by == "target"
        assert set(result.groups["LIKES"]) == {
            "CAT", "FELIX", "HEALTHCLIFF", "MARY", "MOZART"}

    def test_membership_column_first(self, music_db):
        result = music_db.navigate("(JOHN, *, *)")
        assert result.relationships()[0] == MEMBER

    def test_incoming_groups_sources(self, music_db):
        result = music_db.navigate("(*, *, MOZART)")
        assert result.grouped_by == "source"
        assert "LEOPOLD" in result.groups["FATHER-OF"]

    def test_between_lists_relationships(self, music_db):
        result = music_db.navigate("(LEOPOLD, *, MOZART)")
        assert result.grouped_by == "relationship"
        assert "FATHER-OF" in result.groups

    def test_relationship_fixed_pairs(self, music_db):
        result = music_db.navigate("(*, LIKES, *)")
        assert result.grouped_by == "pair"
        assert ("JOHN", "FELIX") in result.groups["LIKES"]

    def test_empty_result(self, music_db):
        result = music_db.navigate("(NOBODY, *, *)")
        assert result.is_empty()
        assert "(no facts)" in result.render()

    def test_entities_lists_candidates_for_next_step(self, music_db):
        result = music_db.navigate("(JOHN, *, *)")
        assert "PC#9-WAM" in result.entities()


class TestPaperSession:
    """E1: the paper's three tables, regenerated."""

    def test_table_1_john(self, music_db):
        result = music_db.navigate("(JOHN, *, *)")
        groups = {rel: sorted(values)
                  for rel, values in result.groups.items()}
        assert groups == {
            MEMBER: ["EMPLOYEE", "MUSIC-LOVER", "PERSON", "PET-OWNER"],
            "LIKES": ["CAT", "FELIX", "HEALTHCLIFF", "MARY", "MOZART"],
            "WORKS-FOR": ["DEPARTMENT", "SHIPPING"],
            "BOSS": ["PETER"],
            "FAVORITE-MUSIC": ["PC#2-PIT", "PC#9-WAM", "S#5-LVB"],
        }

    def test_table_1_contains_derived_entries(self, music_db):
        """PERSON, CAT, DEPARTMENT are inferred, not stored."""
        base = music_db.facts
        assert Fact("JOHN", MEMBER, "PERSON") not in base
        assert Fact("JOHN", "LIKES", "CAT") not in base
        assert Fact("JOHN", "WORKS-FOR", "DEPARTMENT") not in base
        result = music_db.navigate("(JOHN, *, *)")
        assert "PERSON" in result.groups[MEMBER]
        assert "CAT" in result.groups["LIKES"]
        assert "DEPARTMENT" in result.groups["WORKS-FOR"]

    def test_table_2_concerto(self, music_db):
        result = music_db.navigate("(PC#9-WAM, *, *)")
        groups = {rel: sorted(values)
                  for rel, values in result.groups.items()}
        assert groups == {
            MEMBER: ["CLASSICAL-COMPOSITION", "CONCERTO"],
            "COMPOSED-BY": ["MOZART"],
            "PERFORMED-BY": ["BARENBOIM", "LEOPOLD", "SIRKIN"],
            "FAVORITE-OF": ["JOHN"],
        }

    def test_table_2_favorite_of_is_inverted(self, music_db):
        assert Fact("PC#9-WAM", "FAVORITE-OF", "JOHN") \
            not in music_db.facts

    def test_table_3_composed_association(self, music_db):
        music_db.limit(2)
        result = music_db.navigate("(LEOPOLD, *, MOZART)")
        assert sorted(result.groups) == [
            "FATHER-OF", "PERFORMED.PC#9-WAM.COMPOSED-BY"]

    def test_table_3_requires_composition(self, music_db):
        result = music_db.navigate("(LEOPOLD, *, MOZART)")
        assert sorted(result.groups) == ["FATHER-OF"]

    def test_john_to_mozart_composed_paths(self, music_db):
        """§3.7: (JOHN, x, MARY)-style queries match composed paths."""
        music_db.limit(2)
        result = music_db.navigate("(JOHN, *, MOZART)")
        assert "FAVORITE-MUSIC.PC#9-WAM.COMPOSED-BY" in result.groups
        assert "LIKES" in result.groups


class TestSession:
    def test_history_and_back(self, music_db):
        session = music_db.session()
        first = session.visit("JOHN")
        session.visit("PC#9-WAM")
        assert len(session.history) == 2
        assert session.back() is first
        assert session.back() is None
        assert session.current is None

    def test_between(self, music_db):
        session = music_db.session()
        result = session.between("LEOPOLD", "MOZART")
        assert "FATHER-OF" in result.groups

    def test_incoming(self, music_db):
        session = music_db.session()
        result = session.incoming("FELIX")
        assert "JOHN" in result.groups["LIKES"]

    def test_query_with_template(self, music_db):
        session = music_db.session()
        result = session.query("(*, COMPOSED-BY, *)")
        assert ("PC#9-WAM", "MOZART") in result.groups["COMPOSED-BY"]


class TestRendering:
    def test_render_has_title_and_columns(self, music_db):
        text = music_db.navigate("(JOHN, *, *)").render()
        lines = text.splitlines()
        assert lines[0] == "(JOHN, *, *)"
        assert MEMBER in lines[1]
        assert "LIKES" in lines[1]
        assert any("FELIX" in line for line in lines)

    def test_render_named_variables_shown(self, music_db):
        result = music_db.navigate(
            Template("JOHN", Variable("r"), Variable("t")))
        assert result.render().splitlines()[0] == "(JOHN, ?r, ?t)"
