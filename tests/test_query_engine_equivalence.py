"""Randomized query-engine equivalence suite.

The compiled set-at-a-time executor (:mod:`repro.query.exec`) and the
reference tuple-at-a-time evaluator (:mod:`repro.query.evaluate`)
implement the same §2.7 semantics with very different machinery.  This
suite drives both over seeded random formulas — atoms with constants,
variables, repeated variables, and virtual relationships, combined
with ∧, ∨, ∃, ∀ — against every worked dataset plus random heaps, and
asserts the engines agree *exactly*: same answer sets on safe queries,
same :class:`~repro.core.errors.QueryError` type and message on unsafe
ones.
"""

from __future__ import annotations

import random

import pytest

from repro.core.errors import QueryError
from repro.core.facts import Variable
from repro.db import Database
from repro.datasets import books, movies, music, paper, university
from repro.datasets.synthetic import random_heap
from repro.query import CompiledEvaluator, Evaluator
from repro.query.ast import And, Formula, Or, Query, atom, exists, forall

SEEDS = range(24)
QUERIES_PER_CASE = 6

X, Y, Z = (Variable(name) for name in "xyz")
VARIABLES = (X, Y, Z)
QUANTIFIED = Variable("w")


def _heap_database() -> Database:
    """A loose random heap with a little hierarchy so rules fire."""
    database = Database()
    for fact in random_heap(40, 12, 5, seed=7):
        database.add_fact(fact)
    database.add("E0", "∈", "C0")
    database.add("E1", "∈", "C0")
    database.add("C0", "≺", "C1")
    return database


_DATASETS = {
    "books": books.load,
    "music": music.load,
    "paper": paper.load,
    "university": university.load,
    "movies": movies.load,
    "heap": _heap_database,
}

_VIEW_CACHE = {}


def _view(name):
    """Load each dataset once; its closure is the expensive part."""
    if name not in _VIEW_CACHE:
        view = _DATASETS[name]().view()
        entities, relationships = set(), set()
        for fact in view.store:
            entities.add(fact.source)
            entities.add(fact.target)
            relationships.add(fact.relationship)
        _VIEW_CACHE[name] = (view, sorted(entities), sorted(relationships))
    return _VIEW_CACHE[name]


# ----------------------------------------------------------------------
# Random formula generation
# ----------------------------------------------------------------------
def _random_term(rng, entities):
    if rng.random() < 0.45:
        return rng.choice(VARIABLES)
    return rng.choice(entities)


def _random_atom(rng, entities, relationships):
    roll = rng.random()
    if roll < 0.70:
        relationship = rng.choice(relationships)
    elif roll < 0.85:
        relationship = "≠"          # the virtual inequality idiom
    else:
        relationship = rng.choice(VARIABLES)
    return atom(_random_term(rng, entities), relationship,
                _random_term(rng, entities))


def _random_formula(rng, entities, relationships,
                    depth: int = 2) -> Formula:
    roll = rng.random()
    if depth == 0 or roll < 0.45:
        return _random_atom(rng, entities, relationships)
    if roll < 0.70:
        parts = tuple(
            _random_formula(rng, entities, relationships, depth - 1)
            for _ in range(rng.randint(2, 3)))
        return And(parts)
    if roll < 0.85:
        parts = tuple(
            _random_formula(rng, entities, relationships, depth - 1)
            for _ in range(2))
        return Or(parts)
    body = _random_formula(rng, entities, relationships, depth - 1)
    if roll < 0.95:
        return exists(rng.choice(VARIABLES), body)
    return forall(QUANTIFIED, body)


def _outcome(evaluator, query):
    """The observable result: the value, or the error type + message."""
    try:
        return ("value", evaluator.evaluate(query))
    except QueryError as error:
        return ("QueryError", str(error))


@pytest.mark.parametrize("dataset", sorted(_DATASETS))
@pytest.mark.parametrize("seed", SEEDS)
def test_engines_agree_on_random_formulas(dataset, seed):
    view, entities, relationships = _view(dataset)
    compiled = CompiledEvaluator(view)
    reference = Evaluator(view)
    rng = random.Random(f"{dataset}-{seed}")
    for _ in range(QUERIES_PER_CASE):
        formula = _random_formula(rng, entities, relationships)
        query = Query.of(formula)
        expected = _outcome(reference, query)
        actual = _outcome(compiled, query)
        assert actual == expected, \
            f"seed {seed}, dataset {dataset}: {query}"
        if expected[0] == "value":
            # succeeds/ask agreement rides along for free.
            assert compiled.succeeds(query) == reference.succeeds(query)
            if query.is_proposition:
                assert compiled.ask(query) == reference.ask(query)


@pytest.mark.parametrize("dataset", sorted(_DATASETS))
def test_random_generation_exercises_safe_queries(dataset):
    """Guard against the generator drifting into all-unsafe output,
    which would turn the suite above into a no-op."""
    from repro.query import check_safety

    _view_, entities, relationships = _view(dataset)
    safe = 0
    for seed in SEEDS:
        rng = random.Random(f"{dataset}-{seed}")
        for _ in range(QUERIES_PER_CASE):
            formula = _random_formula(rng, entities, relationships)
            try:
                check_safety(formula)
            except QueryError:
                continue
            safe += 1
    assert safe >= len(SEEDS), \
        f"{dataset}: only {safe} safe random queries across all seeds"
