"""Baseline tests: the scan store and the relational engine agree with
the indexed implementations on results (the benchmarks then compare
their costs)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.relational import RelationalDatabase
from repro.baselines.scan import ScanStore
from repro.core.errors import QueryError
from repro.core.facts import Fact, Template, var
from repro.core.store import FactStore
from repro.datasets.synthetic import employee_workload

X, Y, Z = var("x"), var("y"), var("z")


class TestScanStore:
    def test_same_results_as_indexed(self):
        facts = [
            Fact("A", "R", "B"), Fact("A", "S", "C"), Fact("B", "R", "C"),
        ]
        scan, indexed = ScanStore(facts), FactStore(facts)
        for pattern in (Template("A", Y, Z), Template(X, "R", Z),
                        Template(X, Y, "C"), Template(X, Y, Z),
                        Template("A", "R", "B")):
            assert set(scan.match(pattern)) == set(indexed.match(pattern))

    def test_dedupes_adds(self):
        scan = ScanStore()
        assert scan.add(Fact("A", "R", "B"))
        assert not scan.add(Fact("A", "R", "B"))
        assert len(scan) == 1

    def test_discard(self):
        scan = ScanStore([Fact("A", "R", "B")])
        assert scan.discard(Fact("A", "R", "B"))
        assert len(scan) == 0

    def test_entities_and_relationships(self):
        scan = ScanStore([Fact("A", "R", "B")])
        assert scan.entities() == {"A", "R", "B"}
        assert scan.relationships() == {"R"}
        assert scan.has_entity("R")

    def test_facts_mentioning(self):
        scan = ScanStore([Fact("A", "R", "B"), Fact("B", "R", "C")])
        assert scan.facts_mentioning("B") == {
            Fact("A", "R", "B"), Fact("B", "R", "C")}

    def test_solutions(self):
        scan = ScanStore([Fact("A", "R", "B")])
        assert list(scan.solutions(Template(X, "R", Z))) == [
            {X: "A", Z: "B"}]


@settings(max_examples=40)
@given(facts=st.lists(
    st.builds(Fact, st.sampled_from("ABCD"), st.sampled_from("RS"),
              st.sampled_from("ABCD")),
    max_size=25))
def test_scan_and_indexed_agree_on_random_heaps(facts):
    scan, indexed = ScanStore(facts), FactStore(facts)
    for pattern in (Template(X, "R", Z), Template("A", Y, Z),
                    Template(X, Y, Z), Template(X, "S", "B")):
        assert set(scan.match(pattern)) == set(indexed.match(pattern))


class TestRelationalBaseline:
    def _build(self):
        db = RelationalDatabase()
        employees = db.create_relation(
            "EMPLOYEES", ("NAME", "DEPARTMENT", "SALARY"))
        for row in (("JOHN", "SHIPPING", "26000"),
                    ("TOM", "ACCOUNTING", "27000"),
                    ("MARY", "RECEIVING", "25000")):
            employees.insert(row)
        departments = db.create_relation("DEPARTMENTS", ("NAME", "FLOOR"))
        departments.insert(("SHIPPING", "1"))
        departments.insert(("ACCOUNTING", "2"))
        return db

    def test_select(self):
        db = self._build()
        assert db.lookup("EMPLOYEES", "NAME", "JOHN") == [
            ("JOHN", "SHIPPING", "26000")]

    def test_indexed_select_agrees_with_scan(self):
        db = self._build()
        scanned = db.lookup("EMPLOYEES", "DEPARTMENT", "SHIPPING")
        db.relation("EMPLOYEES").create_index("DEPARTMENT")
        assert db.lookup("EMPLOYEES", "DEPARTMENT", "SHIPPING") == scanned

    def test_index_maintained_on_insert(self):
        db = self._build()
        db.relation("EMPLOYEES").create_index("DEPARTMENT")
        db.relation("EMPLOYEES").insert(("SUE", "SHIPPING", "30000"))
        assert len(db.lookup("EMPLOYEES", "DEPARTMENT", "SHIPPING")) == 2

    def test_project(self):
        db = self._build()
        names = db.relation("EMPLOYEES").project(("NAME",))
        assert ("JOHN",) in names

    def test_join(self):
        db = self._build()
        pairs = list(db.join("EMPLOYEES", "DEPARTMENT", "DEPARTMENTS",
                             "NAME"))
        assert (("JOHN", "SHIPPING", "26000"),
                ("SHIPPING", "1")) in pairs
        # MARY's department has no floor row.
        assert all(left[0] != "MARY" for left, _ in pairs)

    def test_schema_knowledge_required(self):
        db = self._build()
        with pytest.raises(QueryError, match="schema knowledge"):
            db.relation("EMPLOYEE")  # wrong name
        with pytest.raises(QueryError):
            db.relation("EMPLOYEES").attribute_index("WAGE")

    def test_arity_enforced(self):
        db = self._build()
        with pytest.raises(QueryError):
            db.relation("DEPARTMENTS").insert(("ONLY-ONE",))

    def test_duplicate_relation_rejected(self):
        db = self._build()
        with pytest.raises(QueryError):
            db.create_relation("EMPLOYEES", ("NAME",))

    def test_find_mentions_scans_every_relation(self):
        db = self._build()
        mentions = db.find_mentions("SHIPPING")
        relations = {name for name, _ in mentions}
        assert relations == {"EMPLOYEES", "DEPARTMENTS"}

    def test_len_counts_all_rows(self):
        assert len(self._build()) == 5


class TestWorkloadEquivalence:
    def test_loose_and_relational_agree_on_lookups(self):
        """The two shapes of the F3 workload answer the same
        question identically."""
        from repro.db import Database

        workload = employee_workload(60, 5, seed=7)
        loose = Database(with_axioms=False)
        loose.add_facts(workload.facts)

        organized = RelationalDatabase()
        relation = organized.create_relation(
            "EMPLOYEES", ("NAME", "DEPARTMENT", "SALARY"))
        for row in workload.rows:
            relation.insert(row)
        relation.create_index("NAME")

        for employee in workload.employees[:10]:
            loose_answer = {
                d for (d,) in loose.query(f"({employee}, WORKS-FOR, d)")}
            organized_answer = {
                row[1]
                for row in organized.lookup("EMPLOYEES", "NAME", employee)}
            # The loose database additionally derives the class-level
            # answer (EMP, WORKS-FOR, DEPARTMENT) by membership
            # inference; the ground answers must coincide.
            assert organized_answer <= loose_answer
            assert loose_answer - organized_answer <= {"DEPARTMENT"}
