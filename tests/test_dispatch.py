"""The closure fast path: compiled dispatch, strata, and result caches.

Covers the three layers of :mod:`repro.rules.dispatch` (compiled
joins, the relationship-indexed dispatch index, SCC stratification),
the versioned query/navigation cache, the fast
:meth:`~repro.core.store.FactStore.copy`, and the duplicate-condition
pruning regression in the interpreted engines.
"""

import pytest

from repro.core.entities import ISA, MEMBER, SYN
from repro.core.facts import Fact, Template, Variable
from repro.core.store import FactStore
from repro.db import Database
from repro.obs import Tracer, use_tracer
from repro.rules.builtin import STANDARD_RULES
from repro.rules.dispatch import (
    CompiledRuleSet,
    compile_ruleset,
    dispatched_closure,
    rule_dependencies,
    stratify,
)
from repro.rules.engine import (
    extend_closure,
    naive_closure,
    semi_naive_closure,
)
from repro.rules.rule import (
    ANY_RELATIONSHIP,
    NONSPECIAL_RELATIONSHIP,
    Condition,
    Distinct,
    NotSpecial,
    RelationshipClassifier,
    Rule,
    RuleContext,
    atom_relationship_spec,
    specs_overlap,
)

X, Y, Z, R = Variable("x"), Variable("y"), Variable("z"), Variable("r")


def _context(facts):
    return RuleContext(classifier=RelationshipClassifier(FactStore(facts)))


# ----------------------------------------------------------------------
# Relationship signatures
# ----------------------------------------------------------------------
class TestRelationshipSpecs:
    def test_ground_atom_is_its_own_spec(self):
        assert atom_relationship_spec(Template(X, ISA, Y), ()) == ISA

    def test_unguarded_variable_is_any(self):
        spec = atom_relationship_spec(Template(X, R, Y), ())
        assert spec is ANY_RELATIONSHIP

    def test_notspecial_guard_narrows_to_nonspecial(self):
        spec = atom_relationship_spec(Template(X, R, Y), (NotSpecial(R),))
        assert spec is NONSPECIAL_RELATIONSHIP

    def test_overlap_rules(self):
        assert specs_overlap(ISA, ISA)
        assert not specs_overlap(ISA, MEMBER)
        assert specs_overlap(ANY_RELATIONSHIP, ISA)
        assert specs_overlap(NONSPECIAL_RELATIONSHIP, "WORKS-FOR")
        # A NotSpecial-guarded position can never produce/match ``≺``.
        assert not specs_overlap(NONSPECIAL_RELATIONSHIP, ISA)
        assert specs_overlap(NONSPECIAL_RELATIONSHIP,
                             NONSPECIAL_RELATIONSHIP)


# ----------------------------------------------------------------------
# Stratification
# ----------------------------------------------------------------------
class TestStratify:
    def test_standard_rules_collapse_to_one_stratum(self):
        # syn-source/syn-target consume and produce *any* relationship,
        # so the full standard set is one big SCC.
        strata = stratify(STANDARD_RULES)
        assert len(strata) == 1
        assert [r.name for r in strata[0]] == [
            r.name for r in STANDARD_RULES]

    def test_ablated_rules_split_into_ordered_strata(self):
        ablated = [r for r in STANDARD_RULES
                   if not r.name.startswith("syn-")]
        strata = stratify(ablated)
        assert len(strata) > 1
        # Topological soundness: no rule in a later stratum feeds a
        # rule in an earlier one.
        for later_index in range(1, len(strata)):
            for earlier_index in range(later_index):
                for producer in strata[later_index]:
                    for consumer in strata[earlier_index]:
                        assert not any(
                            specs_overlap(p, c)
                            for p in
                            producer.produced_relationship_specs()
                            for c in
                            consumer.consumed_relationship_specs()), (
                            f"{producer.name} (stratum {later_index})"
                            f" feeds {consumer.name}"
                            f" (stratum {earlier_index})")

    def test_dependencies_are_a_sound_overapproximation(self):
        edges = rule_dependencies(STANDARD_RULES)
        by_name = {r.name: i for i, r in enumerate(STANDARD_RULES)}
        # ≺-transitivity feeds itself and the inheritance rules.
        gen = by_name["gen-transitive"]
        assert gen in edges[gen]
        assert by_name["gen-source"] in edges[gen]

    def test_stratified_closure_matches_on_ablated_rules(self):
        ablated = [r for r in STANDARD_RULES
                   if not r.name.startswith("syn-")]
        facts = [Fact("A", ISA, "B"), Fact("B", ISA, "C"),
                 Fact("I", MEMBER, "A"), Fact("C", "OWNS", "THING"),
                 Fact("P", "LIKES", "Q")]
        context = _context(facts)
        reference = semi_naive_closure(facts, ablated, context)
        fast = dispatched_closure(facts, ablated, context)
        assert set(fast.store) == set(reference.store)
        assert fast.rule_firings == reference.rule_firings


# ----------------------------------------------------------------------
# Compiled rules and the dispatch index
# ----------------------------------------------------------------------
class TestDispatch:
    def test_standard_rules_identical_closure_and_attribution(self):
        facts = [Fact("A", ISA, "B"), Fact("B", ISA, "C"),
                 Fact("M", SYN, "A"), Fact("I", MEMBER, "A"),
                 Fact("B", "OWNS", "THING")]
        context = _context(facts)
        reference = semi_naive_closure(facts, STANDARD_RULES, context,
                                       trace=True)
        fast = dispatched_closure(facts, STANDARD_RULES, context,
                                  trace=True)
        assert set(fast.store) == set(reference.store)
        assert fast.iterations == reference.iterations
        assert fast.rule_firings == reference.rule_firings
        assert set(fast.provenance) == set(reference.provenance)

    def test_dispatch_index_buckets_by_pivot_relationship(self):
        compiled = compile_ruleset(STANDARD_RULES)
        group = compiled.all_rules
        assert ISA in group.by_relationship
        # The synonym-substitution pivots land in the wildcard bucket.
        wildcard_rules = {cr.rule.name for cr in group.wildcard}
        assert "syn-source" in wildcard_rules
        # The ordinary-relationship inheritance pivots are guarded by
        # NotSpecial, so they sit in the nonspecial bucket.
        nonspecial_rules = {cr.rule.name for cr in group.nonspecial}
        assert "gen-source" in nonspecial_rules

    def test_select_skips_unreachable_rules(self):
        compiled = compile_ruleset(STANDARD_RULES)
        group = compiled.all_rules
        active = group.select({ISA})
        assert len(active) < len(group)
        names = {cr.rule.name for cr in active}
        assert "gen-transitive" in names
        # No delta relationship can feed the ∈-pivoted bodies.
        assert all(cr.pivot_spec != MEMBER for cr in active)
        # A non-special relationship additionally wakes the nonspecial
        # bucket.
        wider = group.select({ISA, "OWNS"})
        assert len(wider) > len(active)

    def test_skipped_rules_counter_and_equivalence(self):
        facts = [Fact(f"N{i}", ISA, f"N{i+1}") for i in range(6)]
        context = _context(facts)
        with use_tracer(Tracer()) as tracer:
            fast = dispatched_closure(facts, STANDARD_RULES, context)
        assert tracer.counters.get("dispatch.skipped_rules", 0) > 0
        reference = semi_naive_closure(facts, STANDARD_RULES, context)
        assert set(fast.store) == set(reference.store)
        assert fast.rule_firings == reference.rule_firings

    def test_tracing_does_not_change_results(self):
        facts = [Fact("A", ISA, "B"), Fact("I", MEMBER, "A"),
                 Fact("B", "OWNS", "T")]
        context = _context(facts)
        untraced = dispatched_closure(facts, STANDARD_RULES, context)
        with use_tracer(Tracer()):
            traced = dispatched_closure(facts, STANDARD_RULES, context)
        assert set(traced.store) == set(untraced.store)
        assert traced.rule_firings == untraced.rule_firings
        assert traced.iterations == untraced.iterations

    def test_max_iterations_caps_total_rounds(self):
        facts = [Fact(f"N{i}", ISA, f"N{i+1}") for i in range(8)]
        context = _context(facts)
        capped = dispatched_closure(facts, STANDARD_RULES, context,
                                    max_iterations=2)
        assert capped.iterations == 2
        full = dispatched_closure(facts, STANDARD_RULES, context)
        assert len(capped.store) < len(full.store)

    def test_compiled_ruleset_reuse_and_registry_cache(self):
        from repro.rules.registry import RuleRegistry

        registry = RuleRegistry()
        first = registry.compiled()
        assert registry.compiled() is first
        registry.exclude("gen-transitive")
        second = registry.compiled()
        assert second is not first
        assert all(r.name != "gen-transitive" for r in second.rules)
        registry.include("gen-transitive")
        assert registry.compiled() is not second

    def test_extend_closure_with_compiled_rules(self):
        facts = [Fact("A", ISA, "B"), Fact("I", MEMBER, "A")]
        context = _context(facts)
        compiled = compile_ruleset(STANDARD_RULES)
        result = dispatched_closure(facts, STANDARD_RULES, context,
                                    compiled=compiled)
        extend_closure(result, (Fact("B", ISA, "C"),), STANDARD_RULES,
                       context, compiled=compiled)
        recomputed = dispatched_closure(
            facts + [Fact("B", ISA, "C")], STANDARD_RULES, context,
            compiled=compiled)
        assert set(result.store) == set(recomputed.store)

    def test_dead_rule_compiles_to_nothing_but_keeps_firing_entry(self):
        dead = Rule(name="never", body=(Template(X, "R", Y),),
                    head=(Template(X, "DERIVED", Y),),
                    conditions=(Distinct("A", "A"),))
        compiled = compile_ruleset([dead])
        assert len(compiled.compiled) == 0
        facts = [Fact("A", "R", "B")]
        result = dispatched_closure(facts, [dead], _context(facts))
        assert result.rule_firings == {"never": 0}
        assert len(result.store) == 1


# ----------------------------------------------------------------------
# Database integration
# ----------------------------------------------------------------------
class TestDatabaseEngine:
    def test_dispatched_is_the_default_engine(self):
        assert Database().engine == "dispatched"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            Database(engine="magic")

    def test_engines_agree_through_the_database(self):
        facts = [Fact("JOHN", MEMBER, "EMPLOYEE"),
                 Fact("EMPLOYEE", ISA, "PERSON"),
                 Fact("EMPLOYEE", "EARNS", "SALARY")]
        closures = {}
        for engine in ("dispatched", "semi-naive", "naive"):
            db = Database(facts, engine=engine)
            closures[engine] = frozenset(db.closure().store)
        assert closures["dispatched"] == closures["semi-naive"]
        assert closures["dispatched"] == closures["naive"]

    def test_incremental_add_matches_recompute(self):
        db = Database()
        db.add("EMPLOYEE", ISA, "PERSON")
        db.add("JOHN", MEMBER, "EMPLOYEE")
        db.closure()
        db.add("PERSON", ISA, "AGENT")  # extends the cached closure
        fresh = Database(list(db.facts))
        assert frozenset(db.closure().store) == \
            frozenset(fresh.closure().store)


# ----------------------------------------------------------------------
# Versioned result cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_repeated_query_hits_cache(self):
        db = Database()
        db.add("JOHN", MEMBER, "EMPLOYEE")
        db.add("EMPLOYEE", "EARNS", "SALARY")
        first = db.query("(JOHN, EARNS, y)")
        hits_before = db._result_cache.hits
        second = db.query("(JOHN, EARNS, y)")
        assert second == first
        assert db._result_cache.hits > hits_before
        # Cached values are handed out as fresh sets.
        second.add(("INTRUDER",))
        assert db.query("(JOHN, EARNS, y)") == first

    def test_cache_hit_counter_visible_to_tracer(self):
        db = Database()
        db.add("A", ISA, "B")
        db.query("(A, ≺, y)")
        with use_tracer(Tracer()) as tracer:
            db.query("(A, ≺, y)")
        assert tracer.counters.get("cache.hits", 0) > 0

    def test_mutation_invalidates_by_version(self):
        db = Database()
        db.add("A", ISA, "B")
        assert ("C",) not in db.query("(A, ≺, y)")
        db.add("B", ISA, "C")
        assert ("C",) in db.query("(A, ≺, y)")
        db.remove_fact(Fact("B", ISA, "C"))
        assert ("C",) not in db.query("(A, ≺, y)")

    def test_ask_caches_false_results(self):
        db = Database()
        db.add("A", ISA, "B")
        assert db.ask("(A, ≺, C)") is False
        # A repeated ask is served from a cache tier: the plan cache's
        # verdict memo when nothing observes per-call traffic, the
        # versioned result cache otherwise.
        hits_before = db._result_cache.hits + db._plan_cache.verdict_hits
        assert db.ask("(A, ≺, C)") is False
        assert (db._result_cache.hits
                + db._plan_cache.verdict_hits) > hits_before

    def test_repeated_navigation_hits_cache(self):
        db = Database()
        db.add("JOHN", MEMBER, "EMPLOYEE")
        db.add("JOHN", "DRIVES", "PC#9")
        first = db.navigate("(JOHN, *, *)")
        hits_before = db._result_cache.hits
        second = db.navigate("(JOHN, *, *)")
        assert db._result_cache.hits > hits_before
        assert second.render() == first.render()
        db.add("JOHN", "OWNS", "HOUSE")
        third = db.navigate("(JOHN, *, *)")
        assert "OWNS" in third.groups

    def test_navigation_session_sees_configuration_changes(self):
        db = Database()
        db.add("JOHN", "DRIVES", "PC#9")
        session = db.session()
        assert "DRIVES" in session.visit("JOHN").groups
        db.add("JOHN", "OWNS", "HOUSE")
        # The session's token is live, so the second visit recomputes.
        assert "OWNS" in db.session().visit("JOHN").groups

    def test_rule_toggle_bumps_epoch(self):
        db = Database()
        db.add("A", ISA, "B")
        db.add("B", ISA, "C")
        assert ("C",) in db.query("(A, ≺, y)")
        db.exclude("gen-transitive")
        assert ("C",) not in db.query("(A, ≺, y)")
        db.include("gen-transitive")
        assert ("C",) in db.query("(A, ≺, y)")

    def test_stats_reports_cache(self):
        db = Database()
        db.add("A", ISA, "B")
        db.query("(A, ≺, y)")
        db.query("(A, ≺, y)")
        stats = db.stats()["result_cache"]
        assert stats["hits"] >= 1
        assert stats["size"] >= 1


# ----------------------------------------------------------------------
# FactStore.copy fast path
# ----------------------------------------------------------------------
class TestStoreCopy:
    def test_copy_equals_rebuilt_from_scratch(self):
        store = FactStore()
        for i in range(20):
            store.add(Fact(f"E{i % 7}", f"R{i % 3}", f"E{(i + 2) % 7}"))
        store.discard(Fact("E0", "R0", "E2"))
        store.discard(Fact("E1", "R1", "E3"))
        copied = store.copy()
        rebuilt = FactStore(store)
        assert set(copied) == set(rebuilt)
        for index in ("_by_s", "_by_r", "_by_t", "_by_sr", "_by_st",
                      "_by_rt"):
            assert dict(getattr(copied, index)) == \
                dict(getattr(rebuilt, index)), index
        assert dict(copied._entity_refs) == dict(rebuilt._entity_refs)
        assert dict(copied._relationship_refs) == \
            dict(rebuilt._relationship_refs)
        assert copied.entities() == rebuilt.entities()
        assert copied.relationships() == rebuilt.relationships()

    def test_copy_is_independent(self):
        store = FactStore([Fact("A", "R", "B")])
        copied = store.copy()
        copied.add(Fact("C", "S", "D"))
        copied.discard(Fact("A", "R", "B"))
        assert Fact("A", "R", "B") in store
        assert Fact("C", "S", "D") not in store
        assert store.relationships() == {"R"}

    def test_copy_preserves_version(self):
        store = FactStore([Fact("A", "R", "B")])
        version = store.version
        assert store.copy().version == version

    def test_version_moves_on_every_mutation(self):
        store = FactStore()
        v0 = store.version
        store.add(Fact("A", "R", "B"))
        v1 = store.version
        assert v1 > v0
        store.add(Fact("A", "R", "B"))  # duplicate: no change
        assert store.version == v1
        store.discard(Fact("A", "R", "B"))
        v2 = store.version
        assert v2 > v1
        store.clear()
        assert store.version > v2


# ----------------------------------------------------------------------
# Duplicate-condition pruning regression
# ----------------------------------------------------------------------
class _ClassEqualCondition(Condition):
    """A condition whose instances compare equal by *class* while
    meaning different things — the worst case for pruning checked
    conditions by equality instead of by position."""

    def __init__(self, variable, forbidden):
        self.variable = variable
        self.forbidden = forbidden

    def holds(self, binding, context):
        return binding.get(self.variable) != self.forbidden

    def variables(self):
        return frozenset({self.variable})

    def __eq__(self, other):
        return isinstance(other, _ClassEqualCondition)

    def __hash__(self):
        return hash(_ClassEqualCondition)


class TestDuplicateConditionPruning:
    def _rule(self):
        # x's guard becomes checkable after the first atom; z's only
        # after the second.  Equality-based pruning dropped z's guard
        # the moment x's was checked, deriving (x, T, BAD-Z).
        return Rule(
            name="guarded",
            body=(Template(X, "R", Y), Template(Y, "S", Z)),
            head=(Template(X, "T", Z),),
            conditions=(_ClassEqualCondition(X, "BAD-X"),
                        _ClassEqualCondition(Z, "BAD-Z")))

    @pytest.fixture
    def facts(self):
        return [Fact("A", "R", "B"), Fact("BAD-X", "R", "B"),
                Fact("B", "S", "OK-Z"), Fact("B", "S", "BAD-Z")]

    def test_all_engines_enforce_every_copy(self, facts):
        rule = self._rule()
        context = _context(facts)
        expected = {Fact("A", "T", "OK-Z")}
        for engine in (naive_closure, semi_naive_closure,
                       dispatched_closure):
            result = engine(facts, [rule], context)
            derived = set(result.store) - set(facts)
            assert derived == expected, engine.__name__

    def test_literally_repeated_condition_is_harmless(self, facts):
        guard = _ClassEqualCondition(Z, "BAD-Z")
        rule = Rule(name="doubled",
                    body=(Template(X, "R", Y), Template(Y, "S", Z)),
                    head=(Template(X, "T", Z),),
                    conditions=(guard, guard))
        context = _context(facts)
        result = semi_naive_closure(facts, [rule], context)
        derived = set(result.store) - set(facts)
        assert derived == {Fact("A", "T", "OK-Z"),
                           Fact("BAD-X", "T", "OK-Z")}
