"""JSON-lines TCP server/client tests: round trips, typed error
propagation, concurrent clients, and the remote shell."""

from __future__ import annotations

import io
import json
import socket
import threading

import pytest

from repro.core.errors import (
    DeadlineExceeded,
    Overloaded,
    ParseError,
    ServiceError,
)
from repro.db import Database
from repro.serve import DatabaseService
from repro.serve.net import (
    PROTOCOL_VERSION,
    RemoteShell,
    ServiceClient,
    ServiceServer,
)


@pytest.fixture()
def served():
    """A live service + server on an ephemeral port."""
    db = Database()
    db.add("JOHN", "∈", "EMPLOYEE")
    db.add("EMPLOYEE", "EARNS", "SALARY")
    service = DatabaseService(db)
    server = ServiceServer(service, port=0)
    server.start()
    try:
        yield service, server.address
    finally:
        server.close()
        service.close()


class TestRoundTrips:
    def test_ping(self, served):
        _, (host, port) = served
        with ServiceClient(host, port) as client:
            info = client.ping()
            assert info["protocol"] == PROTOCOL_VERSION
            assert info["facts"] > 0

    def test_query_rows_sorted(self, served):
        _, (host, port) = served
        with ServiceClient(host, port) as client:
            rows = client.query("(x, ∈, EMPLOYEE)")
            assert rows == sorted(rows)
            assert ["JOHN"] in rows

    def test_ask_and_derived_facts(self, served):
        _, (host, port) = served
        with ServiceClient(host, port) as client:
            assert client.ask("(JOHN, EARNS, SALARY)") is True
            assert client.ask("(JOHN, EARNS, NOTHING)") is False

    def test_write_then_read(self, served):
        _, (host, port) = served
        with ServiceClient(host, port) as client:
            assert client.add("MARY", "∈", "EMPLOYEE") is True
            assert client.add("MARY", "∈", "EMPLOYEE") is False
            assert client.ask("(MARY, EARNS, SALARY)")
            assert client.remove("MARY", "∈", "EMPLOYEE") is True

    def test_match_try_navigate(self, served):
        _, (host, port) = served
        with ServiceClient(host, port) as client:
            facts = client.match("(JOHN, *, *)")
            assert ["JOHN", "∈", "EMPLOYEE"] in facts
            mentions = client.try_("JOHN")
            assert ["JOHN", "∈", "EMPLOYEE"] in mentions
            rendered = client.navigate("(JOHN, *, *)")
            assert "EMPLOYEE" in rendered

    def test_probe(self, served):
        _, (host, port) = served
        with ServiceClient(host, port) as client:
            outcome = client.probe("(JOHN, EARNS, y)")
            assert outcome["succeeded"] is True
            assert ["SALARY"] in outcome["value"]

    def test_rule_and_limit(self, served):
        _, (host, port) = served
        with ServiceClient(host, port) as client:
            described = client.define_rule(
                "sym", "(a, MARRIED-TO, b) => (b, MARRIED-TO, a)")
            assert "MARRIED-TO" in described
            client.add("ANN", "MARRIED-TO", "BOB")
            assert client.ask("(BOB, MARRIED-TO, ANN)")
            client.exclude("sym")
            assert not client.ask("(BOB, MARRIED-TO, ANN)")
            client.include("sym")
            assert client.ask("(BOB, MARRIED-TO, ANN)")
            assert client.limit(3) == 3
            assert client.limit(None) is None

    def test_stats(self, served):
        _, (host, port) = served
        with ServiceClient(host, port) as client:
            stats = client.stats()
            assert stats["closed"] is False
            db_stats = client.database_stats()
            assert db_stats["base_facts"] > 0


class TestErrorPropagation:
    def test_parse_error_reraises_typed(self, served):
        _, (host, port) = served
        with ServiceClient(host, port) as client:
            with pytest.raises(ParseError):
                client.query("(x, BOGUS")

    def test_deadline_exceeded_over_the_wire(self, served):
        service, (host, port) = served
        for i in range(40):
            service.add(f"E{i}", "∈", "CLS")
        with ServiceClient(host, port) as client:
            with pytest.raises(DeadlineExceeded):
                client.query("(x, ∈, CLS)", deadline=-1.0)

    def test_mid_flight_deadline_cancellation(self, served):
        """A *positive* deadline that expires during evaluation: the
        cooperative checks inside the evaluator must cancel the read
        mid-flight (not just reject an already-expired deadline at
        admission), and the connection must survive to serve the next
        request."""
        service, (host, port) = served
        service.add_facts([(f"E{i}", "∈", f"CLS{i % 3}")
                           for i in range(2400)])
        with ServiceClient(host, port) as client:
            # Warm the snapshot's closure under a different result key
            # so the deadlined query below spends its time in plan
            # execution, where the cooperative checks live.  The
            # two-conjunct self-join is far too large for the budget,
            # so the compiled executor's batch-boundary checkpoints
            # must cancel it between operators.
            client.query("(E0, ∈, y)")
            with pytest.raises(DeadlineExceeded):
                client.query("(x, ∈, c) and (y, ∈, c)", deadline=0.0003)
            # Mid-flight cancellation left the connection healthy.
            assert client.ping()["protocol"] == PROTOCOL_VERSION
            rows = client.query("(x, ∈, CLS1)")
            assert len(rows) == 800

    def test_unknown_op_is_service_error(self, served):
        _, (host, port) = served
        with ServiceClient(host, port) as client:
            with pytest.raises(ServiceError):
                client._call("frobnicate")

    def test_malformed_request_keeps_connection_alive(self, served):
        _, (host, port) = served
        with socket.create_connection((host, port), timeout=10.0) as sock:
            handle = sock.makefile("rw", encoding="utf-8")
            handle.write("this is not json\n")
            handle.flush()
            response = json.loads(handle.readline())
            assert response["ok"] is False
            # The connection survives the bad line.
            handle.write(json.dumps({"op": "ping"}) + "\n")
            handle.flush()
            assert json.loads(handle.readline())["ok"] is True

    def test_missing_field_is_reported(self, served):
        _, (host, port) = served
        with ServiceClient(host, port) as client:
            with pytest.raises(ServiceError):
                client._call("query")   # no "query" field


class TestConcurrentClients:
    def test_parallel_clients_roundtrip(self, served):
        _, (host, port) = served
        errors = []

        def worker(index):
            try:
                with ServiceClient(host, port) as client:
                    client.add(f"C{index}", "∈", "EMPLOYEE")
                    for _ in range(5):
                        assert client.ask(f"(C{index}, ∈, EMPLOYEE)")
            except Exception as error:   # noqa: BLE001 - recorded
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors, errors[:3]


class TestPoolBackedServer:
    """The server with ``pool=``: reads served by replica processes,
    read-your-writes per connection, pool stats over the wire."""

    @pytest.fixture()
    def pool_served(self):
        from repro.serve import ReplicaPool

        db = Database()
        db.add("JOHN", "∈", "EMPLOYEE")
        db.add("EMPLOYEE", "EARNS", "SALARY")
        service = DatabaseService(db)
        pool = ReplicaPool(service, workers=2, read_timeout=60.0)
        server = ServiceServer(service, port=0, pool=pool)
        server.start()
        try:
            yield service, pool, server.address
        finally:
            server.close()
            pool.close()
            service.close()

    def test_reads_roundtrip_via_replicas(self, pool_served):
        _, pool, (host, port) = pool_served
        with ServiceClient(host, port) as client:
            assert client.ping()["workers"] == 2
            assert ["JOHN"] in client.query("(x, ∈, EMPLOYEE)")
            assert client.ask("(JOHN, EARNS, SALARY)") is True
            assert "EMPLOYEE" in client.navigate("(JOHN, *, *)")
            outcome = client.probe("(JOHN, EARNS, y)")
            assert outcome["succeeded"] is True
        assert pool.stats()["reads"] >= 4

    def test_read_your_writes_per_connection(self, pool_served):
        _, _, (host, port) = pool_served
        with ServiceClient(host, port) as client:
            for index in range(5):
                assert client.add(f"W{index}", "∈", "EMPLOYEE") is True
                # Immediately read back over the same connection: the
                # per-connection version floor must route this to a
                # caught-up replica or fall back to the primary.
                assert client.ask(f"(W{index}, EARNS, SALARY)") is True

    def test_typed_errors_via_replicas(self, pool_served):
        _, _, (host, port) = pool_served
        with ServiceClient(host, port) as client:
            with pytest.raises(ParseError):
                client.query("(x, BOGUS")

    def test_stats_include_pool(self, pool_served):
        _, _, (host, port) = pool_served
        with ServiceClient(host, port) as client:
            stats = client.stats()
            assert stats["pool"]["workers"] == 2
            assert stats["pool"]["alive"] == 2


class TestRemoteShell:
    def run_shell(self, served, script):
        _, (host, port) = served
        with ServiceClient(host, port) as client:
            stdout = io.StringIO()
            RemoteShell(client).run(stdin=io.StringIO(script),
                                    stdout=stdout)
            return stdout.getvalue()

    def test_session_transcript(self, served):
        output = self.run_shell(served, "\n".join([
            "ping",
            "query (x, ∈, EMPLOYEE)",
            "add MARY ∈ EMPLOYEE",
            "ask (MARY, EARNS, SALARY)",
            "try JOHN",
            "(JOHN, *, *)",
            "stats",
            "quit",
        ]) + "\n")
        assert "ok: version" in output
        assert "(JOHN)" in output
        assert "added" in output
        assert "yes" in output
        assert "(JOHN, ∈, EMPLOYEE)" in output
        assert "pending_writes: 0" in output

    def test_error_rendering(self, served):
        output = self.run_shell(served, "query (x, BOGUS\nquit\n")
        assert "error (ParseError)" in output

    def test_unknown_command(self, served):
        output = self.run_shell(served, "shazam\nquit\n")
        assert "unknown command" in output
