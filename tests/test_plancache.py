"""Plan cache + point-read fast path (ISSUE 8).

Covers the tentpole surfaces: canonical-text keying, the shape
classifier, parse/compile caching shared across ``query``/``ask``/
``succeeds``, the invalidation matrix (store version bump → recompile,
rule/view redefinition → new epoch entries, interned-store compaction →
fast-probe rebind), and a seeded randomized equivalence run with the
fast path forced on and off.
"""

from __future__ import annotations

import random

import pytest

from repro.core.errors import QueryError
from repro.core.facts import Fact, Variable
from repro.datasets import books
from repro.db import Database
from repro.query import CompiledEvaluator, Evaluator, parse_query
from repro.query import plancache as _plancache
from repro.query.canonical import canonical_text
from repro.query.compile import compile_query
from repro.query.plancache import FastProbe, PlanCache, classify


@pytest.fixture
def employees():
    database = Database()
    for index in range(12):
        database.add(f"EMP{index}", "∈", "EMPLOYEE")
        database.add(f"EMP{index}", "WORKS-FOR", f"DEPT{index % 3}")
        database.add(f"EMP{index}", "EARNS", f"${20000 + 1000 * index}")
    return database


@pytest.fixture
def fast_path_off():
    _plancache.FAST_PATH = False
    try:
        yield
    finally:
        _plancache.FAST_PATH = True


@pytest.fixture(autouse=True)
def _no_last_run_collection():
    """A DatabaseService with a slow-query log sets the process-wide
    ``KEEP_LAST_RUN`` flag and (by design) never unsets it; pin it off
    here so these tests see the same executor behavior standalone and
    after the serving suites."""
    from repro.query import exec as _qexec

    original = _qexec.KEEP_LAST_RUN
    _qexec.KEEP_LAST_RUN = False
    try:
        yield
    finally:
        _qexec.KEEP_LAST_RUN = original


# ----------------------------------------------------------------------
# canonical_text
# ----------------------------------------------------------------------
class TestCanonicalText:
    def test_collapses_insignificant_whitespace(self):
        assert canonical_text("  (x,  ∈,\tBOOK) \n") == "(x, ∈, BOOK)"

    def test_identical_spellings_share_a_key(self):
        assert canonical_text("(x, ∈, BOOK)") \
            == canonical_text("(x,   ∈,   BOOK)")

    def test_quoted_text_is_only_stripped(self):
        # Whitespace inside a quoted entity is significant content.
        assert canonical_text(' (x, ∈, "A  B") ') == '(x, ∈, "A  B")'
        assert canonical_text("(x, ∈, 'A  B')") == "(x, ∈, 'A  B')"

    def test_canonicalization_preserves_parse(self):
        for text in ("( x , ∈ , BOOK )", '(x, ∈, "A  B")',
                     "exists y:  (x, CITES, y)   and (x, ∈, BOOK)"):
            assert str(parse_query(canonical_text(text))) \
                == str(parse_query(text))


# ----------------------------------------------------------------------
# Shape classifier
# ----------------------------------------------------------------------
class TestClassify:
    def _plan(self, db, text):
        return compile_query(parse_query(text), db.view())

    def test_shapes(self, employees):
        cases = {
            "(EMP0, ∈, EMPLOYEE)": "point",
            "(EMP0, r, t)": "star",
            "(x, ∈, EMPLOYEE)": "star",
            "(x, r, t)": "scan",
            "(x, ∈, EMPLOYEE) and (x, EARNS, s)": "join",
            "exists y: (x, ∈, EMPLOYEE) and (x, EARNS, y)": "complex",
            "(x, ∈, EMPLOYEE) or (x, ∈, DEPT0)": "complex",
        }
        for text, expected in cases.items():
            assert classify(self._plan(employees, text)) == expected, text

    def test_single_atom_shapes_build_a_fast_probe(self, employees):
        view = employees.view()
        for text in ("(EMP0, ∈, EMPLOYEE)", "(x, ∈, EMPLOYEE)",
                     "(x, r, t)", "(x, CITES, x)"):
            plan = compile_query(parse_query(text), view)
            assert FastProbe.build(plan, view) is not None, text
        for text in ("(x, ∈, EMPLOYEE) and (x, EARNS, s)",
                     "exists y: (x, EARNS, y)"):
            plan = compile_query(parse_query(text), view)
            assert FastProbe.build(plan, view) is None, text


# ----------------------------------------------------------------------
# Cache behavior
# ----------------------------------------------------------------------
class TestPlanCacheBasics:
    def test_repeated_text_hits(self, employees):
        stats0 = employees.stats()["plan_cache"]
        employees.query("(x, ∈, EMPLOYEE)")
        employees.query("(x,   ∈,  EMPLOYEE)")
        employees.query(" (x, ∈, EMPLOYEE) ")
        stats = employees.stats()["plan_cache"]
        assert stats["misses"] - stats0["misses"] == 1
        assert stats["hits"] - stats0["hits"] == 2
        assert stats["entries"] == 1

    def test_query_ask_succeeds_share_entries(self, employees):
        """The satellite fix: ``ask``/``succeeds`` reuse the plan the
        first ``query`` compiled — zero further parse/compile work."""
        employees.query("(EMP0, ∈, EMPLOYEE)")
        before = employees.stats()["plan_cache"]
        assert employees.ask("(EMP0, ∈, EMPLOYEE)")
        assert employees.succeeds("(EMP0, ∈, EMPLOYEE)")
        after = employees.stats()["plan_cache"]
        assert after["misses"] == before["misses"]
        assert after["hits"] - before["hits"] == 2
        assert after["entries"] == before["entries"]

    def test_repeated_ask_does_zero_parse_and_compile_work(self,
                                                           employees):
        """Regression for the ISSUE satellite: N repeated ``ask`` calls
        cost one parse + compile; repeats short-circuit through the
        verdict memo without even an entry lookup."""
        text = "(EMP3, WORKS-FOR, DEPT0)"
        base = employees.stats()["plan_cache"]
        for _ in range(10):
            assert employees.ask(text) is True
        stats = employees.stats()["plan_cache"]
        assert stats["misses"] - base["misses"] == 1
        assert stats["verdict_hits"] - base["verdict_hits"] == 9
        assert stats["recompiles"] == base["recompiles"]

    def test_obs_counters_emitted(self, employees):
        from repro.obs.tracer import enable_tracing, disable_tracing

        tracer = enable_tracing(fresh=True)
        try:
            employees.ask("(EMP0, ∈, EMPLOYEE)")
            employees.ask("(EMP0, ∈, EMPLOYEE)")
            assert tracer.counters.get("plancache.misses", 0) >= 1
            assert tracer.counters.get("plancache.hits", 0) >= 1
        finally:
            disable_tracing()

    def test_unsafe_query_error_is_cached_and_identical(self, employees):
        text = "(x, ∈, EMPLOYEE) or (y, ∈, EMPLOYEE)"
        messages = []
        for _ in range(2):
            with pytest.raises(QueryError) as excinfo:
                employees.query(text)
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]
        reference = Database(query_engine="reference")
        with pytest.raises(QueryError) as excinfo:
            reference.query(text)
        assert str(excinfo.value) == messages[0]

    def test_ask_non_proposition_error_matches_reference(self, employees):
        with pytest.raises(QueryError) as compiled_err:
            employees.ask("(x, ∈, EMPLOYEE)")
        reference = Database(query_engine="reference")
        reference.add("EMP0", "∈", "EMPLOYEE")
        with pytest.raises(QueryError) as reference_err:
            reference.ask("(x, ∈, EMPLOYEE)")
        assert str(compiled_err.value) == str(reference_err.value)

    def test_lru_eviction_bounds_entries(self, employees):
        cache = PlanCache(maxsize=4)
        view = employees.view()
        for index in range(8):
            cache.entry(f"(EMP{index}, ∈, EMPLOYEE)", view, 0, 1)
        assert len(cache) == 4
        assert cache.stats()["entries"] == 4

    def test_clear_drops_entries_keeps_stats(self, employees):
        cache = PlanCache()
        cache.entry("(x, ∈, EMPLOYEE)", employees.view(), 0, 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["misses"] == 1

    def test_parsed_memo(self):
        cache = PlanCache()
        key1, query1 = cache.parsed("(x, ∈, BOOK)")
        key2, query2 = cache.parsed("(x,  ∈,  BOOK)")
        assert key1 == key2
        assert query1 is query2
        assert cache.hits == 1 and cache.misses == 1

    def test_maxsize_validation(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)

    def test_snapshot_shares_the_plan_cache(self, employees):
        employees.query("(x, ∈, EMPLOYEE)")
        snapshot = employees.snapshot()
        before = employees.stats()["plan_cache"]
        assert snapshot.query("(x, ∈, EMPLOYEE)") \
            == employees.query("(x, ∈, EMPLOYEE)")
        after = employees.stats()["plan_cache"]
        assert after["misses"] == before["misses"]
        assert after["hits"] > before["hits"]


# ----------------------------------------------------------------------
# Invalidation matrix
# ----------------------------------------------------------------------
class TestInvalidation:
    JOIN = "(x, ∈, EMPLOYEE) and (x, EARNS, s)"

    def test_store_version_bump_forces_recompile(self, employees):
        employees.query(self.JOIN)
        before = employees.stats()["plan_cache"]
        employees.add("EMP99", "∈", "EMPLOYEE")
        employees.add("EMP99", "EARNS", "$99000")
        result = employees.query(self.JOIN)
        assert ("EMP99", "$99000") in result
        after = employees.stats()["plan_cache"]
        assert after["recompiles"] == before["recompiles"] + 1
        # The refreshed plan is cached: a further repeat recompiles
        # nothing.
        employees.query(self.JOIN)
        assert employees.stats()["plan_cache"]["recompiles"] \
            == after["recompiles"]

    def test_empty_hint_does_not_survive_mutation(self):
        """The reason recompilation exists: a plan lowered when a
        template provably matched nothing must not short-circuit after
        facts arrive."""
        database = Database()
        database.add("EMP0", "∈", "EMPLOYEE")
        query = "(x, ∈, EMPLOYEE) and (x, EARNS, s)"
        assert database.query(query) == set()
        database.add("EMP0", "EARNS", "$1")
        assert database.query(query) == {("EMP0", "$1")}

    def test_rule_redefinition_compiles_a_fresh_entry(self, employees):
        employees.query(self.JOIN)
        before = employees.stats()["plan_cache"]
        employees.define_rule(
            "earns-sym", "(a, EARNS, b) => (b, EARNED-BY, a)")
        employees.query(self.JOIN)
        after = employees.stats()["plan_cache"]
        # New configuration epoch → new entry, not a hit on the old one.
        assert after["misses"] == before["misses"] + 1
        assert after["entries"] == before["entries"] + 1

    def test_composition_limit_change_is_a_new_epoch(self, employees):
        employees.query(self.JOIN)
        before = employees.stats()["plan_cache"]
        employees.limit(3)
        employees.query(self.JOIN)
        after = employees.stats()["plan_cache"]
        assert after["misses"] == before["misses"] + 1

    def test_fast_path_sees_rule_derived_facts(self):
        database = Database()
        database.add("A", "REL", "B")
        text = "(x, REL2, y)"
        assert database.query(text) == set()
        database.define_rule("lift", "(a, REL, b) => (a, REL2, b)")
        assert database.query(text) == {("A", "B")}
        database.exclude("lift")
        assert database.query(text) == set()

    def test_compaction_rebinds_the_fast_probe(self, employees):
        text = "(EMP0, ∈, EMPLOYEE)"
        assert employees.ask(text)
        cache = employees._plan_cache
        entry = next(iter(cache._entries.values()))
        assert entry.fast is not None
        bound_store = entry.fast._bound[0]
        employees.compact_store()
        # Compaction preserves store versions, so the result cache
        # and verdict memo would serve the repeat; clear both to drive
        # the probe itself.
        employees._result_cache.clear()
        cache._verdicts.clear()
        assert employees.ask(text)      # same answer through the rebind
        assert entry.fast._bound[0] is not bound_store
        assert getattr(entry.fast._bound[0], "interned", False)

    def test_compaction_rebind_is_counted(self, employees):
        from repro.obs.tracer import enable_tracing, disable_tracing

        employees.ask("(EMP1, ∈, EMPLOYEE)")
        employees.compact_store()
        employees._result_cache.clear()   # drive the probe, not the
        employees._plan_cache._verdicts.clear()  # versioned caches
        tracer = enable_tracing(fresh=True)
        try:
            employees.ask("(EMP1, ∈, EMPLOYEE)")
            assert tracer.counters.get("plancache.rebinds", 0) >= 1
        finally:
            disable_tracing()

    def test_interned_overlay_and_tombstones_through_fast_path(
            self, employees):
        employees.compact_store()
        assert employees.ask("(EMP0, ∈, EMPLOYEE)")
        employees.remove_fact(Fact("EMP0", "∈", "EMPLOYEE"))
        assert not employees.ask("(EMP0, ∈, EMPLOYEE)")
        employees.add("EMPX", "∈", "EMPLOYEE")
        assert employees.ask("(EMPX, ∈, EMPLOYEE)")
        names = employees.query("(x, ∈, EMPLOYEE)")
        assert ("EMPX",) in names and ("EMP0",) not in names


# ----------------------------------------------------------------------
# Fast path ↔ compiled plan ↔ reference equivalence
# ----------------------------------------------------------------------
def _single_atom_queries(rng, entities, relationships, count=14):
    """Texts biased toward fast-path shapes: ground, half-ground, and
    repeated-variable single atoms (plus the odd unsafe spelling)."""
    queries = []
    variables = ("x", "y")
    for _ in range(count):
        roll = rng.random()
        source = (rng.choice(entities) if rng.random() < 0.5
                  else rng.choice(variables))
        relationship = (rng.choice(relationships) if roll < 0.8
                        else rng.choice(variables))
        if rng.random() < 0.2:
            target = source        # repeated variable or ground match
        else:
            target = (rng.choice(entities) if rng.random() < 0.5
                      else rng.choice(variables))
        queries.append(f"({source}, {relationship}, {target})")
    return queries


def _outcome(callable_, *args):
    try:
        return ("value", callable_(*args))
    except QueryError as error:
        return ("QueryError", str(error))


@pytest.mark.parametrize("seed", range(12))
def test_fast_path_equivalence(seed):
    """12-seed randomized run: answers and QueryError messages are
    identical with the fast path on, off, and against the reference
    engine — over hash and interned stores."""
    rng = random.Random(f"fastpath-{seed}")
    database = books.load()
    view = database.view()
    entities = sorted({c for fact in view.store
                       for c in (fact.source, fact.target)})
    relationships = sorted({fact.relationship for fact in view.store})
    queries = _single_atom_queries(rng, entities, relationships)

    interned = books.load().compact_store()
    views = [view, interned.view()]
    reference = Evaluator(view)
    assert _plancache.FAST_PATH
    try:
        for text in queries:
            expected = _outcome(reference.evaluate, text)
            for probe_view in views:
                fast = CompiledEvaluator(probe_view, plans=PlanCache())
                _plancache.FAST_PATH = True
                with_fast = _outcome(fast.evaluate, text)
                slow = CompiledEvaluator(probe_view, plans=PlanCache())
                _plancache.FAST_PATH = False
                without_fast = _outcome(slow.evaluate, text)
                assert with_fast == expected, (seed, text)
                assert without_fast == expected, (seed, text)
                if expected[0] == "value":
                    _plancache.FAST_PATH = True
                    assert fast.succeeds(text) \
                        == reference.succeeds(text), (seed, text)
    finally:
        _plancache.FAST_PATH = True


def test_fast_path_off_still_caches_plans(employees, fast_path_off):
    employees.query("(x, ∈, EMPLOYEE)")
    before = employees.stats()["plan_cache"]
    employees.query("(x, ∈, EMPLOYEE)")
    after = employees.stats()["plan_cache"]
    assert after["hits"] == before["hits"] + 1


def test_fast_path_slowlog_autopsy(employees):
    """The service's slow-query log sees fast-path executions as a
    one-operator ``fast-probe`` plan."""
    from repro.query import exec as _qexec
    from repro.obs.slowlog import plan_summary

    original = _qexec.KEEP_LAST_RUN
    _qexec.KEEP_LAST_RUN = True
    try:
        _qexec.clear_last_run()
        employees.query("(EMP0, r, t)")
        summary = plan_summary(_qexec.last_run())
        assert summary is not None
        assert summary["operators"][0]["op"] == "fast-probe"
    finally:
        _qexec.KEEP_LAST_RUN = original


def test_virtual_relations_through_fast_path(employees):
    """Single-atom queries over virtual relationships (≠, comparators)
    merge computed facts exactly like the batch probe."""
    assert employees.ask("(EMP0, ≠, EMP1)")
    assert not employees.ask("(EMP0, ≠, EMP0)")
    reference = Evaluator(employees.view())
    text = "(EMP0, ≠, EMP1)"
    assert employees.succeeds(text) == reference.succeeds(text)


# ----------------------------------------------------------------------
# Verdict memo (ask / succeeds short-circuit)
# ----------------------------------------------------------------------
class TestVerdictMemo:
    def test_repeated_truth_queries_hit_the_memo(self, employees):
        assert employees.ask("(EMP0, ∈, EMPLOYEE)") is True
        hits_before = employees._plan_cache.verdict_hits
        assert employees.ask("(EMP0, ∈, EMPLOYEE)") is True
        assert employees._plan_cache.verdict_hits > hits_before
        assert employees.succeeds("(x, ∈, EMPLOYEE)") is True
        hits_before = employees._plan_cache.verdict_hits
        assert employees.succeeds("(x, ∈, EMPLOYEE)") is True
        assert employees._plan_cache.verdict_hits > hits_before

    def test_mutation_moves_the_token(self, employees):
        assert employees.ask("(GHOST, ∈, EMPLOYEE)") is False
        employees.add("GHOST", "∈", "EMPLOYEE")
        assert employees.ask("(GHOST, ∈, EMPLOYEE)") is True

    def test_memo_disabled_with_fast_path_off(self, employees,
                                              fast_path_off):
        employees.ask("(EMP0, ∈, EMPLOYEE)")
        hits_before = employees._plan_cache.verdict_hits
        employees.ask("(EMP0, ∈, EMPLOYEE)")
        assert employees._plan_cache.verdict_hits == hits_before

    def test_memo_disabled_while_observing(self, employees):
        from repro.obs.tracer import Tracer, use_tracer

        employees.ask("(EMP0, ∈, EMPLOYEE)")
        hits_before = employees._plan_cache.verdict_hits
        with use_tracer(Tracer()):
            employees.ask("(EMP0, ∈, EMPLOYEE)")
        assert employees._plan_cache.verdict_hits == hits_before

    def test_errors_are_never_memoized(self, employees):
        for _ in range(2):
            with pytest.raises(QueryError):
                employees.ask("(x, ∈, EMPLOYEE)")  # not a proposition

    def test_stats_expose_verdict_counters(self, employees):
        employees.ask("(EMP0, ∈, EMPLOYEE)")
        employees.ask("(EMP0, ∈, EMPLOYEE)")
        stats = employees.stats()["plan_cache"]
        assert stats["verdict_hits"] >= 1
        assert stats["verdict_misses"] >= 1
        assert stats["verdicts"] >= 1

    def test_reference_engine_memoizes_too(self):
        db = Database(query_engine="reference")
        for index in range(4):
            db.add(f"EMP{index}", "∈", "EMPLOYEE")
        assert db.succeeds("(x, ∈, EMPLOYEE)") is True
        hits_before = db._plan_cache.verdict_hits
        assert db.succeeds("(x, ∈, EMPLOYEE)") is True
        assert db._plan_cache.verdict_hits > hits_before
