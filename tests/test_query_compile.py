"""Unit tests for the set-at-a-time query executor.

Covers plan lowering (:mod:`repro.query.compile`), the binding-table
operators (:mod:`repro.query.exec`), quantifier deferral in the
planner, the succeeds-cache, deadline cancellation on the direct (non
TCP) path, adaptive re-ordering, and compiled EXPLAIN / EXPLAIN
ANALYZE.  The randomized cross-engine suite lives in
``test_query_engine_equivalence.py``; these tests pin the individual
mechanisms with hand-built stores.
"""

from __future__ import annotations

import pytest

from repro.core.cache import LRUCache
from repro.core.deadline import deadline_scope
from repro.core.errors import DeadlineExceeded, QueryError
from repro.core.facts import Variable
from repro.db import Database
from repro.obs import Tracer, use_tracer
from repro.query import (
    CompiledEvaluator,
    Evaluator,
    compile_query,
    explain,
    order_conjuncts,
    parse_query,
)
from repro.query.ast import And, Or, Query, atom, exists, forall
from repro.query.exec import BindingTable, execute_plan, unit_table
from repro.query.explain import explain_analyze

X, Y, Z, W = (Variable(name) for name in "xyzw")


@pytest.fixture()
def db():
    """A small world with classes, links, and a self-citation."""
    database = Database()
    for source, relationship, target in [
        ("JOHN", "OF-CLASS", "EMPLOYEE"),
        ("MARY", "OF-CLASS", "EMPLOYEE"),
        ("SUE", "OF-CLASS", "MANAGER"),
        ("JOHN", "WORKS-FOR", "SALES"),
        ("MARY", "WORKS-FOR", "SALES"),
        ("SUE", "WORKS-FOR", "HQ"),
        ("JOHN", "LIKES", "MARY"),
        ("SUE", "LIKES", "SUE"),
    ]:
        database.add(source, relationship, target)
    return database


class TestPlanShapes:
    def test_conjunction_lowers_to_pipeline_of_atom_joins(self, db):
        plan = compile_query("(x, OF-CLASS, EMPLOYEE) and (x, WORKS-FOR, d)",
                             db.view())
        rendered = plan.describe()
        assert rendered.startswith("compiled plan:")
        assert "pipeline (∧, 2 parts)" in rendered
        assert rendered.count("atom-join") == 2

    def test_quantifiers_lower_to_probe_operators(self, db):
        view = db.view()
        assert "semi-join (∃d)" in compile_query(
            "exists d: (x, WORKS-FOR, d)", view).describe()
        plan = compile_query(Query.of(And((
            atom(X, "OF-CLASS", "EMPLOYEE"),
            forall(W, Or((atom(W, "≠", "MARY"), atom(X, "LIKES", W)))),
        ))), view)
        rendered = plan.describe()
        assert "forall-probe (∀w)" in rendered
        assert "union (∨, 2 branches)" in rendered

    def test_estimates_are_rendered_per_operator(self, db):
        plan = compile_query("(x, OF-CLASS, EMPLOYEE) and (x, WORKS-FOR, d)",
                             db.view())
        for node, _depth in plan.walk():
            assert node.est >= 0.0
        assert "[est " in plan.describe()

    def test_lowering_never_raises_on_unsafe_queries(self, db):
        # Safety is the evaluator's check; compiling must stay total.
        query = Query(formula=atom("JOHN", "LIKES", "MARY"),
                      variables=(X,))
        compile_query(query, db.view())


class TestExecutorSemantics:
    """Every answer set must equal the reference engine's, including
    the corner cases the batch operators could plausibly get wrong."""

    def agree(self, database, text):
        query = parse_query(text) if isinstance(text, str) else text
        compiled = CompiledEvaluator(database.view()).evaluate(query)
        reference = Evaluator(database.view()).evaluate(query)
        assert compiled == reference
        return compiled

    def test_multi_conjunct_join(self, db):
        value = self.agree(
            db, "(x, OF-CLASS, EMPLOYEE) and (x, WORKS-FOR, d) and (x, LIKES, y)")
        assert value == {("JOHN", "SALES", "MARY")}

    def test_union_deduplicates_across_branches(self, db):
        value = self.agree(db, "(x, OF-CLASS, EMPLOYEE) or (x, WORKS-FOR, SALES)")
        assert value == {("JOHN",), ("MARY",)}

    def test_repeated_variable_self_loop(self, db):
        assert self.agree(db, "(x, LIKES, x)") == {("SUE",)}

    def test_virtual_inequality_filter(self, db):
        value = self.agree(db, "(x, OF-CLASS, EMPLOYEE) and (x, ≠, JOHN)")
        assert value == {("MARY",)}

    def test_exists_shadows_outer_binding(self, db):
        # y is bound by the first conjunct and *re-quantified* inside
        # the ∃: the inner y must not leak, and the outer binding must
        # survive into the output.
        query = Query.of(And((
            atom(X, "LIKES", Y),
            exists(Y, atom(Y, "OF-CLASS", "MANAGER")),
        )), variables=(X, Y))
        value = self.agree(db, query)
        assert value == {("JOHN", "MARY"), ("SUE", "SUE")}

    def test_forall_anti_probe(self, db):
        # x likes every entity equal to MARY: the ∀ body must hold for
        # the *whole* active domain (w ≠ MARY covers everything else).
        query = Query.of(And((
            atom(X, "OF-CLASS", "EMPLOYEE"),
            forall(W, Or((atom(W, "≠", "MARY"), atom(X, "LIKES", W)))),
        )))
        assert self.agree(db, query) == {("JOHN",)}

    def test_propositions(self, db):
        evaluator = CompiledEvaluator(db.view())
        assert evaluator.evaluate(
            parse_query("(JOHN, OF-CLASS, EMPLOYEE)")) == {()}
        assert evaluator.evaluate(
            parse_query("(JOHN, OF-CLASS, MANAGER)")) == set()
        assert evaluator.ask(parse_query("(JOHN, OF-CLASS, EMPLOYEE)")) is True
        assert evaluator.ask(parse_query("(JOHN, OF-CLASS, MANAGER)")) is False

    def test_ask_rejects_open_queries(self, db):
        with pytest.raises(QueryError, match="not a proposition"):
            CompiledEvaluator(db.view()).ask(parse_query("(x, ∈, y)"))

    def test_empty_pipeline_stops_before_later_conjuncts(self, db):
        # The first conjunct yields nothing, so the ∀ is never reached:
        # no rows, no error — exactly like the reference engine.
        query = Query.of(And((
            atom(X, "OF-CLASS", "GHOST-CLASS"),
            forall(W, atom(X, "LIKES", W)),
        )))
        assert self.agree(db, query) == set()

    def test_unsafe_queries_raise_identically(self, db):
        # A disjunction whose branches bind different variables leaves
        # both unlimited: the safety check must reject it with the same
        # message under either engine.
        query = parse_query("(x, OF-CLASS, EMPLOYEE) or (y, WORKS-FOR, SALES)")
        with pytest.raises(QueryError) as compiled_error:
            CompiledEvaluator(db.view()).evaluate(query)
        with pytest.raises(QueryError) as reference_error:
            Evaluator(db.view()).evaluate(query)
        assert "unsafe query" in str(compiled_error.value)
        assert str(compiled_error.value) == str(reference_error.value)

    def test_database_defaults_to_compiled_engine(self, db):
        assert db.query_engine == "compiled"
        assert isinstance(db.evaluator(), CompiledEvaluator)
        assert db.stats()["query_engine"] == "compiled"
        reference = Database(query_engine="reference")
        assert not isinstance(reference.evaluator(), CompiledEvaluator)
        with pytest.raises(ValueError):
            Database(query_engine="vectorized")

    def test_snapshot_inherits_engine(self, db):
        reference = Database(query_engine="reference")
        reference.add("A", "∈", "B")
        assert reference.snapshot().query_engine == "reference"
        assert db.snapshot().query_engine == "compiled"


class TestPlannerDeferral:
    """Satellite regression: quantified conjuncts whose free variables
    are not yet bound must wait for their generators."""

    def test_generator_ordered_before_deferred_forall(self, db):
        quantified = forall(
            W, Or((atom(W, "≠", "MARY"), atom(X, "LIKES", W))))
        generator = atom(X, "OF-CLASS", "EMPLOYEE")
        ordered = order_conjuncts(
            [quantified, generator], set(), db.view())
        assert ordered == [generator, quantified]

    def test_deferred_exists_ranks_before_deferred_forall(self, db):
        # Both quantifiers depend on y, which the generator never
        # binds, so they stay deferred throughout — the ∃ (which can
        # still generate) must sort before the ∀ (which cannot).
        view = db.view()
        deferred_exists = exists(Z, atom(Y, "LIKES", Z))
        deferred_forall = forall(W, atom(Y, "LIKES", W))
        generator = atom(X, "OF-CLASS", "EMPLOYEE")
        ordered = order_conjuncts(
            [deferred_forall, deferred_exists, generator], set(), view)
        assert ordered == [generator, deferred_exists, deferred_forall]

    def test_deferral_end_to_end_on_both_engines(self, db):
        # Before the fix, every conjunct cost OPAQUE_COST and the tie
        # break evaluated the ∀ first — raising the runtime range
        # restriction error on a perfectly safe query.
        query = Query.of(And((
            forall(W, Or((atom(W, "≠", "MARY"), atom(X, "LIKES", W)))),
            atom(X, "OF-CLASS", "EMPLOYEE"),
        )))
        assert CompiledEvaluator(db.view()).evaluate(query) == {("JOHN",)}
        assert Evaluator(db.view()).evaluate(query) == {("JOHN",)}


class TestSucceedsCache:
    """Satellite: ``succeeds`` memoizes under its own cache kind, on
    both engines."""

    @pytest.mark.parametrize("engine_class",
                             [Evaluator, CompiledEvaluator])
    def test_succeeds_is_cached(self, db, engine_class):
        cache = LRUCache(maxsize=32)
        evaluator = engine_class(db.view(), cache=cache,
                                 cache_token=("tok",))
        query = parse_query("(x, WORKS-FOR, SALES)")
        assert evaluator.succeeds(query) is True
        key = ("succeeds", str(query), ("tok",))
        assert cache.get(key, None) is True
        # The second call must be served from the cache: poison the
        # view so any re-evaluation would blow up.
        evaluator.view = None
        assert evaluator.succeeds(query) is True

    def test_succeeds_kind_is_distinct_from_query_and_ask(self, db):
        cache = LRUCache(maxsize=32)
        evaluator = CompiledEvaluator(db.view(), cache=cache,
                                      cache_token=("tok",))
        query = parse_query("(JOHN, OF-CLASS, EMPLOYEE)")
        evaluator.evaluate(query)
        evaluator.ask(query)
        evaluator.succeeds(query)
        kinds = {key[0] for key in cache._data}
        assert kinds == {"query", "ask", "succeeds"}

    def test_database_succeeds(self, db):
        assert db.succeeds("(x, WORKS-FOR, SALES)") is True
        assert db.succeeds("(x, WORKS-FOR, NOWHERE)") is False


class TestDeadlines:
    """Satellite: deadline cancellation through the direct API (the TCP
    path is covered in ``test_serve_net.py``)."""

    def test_zero_budget_cancels_at_operator_entry(self, db):
        evaluator = CompiledEvaluator(db.view())
        with deadline_scope(0.0):
            with pytest.raises(DeadlineExceeded):
                evaluator.evaluate(
                    parse_query("(x, OF-CLASS, EMPLOYEE) and (x, WORKS-FOR, d)"))

    def test_mid_plan_cancellation_on_a_large_join(self):
        database = Database()
        database.add_facts([(f"E{i}", "MEMBER-OF", f"CLS{i % 3}")
                            for i in range(2000)])
        evaluator = CompiledEvaluator(database.view())
        query = parse_query("(x, MEMBER-OF, c) and (y, MEMBER-OF, c)")
        with deadline_scope(1e-5):
            with pytest.raises(DeadlineExceeded):
                evaluator.evaluate(query)
        # Outside the scope the same plan runs to completion.
        assert len(evaluator.evaluate(query)) > 1_000_000

    def test_forall_chunks_check_the_deadline(self, db):
        query = Query.of(And((
            atom(X, "OF-CLASS", "EMPLOYEE"),
            forall(W, Or((atom(W, "≠", "MARY"), atom(X, "LIKES", W)))),
        )))
        evaluator = CompiledEvaluator(db.view())
        with deadline_scope(0.0):
            with pytest.raises(DeadlineExceeded):
                evaluator.evaluate(query)


class TestAdaptiveReplan:
    """When a conjunct's actual fanout diverges >10× from its estimate,
    the pipeline re-ranks the remaining children."""

    @staticmethod
    def _divergent_database():
        # c2 = (x, R, y) is estimated at count(R)/10 ≈ 50 rows per
        # binding, but every member has exactly ONE R edge (the other
        # 480 R facts hang off filler sources), so the actual fanout is
        # 1 — an under-estimate divergence of ~50×.
        database = Database()
        facts = []
        for i in range(20):
            facts.append((f"M{i}", "A0", "T"))
            facts.append((f"M{i}", "R", f"N{i}"))
            facts.append((f"N{i}", "S", f"P{i}"))
            facts.append((f"M{i}", "B", f"P{i}"))
        facts += [(f"FR{j}", "R", f"GR{j}") for j in range(480)]
        facts += [(f"FS{j}", "S", f"GS{j}") for j in range(580)]
        facts += [(f"FB{j}", "B", f"GB{j}") for j in range(680)]
        database.add_facts(facts)
        return database

    def test_replan_fires_and_answers_stay_correct(self):
        database = self._divergent_database()
        query = parse_query(
            "(x, A0, T) and (x, R, y) and (y, S, z) and (x, B, z)")
        evaluator = CompiledEvaluator(database.view())
        with use_tracer(Tracer()) as tracer:
            value, run = evaluator.evaluate_with_stats(query)
        assert run.replans >= 1
        assert tracer.counters["exec.replans"] == run.replans
        assert "adaptive re-orders" in run.describe()
        expected = {(f"M{i}", f"N{i}", f"P{i}") for i in range(20)}
        assert value == expected
        assert Evaluator(database.view()).evaluate(query) == expected

    def test_well_estimated_pipeline_does_not_replan(self, db):
        evaluator = CompiledEvaluator(db.view())
        _value, run = evaluator.evaluate_with_stats(
            parse_query("(x, OF-CLASS, EMPLOYEE) and (x, WORKS-FOR, d)"))
        assert run.replans == 0
        assert "adaptive re-orders" not in run.describe()


class TestExplainCompiled:
    def test_explain_includes_plan_tree(self, db):
        rendered = explain(db.view(),
                           "(x, OF-CLASS, EMPLOYEE) and (x, WORKS-FOR, d)",
                           engine="compiled").render()
        assert "compiled plan:" in rendered
        assert "atom-join" in rendered

    def test_reference_explain_has_no_plan_tree(self, db):
        rendered = explain(db.view(),
                           "(x, OF-CLASS, EMPLOYEE) and (x, WORKS-FOR, d)",
                           engine="reference").render()
        assert "compiled plan:" not in rendered

    def test_explain_analyze_reports_per_operator_actuals(self, db):
        analyzed = explain_analyze(
            db.view(), "(x, OF-CLASS, EMPLOYEE) and (x, WORKS-FOR, d)",
            engine="compiled")
        assert analyzed.executed is True
        assert analyzed.value == {("JOHN", "SALES"), ("MARY", "SALES")}
        labels = [step.formula for step in analyzed.steps]
        assert any("pipeline" in label for label in labels)
        assert any("atom-join" in label for label in labels)
        pipeline = next(step for step in analyzed.steps
                        if "pipeline" in step.formula)
        assert pipeline.actual_rows == 2

    def test_database_explain_uses_configured_engine(self, db):
        assert "compiled plan:" in db.explain(
            "(x, OF-CLASS, EMPLOYEE) and (x, WORKS-FOR, d)").render()
        reference = Database(query_engine="reference")
        reference.add("JOHN", "OF-CLASS", "EMPLOYEE")
        assert "compiled plan:" not in reference.explain(
            "(x, OF-CLASS, EMPLOYEE)").render()


class TestBindingTable:
    def test_unit_table_is_the_join_identity(self):
        table = unit_table()
        assert table.columns == ()
        assert table.rows == [()]
        assert len(table) == 1

    def test_projection_and_repr(self):
        table = BindingTable((X, Y), [("A", "B"), ("C", "D")])
        assert table.project_positions([Y, X]) == [1, 0]
        assert "x, y" in repr(table)
        assert "2 rows" in repr(table)

    def test_execute_plan_returns_stats_in_preorder(self, db):
        plan = compile_query("(x, OF-CLASS, EMPLOYEE) and (x, WORKS-FOR, d)",
                             db.view())
        table, run = execute_plan(plan, db.view())
        assert len(table) == 2
        assert [stats.op for stats in run.operators] == [
            "pipeline", "atom-join", "atom-join"]
        assert run.operators[0].depth == 0
        assert all(stats.depth == 1 for stats in run.operators[1:])
        payload = run.operators[1].as_dict()
        assert set(payload) == {"label", "op", "depth", "est", "calls",
                                "in_rows", "out_rows"}
