"""Sanity tests for the datasets: the paper worlds stay consistent and
the synthetic generators honor their contracts."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entities import ISA, MEMBER
from repro.core.facts import Fact
from repro.datasets import books, music, paper, university
from repro.datasets.synthetic import (
    EmployeeWorkload,
    chain_facts,
    deep_retraction_workload,
    employee_workload,
    hierarchy_facts,
    layered_dag_facts,
    membership_facts,
    random_heap,
)
from repro.db import Database


class TestPaperDatasets:
    @pytest.mark.parametrize("dataset", [books, music, paper, university])
    def test_loadable_and_consistent(self, dataset):
        db = dataset.load()
        assert len(db.facts) > 0
        assert db.check_integrity() == []

    @pytest.mark.parametrize("dataset", [books, music, paper, university])
    def test_facts_are_deterministic(self, dataset):
        assert dataset.facts() == dataset.facts()

    def test_load_into_existing_database(self):
        db = Database()
        same = music.load(db)
        assert same is db
        assert Fact("JOHN", "LIKES", "FELIX") in db.facts

    def test_datasets_compose_into_one_heap(self):
        """§1: unified access to multiple databases."""
        db = Database()
        for dataset in (books, music, paper, university):
            dataset.load(db)
        assert db.check_integrity() == []
        # Entities from different datasets are reachable in one query.
        assert db.ask("(JOHN, LIKES, FELIX)")          # music
        assert db.ask("(ISBN-914894, CITES, ISBN-914894)")  # books
        assert db.ask("(TOM, WORKS-FOR, ACCOUNTING)")  # paper


class TestHierarchyFacts:
    def test_counts(self):
        facts, leaves = hierarchy_facts(3, 2)
        assert len(facts) == 2 + 4 + 8
        assert len(leaves) == 8

    def test_every_fact_is_isa(self):
        facts, _ = hierarchy_facts(2, 3)
        assert all(f.relationship == ISA for f in facts)

    def test_depth_zero(self):
        facts, leaves = hierarchy_facts(0, 2)
        assert facts == []
        assert leaves == ["C0"]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            hierarchy_facts(-1, 2)
        with pytest.raises(ValueError):
            hierarchy_facts(2, 0)

    @settings(max_examples=20)
    @given(depth=st.integers(0, 4), fanout=st.integers(1, 3))
    def test_leaf_count_property(self, depth, fanout):
        facts, leaves = hierarchy_facts(depth, fanout)
        assert len(leaves) == fanout ** depth
        assert len(facts) == sum(
            fanout ** level for level in range(1, depth + 1))


class TestOtherGenerators:
    def test_membership_facts(self):
        facts = membership_facts(["A", "B"], 3)
        assert len(facts) == 6
        assert all(f.relationship == MEMBER for f in facts)
        assert len({f.source for f in facts}) == 6  # fresh instances

    def test_random_heap_deterministic(self):
        assert random_heap(50, 20, 5, seed=3) == random_heap(
            50, 20, 5, seed=3)
        assert random_heap(50, 20, 5, seed=3) != random_heap(
            50, 20, 5, seed=4)

    def test_random_heap_size(self):
        facts = random_heap(75, 30, 6, seed=0)
        assert len(facts) == 75
        assert len(set(facts)) == 75

    def test_chain_facts(self):
        facts = chain_facts(5)
        assert len(facts) == 5
        assert facts[0] == Fact("N0", "NEXT", "N1")
        assert facts[-1] == Fact("N4", "NEXT", "N5")

    def test_layered_dag_is_acyclic_by_construction(self):
        facts = layered_dag_facts(4, 5, 2, seed=1)
        for fact in facts:
            source_layer = int(fact.source.split("_")[0][1:])
            target_layer = int(fact.target.split("_")[0][1:])
            assert target_layer == source_layer + 1

    def test_employee_workload_shapes(self):
        workload = employee_workload(40, 4, seed=2)
        assert isinstance(workload, EmployeeWorkload)
        assert len(workload.employees) == 40
        assert len(workload.rows) == 40
        assert all(dept.startswith("DEPT") for _, dept, _ in workload.rows)
        # Facts: 1 ≺ + 4 department memberships + 3 per employee.
        assert len(workload.facts) == 1 + 4 + 3 * 40

    def test_deep_retraction_workload_contract(self):
        facts, query = deep_retraction_workload(3)
        db = Database()
        db.add_facts(facts)
        result = db.probe(query)
        assert not result.succeeded
        assert len(result.waves) == 3
        assert result.waves[-1].successes

    def test_deep_retraction_validates(self):
        with pytest.raises(ValueError):
            deep_retraction_workload(0)
