"""The serving telemetry surface: the ``metrics`` and ``slowlog``
verbs, pool-wide snapshot merging, the slow-query log's plan capture,
the monitor dashboard, the remote shell commands, and — critically —
neutrality: telemetry off must not change any answer."""

from __future__ import annotations

import pytest

from repro.db import Database
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.monitor import dashboard_rows, render_dashboard
from repro.obs.slowlog import SlowQueryLog, build_record
from repro.serve import DatabaseService, ReplicaPool
from repro.serve.net import RemoteShell, ServiceClient, ServiceServer


def _build_database() -> Database:
    db = Database()
    for index in range(4):
        db.add(f"P{index}", "WORKS-IN", f"D{index % 2}")
        db.add(f"D{index % 2}", "PART-OF", "ORG")
    return db


# ----------------------------------------------------------------------
# Slow-query log
# ----------------------------------------------------------------------
class TestSlowQueryLog:
    def test_ring_buffer_bounds_retention(self):
        log = SlowQueryLog(size=3)
        for index in range(5):
            log.add(build_record("query", 0.2, 0.1, text=f"q{index}"))
        assert log.total == 5
        assert len(log) == 3
        texts = [record["text"] for record in log.records()]
        assert texts == ["q2", "q3", "q4"]
        assert log.snapshot(limit=1)["records"][0]["text"] == "q4"

    def test_service_captures_slow_reads_with_plans(self):
        service = DatabaseService(_build_database(),
                                  slow_query_seconds=0.0)
        try:
            service.query("(x, WORKS-IN, y)")
        finally:
            service.close()
        records = service.slow_log.records()
        assert records
        record = records[-1]
        assert record["op"] == "query"
        assert record["source"] == "primary"
        assert record["seconds"] >= 0.0
        # Satellite: the compiled plan's est-vs-actual rows ride along.
        assert record["plan"] is not None
        assert record["plan"]["replans"] >= 0
        operators = record["plan"]["operators"]
        assert operators
        assert all("est" in stats and "out_rows" in stats
                   for stats in operators)

    def test_threshold_filters(self):
        service = DatabaseService(_build_database(),
                                  slow_query_seconds=60.0)
        try:
            service.query("(x, WORKS-IN, y)")
        finally:
            service.close()
        assert service.slow_log.total == 0

    def test_replica_slow_records_reach_primary(self):
        service = DatabaseService(_build_database(),
                                  slow_query_seconds=0.0)
        pool = ReplicaPool(service, workers=1)
        try:
            pool.query("(x, WORKS-IN, y)")
            sources = {record["source"]
                       for record in service.slow_log.records()}
        finally:
            pool.close()
            service.close()
        assert "replica" in sources


# ----------------------------------------------------------------------
# Metrics through the pool and the wire
# ----------------------------------------------------------------------
@pytest.fixture()
def metered_server():
    """Metrics-enabled TCP server over a 2-worker pool."""
    registry = obs_metrics.enable_metrics(fresh=True)
    service = DatabaseService(_build_database(),
                              slow_query_seconds=0.0)
    pool = ReplicaPool(service, workers=2)
    server = ServiceServer(service, port=0, pool=pool)
    server.start()
    try:
        yield server.address, pool, registry
    finally:
        server.close()
        pool.close()
        service.close()
        obs_metrics.disable_metrics()


class TestMetricsSurface:
    def test_metrics_verb_merges_worker_snapshots(self, metered_server):
        (host, port), pool, _registry = metered_server
        with ServiceClient(host, port) as client:
            for _ in range(3):
                client.query("(x, WORKS-IN, y)")
            snapshot = client.metrics(refresh=True)
        counters = snapshot["counters"]
        assert counters["serve.requests"] >= 3
        assert counters["serve.requests.query"] >= 3
        # Replica-side series prove worker snapshots were merged in.
        assert counters.get("replica.reads", 0) >= 3
        # The versioned result cache dedupes repeats, so plan
        # executions trail requests — but at least one ran (a
        # single-atom query may route to the point-read fast path
        # instead of full plan execution).
        assert (counters.get("exec.plans", 0)
                + counters.get("exec.fast_path", 0)) >= 1
        latency = snapshot["histograms"]["serve.request_seconds.query"]
        assert latency["count"] >= 3

    def test_prometheus_over_the_wire(self, metered_server):
        (host, port), _pool, _registry = metered_server
        with ServiceClient(host, port) as client:
            client.query("(x, WORKS-IN, y)")
            text = client.metrics(format="prometheus", refresh=True)
        series = obs_metrics.parse_prometheus(text)
        assert series.get("repro_serve_requests_total", 0) >= 1

    def test_slowlog_verb(self, metered_server):
        (host, port), _pool, _registry = metered_server
        with ServiceClient(host, port) as client:
            client.query("(x, WORKS-IN, y)")
            log = client.slowlog(limit=5)
        assert log["total"] >= 1
        assert log["records"][-1]["op"] == "query"

    def test_pool_worker_metrics_and_stats(self, metered_server):
        (_host, _port), pool, _registry = metered_server
        pool.query("(x, PART-OF, y)")
        assert pool.refresh_metrics(timeout=10.0)
        workers = pool.worker_metrics()
        assert len(workers) == 2
        assert all(worker["metrics"] is not None for worker in workers)
        stats = pool.stats()
        assert stats["worker_metrics_received"] >= 2
        assert stats["heartbeat_interval"] > 0


class TestRemoteShellTelemetry:
    def test_metrics_slowlog_and_trace_commands(self, metered_server):
        (host, port), _pool, _registry = metered_server
        with ServiceClient(host, port) as client:
            shell = RemoteShell(client)
            shell.execute("query (x, WORKS-IN, y)")
            metrics_text = shell.execute("metrics")
            assert "serve.requests" in metrics_text
            prometheus_text = shell.execute("metrics prometheus")
            assert "repro_serve_requests_total" in prometheus_text
            slowlog_text = shell.execute("slowlog 5")
            assert "slow queries:" in slowlog_text
            assert shell.execute("trace bogus").startswith("usage:")
            assert "no traced call yet" in shell.execute("trace last")
            assert "on" in shell.execute("trace on")
            shell.execute("query (x, WORKS-IN, y)")
            assert client.last_trace
            rendered = shell.execute("trace last")
            assert "client.request" in rendered
            assert "net.dispatch" in rendered
            assert "off" in shell.execute("trace off")


# ----------------------------------------------------------------------
# Monitor dashboard
# ----------------------------------------------------------------------
class TestMonitorDashboard:
    def _snapshot(self, requests: int) -> dict:
        registry = MetricsRegistry()
        registry.count("serve.requests.query", requests)
        registry.count("cache.hits", requests * 3)
        registry.count("cache.misses", requests)
        registry.gauge("serve.queue_depth", 2.0)
        registry.gauge("serve.publish_pause_seconds", 0.004)
        registry.observe("serve.publish_pause", 0.004)
        registry.observe("serve.pool.lag_seconds", 0.001)
        for _ in range(requests):
            registry.observe("serve.request_seconds.query", 0.002)
        return registry.snapshot()

    def test_rows_compute_rates_from_deltas(self):
        rows = dashboard_rows(self._snapshot(30), self._snapshot(10),
                              interval=2.0)
        (row,) = rows
        assert row["class"] == "query"
        assert row["rate"] == pytest.approx(10.0)  # (30-10)/2s
        assert row["total"] == 30
        assert row["p99"] is not None

    def test_render_covers_the_headline_panels(self):
        text = render_dashboard(self._snapshot(20), self._snapshot(10),
                                interval=1.0, title="test dash")
        assert "test dash" in text
        assert "query" in text
        assert "cache: 75.0% hit rate" in text
        assert "replica lag" in text
        assert "publish pause" in text
        assert "write queue depth: 2" in text

    def test_first_frame_without_previous(self):
        text = render_dashboard(self._snapshot(5))
        assert "throughput" in text

    def test_live_snapshot_renders(self, metered_server):
        (host, port), _pool, _registry = metered_server
        with ServiceClient(host, port) as client:
            client.query("(x, WORKS-IN, y)")
            snapshot = client.metrics(refresh=True)
        text = render_dashboard(snapshot)
        assert "query" in text


# ----------------------------------------------------------------------
# Neutrality: telemetry off changes nothing
# ----------------------------------------------------------------------
class TestTelemetryNeutrality:
    def _answers(self, client: ServiceClient) -> dict:
        return {
            "query": sorted(map(tuple, client.query("(x, WORKS-IN, y)"))),
            "ask": client.ask("(P0, WORKS-IN, D0)"),
            "try": sorted(map(tuple, client.try_("P1"))),
            "probe": sorted(map(tuple,
                                client.probe("(x, PART-OF, ORG)")["value"])),
        }

    def _run_stack(self, telemetry: bool) -> dict:
        assert not obs_metrics.metrics_enabled()
        if telemetry:
            context = use_metrics(MetricsRegistry())
        else:
            context = None
        try:
            if context is not None:
                context.__enter__()
            service = DatabaseService(_build_database())
            pool = ReplicaPool(service, workers=2)
            server = ServiceServer(service, port=0, pool=pool)
            server.start()
            host, port = server.address
            try:
                with ServiceClient(host, port, trace=telemetry) as client:
                    return self._answers(client)
            finally:
                server.close()
                pool.close()
                service.close()
        finally:
            if context is not None:
                context.__exit__(None, None, None)

    def test_answers_identical_with_and_without_telemetry(self):
        assert self._run_stack(False) == self._run_stack(True)

    def test_disabled_collects_nothing_and_ships_no_trace(self):
        service = DatabaseService(_build_database())
        pool = ReplicaPool(service, workers=1)
        server = ServiceServer(service, port=0, pool=pool)
        server.start()
        host, port = server.address
        try:
            with ServiceClient(host, port) as client:
                client.query("(x, WORKS-IN, y)")
                response = client._roundtrip({"op": "ask",
                                              "query": "(P0, WORKS-IN, D0)"})
        finally:
            server.close()
            pool.close()
            service.close()
        # No trace context requested → no trace shipped back.
        assert "trace" not in response
        # Nothing leaked into the (disabled) global registry.
        assert not obs_metrics.metrics_enabled()

    def test_pool_heartbeat_disabled_without_metrics(self):
        service = DatabaseService(_build_database())
        pool = ReplicaPool(service, workers=1)
        try:
            assert pool.stats()["heartbeat_interval"] == 0
        finally:
            pool.close()
            service.close()
