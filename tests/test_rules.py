"""Unit tests for rule construction, conditions, and the classifier."""

from __future__ import annotations

import pytest

from repro.core.entities import (
    CLASS_RELATIONSHIP,
    INDIVIDUAL_RELATIONSHIP,
    ISA,
    MEMBER,
)
from repro.core.errors import RuleError, UnknownRuleError
from repro.core.facts import Fact, Template, var
from repro.core.store import FactStore
from repro.rules.builtin import STANDARD_RULES, STANDARD_RULES_BY_NAME
from repro.rules.registry import RuleRegistry
from repro.rules.rule import (
    Distinct,
    IndividualRelationship,
    NotSpecial,
    RelationshipClassifier,
    Rule,
    RuleContext,
)

X, Y, R = var("x"), var("y"), var("r")


class TestRuleValidation:
    def test_valid_rule(self):
        rule = Rule(name="t", body=(Template(X, "R", Y),),
                    head=(Template(Y, "R", X),))
        assert rule.name == "t"

    def test_empty_body_rejected(self):
        with pytest.raises(RuleError):
            Rule(name="t", body=(), head=(Template(X, "R", X),))

    def test_empty_head_rejected(self):
        with pytest.raises(RuleError):
            Rule(name="t", body=(Template(X, "R", X),), head=())

    def test_unsafe_head_rejected(self):
        with pytest.raises(RuleError, match="unsafe"):
            Rule(name="t", body=(Template(X, "R", X),),
                 head=(Template(X, "R", Y),))

    def test_unnamed_rejected(self):
        with pytest.raises(RuleError):
            Rule(name="", body=(Template(X, "R", X),),
                 head=(Template(X, "R", X),))

    def test_body_variables(self):
        rule = Rule(name="t", body=(Template(X, R, Y),),
                    head=(Template(X, R, Y),))
        assert rule.body_variables() == frozenset({X, R, Y})

    def test_rename_apart(self):
        rule = Rule(name="t", body=(Template(X, "R", Y),),
                    head=(Template(Y, "R", X),),
                    conditions=(Distinct(X, Y),))
        renamed = rule.rename_apart("_1")
        assert renamed.body[0].source == var("x_1")
        assert renamed.head[0].source == var("y_1")
        assert renamed.conditions[0].left == var("x_1")

    def test_str_mentions_guards(self):
        rule = Rule(name="t", body=(Template(X, "R", Y),),
                    head=(Template(Y, "R", X),),
                    conditions=(Distinct(X, Y),))
        assert "≠" in str(rule)


class TestClassifier:
    def _context(self, facts):
        return RuleContext(classifier=RelationshipClassifier(FactStore(facts)))

    def test_default_is_individual(self):
        classifier = RelationshipClassifier(FactStore())
        assert classifier.is_individual("EARNS")
        assert not classifier.is_class("EARNS")

    def test_declared_class(self):
        store = FactStore([Fact("TOTAL-NUMBER", MEMBER, CLASS_RELATIONSHIP)])
        classifier = RelationshipClassifier(store)
        assert classifier.is_class("TOTAL-NUMBER")

    def test_declared_individual_wins_over_class(self):
        store = FactStore([
            Fact("R", MEMBER, CLASS_RELATIONSHIP),
            Fact("R", MEMBER, INDIVIDUAL_RELATIONSHIP),
        ])
        assert RelationshipClassifier(store).is_individual("R")

    def test_member_is_class(self):
        assert RelationshipClassifier(FactStore()).is_class(MEMBER)

    def test_isa_is_individual(self):
        assert RelationshipClassifier(FactStore()).is_individual(ISA)

    def test_composed_is_class(self):
        classifier = RelationshipClassifier(FactStore())
        assert classifier.is_class("A.B.C")


class TestConditions:
    def _context(self):
        return RuleContext(classifier=RelationshipClassifier(FactStore()))

    def test_distinct(self):
        condition = Distinct(X, Y)
        assert condition.holds({X: "A", Y: "B"}, self._context())
        assert not condition.holds({X: "A", Y: "A"}, self._context())

    def test_distinct_with_constant(self):
        condition = Distinct(X, "A")
        assert not condition.holds({X: "A"}, self._context())
        assert condition.holds({X: "B"}, self._context())

    def test_distinct_variables(self):
        assert Distinct(X, "A").variables() == frozenset({X})

    def test_individual_relationship(self):
        store = FactStore([Fact("C", MEMBER, CLASS_RELATIONSHIP)])
        context = RuleContext(classifier=RelationshipClassifier(store))
        condition = IndividualRelationship(R)
        assert condition.holds({R: "EARNS"}, context)
        assert not condition.holds({R: "C"}, context)

    def test_not_special(self):
        condition = NotSpecial(R)
        assert condition.holds({R: "LIKES"}, self._context())
        assert not condition.holds({R: ISA}, self._context())
        assert not condition.holds({R: "<"}, self._context())


class TestStandardRules:
    def test_all_names_unique(self):
        names = [rule.name for rule in STANDARD_RULES]
        assert len(names) == len(set(names))

    def test_lookup_by_name(self):
        assert STANDARD_RULES_BY_NAME["gen-transitive"].name == "gen-transitive"

    def test_every_rule_has_description(self):
        for rule in STANDARD_RULES:
            assert rule.description, rule.name

    def test_every_rule_is_safe(self):
        # Construction would have raised otherwise; assert the invariant
        # explicitly for documentation value.
        for rule in STANDARD_RULES:
            body_vars = rule.body_variables()
            for head in rule.head:
                assert head.variable_set() <= body_vars


class TestRegistry:
    def test_standard_rules_enabled_by_default(self):
        registry = RuleRegistry()
        assert len(registry) == len(STANDARD_RULES)

    def test_exclude_then_include(self):
        registry = RuleRegistry()
        registry.exclude("gen-transitive")
        assert not registry.is_enabled("gen-transitive")
        assert len(registry) == len(STANDARD_RULES) - 1
        registry.include("gen-transitive")
        assert registry.is_enabled("gen-transitive")

    def test_iteration_yields_enabled_only(self):
        registry = RuleRegistry()
        registry.exclude("inversion")
        assert "inversion" not in [rule.name for rule in registry]

    def test_unknown_rule_raises(self):
        registry = RuleRegistry()
        with pytest.raises(UnknownRuleError):
            registry.exclude("no-such-rule")

    def test_include_registers_new_rule(self):
        registry = RuleRegistry()
        custom = Rule(name="custom", body=(Template(X, "R", Y),),
                      head=(Template(Y, "R", X),))
        registry.include(custom)
        assert "custom" in registry
        assert registry.is_enabled("custom")

    def test_remove(self):
        registry = RuleRegistry()
        registry.remove("inversion")
        assert "inversion" not in registry

    def test_snapshot_restore_roundtrip(self):
        registry = RuleRegistry()
        registry.exclude("gen-source")
        state = registry.snapshot_state()
        fresh = RuleRegistry()
        fresh.restore_state(state)
        assert not fresh.is_enabled("gen-source")
        assert fresh.is_enabled("gen-target")

    def test_restore_ignores_unknown_names(self):
        registry = RuleRegistry()
        registry.restore_state({"ghost-rule": False})
        assert "ghost-rule" not in registry
