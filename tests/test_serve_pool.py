"""ReplicaPool tests: replica reads, read-your-writes routing,
primary fallback, crash/respawn failover, and directory bootstrap."""

from __future__ import annotations

import time

import pytest

from repro.core.errors import ParseError, ServiceClosed
from repro.db import Database
from repro.serve import DatabaseService, ReplicaPool


def _database() -> Database:
    db = Database()
    db.add("JOHN", "∈", "EMPLOYEE")
    db.add("EMPLOYEE", "EARNS", "SALARY")
    return db


@pytest.fixture()
def pooled():
    service = DatabaseService(_database())
    pool = ReplicaPool(service, workers=2, read_timeout=60.0)
    try:
        yield service, pool
    finally:
        pool.close()
        service.close()


class TestReplicaReads:
    def test_query_served_by_replica(self, pooled):
        _, pool = pooled
        assert ("JOHN",) in pool.query("(x, ∈, EMPLOYEE)")
        assert pool.stats()["fallback_reads"] == 0

    def test_all_read_operations(self, pooled):
        _, pool = pooled
        assert pool.ask("(JOHN, EARNS, SALARY)") is True
        assert any(f[0] == "JOHN" for f in pool.match("(JOHN, *, *)"))
        assert "EMPLOYEE" in pool.navigate("(JOHN, *, *)")
        assert any(tuple(f) == ("JOHN", "∈", "EMPLOYEE")
                   for f in pool.try_("JOHN"))
        outcome = pool.probe("(JOHN, EARNS, y)")
        assert outcome["succeeded"] is True
        assert ("SALARY",) in outcome["value"]
        assert pool.database_stats()["base_facts"] > 0

    def test_reads_spread_across_workers(self, pooled):
        _, pool = pooled
        for _ in range(6):
            pool.ask("(JOHN, ∈, EMPLOYEE)")
        stats = pool.stats()
        assert stats["reads"] >= 6
        assert stats["fallback_reads"] == 0

    def test_typed_errors_cross_the_pipe(self, pooled):
        _, pool = pooled
        with pytest.raises(ParseError):
            pool.query("(x, BOGUS")


class TestReadYourWrites:
    def test_settled_ticket_routes_to_fresh_replica(self, pooled):
        service, pool = pooled
        ticket = service.add_async(("MARY", "∈", "EMPLOYEE"))
        ticket.result(timeout=30.0)
        assert ticket.version is not None
        # Must observe the write, replica or fallback.
        assert pool.ask("(MARY, EARNS, SALARY)", ticket=ticket)

    def test_unsettled_ticket_waits_for_the_write(self, pooled):
        service, pool = pooled
        ticket = service.add_async(("PETE", "∈", "EMPLOYEE"))
        # No explicit result() call: the pool settles it.
        assert pool.ask("(PETE, ∈, EMPLOYEE)", ticket=ticket)

    def test_stale_min_version_falls_back_to_primary(self, pooled):
        service, pool = pooled
        ticket = service.add_async(("ZOE", "∈", "EMPLOYEE"))
        ticket.result(timeout=30.0)
        # A floor far beyond any replica forces the primary path,
        # which is always current.
        before = pool.stats()["fallback_reads"]
        assert pool.ask("(ZOE, ∈, EMPLOYEE)",
                        min_version=ticket.version + 1000)
        assert pool.stats()["fallback_reads"] == before + 1

    def test_replicas_converge_to_primary_version(self, pooled):
        service, pool = pooled
        ticket = service.add_async(("ANA", "∈", "EMPLOYEE"))
        ticket.result(timeout=30.0)
        pool.wait_for_version(ticket.version, all_workers=True,
                              timeout=30.0)
        stats = pool.stats()
        assert stats["max_lag"] == 0
        assert all(v == stats["primary_version"]
                   for v in stats["applied_versions"])


class TestFailover:
    def test_crash_respawn_and_reads_survive(self, pooled):
        service, pool = pooled
        ticket = service.add_async(("EVE", "∈", "EMPLOYEE"))
        ticket.result(timeout=30.0)
        pool.wait_for_version(ticket.version, all_workers=True,
                              timeout=30.0)
        pool.crash_worker(0)
        deadline_at = time.monotonic() + 60.0
        while time.monotonic() < deadline_at:
            # Reads never fail during the outage window.
            assert pool.ask("(EVE, ∈, EMPLOYEE)", ticket=ticket)
            stats = pool.stats()
            if (stats["alive"] == stats["workers"]
                    and stats["respawns"] >= 1
                    and stats["max_lag"] == 0):
                break
            time.sleep(0.05)
        stats = pool.stats()
        assert stats["worker_deaths"] == 1
        assert stats["respawns"] == 1
        assert stats["alive"] == stats["workers"]
        # The respawned worker bootstrapped past the crash point and
        # serves current data.
        assert pool.ask("(EVE, ∈, EMPLOYEE)", ticket=ticket)

    def test_no_respawn_when_disabled(self):
        service = DatabaseService(_database())
        pool = ReplicaPool(service, workers=1, respawn=False)
        try:
            pool.crash_worker(0)
            deadline_at = time.monotonic() + 30.0
            while time.monotonic() < deadline_at:
                if pool.stats()["alive"] == 0:
                    break
                time.sleep(0.02)
            assert pool.stats()["alive"] == 0
            # Every read falls back to the primary; answers still flow.
            assert pool.ask("(JOHN, ∈, EMPLOYEE)")
            assert pool.stats()["fallback_reads"] >= 1
        finally:
            pool.close()
            service.close()


class TestLifecycle:
    def test_close_is_idempotent_and_rejects_reads(self, pooled):
        service, pool = pooled
        pool.close()
        pool.close()
        with pytest.raises(ServiceClosed):
            pool.query("(x, ∈, EMPLOYEE)")

    def test_context_manager(self):
        service = DatabaseService(_database())
        with ReplicaPool(service, workers=1) as pool:
            assert pool.ask("(JOHN, ∈, EMPLOYEE)")
        assert pool.closed
        service.close()

    def test_stats_shape(self, pooled):
        _, pool = pooled
        stats = pool.stats()
        for key in ("workers", "alive", "primary_version",
                    "applied_versions", "max_lag", "reads",
                    "fallback_reads", "deltas_shipped", "respawns"):
            assert key in stats
        assert stats["workers"] == 2

    def test_lag_stats_after_writes(self, pooled):
        service, pool = pooled
        ticket = service.add_async(("LAG", "∈", "EMPLOYEE"))
        ticket.result(timeout=30.0)
        pool.wait_for_version(ticket.version, all_workers=True,
                              timeout=30.0)
        lag = pool.lag_stats()
        assert lag["samples"] >= 1
        assert lag["p50_s"] >= 0.0
        assert lag["max_s"] >= lag["p50_s"]

    def test_invalid_worker_count(self):
        service = DatabaseService(_database())
        try:
            with pytest.raises(ValueError):
                ReplicaPool(service, workers=0)
        finally:
            service.close()


class TestDirectoryBootstrap:
    def test_worker_bootstraps_from_durable_directory(self, tmp_path):
        from repro.storage.session import open_database

        directory = tmp_path / "state"
        db, session = open_database(directory)
        db.add("DISK", "∈", "EMPLOYEE")   # journaled via the session
        service = DatabaseService(db, session=session)
        pool = ReplicaPool(service, workers=1,
                           bootstrap_directory=str(directory))
        try:
            assert pool.ask("(DISK, ∈, EMPLOYEE)")
            # Deltas still flow after a disk bootstrap.
            ticket = service.add_async(("LATER", "∈", "EMPLOYEE"))
            ticket.result(timeout=30.0)
            pool.wait_for_version(ticket.version, all_workers=True,
                                  timeout=30.0)
            before = pool.stats()["fallback_reads"]
            assert pool.ask("(LATER, ∈, EMPLOYEE)", ticket=ticket)
            # The replica itself served it — no primary fallback.
            assert pool.stats()["fallback_reads"] == before
        finally:
            pool.close()
            service.close()
            session.close()
