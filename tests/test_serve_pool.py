"""ReplicaPool tests: replica reads, read-your-writes routing,
primary fallback, crash/respawn failover, and directory bootstrap."""

from __future__ import annotations

import time

import pytest

from repro.core.errors import ParseError, ServiceClosed
from repro.db import Database
from repro.serve import DatabaseService, ReplicaPool


def _database() -> Database:
    db = Database()
    db.add("JOHN", "∈", "EMPLOYEE")
    db.add("EMPLOYEE", "EARNS", "SALARY")
    return db


@pytest.fixture()
def pooled():
    service = DatabaseService(_database())
    pool = ReplicaPool(service, workers=2, read_timeout=60.0)
    try:
        yield service, pool
    finally:
        pool.close()
        service.close()


class TestReplicaReads:
    def test_query_served_by_replica(self, pooled):
        _, pool = pooled
        assert ("JOHN",) in pool.query("(x, ∈, EMPLOYEE)")
        assert pool.stats()["fallback_reads"] == 0

    def test_all_read_operations(self, pooled):
        _, pool = pooled
        assert pool.ask("(JOHN, EARNS, SALARY)") is True
        assert any(f[0] == "JOHN" for f in pool.match("(JOHN, *, *)"))
        assert "EMPLOYEE" in pool.navigate("(JOHN, *, *)")
        assert any(tuple(f) == ("JOHN", "∈", "EMPLOYEE")
                   for f in pool.try_("JOHN"))
        outcome = pool.probe("(JOHN, EARNS, y)")
        assert outcome["succeeded"] is True
        assert ("SALARY",) in outcome["value"]
        assert pool.database_stats()["base_facts"] > 0

    def test_reads_spread_across_workers(self, pooled):
        _, pool = pooled
        for _ in range(6):
            pool.ask("(JOHN, ∈, EMPLOYEE)")
        stats = pool.stats()
        assert stats["reads"] >= 6
        assert stats["fallback_reads"] == 0

    def test_typed_errors_cross_the_pipe(self, pooled):
        _, pool = pooled
        with pytest.raises(ParseError):
            pool.query("(x, BOGUS")


class TestReadYourWrites:
    def test_settled_ticket_routes_to_fresh_replica(self, pooled):
        service, pool = pooled
        ticket = service.add_async(("MARY", "∈", "EMPLOYEE"))
        ticket.result(timeout=30.0)
        assert ticket.version is not None
        # Must observe the write, replica or fallback.
        assert pool.ask("(MARY, EARNS, SALARY)", ticket=ticket)

    def test_unsettled_ticket_waits_for_the_write(self, pooled):
        service, pool = pooled
        ticket = service.add_async(("PETE", "∈", "EMPLOYEE"))
        # No explicit result() call: the pool settles it.
        assert pool.ask("(PETE, ∈, EMPLOYEE)", ticket=ticket)

    def test_stale_min_version_falls_back_to_primary(self, pooled):
        service, pool = pooled
        ticket = service.add_async(("ZOE", "∈", "EMPLOYEE"))
        ticket.result(timeout=30.0)
        # A floor far beyond any replica forces the primary path,
        # which is always current.
        before = pool.stats()["fallback_reads"]
        assert pool.ask("(ZOE, ∈, EMPLOYEE)",
                        min_version=ticket.version + 1000)
        assert pool.stats()["fallback_reads"] == before + 1

    def test_replicas_converge_to_primary_version(self, pooled):
        service, pool = pooled
        ticket = service.add_async(("ANA", "∈", "EMPLOYEE"))
        ticket.result(timeout=30.0)
        pool.wait_for_version(ticket.version, all_workers=True,
                              timeout=30.0)
        stats = pool.stats()
        assert stats["max_lag"] == 0
        assert all(v == stats["primary_version"]
                   for v in stats["applied_versions"])


class TestFailover:
    def test_crash_respawn_and_reads_survive(self, pooled):
        service, pool = pooled
        ticket = service.add_async(("EVE", "∈", "EMPLOYEE"))
        ticket.result(timeout=30.0)
        pool.wait_for_version(ticket.version, all_workers=True,
                              timeout=30.0)
        pool.crash_worker(0)
        deadline_at = time.monotonic() + 60.0
        while time.monotonic() < deadline_at:
            # Reads never fail during the outage window.
            assert pool.ask("(EVE, ∈, EMPLOYEE)", ticket=ticket)
            stats = pool.stats()
            if (stats["alive"] == stats["workers"]
                    and stats["respawns"] >= 1
                    and stats["max_lag"] == 0):
                break
            time.sleep(0.05)
        stats = pool.stats()
        assert stats["worker_deaths"] == 1
        assert stats["respawns"] == 1
        assert stats["alive"] == stats["workers"]
        # The respawned worker bootstrapped past the crash point and
        # serves current data.
        assert pool.ask("(EVE, ∈, EMPLOYEE)", ticket=ticket)

    def test_no_respawn_when_disabled(self):
        service = DatabaseService(_database())
        pool = ReplicaPool(service, workers=1, respawn=False)
        try:
            pool.crash_worker(0)
            deadline_at = time.monotonic() + 30.0
            while time.monotonic() < deadline_at:
                if pool.stats()["alive"] == 0:
                    break
                time.sleep(0.02)
            assert pool.stats()["alive"] == 0
            # Every read falls back to the primary; answers still flow.
            assert pool.ask("(JOHN, ∈, EMPLOYEE)")
            assert pool.stats()["fallback_reads"] >= 1
        finally:
            pool.close()
            service.close()


class TestLifecycle:
    def test_close_is_idempotent_and_rejects_reads(self, pooled):
        service, pool = pooled
        pool.close()
        pool.close()
        with pytest.raises(ServiceClosed):
            pool.query("(x, ∈, EMPLOYEE)")

    def test_context_manager(self):
        service = DatabaseService(_database())
        with ReplicaPool(service, workers=1) as pool:
            assert pool.ask("(JOHN, ∈, EMPLOYEE)")
        assert pool.closed
        service.close()

    def test_stats_shape(self, pooled):
        _, pool = pooled
        stats = pool.stats()
        for key in ("workers", "alive", "primary_version",
                    "applied_versions", "max_lag", "reads",
                    "fallback_reads", "deltas_shipped", "respawns"):
            assert key in stats
        assert stats["workers"] == 2

    def test_lag_stats_after_writes(self, pooled):
        service, pool = pooled
        ticket = service.add_async(("LAG", "∈", "EMPLOYEE"))
        ticket.result(timeout=30.0)
        pool.wait_for_version(ticket.version, all_workers=True,
                              timeout=30.0)
        lag = pool.lag_stats()
        assert lag["samples"] >= 1
        assert lag["p50_s"] >= 0.0
        assert lag["max_s"] >= lag["p50_s"]

    def test_invalid_worker_count(self):
        service = DatabaseService(_database())
        try:
            with pytest.raises(ValueError):
                ReplicaPool(service, workers=0)
        finally:
            service.close()


class TestDirectoryBootstrap:
    def test_worker_bootstraps_from_durable_directory(self, tmp_path):
        from repro.storage.session import open_database

        directory = tmp_path / "state"
        db, session = open_database(directory)
        db.add("DISK", "∈", "EMPLOYEE")   # journaled via the session
        service = DatabaseService(db, session=session)
        pool = ReplicaPool(service, workers=1,
                           bootstrap_directory=str(directory))
        try:
            assert pool.ask("(DISK, ∈, EMPLOYEE)")
            # Deltas still flow after a disk bootstrap.
            ticket = service.add_async(("LATER", "∈", "EMPLOYEE"))
            ticket.result(timeout=30.0)
            pool.wait_for_version(ticket.version, all_workers=True,
                                  timeout=30.0)
            before = pool.stats()["fallback_reads"]
            assert pool.ask("(LATER, ∈, EMPLOYEE)", ticket=ticket)
            # The replica itself served it — no primary fallback.
            assert pool.stats()["fallback_reads"] == before
        finally:
            pool.close()
            service.close()
            session.close()


def _gen_segments():
    import os
    if not os.path.isdir("/dev/shm"):
        return None
    return sorted(p for p in os.listdir("/dev/shm")
                  if p.startswith("repro-gen-"))


class TestGenerationBootstrap:
    """Shared-memory generation attach: the default bootstrap mode."""

    def test_default_mode_and_stats(self, pooled):
        _, pool = pooled
        assert pool.bootstrap == "generation"
        stats = pool.stats()
        assert stats["bootstrap"] == "generation"
        assert stats["generation_seq"] is not None
        assert stats["generation_stale"] is False

    def test_attach_matches_copied_state(self):
        """Satellite: attach-vs-copy consistency across a 2-worker
        pool — generation-attached replicas answer exactly like
        replicas that copied the pickled heap."""
        service = DatabaseService(_database())
        shapes = ["(x, ∈, EMPLOYEE)", "(JOHN, r, y)", "(x, r, SALARY)",
                  "(x, ≺, y)"]
        try:
            with ReplicaPool(service, workers=2,
                             bootstrap="generation") as gen_pool, \
                 ReplicaPool(service, workers=2,
                             bootstrap="state") as copy_pool:
                for shape in shapes:
                    assert gen_pool.query(shape) == copy_pool.query(shape)
                assert (sorted(map(tuple, gen_pool.match("(JOHN, *, *)")))
                        == sorted(map(tuple,
                                      copy_pool.match("(JOHN, *, *)"))))
                assert (gen_pool.navigate("(JOHN, *, *)")
                        == copy_pool.navigate("(JOHN, *, *)"))
                assert gen_pool.stats()["fallback_reads"] == 0
        finally:
            service.close()

    def test_deltas_flow_after_attach(self, pooled):
        service, pool = pooled
        ticket = service.add_async(("GEN", "∈", "EMPLOYEE"))
        ticket.result(timeout=30.0)
        pool.wait_for_version(ticket.version, all_workers=True,
                              timeout=30.0)
        before = pool.stats()["fallback_reads"]
        assert pool.ask("(GEN, EARNS, SALARY)", ticket=ticket)
        assert pool.stats()["fallback_reads"] == before

    def test_respawn_replays_delta_suffix(self, pooled):
        """A worker spawned after writes attaches the original
        generation and replays the buffered suffix."""
        service, pool = pooled
        ticket = service.add_async(("SUFFIX", "∈", "EMPLOYEE"))
        ticket.result(timeout=30.0)
        pool.wait_for_version(ticket.version, all_workers=True,
                              timeout=30.0)
        assert pool.stats()["generation_log"] >= 1
        pool.crash_worker(0)
        deadline_at = time.monotonic() + 60.0
        while time.monotonic() < deadline_at:
            stats = pool.stats()
            if stats["alive"] == stats["workers"] and stats["respawns"]:
                break
            time.sleep(0.05)
        pool.wait_for_version(ticket.version, all_workers=True,
                              timeout=30.0)
        before = pool.stats()["fallback_reads"]
        assert pool.ask("(SUFFIX, EARNS, SALARY)", ticket=ticket)
        assert pool.stats()["fallback_reads"] == before

    def test_log_overflow_marks_stale_and_rebuilds(self, monkeypatch):
        import repro.serve.pool as pool_mod
        monkeypatch.setattr(pool_mod, "GENERATION_LOG_CAP", 2)
        service = DatabaseService(_database())
        pool = ReplicaPool(service, workers=1)
        try:
            ticket = None
            for i in range(4):
                # Settle each write so the batch window cannot coalesce
                # them into a single delta.
                ticket = service.add_async((f"BULK{i}", "∈", "EMPLOYEE"))
                ticket.result(timeout=30.0)
            assert pool.stats()["generation_stale"] is True
            # A respawn rebuilds the generation pair from the current
            # snapshot; the stale flag clears and reads stay exact.
            pool.crash_worker(0)
            deadline_at = time.monotonic() + 60.0
            while time.monotonic() < deadline_at:
                stats = pool.stats()
                if stats["alive"] == stats["workers"] and stats["respawns"]:
                    break
                time.sleep(0.05)
            assert pool.stats()["generation_stale"] is False
            assert pool.ask("(BULK3, ∈, EMPLOYEE)", ticket=ticket)
        finally:
            pool.close()
            service.close()

    def test_compact_generation_reattaches_live_workers(self, pooled):
        service, pool = pooled
        ticket = service.add_async(("COMPACT", "∈", "EMPLOYEE"))
        ticket.result(timeout=30.0)
        pool.wait_for_version(ticket.version, all_workers=True,
                              timeout=30.0)
        old_seq = pool.stats()["generation_seq"]
        new_seq = pool.compact_generation(timeout=60.0)
        assert new_seq >= old_seq
        stats = pool.stats()
        assert stats["generation_seq"] == new_seq
        assert stats["generation_log"] == 0
        # Old segments were unlinked once every worker re-attached.
        assert stats["retired_segments"] == 0
        assert stats["alive"] == stats["workers"]
        before = stats["fallback_reads"]
        assert pool.ask("(COMPACT, EARNS, SALARY)", ticket=ticket)
        assert pool.stats()["fallback_reads"] == before

    def test_auto_compaction_folds_log_without_failed_reads(self):
        service = DatabaseService(_database())
        pool = ReplicaPool(service, workers=2, read_timeout=60.0,
                           compact_after=3)
        try:
            ticket = None
            for i in range(5):
                # Settle each write so the batch window cannot coalesce
                # them into a single delta.
                ticket = service.add_async((f"AUTO{i}", "∈", "EMPLOYEE"))
                ticket.result(timeout=30.0)
            deadline_at = time.monotonic() + 60.0
            while time.monotonic() < deadline_at:
                stats = pool.stats()
                if stats["compactions"] >= 1 \
                        and stats["generation_log"] < 3:
                    break
                time.sleep(0.05)
            stats = pool.stats()
            assert stats["compact_after"] == 3
            assert stats["compactions"] >= 1
            # The fold reset the replay buffer below the threshold and
            # left every worker attached to the new generation.
            assert stats["generation_log"] < 3
            assert stats["generation_stale"] is False
            assert stats["alive"] == stats["workers"]
            # Deltas shipped while the fold was in flight finish
            # replaying (the re-attach must not strand them), then
            # reads across the fold stay exact and replica-served.
            pool.wait_for_version(ticket.version, all_workers=True,
                                  timeout=30.0)
            before = pool.stats()["fallback_reads"]
            for i in range(5):
                assert pool.ask(f"(AUTO{i}, ∈, EMPLOYEE)", ticket=ticket)
            assert pool.stats()["fallback_reads"] == before
        finally:
            pool.close()
            service.close()

    def test_compact_requires_generation_mode(self):
        service = DatabaseService(_database())
        try:
            with ReplicaPool(service, workers=1,
                             bootstrap="state") as pool:
                with pytest.raises(ValueError):
                    pool.compact_generation()
        finally:
            service.close()

    def test_close_unlinks_all_segments(self):
        segments_before = _gen_segments()
        if segments_before is None:
            pytest.skip("no /dev/shm on this platform")
        service = DatabaseService(_database())
        pool = ReplicaPool(service, workers=2)
        try:
            assert pool.ask("(JOHN, ∈, EMPLOYEE)")
            during = _gen_segments()
            assert len(during) > len(segments_before)
        finally:
            pool.shutdown()
            service.close()
        assert _gen_segments() == segments_before

    def test_spawn_start_method(self):
        import multiprocessing
        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("spawn start method unavailable")
        service = DatabaseService(_database())
        pool = ReplicaPool(service, workers=1, start_method="spawn",
                           ready_timeout=120.0)
        try:
            assert pool.bootstrap == "generation"
            assert pool.ask("(JOHN, ∈, EMPLOYEE)")
            assert pool.stats()["fallback_reads"] == 0
        finally:
            pool.close()
            service.close()

    def test_invalid_bootstrap_mode(self):
        service = DatabaseService(_database())
        try:
            with pytest.raises(ValueError):
                ReplicaPool(service, workers=1, bootstrap="bogus")
            with pytest.raises(ValueError):
                ReplicaPool(service, workers=1, bootstrap="directory")
        finally:
            service.close()
