"""Documentation health: examples execute, links resolve (PR 3 satellite).

Thin pytest wrapper over ``tools/docs_check.py`` so the docs gate runs
with the tier-1 suite as well as in its dedicated CI job.
"""

import sys
import unittest
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import docs_check  # noqa: E402


class TestDocumentation(unittest.TestCase):
    def test_relative_links_resolve(self):
        self.assertEqual(docs_check.check_links(), [])

    def test_fenced_python_examples_execute(self):
        failures = docs_check.check_examples()
        self.assertEqual(
            failures, [],
            "documentation examples failed:\n" + "\n".join(failures))

    def test_block_extraction_sees_the_readme(self):
        blocks = list(docs_check.iter_python_blocks(ROOT / "README.md"))
        self.assertGreaterEqual(len(blocks), 3)
        for lineno, source in blocks:
            self.assertGreater(lineno, 0)
            self.assertTrue(source.strip())


if __name__ == "__main__":
    unittest.main()
