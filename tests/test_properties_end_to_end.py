"""End-to-end property tests tying subsystems together: retraction
soundness on random hierarchies, journal fuzzing, navigation/grouping
invariants, and path/composition agreement."""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.browse.navigation import navigate
from repro.browse.paths import association_paths
from repro.browse.retraction import (
    ConjunctiveQuery,
    RetractedQuery,
    retraction_set,
)
from repro.core.entities import ISA, MEMBER
from repro.core.facts import Fact, Template, Variable, var
from repro.db import Database
from repro.storage.interchange import dumps, loads
from repro.storage.journal import OP_ADD, OP_REMOVE
from repro.storage.session import open_database

X = var("x")

_entities = st.sampled_from(["A", "B", "C", "D", "E"])
_relationships = st.sampled_from(["R", "S", "T"])
_isa_edges = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)).filter(
        lambda e: e[0] < e[1]),
    max_size=8)
_plain_facts = st.lists(
    st.builds(Fact, _entities, _relationships, _entities),
    min_size=1, max_size=10)


def _hierarchy_db(edges, facts) -> Database:
    db = Database(with_axioms=False)
    for a, b in edges:
        db.add(f"H{a}", ISA, f"H{b}")
    db.add_facts(facts)
    return db


@settings(max_examples=40, deadline=None)
@given(edges=_isa_edges, facts=_plain_facts,
       source=_entities, relationship=_relationships)
def test_retraction_soundness_on_random_worlds(edges, facts, source,
                                               relationship):
    """§5.1's broadness guarantee holds on arbitrary worlds: every
    query in the retraction set contains the original's answers."""
    db = _hierarchy_db(edges, facts)
    cq = ConjunctiveQuery(
        templates=(Template(source, relationship, X),), free=(X,))
    evaluator = db.evaluator()
    original = evaluator.evaluate(cq.to_query())
    for candidate in retraction_set(
            RetractedQuery(query=cq, path=()), db.hierarchy()):
        broader = evaluator.evaluate(candidate.query.to_query())
        assert original <= broader, candidate.query


@settings(max_examples=30, deadline=None)
@given(edges=_isa_edges, facts=_plain_facts)
def test_probe_terminates_and_classifies(edges, facts):
    """Probing any single-template query terminates in one of the
    documented outcomes."""
    db = _hierarchy_db(edges, facts)
    result = db.probe("(A, R, z)", max_waves=10)
    if result.succeeded:
        assert result.value
    else:
        assert result.waves or result.exhausted or True
        # every reported success must be non-empty
        for wave in result.waves:
            for success in wave.successes:
                assert success.value


@settings(max_examples=40, deadline=None)
@given(facts=_plain_facts)
def test_navigation_groups_partition_matches(facts):
    """Grouping never loses or invents facts."""
    db = Database(with_axioms=False)
    db.add_facts(facts)
    result = navigate(db.view(), "(*, *, *)")
    regrouped = sum(len(values) for values in result.groups.values())
    assert regrouped == len(result.facts)
    assert set(result.facts) == set(db.closure().store)


@settings(max_examples=30, deadline=None)
@given(facts=_plain_facts)
def test_interchange_round_trip_random(facts):
    assert set(loads(dumps(facts))) == set(facts)


@settings(max_examples=20, deadline=None)
@given(operations=st.lists(
    st.tuples(st.sampled_from([OP_ADD, OP_REMOVE]),
              st.builds(Fact, _entities, _relationships, _entities)),
    max_size=20))
def test_durable_session_replays_any_history(tmp_path_factory,
                                             operations):
    """Whatever interleaving of adds and removes happened, recovery
    reproduces the final stored state exactly."""
    directory = tmp_path_factory.mktemp("fuzz")
    db, session = open_database(directory)
    for op, fact in operations:
        if op == OP_ADD:
            db.add_fact(fact)
        else:
            db.remove_fact(fact)
    expected = set(db.facts)
    session.close()
    recovered, session2 = open_database(directory)
    assert set(recovered.facts) == expected
    session2.close()


@settings(max_examples=25, deadline=None)
@given(facts=_plain_facts,
       source=_entities, target=_entities,
       max_length=st.integers(1, 3))
def test_paths_agree_with_composition(facts, source, target, max_length):
    """Association-path names at length ≤ n equal the composed
    relationships materialized with limit(n), for paths between the
    chosen endpoints."""
    assume(source != target)
    db = Database(with_axioms=False)
    db.add_facts(facts)
    searched = {
        p.relationship()
        for p in association_paths(db.view(), source, target,
                                   max_length=max_length)
    }
    db.limit(max_length if max_length > 1 else 2)
    if max_length == 1:
        # length-1 paths are plain facts; composition adds length-2
        # names we must not expect from the search.
        composed = {
            f.relationship
            for f in db.match(f"({source}, *, {target})")
            if "." not in f.relationship
        }
    else:
        composed = {
            f.relationship
            for f in db.match(f"({source}, *, {target})")
        }
    # Composition under the paper's guard also builds non-simple
    # chains the (simple-path) search intentionally skips, so
    # searched ⊆ composed, and every searched name is found.
    assert searched <= composed
