"""Incremental closure maintenance: equivalence with recomputation.

The key property: after any sequence of insertions, the incrementally
maintained closure equals the closure recomputed from scratch — for
every interleaving of reads (which materialize the cache) and writes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entities import INV, ISA, MEMBER, SYN
from repro.core.facts import Fact
from repro.db import Database
from repro.rules.builtin import STANDARD_RULES
from repro.rules.engine import extend_closure, semi_naive_closure
from repro.rules.rule import RelationshipClassifier, RuleContext
from repro.core.store import FactStore


def _context(facts):
    return RuleContext(classifier=RelationshipClassifier(FactStore(facts)))


class TestExtendClosure:
    def test_extension_equals_recomputation(self):
        base = [Fact("A", ISA, "B"), Fact("B", ISA, "C")]
        extra = [Fact("C", ISA, "D"), Fact("X", MEMBER, "A")]
        context = _context(base + extra)

        incremental = semi_naive_closure(base, STANDARD_RULES, context)
        extend_closure(incremental, extra, STANDARD_RULES, context)

        recomputed = semi_naive_closure(base + extra, STANDARD_RULES,
                                        context)
        assert set(incremental.store) == set(recomputed.store)

    def test_extension_mutates_in_place(self):
        base = [Fact("A", ISA, "B")]
        context = _context(base)
        result = semi_naive_closure(base, STANDARD_RULES, context)
        store_before = result.store
        extend_closure(result, [Fact("B", ISA, "C")], STANDARD_RULES,
                       context)
        assert result.store is store_before
        assert Fact("A", ISA, "C") in result.store

    def test_duplicate_extension_is_noop(self):
        base = [Fact("A", ISA, "B")]
        context = _context(base)
        result = semi_naive_closure(base, STANDARD_RULES, context)
        size = len(result.store)
        iterations = result.iterations
        extend_closure(result, [Fact("A", ISA, "B")], STANDARD_RULES,
                       context)
        assert len(result.store) == size
        assert result.iterations == iterations

    def test_statistics_updated(self):
        base = [Fact("A", ISA, "B")]
        context = _context(base)
        result = semi_naive_closure(base, STANDARD_RULES, context)
        extend_closure(result, [Fact("B", ISA, "C")], STANDARD_RULES,
                       context)
        assert result.base_count == 2
        assert result.derived_count == len(result.store) - 2


class TestDatabaseIncremental:
    def test_queries_see_incremental_facts(self):
        db = Database()
        db.add("EMPLOYEE", "EARNS", "SALARY")
        assert db.query("(JOHN, EARNS, y)") == set()  # cache built
        db.add("JOHN", MEMBER, "EMPLOYEE")
        assert db.query("(JOHN, EARNS, y)") == {("SALARY",)}

    def test_navigation_sees_incremental_facts(self):
        db = Database()
        db.add("JOHN", "LIKES", "FELIX")
        assert not db.navigate("(JOHN, *, *)").is_empty()  # cache built
        db.add("FELIX", MEMBER, "CAT")
        assert "CAT" in db.navigate("(JOHN, *, *)").groups["LIKES"]

    def test_hierarchy_sees_incremental_facts(self):
        db = Database()
        db.add("A", ISA, "B")
        assert db.hierarchy().minimal_generalizations("A") == {"B"}
        db.add("B", ISA, "C")
        assert db.hierarchy().minimal_generalizations("B") == {"C"}

    def test_composition_refreshes_after_incremental_add(self):
        db = Database()
        db.limit(2)
        db.add("A", "R", "B")
        assert db.match("(A, *, C)") == []  # cache built
        db.add("B", "S", "C")
        assert db.ask("(A, R.B.S, C)")

    def test_incremental_matches_fresh_database(self):
        facts = [
            Fact("JOHN", MEMBER, "EMPLOYEE"),
            Fact("EMPLOYEE", ISA, "PERSON"),
            Fact("EMPLOYEE", "EARNS", "SALARY"),
            Fact("SALARY", ISA, "COMPENSATION"),
            Fact("JOHN", SYN, "JOHNNY"),
            Fact("TEACHES", INV, "TAUGHT-BY"),
            Fact("JOHN", "TEACHES", "CS100"),
        ]
        incremental = Database()
        for fact in facts:
            incremental.add_fact(fact)
            incremental.closure()  # force a cache between every write
        fresh = Database()
        fresh.add_facts(facts)
        assert set(incremental.closure().store) == set(
            fresh.closure().store)


# ----------------------------------------------------------------------
# Property: random interleavings of writes and cache-building reads.
# ----------------------------------------------------------------------
_entities = st.sampled_from(["A", "B", "C", "D"])
_relationships = st.sampled_from(["R", "S", ISA, MEMBER, SYN])
_random_facts = st.lists(
    st.builds(Fact, _entities, _relationships, _entities),
    min_size=1, max_size=12)
_read_points = st.sets(st.integers(0, 11))


@settings(max_examples=40, deadline=None)
@given(facts=_random_facts, read_points=_read_points)
def test_incremental_equals_recomputed(facts, read_points):
    incremental = Database(with_axioms=False)
    for index, fact in enumerate(facts):
        if index in read_points:
            incremental.closure()  # materialize cache mid-stream
        incremental.add_fact(fact)
    fresh = Database(with_axioms=False)
    fresh.add_facts(facts)
    assert set(incremental.closure().store) == set(fresh.closure().store)


@settings(max_examples=25, deadline=None)
@given(facts=_random_facts)
def test_incremental_with_composition_equals_recomputed(facts):
    incremental = Database(with_axioms=False)
    incremental.limit(2)
    incremental.closure()
    for fact in facts:
        incremental.add_fact(fact)
        incremental.closure()
    fresh = Database(with_axioms=False)
    fresh.limit(2)
    fresh.add_facts(facts)
    assert set(incremental.closure().store) == set(fresh.closure().store)
