"""Tests for the named-view catalog (§6.1 structured views)."""

from __future__ import annotations

import pytest

from repro.core.errors import QueryError
from repro.db import Database
from repro.datasets import paper


@pytest.fixture
def db():
    return paper.load()


class TestDefinition:
    def test_define_and_list(self, db):
        db.views.define_query("staff", "(x, in, EMPLOYEE)")
        db.views.define_function("salaries", "EARNS")
        assert db.views.names() == ["salaries", "staff"]
        assert "staff" in db.views

    def test_duplicate_rejected(self, db):
        db.views.define_query("v", "(x, in, EMPLOYEE)")
        with pytest.raises(QueryError, match="already defined"):
            db.views.define_function("v", "EARNS")

    def test_undefine(self, db):
        db.views.define_query("v", "(x, in, EMPLOYEE)")
        db.views.undefine("v")
        assert "v" not in db.views
        with pytest.raises(QueryError):
            db.views.undefine("v")

    def test_query_views_validated_eagerly(self, db):
        with pytest.raises(Exception):
            db.views.define_query("bad", "(x, y")
        assert "bad" not in db.views

    def test_unknown_view(self, db):
        with pytest.raises(QueryError, match="no view named"):
            db.views.materialize("ghost")

    def test_describe(self, db):
        db.views.define_relation("emp", "EMPLOYEE",
                                 ("EARNS", "SALARY"))
        assert db.views.definition("emp").describe() \
            == "relation(EMPLOYEE, EARNS SALARY)"


class TestMaterialization:
    def test_query_view(self, db):
        db.views.define_query("staff", "(x, in, EMPLOYEE)")
        assert db.views.materialize("staff") == {
            ("JOHN",), ("TOM",), ("MARY",)}

    def test_relation_view(self, db):
        db.views.define_relation("payroll", "EMPLOYEE",
                                 ("EARNS", "SALARY"))
        table = db.views.materialize("payroll")
        assert {row.instance for row in table.rows} == {
            "JOHN", "TOM", "MARY"}

    def test_function_view(self, db):
        db.views.define_function("salaries", "EARNS")
        assert "$27000" in db.views.materialize("salaries")("TOM")

    def test_views_track_updates(self, db):
        """A view is a definition, not a snapshot: new facts appear on
        the next materialization."""
        db.views.define_query("staff", "(x, in, EMPLOYEE)")
        before = db.views.materialize("staff")
        db.add("SUE", "∈", "EMPLOYEE")
        after = db.views.materialize("staff")
        assert after == before | {("SUE",)}


class TestRendering:
    def test_render_relation(self, db):
        db.views.define_relation("payroll", "EMPLOYEE",
                                 ("EARNS", "SALARY"))
        text = db.views.render("payroll")
        assert "JOHN" in text and "$26000" in text

    def test_render_function(self, db):
        db.views.define_function("salaries", "EARNS")
        text = db.views.render("salaries")
        assert text.startswith("EARNS:")
        assert "TOM ->" in text

    def test_render_query_rows(self, db):
        db.views.define_query("pay", "(x, EARNS, y) and (y, >, 0)")
        text = db.views.render("pay")
        assert "JOHN, $26000" in text

    def test_render_empty_query(self, db):
        db.views.define_query("none", "(x, FLIES-TO, y)")
        assert db.views.render("none") == "(empty)"

    def test_render_catalog(self, db):
        assert db.views.render_catalog() == "(no views defined)"
        db.views.define_function("salaries", "EARNS")
        assert "salaries: function(EARNS)" in db.views.render_catalog()
