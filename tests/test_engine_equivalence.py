"""Randomized engine-equivalence suite.

The three closure engines — naive, semi-naive, and dispatched
(compiled + relationship-indexed + stratified) — implement the same
§2.6 fixpoint with very different machinery.  This suite drives all
three over seeded random databases mixing every special relationship
family and asserts they agree on the closure, on firing totals, and on
provenance reachability.
"""

import random

import pytest

from repro.core.entities import CONTRA, INV, ISA, MEMBER, SYN
from repro.core.facts import Fact
from repro.core.store import FactStore
from repro.datasets.synthetic import (
    hierarchy_facts,
    membership_facts,
    random_heap,
)
from repro.rules.builtin import STANDARD_RULES
from repro.rules.dispatch import compile_ruleset, dispatched_closure
from repro.rules.engine import naive_closure, semi_naive_closure
from repro.rules.rule import RelationshipClassifier, RuleContext

SEEDS = range(24)

_COMPILED = compile_ruleset(STANDARD_RULES)


def _random_database(seed: int):
    """A small random database exercising every §3 rule family."""
    rng = random.Random(seed)
    depth = rng.randint(1, 3)
    fanout = rng.randint(1, 3)
    tree, leaves = hierarchy_facts(depth, fanout)
    facts = list(tree)
    facts += membership_facts(leaves[: rng.randint(1, len(leaves))],
                              rng.randint(1, 2))
    facts += random_heap(rng.randint(5, 25), rng.randint(4, 10),
                         rng.randint(2, 5), seed=seed)
    classes = [f"C{i}" for i in range(1 + sum(
        fanout ** level for level in range(1, depth + 1)))]
    entities = classes + [f"E{i}" for i in range(4)]
    # Sprinkle special relationships so the synonym/inversion/
    # contradiction families all fire.
    for _ in range(rng.randint(0, 3)):
        facts.append(Fact(rng.choice(entities), SYN,
                          rng.choice(entities)))
    for _ in range(rng.randint(0, 2)):
        facts.append(Fact(rng.choice(entities), INV,
                          rng.choice(entities)))
    for _ in range(rng.randint(0, 2)):
        facts.append(Fact(rng.choice(entities), CONTRA,
                          rng.choice(entities)))
    for _ in range(rng.randint(0, 2)):
        facts.append(Fact(f"E{rng.randint(0, 3)}", MEMBER,
                          rng.choice(classes)))
    # Deduplicate while keeping order deterministic per seed.
    return list(dict.fromkeys(facts))


def _context(facts):
    return RuleContext(classifier=RelationshipClassifier(FactStore(facts)))


def _reachable_from_base(fact, base, provenance, _memo=None):
    """True if the fact's justification chain grounds out in ``base``.

    Facts in flight are memoized as ungrounded, so a cyclic
    justification (which would be unsound) fails instead of recursing
    forever; proven facts memoize True so shared sub-derivations (and
    duplicated premises) are not re-walked.
    """
    if fact in base:
        return True
    if _memo is None:
        _memo = {}
    if fact in _memo:
        return _memo[fact]
    _memo[fact] = False
    justification = provenance.get(fact)
    grounded = justification is not None and all(
        _reachable_from_base(premise, base, provenance, _memo)
        for premise in set(justification.premises))
    _memo[fact] = grounded
    return grounded


@pytest.mark.parametrize("seed", SEEDS)
def test_engines_agree_on_random_databases(seed):
    facts = _random_database(seed)
    context = _context(facts)

    naive = naive_closure(facts, STANDARD_RULES, context)
    semi = semi_naive_closure(facts, STANDARD_RULES, context,
                              trace=True)
    fast = dispatched_closure(facts, STANDARD_RULES, context,
                              trace=True, compiled=_COMPILED)

    # Identical closures, fact for fact.
    assert set(semi.store) == set(naive.store)
    assert set(fast.store) == set(semi.store)
    assert fast.base_count == semi.base_count
    assert fast.derived_count == semi.derived_count

    # Identical firing attribution between the two delta engines (the
    # naive engine legitimately double-counts a fact rediscovered by
    # two rules in one round, so only its closure is compared).
    assert fast.rule_firings == semi.rule_firings
    assert fast.iterations == semi.iterations

    # Identical provenance coverage, and every justification chain
    # grounds out in the stored facts.
    assert set(fast.provenance) == set(semi.provenance)
    base = set(facts)
    rule_names = {rule.name for rule in STANDARD_RULES}
    for derived, justification in fast.provenance.items():
        assert justification.rule in rule_names
        assert all(premise in fast.store
                   for premise in justification.premises)
        assert _reachable_from_base(derived, base, fast.provenance), \
            f"seed {seed}: {derived} not grounded"


@pytest.mark.parametrize("seed", range(6))
def test_engines_agree_on_ablated_rule_sets(seed):
    """Random rule subsets exercise multi-stratum evaluation (the full
    standard set collapses into a single stratum)."""
    rng = random.Random(1000 + seed)
    rules = [r for r in STANDARD_RULES if rng.random() < 0.6]
    if not rules:
        rules = [STANDARD_RULES[0]]
    facts = _random_database(seed)
    context = _context(facts)
    semi = semi_naive_closure(facts, rules, context)
    fast = dispatched_closure(facts, rules, context)
    assert set(fast.store) == set(semi.store), \
        f"seed {seed}, rules {[r.name for r in rules]}"
    # Firing *totals* match even when stratification reorders rounds.
    assert sum(fast.rule_firings.values()) == \
        sum(semi.rule_firings.values())
