"""Error-path and edge-case tests across the library: the behaviors a
downstream user hits when they hold something wrong."""

from __future__ import annotations

import pytest

from repro.core.entities import ISA, MEMBER, TOP
from repro.core.errors import (
    EntityError,
    ParseError,
    QueryError,
    ReproError,
    RuleError,
    StorageError,
    TemplateError,
)
from repro.core.facts import Fact, Template, var
from repro.db import Database
from repro.query.parser import parse_query, parse_template


class TestErrorHierarchy:
    @pytest.mark.parametrize("error_type", [
        EntityError, ParseError, QueryError, RuleError, StorageError,
        TemplateError,
    ])
    def test_all_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)

    def test_parse_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            parse_template("(A, B)")
        assert info.value.position >= 0

    def test_provenance_error_is_repro_error(self):
        from repro.rules.provenance import ProvenanceError

        assert issubclass(ProvenanceError, ReproError)
        assert issubclass(ProvenanceError, LookupError)


class TestDatabaseEdgeCases:
    def test_query_on_empty_database(self):
        db = Database(with_axioms=False)
        assert db.query("(x, R, y)") == set()
        assert db.navigate("(A, *, *)").is_empty()

    def test_probe_on_empty_database(self):
        db = Database(with_axioms=False)
        result = db.probe("(A, R, B)")
        assert not result.succeeded
        assert result.exhausted
        assert set(result.unknown_entities) == {"A", "R", "B"}

    def test_entity_with_spaces_roundtrips(self):
        db = Database()
        db.add("NEW YORK", "∈", "CITY")
        assert db.query('(x, in, CITY)') == {("NEW YORK",)}
        assert db.query('("NEW YORK", in, c)') == {("CITY",)}

    def test_unicode_entities(self):
        db = Database()
        db.add("Müller", "WOHNT-IN", "Köln")
        assert db.ask('(Müller, WOHNT-IN, Köln)')

    def test_numeric_entity_as_source(self):
        db = Database()
        db.add("25000", "∈", "SALARY")
        assert db.ask("(25000, <, 30000)")
        assert db.ask("(25000, in, SALARY)")

    def test_self_referential_fact(self):
        db = Database()
        db.add("NARCISSUS", "LOVES", "NARCISSUS")
        assert db.query("(x, LOVES, x)") == {("NARCISSUS",)}

    def test_entity_equal_to_relationship_name(self):
        """Loose heaps allow the same entity in every position."""
        db = Database()
        db.add("LOVES", "∈", "EMOTION")
        db.add("JOHN", "LOVES", "MARY")
        assert db.ask("(LOVES, in, EMOTION)")
        assert db.ask("(JOHN, LOVES, MARY)")

    def test_large_entity_names(self):
        db = Database()
        big = "X" * 5000
        db.add(big, "R", "B")
        assert db.ask(f"({big}, R, B)")

    def test_relation_operator_on_empty_class(self, paper_db):
        table = paper_db.relation("GHOST-CLASS", ("EARNS", "SALARY"))
        assert len(table) == 0
        assert "GHOST-CLASS" in table.render()

    def test_navigate_unknown_entity(self, paper_db):
        assert paper_db.navigate("(MARTIAN, *, *)").is_empty()

    def test_try_on_relationship_entity(self, paper_db):
        facts = paper_db.try_("EARNS")
        assert any(f.relationship == "EARNS" for f in facts)


class TestQueryEdgeCases:
    def test_conjunction_of_identical_atoms(self, paper_db):
        value = paper_db.query("(JOHN, EARNS, y) and (JOHN, EARNS, y)")
        assert value == paper_db.query("(JOHN, EARNS, y)")

    def test_deeply_nested_parentheses(self, paper_db):
        value = paper_db.query("(((((JOHN, EARNS, y)))))")
        assert ("$26000",) in value

    def test_exists_over_unused_variable(self, paper_db):
        # ∃q over a body not mentioning q: q ranges over the domain,
        # so the query succeeds iff the body does.
        assert paper_db.query(
            "exists q: (JOHN, EARNS, y)") == paper_db.query(
            "(JOHN, EARNS, y)")

    def test_comparator_between_non_numbers_matches_nothing(self,
                                                            paper_db):
        assert paper_db.query("(JOHN, <, y)") == set()

    def test_top_entity_in_query(self, paper_db):
        # (JOHN, EARNS, Δ): earns anything at all.
        assert paper_db.ask(f"(JOHN, EARNS, {TOP})")
        assert not paper_db.ask(f"(NOBODY, EARNS, {TOP})")

    def test_query_variable_shadowing_inner_exists(self, paper_db):
        value = paper_db.query(
            "(x, in, EMPLOYEE) and (exists x: (x, in, DEPARTMENT))")
        assert value == paper_db.query("(x, in, EMPLOYEE)")


class TestMutationEdgeCases:
    def test_remove_axiom_fact(self):
        from repro.db import AXIOM_FACTS

        db = Database()
        assert db.remove_fact(AXIOM_FACTS[0])
        assert AXIOM_FACTS[0] not in db.facts

    def test_readd_after_remove(self):
        db = Database()
        fact = Fact("A", "R", "B")
        db.add_fact(fact)
        db.closure()
        db.remove_fact(fact)
        db.add_fact(fact)
        assert db.ask("(A, R, B)")

    def test_remove_derived_fact_is_noop(self):
        """Only stored facts can be removed; a derived fact is not in
        the base heap."""
        db = Database()
        db.add("JOHN", MEMBER, "EMPLOYEE")
        db.add("EMPLOYEE", "EARNS", "SALARY")
        derived = Fact("JOHN", "EARNS", "SALARY")
        assert derived in db
        assert not db.remove_fact(derived)
        assert derived in db

    def test_interleaved_limit_changes(self):
        db = Database()
        db.add("A", "R", "B")
        db.add("B", "S", "C")
        for limit, expected in ((1, False), (2, True), (1, False),
                                (None, True)):
            db.limit(limit)
            assert db.ask("(A, R.B.S, C)") is expected


class TestShellRobustness:
    def test_every_command_survives_empty_args(self, music_db):
        from repro.shell import BrowserShell

        shell = BrowserShell(music_db)
        for command in ("go", "incoming", "between", "paths", "try",
                        "query", "ask", "explain", "why", "probe",
                        "select", "relation", "function", "add",
                        "remove", "limit", "include", "exclude",
                        "rule", "export", "import"):
            output = shell.execute(command)
            assert isinstance(output, str) and output, command

    def test_garbage_input(self, music_db):
        from repro.shell import BrowserShell

        shell = BrowserShell(music_db)
        for line in ("((((", "'unclosed", "add A", "limit -3"):
            output = shell.execute(line)
            assert isinstance(output, str)
            assert not shell.done
