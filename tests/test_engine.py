"""Closure engine tests: every §3 inference the paper works through,
evaluated on both engines, plus engine-equivalence properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entities import INV, ISA, MEMBER, SYN
from repro.core.facts import Fact, Template, var
from repro.core.store import FactStore
from repro.rules.builtin import STANDARD_RULES
from repro.rules.engine import naive_closure, semi_naive_closure
from repro.rules.rule import RelationshipClassifier, Rule, RuleContext

X, Y = var("x"), var("y")


def close(facts, rules=None, engine=semi_naive_closure):
    store = FactStore(facts)
    context = RuleContext(classifier=RelationshipClassifier(store))
    return engine(facts, STANDARD_RULES if rules is None else rules, context)


@pytest.fixture(params=[naive_closure, semi_naive_closure],
                ids=["naive", "semi-naive"])
def engine(request):
    return request.param


class TestGeneralizationInference:
    """§3.1 — the three rules, each with the paper's own example."""

    def test_source_specialization(self, engine):
        result = close([
            Fact("EMPLOYEE", "WORKS-FOR", "DEPARTMENT"),
            Fact("MANAGER", ISA, "EMPLOYEE"),
        ], engine=engine)
        assert Fact("MANAGER", "WORKS-FOR", "DEPARTMENT") in result.store

    def test_target_generalization(self, engine):
        result = close([
            Fact("EMPLOYEE", "EARNS", "SALARY"),
            Fact("SALARY", ISA, "COMPENSATION"),
        ], engine=engine)
        assert Fact("EMPLOYEE", "EARNS", "COMPENSATION") in result.store

    def test_relationship_generalization(self, engine):
        result = close([
            Fact("JOHN", "WORKS-FOR", "SHIPPING"),
            Fact("WORKS-FOR", ISA, "IS-PAID-BY"),
        ], engine=engine)
        assert Fact("JOHN", "IS-PAID-BY", "SHIPPING") in result.store

    def test_transitivity(self, engine):
        result = close([
            Fact("A", ISA, "B"), Fact("B", ISA, "C"), Fact("C", ISA, "D"),
        ], engine=engine)
        assert Fact("A", ISA, "C") in result.store
        assert Fact("A", ISA, "D") in result.store

    def test_class_relationship_not_inherited(self, engine):
        """§2.2: TOTAL-NUMBER characterizes the aggregate, so it must
        not propagate to subclasses or instances."""
        result = close([
            Fact("EMPLOYEE", "TOTAL-NUMBER", "180"),
            Fact("TOTAL-NUMBER", MEMBER, "CLASS-RELATIONSHIP"),
            Fact("MANAGER", ISA, "EMPLOYEE"),
            Fact("JOHN", MEMBER, "EMPLOYEE"),
        ], engine=engine)
        assert Fact("MANAGER", "TOTAL-NUMBER", "180") not in result.store
        assert Fact("JOHN", "TOTAL-NUMBER", "180") not in result.store


class TestMembershipInference:
    """§3.2 — both rules with the paper's examples."""

    def test_member_inherits_class_fact(self, engine):
        result = close([
            Fact("JOHN", MEMBER, "EMPLOYEE"),
            Fact("EMPLOYEE", "WORKS-FOR", "DEPARTMENT"),
        ], engine=engine)
        assert Fact("JOHN", "WORKS-FOR", "DEPARTMENT") in result.store

    def test_target_abstracts_to_class(self, engine):
        result = close([
            Fact("TOM", "WORKS-FOR", "SHIPPING"),
            Fact("SHIPPING", MEMBER, "DEPARTMENT"),
        ], engine=engine)
        assert Fact("TOM", "WORKS-FOR", "DEPARTMENT") in result.store

    def test_membership_climbs_generalization(self, engine):
        result = close([
            Fact("JOHN", MEMBER, "EMPLOYEE"),
            Fact("EMPLOYEE", ISA, "PERSON"),
        ], engine=engine)
        assert Fact("JOHN", MEMBER, "PERSON") in result.store

    def test_membership_does_not_chain_through_membership(self, engine):
        """An instance of an instance is not an instance (§2.3's
        book/copy example)."""
        result = close([
            Fact("COPY1", MEMBER, "ISBN-914894"),
            Fact("ISBN-914894", MEMBER, "BOOK"),
        ], engine=engine)
        assert Fact("COPY1", MEMBER, "BOOK") not in result.store


class TestSynonymInference:
    """§3.3 — substitution in every position, symmetry, transitivity."""

    def test_substitution_in_source(self, engine):
        result = close([
            Fact("JOHN", SYN, "JOHNNY"),
            Fact("JOHN", "EARNS", "$25000"),
        ], engine=engine)
        assert Fact("JOHNNY", "EARNS", "$25000") in result.store

    def test_substitution_in_relationship(self, engine):
        result = close([
            Fact("SALARY", SYN, "WAGE"),
            Fact("JOHN", "SALARY", "$25000"),
        ], engine=engine)
        assert Fact("JOHN", "WAGE", "$25000") in result.store

    def test_substitution_in_target(self, engine):
        result = close([
            Fact("USC", SYN, "SOUTHERN-CAL"),
            Fact("JAKE", "ATTENDED", "USC"),
        ], engine=engine)
        assert Fact("JAKE", "ATTENDED", "SOUTHERN-CAL") in result.store

    def test_substitution_into_membership_facts(self, engine):
        result = close([
            Fact("JOHN", SYN, "JOHNNY"),
            Fact("JOHN", MEMBER, "EMPLOYEE"),
        ], engine=engine)
        assert Fact("JOHNNY", MEMBER, "EMPLOYEE") in result.store

    def test_symmetry(self, engine):
        result = close([Fact("SALARY", SYN, "WAGE")], engine=engine)
        assert Fact("WAGE", SYN, "SALARY") in result.store

    def test_transitivity_through_shared_synonym(self, engine):
        """The paper's example: WAGE ≈ PAY from SALARY ≈ WAGE and
        SALARY ≈ PAY."""
        result = close([
            Fact("SALARY", SYN, "WAGE"),
            Fact("SALARY", SYN, "PAY"),
        ], engine=engine)
        assert Fact("WAGE", SYN, "PAY") in result.store

    def test_synonym_implies_mutual_generalization(self, engine):
        result = close([Fact("A", SYN, "B")], engine=engine)
        assert Fact("A", ISA, "B") in result.store
        assert Fact("B", ISA, "A") in result.store

    def test_mutual_generalization_implies_synonym(self, engine):
        result = close([
            Fact("A", ISA, "B"), Fact("B", ISA, "A"),
        ], engine=engine)
        assert Fact("A", SYN, "B") in result.store


class TestInversionInference:
    """§3.4 — with the ↔ axiom making inversion facts come in pairs."""

    AXIOMS = [Fact(INV, INV, INV)]

    def test_basic_inversion(self, engine):
        result = close(self.AXIOMS + [
            Fact("INSTRUCTOR", "TEACHES", "COURSE"),
            Fact("TEACHES", INV, "TAUGHT-BY"),
        ], engine=engine)
        assert Fact("COURSE", "TAUGHT-BY", "INSTRUCTOR") in result.store

    def test_inversion_fact_pairs(self, engine):
        result = close(self.AXIOMS + [
            Fact("TEACHES", INV, "TAUGHT-BY"),
        ], engine=engine)
        assert Fact("TAUGHT-BY", INV, "TEACHES") in result.store

    def test_round_trip_through_both_directions(self, engine):
        result = close(self.AXIOMS + [
            Fact("COURSE", "TAUGHT-BY", "INSTRUCTOR"),
            Fact("TEACHES", INV, "TAUGHT-BY"),
        ], engine=engine)
        assert Fact("INSTRUCTOR", "TEACHES", "COURSE") in result.store

    def test_contradiction_symmetry(self, engine):
        result = close([Fact("LOVES", "⊥", "HATES")], engine=engine)
        assert Fact("HATES", "⊥", "LOVES") in result.store


class TestEngineMechanics:
    def test_iterations_reported(self):
        result = close([
            Fact("A", ISA, "B"), Fact("B", ISA, "C"), Fact("C", ISA, "D"),
        ])
        assert result.iterations >= 2
        assert result.derived_count == result.total - result.base_count

    def test_rule_firings_recorded(self):
        result = close([
            Fact("A", ISA, "B"), Fact("B", ISA, "C"),
        ])
        assert result.rule_firings["gen-transitive"] >= 1

    def test_max_iterations_caps_work(self):
        chain = [Fact(f"N{i}", ISA, f"N{i+1}") for i in range(10)]
        capped = close(chain)
        limited = semi_naive_closure(
            chain, STANDARD_RULES,
            RuleContext(classifier=RelationshipClassifier(FactStore(chain))),
            max_iterations=1)
        assert len(limited.store) < len(capped.store)

    def test_no_rules_means_no_derivation(self):
        result = close([Fact("A", "R", "B")], rules=[])
        assert result.derived_count == 0
        assert result.iterations <= 1

    def test_multi_head_rule(self, engine):
        rule = Rule(name="pair", body=(Template(X, "R", Y),),
                    head=(Template(X, "LEFT", Y), Template(Y, "RIGHT", X)))
        store = [Fact("A", "R", "B")]
        context = RuleContext(
            classifier=RelationshipClassifier(FactStore(store)))
        result = engine(store, [rule], context)
        assert Fact("A", "LEFT", "B") in result.store
        assert Fact("B", "RIGHT", "A") in result.store


# ----------------------------------------------------------------------
# Property: the two engines compute identical closures.
# ----------------------------------------------------------------------
_entities = st.sampled_from(["A", "B", "C", "D", "E"])
_relationships = st.sampled_from(["R", "S", ISA, MEMBER, SYN])
_random_facts = st.lists(
    st.builds(Fact, _entities, _relationships, _entities), max_size=14)


@settings(max_examples=40, deadline=None)
@given(facts=_random_facts)
def test_engines_agree(facts):
    naive = close(facts, engine=naive_closure)
    semi = close(facts, engine=semi_naive_closure)
    assert set(naive.store) == set(semi.store)


@settings(max_examples=30, deadline=None)
@given(facts=_random_facts)
def test_closure_is_monotone_and_idempotent(facts):
    once = close(facts)
    again = close(list(once.store))
    assert set(facts) <= set(once.store)
    assert set(again.store) == set(once.store)
