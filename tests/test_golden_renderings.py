"""Golden-output tests: the paper's tables and menus, byte-for-byte.

The benchmarks assert the *content* of the regenerated tables; these
tests pin the exact rendered text, so any change to grouping, column
order, alignment, or menu wording shows up as a diff here.
"""

from __future__ import annotations

import pytest

from repro.datasets import music, paper, university

GOLDEN_TABLE_1 = """\
(JOHN, *, *)
∈            BOSS   FAVORITE-MUSIC  LIKES        WORKS-FOR
-----------  -----  --------------  -----------  ----------
EMPLOYEE     PETER  PC#2-PIT        CAT          DEPARTMENT
MUSIC-LOVER         PC#9-WAM        FELIX        SHIPPING
PERSON              S#5-LVB         HEALTHCLIFF
PET-OWNER                           MARY
                                    MOZART"""

GOLDEN_TABLE_2 = """\
(PC#9-WAM, *, *)
∈                      COMPOSED-BY  FAVORITE-OF  PERFORMED-BY
---------------------  -----------  -----------  ------------
CLASSICAL-COMPOSITION  MOZART       JOHN         BARENBOIM
CONCERTO                                         LEOPOLD
                                                 SIRKIN"""

GOLDEN_TABLE_3 = """\
(LEOPOLD, *, MOZART)
FATHER-OF  PERFORMED.PC#9-WAM.COMPOSED-BY
---------  ------------------------------"""

GOLDEN_MENU = """\
Query failed. Retrying

1. Success with FRESHMAN instead of STUDENT
2. Success with CHEAP instead of FREE

You may select"""

GOLDEN_MISSPELLING = """\
Query failed. Retrying

No such database entities: LUVS
  (did you mean LOVES?)"""

GOLDEN_RELATION = """\
EMPLOYEE  WORKS-FOR DEPARTMENT  EARNS SALARY
--------  --------------------  ------------
JOHN      SHIPPING              $26000
MARY      RECEIVING             $25000
TOM       ACCOUNTING            $27000"""


class TestNavigationGoldens:
    def test_table_1(self):
        db = music.load()
        assert db.navigate("(JOHN, *, *)").render() == GOLDEN_TABLE_1

    def test_table_2(self):
        db = music.load()
        assert db.navigate("(PC#9-WAM, *, *)").render() == GOLDEN_TABLE_2

    def test_table_3(self):
        db = music.load()
        db.limit(2)
        assert db.navigate("(LEOPOLD, *, MOZART)").render() \
            == GOLDEN_TABLE_3


class TestProbingGoldens:
    def test_retraction_menu(self):
        db = university.load()
        assert db.probe(university.STUDENTS_LOVE_FREE).menu() \
            == GOLDEN_MENU

    def test_misspelling_menu(self):
        db = university.load()
        assert db.probe(university.MISSPELLED).menu() \
            == GOLDEN_MISSPELLING


class TestOperatorGoldens:
    def test_relation_table(self):
        db = paper.load()
        table = db.relation("EMPLOYEE", ("WORKS-FOR", "DEPARTMENT"),
                            ("EARNS", "SALARY"))
        assert table.render() == GOLDEN_RELATION
