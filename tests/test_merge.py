"""Tests for multi-database merging and bridge suggestion."""

from __future__ import annotations

import pytest

from repro.core.facts import Fact
from repro.datasets import music, paper
from repro.db import Database
from repro.merge import (
    merge,
    suggest_entity_bridges,
    suggest_relationship_bridges,
)


class TestMerge:
    def test_counts(self):
        target = Database()
        target.add("A", "R", "B")
        report = merge(target, [Fact("A", "R", "B"), Fact("C", "S", "D")])
        assert report.added == 1
        assert report.duplicates == 1
        assert report.clean

    def test_merged_facts_queryable(self):
        target = music.load()
        report = merge(target, paper.facts())
        assert report.added > 0
        assert target.ask("(JOHN, LIKES, FELIX)")        # music
        assert target.ask("(TOM, WORKS-FOR, ACCOUNTING)")  # paper

    def test_new_contradictions_reported(self):
        target = Database()
        target.add("LOVES", "⊥", "HATES")
        target.add("JOHN", "LOVES", "MARY")
        report = merge(target, [Fact("JOHN", "HATES", "MARY")])
        assert not report.clean
        assert len(report.new_violations) == 1
        assert "contradictions introduced" in report.render()

    def test_preexisting_contradictions_not_blamed_on_merge(self):
        target = Database()
        target.add("LOVES", "⊥", "HATES")
        target.add("JOHN", "LOVES", "MARY")
        target.add("JOHN", "HATES", "MARY")  # already broken
        report = merge(target, [Fact("X", "R", "Y")])
        assert report.clean

    def test_check_can_be_skipped(self):
        target = Database()
        report = merge(target, [Fact("A", "R", "B")], check=False)
        assert report.added == 1
        assert report.new_violations == ()

    def test_render(self):
        target = Database()
        text = merge(target, [Fact("A", "R", "B")]).render()
        assert "1 new facts" in text
        assert "no contradictions" in text


class TestEntityBridges:
    def _two_vocabulary_db(self):
        db = Database()
        # Vocabulary 1 knows JOHN; vocabulary 2 calls him JOHNNY and
        # repeats most of his facts.
        for fact in [
            ("JOHN", "LIKES", "FELIX"),
            ("JOHN", "WORKS-FOR", "SHIPPING"),
            ("JOHN", "PLAYS", "CHESS"),
            ("JOHNNY", "LIKES", "FELIX"),
            ("JOHNNY", "WORKS-FOR", "SHIPPING"),
            ("JOHNNY", "PLAYS", "CHESS"),
            ("MARY", "LIKES", "OPERA"),
        ]:
            db.add(*fact)
        return db

    def test_twin_entities_suggested_first(self):
        db = self._two_vocabulary_db()
        suggestions = suggest_entity_bridges(db, min_similarity=0.5)
        assert suggestions
        top = suggestions[0]
        assert {top.left, top.right} == {"JOHN", "JOHNNY"}
        assert top.similarity == 1.0
        assert top.as_fact() in (Fact("JOHN", "≈", "JOHNNY"),
                                 Fact("JOHNNY", "≈", "JOHN"))

    def test_dissimilar_entities_not_suggested(self):
        db = self._two_vocabulary_db()
        pairs = {
            frozenset((s.left, s.right))
            for s in suggest_entity_bridges(db, min_similarity=0.5)
        }
        assert frozenset(("JOHN", "MARY")) not in pairs

    def test_universe_restriction(self):
        db = self._two_vocabulary_db()
        suggestions = suggest_entity_bridges(
            db, left_universe=["JOHN"], right_universe=["MARY"],
            min_similarity=0.0)
        assert all(s.left == "JOHN" and s.right == "MARY"
                   for s in suggestions)

    def test_applying_suggestion_unifies(self):
        db = self._two_vocabulary_db()
        suggestion = suggest_entity_bridges(db)[0]
        db.add_fact(suggestion.as_fact())
        # Add a fact only vocabulary 2 knows; the synonym carries it.
        db.add("JOHNNY", "OWNS", "BICYCLE")
        assert db.ask("(JOHN, OWNS, BICYCLE)")

    def test_render(self):
        db = self._two_vocabulary_db()
        text = suggest_entity_bridges(db)[0].render()
        assert "≈" in text and "similarity" in text


class TestRelationshipBridges:
    def test_parallel_relationships_suggested(self):
        db = Database()
        for employee, amount in (("A", "100"), ("B", "200"),
                                 ("C", "300")):
            db.add(employee, "SALARY", amount)
            db.add(employee, "WAGE", amount)
        db.add("D", "AGE", "44")
        suggestions = suggest_relationship_bridges(db)
        assert suggestions
        assert {suggestions[0].left, suggestions[0].right} == {
            "SALARY", "WAGE"}

    def test_special_relationships_ignored(self):
        db = Database()
        db.add("A", "∈", "C")
        db.add("A", "MEMBER-OF", "C")
        suggestions = suggest_relationship_bridges(db, min_similarity=0.1)
        names = {s.left for s in suggestions} | {
            s.right for s in suggestions}
        assert "∈" not in names

    def test_threshold_filters(self):
        db = Database()
        db.add("A", "R", "B")
        db.add("C", "S", "D")
        assert suggest_relationship_bridges(db, min_similarity=0.5) == []
