"""Single-flight coalescing in the versioned result cache.

A cold hot-key under concurrency used to fan out one computation per
thread — the 4-thread hot-probe p99 cliff.  ``LRUCache.get_or_compute``
lets exactly one leader compute while concurrent callers for the same
key wait on the flight and share its result (counted as ``coalesced``).
"""

import threading

import pytest

from repro.core.cache import LRUCache
from repro.db import Database
from repro.query.exec import CompiledEvaluator
from repro.query.plancache import PlanCache


class TestGetOrCompute:
    def test_hit_and_miss_accounting(self):
        cache = LRUCache(maxsize=8)
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert cache.get_or_compute("k", compute) == "value"
        assert cache.get_or_compute("k", compute) == "value"
        assert len(calls) == 1
        assert cache.misses == 1
        assert cache.hits == 1
        assert cache.coalesced == 0
        assert cache.stats()["coalesced"] == 0

    def test_concurrent_callers_coalesce_to_one_compute(self):
        cache = LRUCache(maxsize=8)
        n = 4
        entered = threading.Barrier(n)
        release = threading.Event()
        calls = []
        results = [None] * n

        def compute():
            calls.append(1)
            release.wait(10.0)
            return 42

        def worker(i):
            entered.wait(10.0)
            results[i] = cache.get_or_compute("hot", compute)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        # All workers are past the barrier before the leader is allowed
        # to publish, so the followers pile onto the same flight.
        threading.Timer(0.1, release.set).start()
        for t in threads:
            t.join(15.0)
        assert results == [42] * n
        assert len(calls) == 1, "exactly one computation for the hot key"
        # Every non-leader either coalesced on the flight or hit the
        # cache after publication — none recomputed.
        assert cache.misses == 1
        assert cache.hits + cache.coalesced == n - 1

    def test_leader_error_is_not_cached(self):
        cache = LRUCache(maxsize=8)

        def boom():
            raise RuntimeError("transient")

        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", boom)
        assert "k" not in cache
        # The flight was torn down: the next caller computes fresh.
        assert cache.get_or_compute("k", lambda: "ok") == "ok"
        assert cache.get("k") == "ok"

    def test_follower_recovers_from_leader_failure(self):
        cache = LRUCache(maxsize=8)
        leader_in_compute = threading.Event()
        follower_waiting = threading.Event()
        outcome = {}

        def leader_compute():
            leader_in_compute.set()
            # Hold the flight open until the follower is committed to
            # waiting on it, then fail.
            follower_waiting.wait(10.0)
            raise RuntimeError("leader died")

        def leader():
            try:
                cache.get_or_compute("k", leader_compute)
            except RuntimeError as exc:
                outcome["leader"] = str(exc)

        def follower():
            leader_in_compute.wait(10.0)
            follower_waiting.set()
            outcome["follower"] = cache.get_or_compute(
                "k", lambda: "fallback")

        t1 = threading.Thread(target=leader)
        t2 = threading.Thread(target=follower)
        t1.start()
        t2.start()
        t1.join(15.0)
        t2.join(15.0)
        assert outcome["leader"] == "leader died"
        assert outcome["follower"] == "fallback"
        assert cache.get("k") == "fallback"


class TestEvaluatorSingleFlight:
    @pytest.fixture()
    def db(self):
        db = Database()
        for i in range(40):
            db.add(f"E{i}", "∈", "EMPLOYEE")
            db.add(f"E{i}", "WORKS-FOR", f"D{i % 4}")
        return db

    def test_cold_hot_query_computes_once_across_threads(self, db):
        cache = LRUCache(maxsize=64)
        view = db.view()
        evaluator = CompiledEvaluator(
            view, plans=PlanCache(), cache=cache,
            cache_token=view.store.version)
        n = 4
        gate = threading.Barrier(n)
        answers = [None] * n

        def worker(i):
            gate.wait(10.0)
            answers[i] = evaluator.evaluate(
                "(x, ∈, EMPLOYEE) and (x, WORKS-FOR, D1)")

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(15.0)
        expected = evaluator.evaluate(
            "(x, ∈, EMPLOYEE) and (x, WORKS-FOR, D1)")
        assert all(answer == expected for answer in answers)
        # One miss computed the result; every other caller hit the
        # cache or coalesced onto the in-progress flight.
        assert cache.misses == 1
        assert cache.hits + cache.coalesced == n
