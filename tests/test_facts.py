"""Unit tests for repro.core.facts: facts, templates, matching."""

from __future__ import annotations

import pytest

from repro.core.errors import TemplateError
from repro.core.facts import (
    Fact,
    Template,
    Variable,
    fact,
    iter_components,
    template,
    var,
)


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_hashable(self):
        assert {Variable("x"), Variable("x")} == {Variable("x")}

    def test_var_helper(self):
        assert var("x") == Variable("x")

    def test_empty_name_rejected(self):
        with pytest.raises(TemplateError):
            Variable("")

    def test_repr(self):
        assert repr(Variable("x")) == "?x"


class TestFact:
    def test_positions(self):
        f = fact("JOHN", "EARNS", "$25000")
        assert f.source == "JOHN"
        assert f.relationship == "EARNS"
        assert f.target == "$25000"

    def test_is_tuple(self):
        assert tuple(fact("A", "R", "B")) == ("A", "R", "B")

    def test_validation(self):
        with pytest.raises(Exception):
            fact("", "R", "B")

    def test_iter_components(self):
        f = fact("A", "R", "B")
        assert list(iter_components(f)) == [
            ("source", "A"), ("relationship", "R"), ("target", "B")]


class TestTemplateBasics:
    def test_ground_detection(self):
        assert template("A", "R", "B").is_ground()
        assert not template(var("x"), "R", "B").is_ground()

    def test_to_fact(self):
        assert template("A", "R", "B").to_fact() == Fact("A", "R", "B")

    def test_to_fact_rejects_variables(self):
        with pytest.raises(TemplateError):
            template(var("x"), "R", "B").to_fact()

    def test_variables_in_order_with_duplicates(self):
        t = template(var("x"), "R", var("x"))
        assert t.variables() == (var("x"), var("x"))
        assert t.variable_set() == frozenset({var("x")})

    def test_validation_of_entities(self):
        with pytest.raises(Exception):
            template("  bad", "R", "B")


class TestTemplateMatching:
    def test_exact_match(self):
        t = template("A", "R", "B")
        assert t.match(Fact("A", "R", "B")) == {}
        assert t.match(Fact("A", "R", "C")) is None

    def test_binds_variables(self):
        t = template(var("x"), "R", var("y"))
        binding = t.match(Fact("A", "R", "B"))
        assert binding == {var("x"): "A", var("y"): "B"}

    def test_repeated_variable_requires_equal_entities(self):
        t = template(var("x"), "CITES", var("x"))
        assert t.match(Fact("B1", "CITES", "B1")) == {var("x"): "B1"}
        assert t.match(Fact("B1", "CITES", "B2")) is None

    def test_respects_existing_binding(self):
        t = template(var("x"), "R", var("y"))
        bound = t.match(Fact("A", "R", "B"), {var("x"): "A"})
        assert bound == {var("x"): "A", var("y"): "B"}
        assert t.match(Fact("A", "R", "B"), {var("x"): "Z"}) is None

    def test_match_does_not_mutate_input_binding(self):
        t = template(var("x"), "R", var("y"))
        binding = {var("x"): "A"}
        t.match(Fact("A", "R", "B"), binding)
        assert binding == {var("x"): "A"}

    def test_substitute(self):
        t = template(var("x"), "R", var("y"))
        s = t.substitute({var("x"): "A"})
        assert s == template("A", "R", var("y"))

    def test_substitute_leaves_unbound(self):
        t = template(var("x"), var("r"), var("y"))
        s = t.substitute({})
        assert s == t

    def test_rename(self):
        t = template(var("x"), "R", var("y"))
        renamed = t.rename({var("x"): var("x1")})
        assert renamed == template(var("x1"), "R", var("y"))
