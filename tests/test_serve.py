"""Serving-layer tests: snapshot isolation under concurrency, write
coalescing, deadlines, backpressure, durability, and lifecycle."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import deadline as deadline_mod
from repro.core.errors import (
    DeadlineExceeded,
    FrozenStoreError,
    IntegrityError,
    Overloaded,
    ServiceClosed,
    ServiceError,
)
from repro.core.facts import Fact
from repro.db import Database
from repro.serve import DatabaseService
from repro.storage.session import DurableSession


# ----------------------------------------------------------------------
# Database.snapshot() — the substrate the service publishes
# ----------------------------------------------------------------------
class TestSnapshot:
    def test_snapshot_is_point_in_time(self):
        db = Database()
        db.add("A", "R", "B")
        snap = db.snapshot()
        db.add("C", "R", "D")
        assert Fact("C", "R", "D") in db
        assert Fact("C", "R", "D") not in snap
        assert Fact("A", "R", "B") in snap

    def test_snapshot_is_frozen(self):
        db = Database()
        db.add("A", "R", "B")
        snap = db.snapshot()
        with pytest.raises(FrozenStoreError):
            snap.add("X", "R", "Y")
        with pytest.raises(FrozenStoreError):
            snap.remove_fact(Fact("A", "R", "B"))

    def test_snapshot_queries_match_master(self):
        db = Database()
        db.add("JOHN", "∈", "EMPLOYEE")
        db.add("EMPLOYEE", "EARNS", "SALARY")
        snap = db.snapshot()
        assert snap.query("(JOHN, EARNS, y)") == db.query("(JOHN, EARNS, y)")
        assert snap.ask("(JOHN, ∈, EMPLOYEE)")

    def test_snapshot_closure_unaffected_by_master_extension(self):
        db = Database()
        db.add("JOHN", "∈", "EMPLOYEE")
        db.add("EMPLOYEE", "EARNS", "SALARY")
        db.view()                      # materialize the master's closure
        snap = db.snapshot()
        before = set(snap.query("(x, EARNS, SALARY)"))
        db.add("MARY", "∈", "EMPLOYEE")   # extends the master in place
        assert set(snap.query("(x, EARNS, SALARY)")) == before
        assert ("MARY",) in db.query("(x, EARNS, SALARY)")

    def test_snapshot_shares_result_cache_entries(self):
        db = Database()
        db.add("A", "R", "B")
        db.query("(A, R, y)")          # warm the shared cache
        snap = db.snapshot()
        assert snap._result_cache is db._result_cache
        assert snap.query("(A, R, y)") == {("B",)}

    def test_snapshot_rules_track_master_state(self):
        db = Database()
        first_rule = db.rules.all_rules()[0]
        db.exclude(first_rule)
        snap = db.snapshot()
        assert snap.rules.enabled_names() == db.rules.enabled_names()
        assert first_rule.name not in snap.rules.enabled_names()


# ----------------------------------------------------------------------
# Basic service behavior
# ----------------------------------------------------------------------
class TestServiceBasics:
    def test_read_your_writes(self):
        with DatabaseService(Database()) as service:
            assert service.add("JOHN", "∈", "EMPLOYEE") is True
            assert service.ask("(JOHN, ∈, EMPLOYEE)")

    def test_duplicate_add_returns_false(self):
        with DatabaseService(Database()) as service:
            assert service.add("A", "R", "B") is True
            assert service.add("A", "R", "B") is False

    def test_remove(self):
        with DatabaseService(Database()) as service:
            service.add("A", "R", "B")
            assert service.remove("A", "R", "B") is True
            assert not service.ask("(A, R, B)")

    def test_derived_facts_served(self):
        with DatabaseService(Database()) as service:
            service.add("JOHN", "∈", "EMPLOYEE")
            service.add("EMPLOYEE", "EARNS", "SALARY")
            assert service.query("(JOHN, EARNS, y)") == {("SALARY",)}

    def test_define_rule_and_limit(self):
        with DatabaseService(Database()) as service:
            rule = service.define_rule(
                "sym", "(a, MARRIED-TO, b) => (b, MARRIED-TO, a)")
            assert rule.name == "sym"
            service.add("ANN", "MARRIED-TO", "BOB")
            assert service.ask("(BOB, MARRIED-TO, ANN)")
            assert service.limit(2) == 2

    def test_writer_error_propagates_to_ticket(self):
        with DatabaseService(Database()) as service:
            with pytest.raises((IntegrityError, ValueError, Exception)):
                service.limit(0)       # invalid: limit must be >= 1

    def test_integrity_violation_surfaces(self):
        db = Database(auto_check=True)
        with DatabaseService(db) as service:
            service.add("LOVES", "⊥", "HATES")
            service.add("JOHN", "LOVES", "MARY")
            # auto_check rejects the mutation on the writer thread; the
            # IntegrityError travels back through the ticket.
            with pytest.raises(IntegrityError):
                service.add("JOHN", "HATES", "MARY")
            assert not service.ask("(JOHN, HATES, MARY)")

    def test_read_view_is_stable(self):
        with DatabaseService(Database()) as service:
            service.add("A", "R", "B")
            view = service.read_view()
            count = len(view.facts)
            service.add("C", "R", "D")
            assert len(view.facts) == count
            assert len(service.read_view().facts) == count + 1

    def test_stats_shape(self):
        with DatabaseService(Database()) as service:
            service.add("A", "R", "B")
            stats = service.stats()
            assert stats["batches"] >= 1
            assert stats["ops_applied"] >= 1
            assert stats["snapshot_publishes"] >= 2
            assert stats["pending_writes"] == 0
            assert stats["durable"] is False
            assert service.ping()["facts"] == stats["base_facts"]

    def test_add_facts_bulk(self):
        with DatabaseService(Database()) as service:
            added = service.add_facts(
                [("E%d" % i, "R", "F") for i in range(20)])
            assert added == 20
            assert len(service.query("(x, R, F)")) == 20


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_closed_service_rejects_reads_and_writes(self):
        service = DatabaseService(Database())
        service.close()
        with pytest.raises(ServiceClosed):
            service.ask("(A, R, B)")
        with pytest.raises(ServiceClosed):
            service.add("A", "R", "B")
        with pytest.raises(ServiceClosed):
            service.read_view()

    def test_close_drains_queued_writes(self):
        service = DatabaseService(Database(), batch_window=0)
        tickets = [service.add_async(("E%d" % i, "R", "F"))
                   for i in range(50)]
        service.close()
        assert all(t.done() for t in tickets)

    def test_close_without_started_writer_rejects_pending(self):
        service = DatabaseService(Database(), start=False)
        ticket = service.add_async(("A", "R", "B"))
        service.close(timeout=0.1)
        with pytest.raises(ServiceClosed):
            ticket.result(1.0)

    def test_close_is_idempotent(self):
        service = DatabaseService(Database())
        service.close()
        service.close()

    def test_checkpoint_without_session_raises(self):
        with DatabaseService(Database()) as service:
            with pytest.raises(ServiceError):
                service.checkpoint()


# ----------------------------------------------------------------------
# Deadlines and backpressure
# ----------------------------------------------------------------------
class TestDeadlinesAndBackpressure:
    def test_expired_deadline_cancels_read(self):
        db = Database()
        for i in range(40):
            db.add(f"E{i}", "∈", "CLASS")
            db.add("CLASS", f"R{i}", f"V{i}")
        with DatabaseService(db) as service:
            # Non-positive budget: already expired at the first
            # cooperative checkpoint.  Fresh query text bypasses the
            # result cache so evaluation actually runs.
            with pytest.raises(DeadlineExceeded):
                service.query("(x, R7, y)", deadline=-1.0)

    def test_generous_deadline_passes(self):
        with DatabaseService(Database()) as service:
            service.add("A", "R", "B")
            assert service.ask("(A, R, B)", deadline=30.0)

    def test_default_deadline_applies(self):
        db = Database()
        for i in range(40):
            db.add(f"E{i}", "∈", "CLASS")
            db.add("CLASS", f"R{i}", f"V{i}")
        with DatabaseService(db, default_deadline=-1.0) as service:
            with pytest.raises(DeadlineExceeded):
                service.query("(x, R9, y)")
            # A per-call deadline overrides the default.
            assert service.query("(x, R9, y)", deadline=30.0)

    def test_deadline_scope_restores_state(self):
        assert deadline_mod.remaining() is None
        with pytest.raises(DeadlineExceeded):
            with deadline_mod.deadline_scope(-1.0):
                deadline_mod.check()
        assert deadline_mod.remaining() is None
        assert deadline_mod.ACTIVE == 0

    def test_nested_deadline_scopes_tighten(self):
        with deadline_mod.deadline_scope(60.0):
            with deadline_mod.deadline_scope(0.001):
                time.sleep(0.01)
                assert deadline_mod.expired()
            assert not deadline_mod.expired()

    def test_overloaded_when_queue_full(self):
        service = DatabaseService(Database(), max_pending=4, start=False)
        try:
            for i in range(4):
                service.add_async(("E%d" % i, "R", "F"))
            with pytest.raises(Overloaded):
                service.add_async(("E99", "R", "F"))
        finally:
            service.close(timeout=0.1)

    def test_ticket_timeout_raises_deadline_exceeded(self):
        service = DatabaseService(Database(), start=False)
        try:
            with pytest.raises(DeadlineExceeded):
                service.add("A", "R", "B", deadline=0.05)
        finally:
            service.close(timeout=0.1)


# ----------------------------------------------------------------------
# Write coalescing
# ----------------------------------------------------------------------
class TestCoalescing:
    def test_queued_writes_coalesce_into_batches(self):
        service = DatabaseService(Database(), start=False,
                                  batch_window=0)
        tickets = [service.add_async(("E%d" % i, "R", "F"))
                   for i in range(32)]
        service.start()
        for ticket in tickets:
            assert ticket.result(10.0) is True
        stats = service.stats()
        assert stats["largest_batch"] >= 32   # one drain took them all
        assert stats["batches"] < 32
        service.close()

    def test_batch_publishes_once(self):
        service = DatabaseService(Database(), start=False)
        before = service.stats()["snapshot_publishes"]
        tickets = [service.add_async(("E%d" % i, "R", "F"))
                   for i in range(16)]
        service.start()
        for ticket in tickets:
            ticket.result(10.0)
        # All 16 writes landed in one batch -> exactly one new publish.
        assert service.stats()["snapshot_publishes"] == before + 1
        service.close()

    def test_max_batch_caps_a_drain(self):
        """A deep backlog drains in ``max_batch``-sized stages, so no
        single publish pause covers the whole queue."""
        service = DatabaseService(Database(), start=False,
                                  batch_window=0, max_batch=8)
        tickets = [service.add_async(("E%d" % i, "R", "F"))
                   for i in range(32)]
        service.start()
        for ticket in tickets:
            assert ticket.result(10.0) is True
        stats = service.stats()
        assert stats["max_batch"] == 8
        assert stats["largest_batch"] <= 8
        assert stats["batches"] >= 4
        service.close()

    def test_max_batch_none_is_unbounded(self):
        service = DatabaseService(Database(), start=False,
                                  batch_window=0, max_batch=None)
        tickets = [service.add_async(("E%d" % i, "R", "F"))
                   for i in range(32)]
        service.start()
        for ticket in tickets:
            ticket.result(10.0)
        stats = service.stats()
        assert stats["max_batch"] is None
        assert stats["largest_batch"] >= 32
        service.close()

    def test_max_batch_validation(self):
        with pytest.raises(ValueError):
            DatabaseService(Database(), start=False, max_batch=0)

    def test_publish_pause_stats(self):
        service = DatabaseService(Database())
        service.add("A", "R", "B")
        stats = service.stats()
        assert stats["publish_pause_last_s"] >= 0.0
        assert stats["publish_pause_max_s"] >= \
            stats["publish_pause_last_s"]
        assert stats["publish_pause_total_s"] >= \
            stats["publish_pause_max_s"]
        assert stats["applied_seq"] >= 1
        service.close()


# ----------------------------------------------------------------------
# The headline stress test: concurrent readers vs interleaved writer
# ----------------------------------------------------------------------
class TestConcurrentStress:
    READERS = 8
    ITEMS = 30

    def test_readers_see_consistent_snapshots(self):
        """8 reader threads race a writer that maintains two invariants:

        * ``item_i ∈ LEFT`` and ``item_i ∈ RIGHT`` are queued as one
          atomic group (:meth:`add_facts_async`), so any published
          snapshot has equal LEFT / RIGHT membership counts (a torn
          batch would break equality);
        * ``LEFT ≺ PARENT`` holds from the start, so each item also
          *derives* ``item_i ∈ PARENT`` — a derived count lagging the
          base count would expose a torn closure.
        """
        db = Database()
        db.add("LEFT", "≺", "PARENT")
        db.add("RIGHT", "≺", "PARENT")
        service = DatabaseService(db, batch_window=0.0005)
        errors = []
        inconsistencies = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    snap = service.read_view()
                    left = snap.query("(x, ∈, LEFT)")
                    right = snap.query("(x, ∈, RIGHT)")
                    parent = snap.query("(x, ∈, PARENT)")
                    if len(left) != len(right):
                        inconsistencies.append(
                            ("torn batch", len(left), len(right)))
                    if not (left | right) <= parent:
                        inconsistencies.append(
                            ("torn closure", len(left | right),
                             len(parent)))
            except Exception as error:   # noqa: BLE001 - recorded
                errors.append(error)

        threads = [threading.Thread(target=reader)
                   for _ in range(self.READERS)]
        for thread in threads:
            thread.start()
        try:
            for i in range(self.ITEMS):
                ticket = service.add_facts_async(
                    [(f"item{i}", "∈", "LEFT"),
                     (f"item{i}", "∈", "RIGHT")])
                assert ticket.result(30.0) == 2
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
            service.close()
        assert not errors, errors[:3]
        assert not inconsistencies, inconsistencies[:3]
        final = service._published
        assert len(final.query("(x, ∈, PARENT)")) == self.ITEMS

    def test_concurrent_writers_all_land(self):
        service = DatabaseService(Database(), batch_window=0.0005)
        errors = []

        def writer(index):
            try:
                for j in range(10):
                    service.add(f"W{index}-{j}", "∈", "DONE",
                                deadline=30.0)
            except Exception as error:   # noqa: BLE001 - recorded
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        try:
            assert not errors, errors[:3]
            assert len(service.query("(x, ∈, DONE)")) == 60
        finally:
            service.close()


# ----------------------------------------------------------------------
# Durability
# ----------------------------------------------------------------------
class TestDurability:
    def test_batches_journal_and_recover(self, tmp_path):
        session = DurableSession(tmp_path / "db")
        db = session.recover()
        service = DatabaseService(db, session=session)
        service.add("JOHN", "∈", "EMPLOYEE")
        service.add("EMPLOYEE", "EARNS", "SALARY")
        service.remove("JOHN", "∈", "EMPLOYEE")
        service.add("MARY", "∈", "EMPLOYEE")
        service.close()

        recovered = DurableSession(tmp_path / "db").recover()
        assert Fact("MARY", "∈", "EMPLOYEE") in recovered
        assert Fact("JOHN", "∈", "EMPLOYEE") not in recovered
        assert recovered.query("(MARY, EARNS, y)") == {("SALARY",)}

    def test_checkpoint_folds_journal(self, tmp_path):
        directory = tmp_path / "db"
        session = DurableSession(directory)
        service = DatabaseService(session.recover(), session=session)
        service.add("A", "R", "B")
        assert service.checkpoint(deadline=30.0) is True
        assert service.stats()["checkpoints"] == 1
        assert not (directory / "journal.jsonl").exists()
        assert (directory / "snapshot.json").exists()
        # Post-checkpoint writes journal again and survive recovery.
        service.add("C", "R", "D")
        service.close()
        recovered = DurableSession(directory).recover()
        assert Fact("A", "R", "B") in recovered
        assert Fact("C", "R", "D") in recovered

    def test_reads_keep_serving_during_checkpoint(self, tmp_path):
        session = DurableSession(tmp_path / "db")
        service = DatabaseService(session.recover(), session=session)
        service.add("A", "R", "B")
        ticket = service._submit("checkpoint", None)
        # Reads never block on the checkpointing writer.
        assert service.ask("(A, R, B)")
        assert ticket.result(30.0) is True
        service.close()

    def test_duplicate_adds_not_journaled(self, tmp_path):
        session = DurableSession(tmp_path / "db")
        service = DatabaseService(session.recover(), session=session)
        service.add("A", "R", "B")
        service.add("A", "R", "B")     # no-op: must not journal
        service.close()
        journal_lines = [
            line
            for line in (tmp_path / "db" / "journal.jsonl")
            .read_text(encoding="utf-8").splitlines() if line.strip()
        ]
        assert len(journal_lines) == 1
