"""Storage substrate tests: journal, snapshot, durable sessions,
crash-recovery behaviors."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import StorageError
from repro.core.facts import Fact
from repro.db import Database
from repro.storage.journal import OP_ADD, OP_REMOVE, Journal, JournalEntry
from repro.storage.session import DurableSession, open_database
from repro.storage.snapshot import (
    SnapshotState,
    read_snapshot,
    write_snapshot,
)


class TestJournalEntry:
    def test_roundtrip(self):
        entry = JournalEntry(OP_ADD, Fact("A", "R", "B"))
        assert JournalEntry.from_json(entry.to_json()) == entry

    def test_unicode_entities(self):
        entry = JournalEntry(OP_ADD, Fact("A", "≺", "Δ"))
        assert JournalEntry.from_json(entry.to_json()) == entry

    def test_malformed_json(self):
        with pytest.raises(StorageError):
            JournalEntry.from_json("{not json")

    def test_unknown_op(self):
        with pytest.raises(StorageError):
            JournalEntry.from_json(
                json.dumps({"op": "explode", "fact": ["A", "R", "B"]}))

    def test_bad_fact_shape(self):
        with pytest.raises(StorageError):
            JournalEntry.from_json(
                json.dumps({"op": "add", "fact": ["A", "R"]}))
        with pytest.raises(StorageError):
            JournalEntry.from_json(
                json.dumps({"op": "add", "fact": ["A", "R", 3]}))


class TestJournal:
    def test_append_and_replay(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append(OP_ADD, Fact("A", "R", "B"))
        journal.append(OP_REMOVE, Fact("A", "R", "B"))
        journal.close()
        entries = list(journal.entries())
        assert entries == [
            JournalEntry(OP_ADD, Fact("A", "R", "B")),
            JournalEntry(OP_REMOVE, Fact("A", "R", "B")),
        ]
        assert len(journal) == 2

    def test_missing_file_is_empty(self, tmp_path):
        journal = Journal(tmp_path / "nothing.jsonl")
        assert list(journal.entries()) == []

    def test_torn_final_line_tolerated_when_lenient(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append(OP_ADD, Fact("A", "R", "B"))
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "add", "fact": ["A"')  # torn write
        assert len(list(journal.entries(strict=False))) == 1
        with pytest.raises(StorageError):
            list(journal.entries(strict=True))

    def test_interior_corruption_always_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("garbage\n")
            handle.write(
                json.dumps({"op": "add", "fact": ["A", "R", "B"]}) + "\n")
        journal = Journal(path)
        with pytest.raises(StorageError):
            list(journal.entries(strict=False))

    def test_truncate(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append(OP_ADD, Fact("A", "R", "B"))
        journal.truncate()
        assert list(journal.entries()) == []

    def test_invalid_op_rejected_on_write(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        with pytest.raises(StorageError):
            journal.append("explode", Fact("A", "R", "B"))


class TestSnapshot:
    def test_roundtrip(self, tmp_path):
        state = SnapshotState(
            facts=[Fact("A", "R", "B"), Fact("C", "≺", "D")],
            rule_states={"gen-transitive": False},
            composition_limit=3,
        )
        path = tmp_path / "snap.json"
        write_snapshot(path, state)
        loaded = read_snapshot(path)
        assert set(loaded.facts) == set(state.facts)
        assert loaded.rule_states == {"gen-transitive": False}
        assert loaded.composition_limit == 3

    def test_unlimited_composition_roundtrips(self, tmp_path):
        state = SnapshotState(facts=[], composition_limit=None)
        write_snapshot(tmp_path / "s.json", state)
        assert read_snapshot(tmp_path / "s.json").composition_limit is None

    def test_missing_snapshot(self, tmp_path):
        with pytest.raises(StorageError):
            read_snapshot(tmp_path / "none.json")

    def test_bad_version(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({"version": 99, "facts": []}))
        with pytest.raises(StorageError):
            read_snapshot(path)

    def test_malformed_fact(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({"version": 1, "facts": [["A"]]}))
        with pytest.raises(StorageError):
            read_snapshot(path)

    def test_write_is_atomic_replace(self, tmp_path):
        path = tmp_path / "s.json"
        write_snapshot(path, SnapshotState(facts=[Fact("A", "R", "B")]))
        write_snapshot(path, SnapshotState(facts=[Fact("C", "R", "D")]))
        assert read_snapshot(path).facts == [Fact("C", "R", "D")]
        assert not path.with_suffix(".json.tmp").exists()


class TestDurableSession:
    def test_open_empty_creates_database(self, tmp_path):
        db, session = open_database(tmp_path / "d")
        assert len(db) > 0  # axioms
        session.close()

    def test_mutations_journal_and_recover(self, tmp_path):
        db, session = open_database(tmp_path / "d")
        db.add("JOHN", "LIKES", "FELIX")
        db.add("JOHN", "LIKES", "MARY")
        db.remove_fact(Fact("JOHN", "LIKES", "MARY"))
        session.close()

        recovered, session2 = open_database(tmp_path / "d")
        assert Fact("JOHN", "LIKES", "FELIX") in recovered.facts
        assert Fact("JOHN", "LIKES", "MARY") not in recovered.facts
        session2.close()

    def test_checkpoint_compacts_journal(self, tmp_path):
        db, session = open_database(tmp_path / "d")
        db.add("A", "R", "B")
        session.checkpoint()
        assert len(session.journal) == 0
        db.add("C", "R", "D")
        session.close()
        recovered, session2 = open_database(tmp_path / "d")
        assert Fact("A", "R", "B") in recovered.facts
        assert Fact("C", "R", "D") in recovered.facts
        session2.close()

    def test_rule_state_and_limit_survive_checkpoint(self, tmp_path):
        db, session = open_database(tmp_path / "d")
        db.exclude("gen-transitive")
        db.limit(3)
        session.checkpoint()
        session.close()
        recovered, session2 = open_database(tmp_path / "d")
        assert not recovered.rules.is_enabled("gen-transitive")
        assert recovered.composition_limit == 3
        session2.close()

    def test_duplicate_adds_not_journaled(self, tmp_path):
        db, session = open_database(tmp_path / "d")
        db.add("A", "R", "B")
        db.add("A", "R", "B")
        assert len(session.journal) == 1
        session.close()

    def test_detach_stops_journaling(self, tmp_path):
        db, session = open_database(tmp_path / "d")
        session.detach()
        db.add("A", "R", "B")
        assert len(session.journal) == 0
        session.close()

    def test_checkpoint_without_attach_raises(self, tmp_path):
        session = DurableSession(tmp_path / "d")
        with pytest.raises(RuntimeError):
            session.checkpoint()

    def test_recovered_database_queries(self, tmp_path):
        db, session = open_database(tmp_path / "d")
        db.add("JOHN", "∈", "EMPLOYEE")
        db.add("EMPLOYEE", "EARNS", "SALARY")
        session.close()
        recovered, session2 = open_database(tmp_path / "d")
        assert recovered.query("(JOHN, EARNS, y)") == {("SALARY",)}
        session2.close()

    def test_context_manager(self, tmp_path):
        with DurableSession(tmp_path / "d") as session:
            db = session.recover()
            session.attach(db)
            db.add("A", "R", "B")
        recovered, session2 = open_database(tmp_path / "d")
        assert Fact("A", "R", "B") in recovered.facts
        session2.close()
