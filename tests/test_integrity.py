"""Integrity tests: contradictions, constraints-as-rules, auto-check."""

from __future__ import annotations

import pytest

from repro.core.entities import CONTRA, GT, MEMBER
from repro.core.errors import IntegrityError
from repro.core.facts import Fact, Template, var
from repro.core.store import FactStore
from repro.db import Database
from repro.rules.integrity import (
    contradictory_pairs,
    find_contradictions,
    is_consistent,
)
from repro.rules.rule import Rule

X = var("x")


class TestFindContradictions:
    def test_clean_store(self):
        store = FactStore([Fact("A", "LIKES", "B")])
        assert find_contradictions(store) == []
        assert is_consistent(store)

    def test_declared_contradiction(self):
        store = FactStore([
            Fact("LOVES", CONTRA, "HATES"),
            Fact("JOHN", "LOVES", "MARY"),
            Fact("JOHN", "HATES", "MARY"),
        ])
        violations = find_contradictions(store)
        assert len(violations) == 1
        assert violations[0].conflicting is not None

    def test_symmetric_declaration_reports_once(self):
        store = FactStore([
            Fact("LOVES", CONTRA, "HATES"),
            Fact("HATES", CONTRA, "LOVES"),
            Fact("JOHN", "LOVES", "MARY"),
            Fact("JOHN", "HATES", "MARY"),
        ])
        assert len(find_contradictions(store)) == 1

    def test_no_violation_for_different_pairs(self):
        store = FactStore([
            Fact("LOVES", CONTRA, "HATES"),
            Fact("JOHN", "LOVES", "MARY"),
            Fact("JOHN", "HATES", "SUE"),
        ])
        assert is_consistent(store)

    def test_false_math_fact(self):
        store = FactStore([Fact("5", GT, "8")])
        violations = find_contradictions(store)
        assert len(violations) == 1
        assert violations[0].conflicting is None

    def test_true_math_fact_ok(self):
        store = FactStore([Fact("8", GT, "5")])
        assert is_consistent(store)

    def test_contradictory_pairs_listed(self):
        store = FactStore([Fact("LOVES", CONTRA, "HATES")])
        assert set(contradictory_pairs(store)) == {("LOVES", "HATES")}


class TestDatabaseIntegrity:
    def test_axioms_make_math_comparators_contradictory(self):
        db = Database()
        db.add("JOHN", "AGE", "30")
        db.add("30", "<", "40")   # true, fine
        assert db.check_integrity() == []
        db.add("40", "<", "30")   # false math fact
        assert db.check_integrity()

    def test_closure_level_contradiction_detected(self):
        """A contradiction introduced only by inference is caught:
        synonym substitution derives the clashing fact."""
        db = Database()
        db.add("LOVES", CONTRA, "HATES")
        db.add("JOHN", "LOVES", "MARY")
        db.add("JOHNNY", "HATES", "MARY")
        assert db.check_integrity() == []
        db.add("JOHN", "≈", "JOHNNY")
        violations = db.check_integrity()
        assert violations

    def test_verify_raises(self):
        db = Database()
        db.add("LOVES", CONTRA, "HATES")
        db.add("JOHN", "LOVES", "MARY")
        db.add("JOHN", "HATES", "MARY")
        with pytest.raises(IntegrityError):
            db.verify()

    def test_auto_check_rolls_back(self):
        db = Database(auto_check=True)
        db.add("LOVES", CONTRA, "HATES")
        db.add("JOHN", "LOVES", "MARY")
        with pytest.raises(IntegrityError):
            db.add("JOHN", "HATES", "MARY")
        assert Fact("JOHN", "HATES", "MARY") not in db.facts
        assert db.check_integrity() == []

    def test_constraint_rule_flags_bad_data(self):
        """§2.5: (x, ∈, AGE) ⇒ (x, >, 0) expressed as an ordinary rule;
        a negative age then contradicts the mathematical facts."""
        db = Database()
        age_positive = Rule(
            name="age-positive",
            body=(Template(X, MEMBER, "AGE"),),
            head=(Template(X, GT, "0"),),
            is_constraint=True,
        )
        db.include(age_positive)
        db.add("30", MEMBER, "AGE")
        assert db.check_integrity() == []
        db.add("-5", MEMBER, "AGE")
        violations = db.check_integrity()
        assert any(v.fact == Fact("-5", GT, "0") for v in violations)

    def test_manager_salary_constraint(self):
        """The paper's §2.5 salary example, as a multi-atom rule."""
        y, u, v = var("y"), var("u"), var("v")
        salary_rule = Rule(
            name="manager-earns-more",
            body=(
                Template(X, MEMBER, "EMPLOYEE"),
                Template(y, MEMBER, "EMPLOYEE"),
                Template(X, "EARNS", u),
                Template(y, "EARNS", v),
                Template(X, "MANAGER", y),
            ),
            head=(Template(u, GT, v),),
            is_constraint=True,
        )
        db = Database()
        db.include(salary_rule)
        db.declare_class_relationship("EARNS")
        db.declare_class_relationship("MANAGER")
        db.add("BOSS", MEMBER, "EMPLOYEE")
        db.add("WORKER", MEMBER, "EMPLOYEE")
        db.add("BOSS", "EARNS", "50000")
        db.add("WORKER", "EARNS", "30000")
        db.add("BOSS", "MANAGER", "WORKER")
        assert db.check_integrity() == []
        # Now invert the salaries: the derived (30000, >, 50000) is a
        # false mathematical fact.
        db.remove_fact(Fact("BOSS", "EARNS", "50000"))
        db.add("BOSS", "EARNS", "20000")
        assert any(
            v.fact == Fact("20000", GT, "30000")
            for v in db.check_integrity())
