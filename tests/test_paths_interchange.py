"""Tests for association paths, interchange format, and diagnosis."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.browse.paths import (
    AssociationPath,
    association_paths,
    semantic_distance,
)
from repro.core.entities import ISA, MEMBER
from repro.core.errors import StorageError
from repro.core.facts import Fact
from repro.datasets import music
from repro.db import Database
from repro.rules.provenance import ProvenanceError
from repro.shell import BrowserShell
from repro.storage.interchange import (
    dumps,
    format_fact,
    loads,
    parse_line,
    read_facts,
    write_facts,
)


class TestAssociationPaths:
    def test_direct_fact_is_length_one(self, music_db):
        paths = association_paths(music_db.view(), "LEOPOLD", "MOZART",
                                  max_length=1)
        assert [p.relationship() for p in paths] == ["FATHER-OF"]

    def test_finds_composed_path_without_composition(self, music_db):
        """The §4.1 composed association, discovered by search with
        limit(1) — no composition facts materialized."""
        assert music_db.composition_limit == 1
        paths = association_paths(music_db.view(), "LEOPOLD", "MOZART",
                                  max_length=2)
        names = {p.relationship() for p in paths}
        assert names == {"FATHER-OF", "PERFORMED.PC#9-WAM.COMPOSED-BY"}

    def test_path_naming_matches_composition(self, music_db):
        """Search paths and materialized composition agree on names."""
        music_db.limit(2)
        composed = {
            f.relationship
            for f in music_db.match("(JOHN, *, MOZART)")
        }
        searched = {
            p.relationship()
            for p in association_paths(music_db.view(), "JOHN", "MOZART",
                                       max_length=2)
        }
        assert searched == composed

    def test_sorted_by_semantic_distance(self, music_db):
        paths = association_paths(music_db.view(), "LEOPOLD", "MOZART",
                                  max_length=2)
        assert [p.length for p in paths] == sorted(
            p.length for p in paths)

    def test_special_relationships_not_traversed(self):
        """≺/∈ facts are not association steps — only ordinary facts
        (stored or derived) are.  Here only ≺ facts connect A and C."""
        db = Database()
        db.add("A", ISA, "B")
        db.add("B", ISA, "C")
        assert association_paths(db.view(), "A", "C") == []

    def test_derived_facts_are_steps(self):
        """Inference shortens semantic distance: gen-source pushes
        (B, R, C) down to A, so A reaches C in one step."""
        db = Database()
        db.add("A", ISA, "B")
        db.add("B", "R", "C")
        paths = association_paths(db.view(), "A", "C")
        assert [p.length for p in paths] == [1]

    def test_simple_paths_only(self):
        db = Database()
        db.add("A", "R", "B")
        db.add("B", "R", "A")
        db.add("B", "R", "C")
        paths = association_paths(db.view(), "A", "C", max_length=5)
        assert len(paths) == 1
        assert paths[0].length == 2

    def test_limit_stops_early(self, music_db):
        paths = association_paths(music_db.view(), "JOHN", "MOZART",
                                  max_length=2, limit=1)
        assert len(paths) == 1

    def test_entities_and_render(self, music_db):
        path = association_paths(music_db.view(), "LEOPOLD", "MOZART",
                                 max_length=1)[0]
        assert path.entities() == ("LEOPOLD", "MOZART")
        assert path.render() == "LEOPOLD --FATHER-OF--> MOZART"

    def test_invalid_max_length(self, music_db):
        with pytest.raises(ValueError):
            association_paths(music_db.view(), "A", "B", max_length=0)

    def test_semantic_distance(self, music_db):
        view = music_db.view()
        assert semantic_distance(view, "LEOPOLD", "MOZART") == 1
        assert semantic_distance(view, "JOHN", "MOZART") == 1
        assert semantic_distance(view, "JOHN", "NOBODY") is None

    def test_shell_paths_command(self, music_db):
        shell = BrowserShell(music_db)
        output = shell.execute("paths LEOPOLD MOZART 2")
        assert "--FATHER-OF--> MOZART" in output
        assert "--PERFORMED--> PC#9-WAM" in output
        assert shell.execute("paths A B zero").startswith("usage:")
        assert shell.execute("paths NOBODY NOONE") \
            == "(no association paths)"


class TestInterchange:
    def test_round_trip(self, music_db):
        facts = list(music_db.facts)
        assert set(loads(dumps(facts))) == set(facts)

    def test_quoting(self):
        fact = Fact('NEW YORK', 'SAYS "HI"', "back\\slash")
        line = format_fact(fact)
        assert parse_line(line) == fact

    def test_special_glyphs_unquoted(self):
        assert format_fact(Fact("A", "≺", "B")) == "A ≺ B"

    def test_comments_and_blanks_skipped(self):
        text = "# heading\n\nA R B\n  # indented comment\nC S D\n"
        assert loads(text) == [Fact("A", "R", "B"), Fact("C", "S", "D")]

    def test_wrong_arity_rejected(self):
        with pytest.raises(StorageError, match="expected 3"):
            parse_line("A R", 7)
        with pytest.raises(StorageError):
            parse_line("A R B C", 7)

    def test_unterminated_quote_rejected(self):
        with pytest.raises(StorageError, match="unterminated"):
            parse_line('A R "oops', 1)

    def test_file_round_trip(self, tmp_path, music_db):
        path = tmp_path / "heap.facts"
        count = write_facts(path, music_db.facts, header="music world")
        assert count == len(music_db.facts)
        assert set(read_facts(path)) == set(music_db.facts)
        assert path.read_text().startswith("# music world")

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            read_facts(tmp_path / "nope.facts")

    def test_output_sorted_for_stable_diffs(self):
        text = dumps([Fact("Z", "R", "A"), Fact("A", "R", "Z")])
        lines = text.strip().splitlines()
        assert lines == sorted(lines)

    def test_shell_export_import(self, tmp_path, music_db):
        shell = BrowserShell(music_db)
        path = tmp_path / "out.facts"
        assert shell.execute(f"export {path}").startswith("wrote")
        fresh = BrowserShell(Database())
        message = fresh.execute(f"import {path}")
        assert message == f"added {len(music_db.facts) - 8} new facts" \
            or message.startswith("added")
        assert fresh.execute("ask (JOHN, LIKES, FELIX)") == "true"


class TestDiagnosis:
    def _contradictory_db(self, trace=True) -> Database:
        db = Database(trace=trace)
        db.add("LOVES", "⊥", "HATES")
        db.add("JOHN", "≈", "JOHNNY")
        db.add("JOHN", "LOVES", "MARY")
        db.add("JOHNNY", "HATES", "MARY")
        return db

    def test_culprits_are_stored_facts(self):
        db = self._contradictory_db()
        diagnoses = db.diagnose()
        assert diagnoses
        for diagnosis in diagnoses:
            for culprit in diagnosis.culprits:
                assert culprit in db.facts

    def test_synonym_bridge_identified(self):
        db = self._contradictory_db()
        culprits = set(db.diagnose()[0].culprits)
        assert Fact("JOHN", "≈", "JOHNNY") in culprits

    def test_removing_a_culprit_repairs(self):
        db = self._contradictory_db()
        db.remove_fact(Fact("JOHN", "≈", "JOHNNY"))
        assert db.check_integrity() == []
        assert db.diagnose() == []

    def test_consistent_database_diagnoses_empty(self):
        db = Database(trace=True)
        db.add("A", "R", "B")
        assert db.diagnose() == []

    def test_requires_trace(self):
        db = self._contradictory_db(trace=False)
        with pytest.raises(ProvenanceError):
            db.diagnose()

    def test_render(self):
        text = self._contradictory_db().diagnose()[0].render()
        assert "stored facts responsible:" in text

    def test_shell_diagnose(self):
        shell = BrowserShell(self._contradictory_db())
        output = shell.execute("diagnose")
        assert "stored facts responsible:" in output

    def test_shell_diagnose_consistent(self, music_db):
        shell = BrowserShell(music_db)
        assert shell.execute("diagnose").startswith("consistent")

    def test_shell_diagnose_without_trace_lists_violations(self):
        shell = BrowserShell(self._contradictory_db(trace=False))
        output = shell.execute("diagnose")
        assert "⊥" in output
        assert "trace=True" in output
