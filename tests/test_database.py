"""Database facade tests: lifecycle, caching, stats, axioms."""

from __future__ import annotations

import pytest

from repro.core.entities import INV, ISA, MEMBER
from repro.core.facts import Fact
from repro.db import AXIOM_FACTS, Database


class TestConstruction:
    def test_axioms_seeded_by_default(self):
        db = Database()
        for axiom in AXIOM_FACTS:
            assert axiom in db.facts

    def test_axioms_can_be_disabled(self):
        db = Database(with_axioms=False)
        assert len(db) == 0

    def test_initial_facts(self):
        db = Database([Fact("A", "R", "B")])
        assert Fact("A", "R", "B") in db.facts

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            Database(engine="quantum")

    def test_repr(self):
        text = repr(Database())
        assert "facts" in text and "rules" in text


class TestMutation:
    def test_add_returns_novelty(self, empty_db):
        assert empty_db.add("A", "R", "B")
        assert not empty_db.add("A", "R", "B")

    def test_add_validates_components(self, empty_db):
        with pytest.raises(Exception):
            empty_db.add("", "R", "B")

    def test_remove(self, empty_db):
        empty_db.add("A", "R", "B")
        assert empty_db.remove_fact(Fact("A", "R", "B"))
        assert not empty_db.remove_fact(Fact("A", "R", "B"))

    def test_add_facts_counts(self, empty_db):
        added = empty_db.add_facts(
            [Fact("A", "R", "B"), Fact("A", "R", "B"), Fact("C", "R", "D")])
        assert added == 2


class TestClosureLifecycle:
    def test_closure_cached(self, paper_db):
        first = paper_db.closure()
        assert paper_db.closure() is first

    def test_insertion_maintained_incrementally(self, paper_db):
        """With the default incremental mode, insertion extends the
        cached closure in place instead of discarding it."""
        first = paper_db.closure()
        paper_db.add("NEW", "R", "B")
        after = paper_db.closure()
        assert after is first
        assert Fact("NEW", "R", "B") in after.store

    def test_insertion_recomputes_when_incremental_off(self):
        from repro.datasets import paper as paper_dataset

        db = paper_dataset.load(Database(incremental=False))
        first = db.closure()
        db.add("NEW", "R", "B")
        assert db.closure() is not first

    def test_removal_maintained_by_delete_rederive(self, paper_db):
        paper_db.add("NEW", "R", "B")
        first = paper_db.closure()
        paper_db.remove_fact(Fact("NEW", "R", "B"))
        after = paper_db.closure()
        assert after is first  # maintained in place
        assert Fact("NEW", "R", "B") not in after.store

    def test_removal_recomputes_when_incremental_off(self):
        from repro.datasets import paper as paper_dataset

        db = paper_dataset.load(Database(incremental=False))
        db.add("NEW", "R", "B")
        first = db.closure()
        db.remove_fact(Fact("NEW", "R", "B"))
        assert db.closure() is not first

    def test_classification_declaration_invalidates(self, paper_db):
        """(r, ∈, R_c) is non-monotone for the closure: it must force
        recomputation, not incremental extension."""
        assert paper_db.ask("(JOHN, WORKS-FOR, DEPARTMENT)")
        paper_db.declare_class_relationship("WORKS-FOR")
        assert not paper_db.ask("(JOHN, WORKS-FOR, DEPARTMENT)")

    def test_rule_toggle_invalidates(self, paper_db):
        first = paper_db.closure()
        paper_db.exclude("gen-transitive")
        assert paper_db.closure() is not first

    def test_limit_change_invalidates(self, paper_db):
        first = paper_db.closure()
        paper_db.limit(2)
        assert paper_db.closure() is not first

    def test_contains_checks_closure(self, paper_db):
        # Derived fact, never stored:
        derived = Fact("JOHN", "WORKS-FOR", "DEPARTMENT")
        assert derived not in paper_db.facts
        assert derived in paper_db

    def test_contains_checks_virtual(self, paper_db):
        assert Fact("25000", "<", "26000") in paper_db

    def test_closure_includes_composition_when_enabled(self, empty_db):
        empty_db.add("A", "R", "B")
        empty_db.add("B", "S", "C")
        empty_db.limit(2)
        closure = empty_db.closure()
        assert Fact("A", "R.B.S", "C") in closure.store

    def test_derived_count_includes_composition(self, empty_db):
        empty_db.add("A", "R", "B")
        empty_db.add("B", "S", "C")
        empty_db.limit(2)
        result = empty_db.closure()
        assert result.derived_count >= 1


class TestClassDeclarations:
    def test_declare_class_relationship_stops_inheritance(self, empty_db):
        empty_db.add("JOHN", MEMBER, "EMPLOYEE")
        empty_db.add("EMPLOYEE", "TOTAL-NUMBER", "180")
        assert empty_db.ask("(JOHN, TOTAL-NUMBER, 180)")  # default R_i
        empty_db.declare_class_relationship("TOTAL-NUMBER")
        assert not empty_db.ask("(JOHN, TOTAL-NUMBER, 180)")

    def test_declare_individual_overrides(self, empty_db):
        empty_db.add("JOHN", MEMBER, "EMPLOYEE")
        empty_db.add("EMPLOYEE", "EARNS", "SALARY")
        empty_db.declare_class_relationship("EARNS")
        empty_db.declare_individual_relationship("EARNS")
        assert empty_db.ask("(JOHN, EARNS, SALARY)")


class TestStats:
    def test_stats_shape(self, paper_db):
        stats = paper_db.stats()
        assert stats["base_facts"] == len(paper_db.facts)
        assert stats["closure_facts"] >= stats["base_facts"]
        assert stats["derived_facts"] == (
            stats["closure_facts"] - stats["base_facts"])
        assert "gen-transitive" in stats["enabled_rules"]
        assert stats["composition_limit"] == 1

    def test_len(self, empty_db):
        before = len(empty_db)
        empty_db.add("A", "R", "B")
        assert len(empty_db) == before + 1


class TestMatchHelper:
    def test_match_text_template(self, paper_db):
        facts = paper_db.match("(JOHN, EARNS, *)")
        assert Fact("JOHN", "EARNS", "$26000") in facts
        assert Fact("JOHN", "EARNS", "SALARY") in facts

    def test_match_sorted_unique(self, paper_db):
        facts = paper_db.match("(*, *, *)")
        assert facts == sorted(set(facts))


class TestInversionAxiom:
    def test_user_inversions_symmetric_out_of_the_box(self, empty_db):
        empty_db.add("TEACHES", INV, "TAUGHT-BY")
        assert empty_db.ask("(TAUGHT-BY, INV, TEACHES)")

    def test_contradiction_symmetric_out_of_the_box(self, empty_db):
        empty_db.add("LOVES", "⊥", "HATES")
        assert empty_db.ask("(HATES, CONTRA, LOVES)")
