"""Probing and automatic retraction tests (§5), including the paper's
worked examples (E2, E3) and soundness properties of broadening."""

from __future__ import annotations

import pytest

from repro.browse.probe import GeneralizationHierarchy
from repro.browse.retraction import (
    ConjunctiveQuery,
    RetractedQuery,
    probe,
    retraction_set,
)
from repro.core.entities import BOTTOM, ISA, MEMBER, TOP
from repro.core.errors import QueryError
from repro.core.facts import Fact, Template, var
from repro.db import Database
from repro.datasets import university
from repro.datasets.synthetic import deep_retraction_workload
from repro.query.parser import parse_query

X, Z = var("x"), var("z")


class TestConjunctiveQuery:
    def test_from_text(self):
        cq = ConjunctiveQuery.from_query(
            "(STUDENT, LOVE, z) and (z, COSTS, FREE)")
        assert len(cq.templates) == 2
        assert cq.free == (var("z"),)

    def test_from_single_template(self):
        cq = ConjunctiveQuery.from_query("(z, LOVES, OPERA)")
        assert cq.templates == (Template(var("z"), "LOVES", "OPERA"),)

    def test_exists_unwrapped(self):
        cq = ConjunctiveQuery.from_query(
            "exists x: (x, in, BOOK) and (x, AUTHOR, y)")
        assert cq.free == (var("y"),)
        assert len(cq.templates) == 2

    def test_disjunction_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery.from_query("(A, R, B) or (C, S, D)")

    def test_to_query_roundtrip(self):
        cq = ConjunctiveQuery.from_query(
            "exists x: (x, in, BOOK) and (x, AUTHOR, y)")
        query = cq.to_query()
        assert query.variables == (var("y"),)


class TestRetractionSet:
    def _set_for(self, text, facts):
        db = Database()
        db.add_facts(facts)
        cq = ConjunctiveQuery.from_query(text)
        retracted = RetractedQuery(query=cq, path=())
        return retraction_set(retracted, db.hierarchy())

    def test_opera_example(self):
        """§5.1: the three minimally broader queries of
        (z, LOVES, OPERA)."""
        candidates = self._set_for("(z, LOVES, OPERA)", [
            Fact("LOVES", ISA, "ENJOYS"),
            Fact("OPERA", ISA, "MUSIC"),
            Fact("OPERA", ISA, "THEATER"),
        ])
        queries = {c.query.templates[0] for c in candidates}
        assert queries == {
            Template(var("z"), "ENJOYS", "OPERA"),
            Template(var("z"), "LOVES", "MUSIC"),
            Template(var("z"), "LOVES", "THEATER"),
        }

    def test_source_position_specializes(self):
        """§5.2: FRESHMAN instead of STUDENT."""
        candidates = self._set_for("(STUDENT, LOVE, z)", [
            Fact("FRESHMAN", ISA, "STUDENT"),
            Fact("STUDENT", "LOVE", "COFFEE"),
        ])
        replacements = {
            (c.path[0].old, c.path[0].new) for c in candidates}
        assert ("STUDENT", "FRESHMAN") in replacements

    def test_relationship_with_no_parent_goes_to_top(self):
        candidates = self._set_for("(x, COSTS, FREE)", [
            Fact("COFFEE", "COSTS", "CHEAP"),
            Fact("FREE", ISA, "CHEAP"),
        ])
        replacements = {
            (c.path[0].old, c.path[0].new) for c in candidates}
        assert ("COSTS", TOP) in replacements
        assert ("FREE", "CHEAP") in replacements

    def test_unknown_entity_never_replaced(self):
        candidates = self._set_for("(STUDENT, LUVS, z)", [
            Fact("FRESHMAN", ISA, "STUDENT"),
            Fact("STUDENT", "LOVE", "COFFEE"),
        ])
        for candidate in candidates:
            for step in candidate.path:
                assert step.old != "LUVS"

    def test_membership_source_not_specialized(self):
        """(x, ∈, C) has a variable source; with a ground source no
        sound rule specializes it, so no source retraction appears."""
        candidates = self._set_for("(JOHN, in, EMPLOYEE)", [
            Fact("JOHN", MEMBER, "EMPLOYEE"),
            Fact("INTERN", ISA, "JOHN"),  # would be a source cover
            Fact("EMPLOYEE", ISA, "PERSON"),
        ])
        positions = {c.path[0].position for c in candidates}
        assert "source" not in positions
        assert "target" in positions

    def test_weak_template_deleted(self):
        candidates = self._set_for(
            "(STUDENT, LOVE, z) and (z, TOP, x)", [
                Fact("STUDENT", "LOVE", "COFFEE"),
            ])
        deletions = [c for c in candidates
                     if c.path and c.path[0].kind == "delete"]
        assert deletions
        assert len(deletions[0].query.templates) == 1

    def test_weak_single_template_query_not_emptied(self):
        db = Database()
        db.add("A", "R", "B")
        cq = ConjunctiveQuery(
            templates=(Template(var("x"), TOP, var("y")),),
            free=(var("x"), var("y")))
        candidates = retraction_set(
            RetractedQuery(query=cq, path=()), db.hierarchy())
        assert candidates == []

    def test_deletion_drops_orphaned_free_variables(self):
        db = Database()
        db.add("STUDENT", "LOVE", "COFFEE")
        cq = ConjunctiveQuery(
            templates=(Template("STUDENT", "LOVE", var("z")),
                       Template(var("q"), TOP, var("z2"))),
            free=(var("z"), var("q")))
        candidates = retraction_set(
            RetractedQuery(query=cq, path=()), db.hierarchy())
        deletion = next(
            c for c in candidates if c.path[0].kind == "delete")
        assert deletion.query.free == (var("z"),)


class TestProbeWorkedExamples:
    def test_students_love_free_menu(self, university_db):
        """E3: the §5.2 retraction menu, verbatim shape."""
        result = university_db.probe(university.STUDENTS_LOVE_FREE)
        assert not result.succeeded
        assert len(result.waves) == 1
        descriptions = [s.describe() for s in result.successes]
        assert descriptions == [
            "FRESHMAN instead of STUDENT",
            "CHEAP instead of FREE",
        ]
        menu = result.menu()
        assert menu.splitlines()[0] == "Query failed. Retrying"
        assert "1. Success with FRESHMAN instead of STUDENT" in menu
        assert "2. Success with CHEAP instead of FREE" in menu
        assert menu.splitlines()[-1] == "You may select"

    def test_menu_selection_returns_values(self, university_db):
        result = university_db.probe(university.STUDENTS_LOVE_FREE)
        assert result.select(1) == {("CAMPUS-CONCERTS",)}
        assert result.select(2) == {("COFFEE",)}

    def test_quarterback_example(self, university_db):
        result = university_db.probe(university.QUARTERBACKS_FROM_USC)
        assert not result.succeeded
        described = {s.describe() for s in result.successes}
        assert "ATTENDED instead of GRADUATE-OF" in described
        values = {
            s.describe(): s.value for s in result.successes}
        assert values["ATTENDED instead of GRADUATE-OF"] == {("JAKE",)}

    def test_successful_query_probes_trivially(self, university_db):
        result = university_db.probe("(ANNA, LOVES, OPERA)")
        assert result.succeeded
        assert result.value == {()}
        assert result.menu() == "Query succeeded."

    def test_misspelling_diagnosed(self, university_db):
        """§5.2: 'no such database entities'."""
        result = university_db.probe(university.MISSPELLED)
        assert not result.succeeded
        assert result.exhausted
        assert result.unknown_entities == ("LUVS",)
        assert "No such database entities: LUVS" in result.menu()

    def test_misspelling_suggests_close_names(self, university_db):
        result = university_db.probe(university.MISSPELLED)
        assert "LOVES" in result.spelling_suggestions["LUVS"]
        assert "(did you mean LOVES?)" in result.menu()

    def test_no_suggestions_for_truly_alien_names(self, university_db):
        result = university_db.probe("(STUDENT, XQZWV-99, z)")
        assert result.exhausted
        assert "XQZWV-99" not in result.spelling_suggestions
        assert "did you mean" not in result.menu()

    def test_opera_probe_succeeds_directly(self, university_db):
        result = university_db.probe("(z, LOVES, OPERA)")
        assert result.succeeded
        assert ("ANNA",) in result.value


class TestWaves:
    def test_deep_retraction_climbs_one_level_per_wave(self):
        facts, query = deep_retraction_workload(4)
        db = Database()
        db.add_facts(facts)
        result = db.probe(query)
        assert not result.succeeded
        assert len(result.waves) == 4
        assert result.waves[-1].successes

    def test_max_waves_abandons(self):
        facts, query = deep_retraction_workload(6)
        db = Database()
        db.add_facts(facts)
        result = db.probe(query, max_waves=2)
        assert not result.succeeded
        assert len(result.waves) == 2
        assert not result.exhausted

    def test_critical_point(self):
        """A failed query whose every retraction succeeds (§5.2)."""
        db = Database()
        db.add("A1", ISA, "A")
        db.add("B", ISA, "B2")
        db.add("A1", "R", "B")     # source retraction succeeds
        db.add("A", "R", "B2")     # target retraction succeeds
        db.add("A", "S", "B")      # Δ-relationship retraction succeeds
        result = db.probe("(A, R, B)")
        assert not result.succeeded
        assert result.critical
        assert result.waves[0].all_succeeded

    def test_waves_deduplicate_queries(self):
        """Two generalization orders reach the same query; it must be
        attempted once."""
        db = Database()
        db.add("A", ISA, "A2")
        db.add("B", ISA, "B2")
        db.add("X", "R", "Y")  # unrelated success target keeps db busy
        result = db.probe("(q, R2, A) and (q, R2, B)", max_waves=6)
        all_attempted = [
            str(c.query) for wave in result.waves for c in wave.attempted]
        assert len(all_attempted) == len(set(all_attempted))


class TestBroadnessSoundness:
    """If Q succeeds, every minimally broader query succeeds (§5.1)."""

    def test_answers_monotone_under_retraction(self, university_db):
        queries = [
            "(z, LOVES, OPERA)",
            "(STUDENT, LOVE, z)",
            "(z, in, QUARTERBACK)",
            "(FRESHMAN, LOVE, z) and (z, COSTS, FREE)",
        ]
        evaluator = university_db.evaluator()
        hierarchy = university_db.hierarchy()
        for text in queries:
            cq = ConjunctiveQuery.from_query(text)
            original_value = evaluator.evaluate(cq.to_query())
            for candidate in retraction_set(
                    RetractedQuery(query=cq, path=()), hierarchy):
                broader_value = evaluator.evaluate(
                    candidate.query.to_query())
                assert original_value <= broader_value, (
                    f"{candidate.query} lost answers of {text}")
