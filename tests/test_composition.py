"""Composition inference tests (§3.7, §6.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entities import ISA, MEMBER, composition_length
from repro.core.facts import Fact
from repro.core.store import FactStore
from repro.datasets.synthetic import chain_facts
from repro.rules.composition import (
    COMPOSITION_OFF,
    composable,
    compose_closure,
    compose_pair,
)

TOM_CS = Fact("TOM", "ENROLLED-IN", "CS100")
CS_HARRY = Fact("CS100", "TAUGHT-BY", "HARRY")


class TestComposable:
    def test_chained_facts_compose(self):
        assert composable(TOM_CS, CS_HARRY)

    def test_disconnected_facts_do_not(self):
        assert not composable(TOM_CS, Fact("MATH101", "TAUGHT-BY", "SUE"))

    def test_cyclicity_guard(self):
        """The paper's JOHN-loves-MARY-loves-JOHN example must not
        compose."""
        loves = Fact("JOHN", "LOVES", "MARY")
        loved = Fact("MARY", "LOVES", "JOHN")
        assert not composable(loves, loved)

    def test_special_relationships_do_not_compose(self):
        isa = Fact("CS100", ISA, "COURSE")
        member = Fact("TOM", MEMBER, "STUDENT")
        assert not composable(TOM_CS, isa)
        assert not composable(member, Fact("STUDENT", "LOVE", "X"))


class TestComposePair:
    def test_paper_example(self):
        composed = compose_pair(TOM_CS, CS_HARRY)
        assert composed == Fact(
            "TOM", "ENROLLED-IN.CS100.TAUGHT-BY", "HARRY")

    def test_composed_length(self):
        composed = compose_pair(TOM_CS, CS_HARRY)
        assert composition_length(composed.relationship) == 2


class TestComposeClosure:
    def test_off_by_default_value(self):
        store = FactStore([TOM_CS, CS_HARRY])
        result = compose_closure(store, COMPOSITION_OFF)
        assert result.count == 0

    def test_single_level(self):
        store = FactStore([TOM_CS, CS_HARRY])
        result = compose_closure(store, 2)
        assert result.facts == {
            Fact("TOM", "ENROLLED-IN.CS100.TAUGHT-BY", "HARRY")}

    def test_limit_two_blocks_longer_chains(self):
        store = FactStore(chain_facts(4))
        lengths = {
            composition_length(f.relationship)
            for f in compose_closure(store, 2).facts
        }
        assert lengths == {2}

    def test_limit_three_allows_three(self):
        store = FactStore(chain_facts(4))
        lengths = {
            composition_length(f.relationship)
            for f in compose_closure(store, 3).facts
        }
        assert lengths == {2, 3}

    def test_chain_counts(self):
        """A simple chain of n facts has C(n, 2) contiguous subpaths of
        length >= 2."""
        n = 12
        store = FactStore(chain_facts(n))
        result = compose_closure(store, None)
        assert result.count == n * (n - 1) // 2

    def test_unlimited_terminates_on_cycle(self):
        cycle = [Fact("A", "R", "B"), Fact("B", "R", "C"),
                 Fact("C", "R", "A")]
        result = compose_closure(FactStore(cycle), None)
        # Simple paths only: each of the 3 length-2 arcs, and nothing
        # longer (a length-3 chain would close the cycle).
        assert result.count == 3

    def test_bounded_limit_on_cycle_follows_paper_guard(self):
        cycle = [Fact("A", "R", "B"), Fact("B", "R", "C"),
                 Fact("C", "R", "A")]
        result = compose_closure(FactStore(cycle), 4)
        # With the paper's endpoint guard only, longer-than-simple
        # chains are allowed as long as the endpoints differ.
        lengths = sorted(
            composition_length(f.relationship) for f in result.facts)
        assert lengths.count(2) == 3
        assert max(lengths) == 4

    def test_two_hop_diamond(self):
        facts = [
            Fact("A", "R", "B1"), Fact("A", "R", "B2"),
            Fact("B1", "S", "C"), Fact("B2", "S", "C"),
        ]
        result = compose_closure(FactStore(facts), 2)
        assert result.facts == {
            Fact("A", "R.B1.S", "C"), Fact("A", "R.B2.S", "C")}

    def test_composition_does_not_mutate_store(self):
        store = FactStore([TOM_CS, CS_HARRY])
        before = set(store)
        compose_closure(store, 3)
        assert set(store) == before

    def test_self_loop_excluded_from_unlimited_composition(self):
        """A self-loop is never on a simple path, so unlimited
        composition ignores it (and therefore terminates)."""
        store = FactStore([Fact("A", "R", "A"), Fact("A", "S", "B")])
        result = compose_closure(store, None)
        assert result.count == 0

    def test_self_loop_composes_under_bounded_limit(self):
        """Bounded composition uses exactly the paper's endpoint guard,
        which allows chaining through a self-loop."""
        store = FactStore([Fact("A", "R", "A"), Fact("A", "S", "B")])
        result = compose_closure(store, 2)
        assert Fact("A", "R.A.S", "B") in result.facts


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=2, max_value=8),
       limit=st.integers(min_value=2, max_value=6))
def test_chain_lengths_never_exceed_limit(n, limit):
    store = FactStore(chain_facts(n))
    result = compose_closure(store, limit)
    for fact in result.facts:
        assert composition_length(fact.relationship) <= limit


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=2, max_value=7))
def test_larger_limits_are_supersets(n):
    store = FactStore(chain_facts(n))
    previous = set()
    for limit in range(2, n + 1):
        current = compose_closure(store, limit).facts
        assert previous <= current
        previous = current
