"""Replica consistency: a delta-replayed replica is bit-identical.

The replication tentpole only works if applying the writer's coalesced
delta stream through the database's incremental maintenance reproduces
the primary *exactly* — same base heap, same derived closure, same
query answers.  This suite drives randomized mutation streams (the
same seeded-random database style as the engine-equivalence harness)
through a :class:`~repro.serve.DatabaseService`, captures the emitted
:class:`~repro.serve.replica.Delta` records in-process (no worker
process needed — the protocol is plain data), replays them onto a
replica bootstrapped from the initial snapshot, and asserts identity.
"""

from __future__ import annotations

import random

import pytest

from repro.core.facts import Fact
from repro.db import Database
from repro.serve import DatabaseService
from repro.serve.replica import (
    apply_delta_message,
    build_replica,
    capture_bootstrap,
)

from .test_engine_equivalence import _random_database

SEEDS = range(12)


def _assert_identical(replica: Database, reference: Database,
                      seed: int) -> None:
    """Bit-identical state: base heap, derived closure, answers."""
    assert set(replica.facts) == set(reference.facts), f"seed {seed}"
    assert set(replica.closure().store) == \
        set(reference.closure().store), f"seed {seed}"
    # Spot-check answers through the public query path too.
    for entity in ("C0", "E0", "E1"):
        assert replica.query(f"({entity}, x, y)") == \
            reference.query(f"({entity}, x, y)"), f"seed {seed}"


def _drive(service: DatabaseService, rng: random.Random,
           operations: int) -> None:
    """A randomized mutation stream: adds, removes of known facts,
    batch adds, and (occasionally) rule/limit control operations."""
    tickets = []
    for index in range(operations):
        roll = rng.random()
        if roll < 0.55:
            tickets.append(service.add_async(
                Fact(f"E{rng.randint(0, 5)}", "∈",
                     f"C{rng.randint(0, 3)}")))
        elif roll < 0.80:
            existing = list(service.read_view().facts)
            if existing:
                tickets.append(service.remove_async(
                    rng.choice(existing)))
        elif roll < 0.90:
            tickets.append(service.add_facts_async([
                Fact(f"B{index}", "R{0}".format(rng.randint(0, 2)),
                     f"E{rng.randint(0, 5)}")
                for _ in range(rng.randint(1, 4))]))
        elif roll < 0.95:
            service.limit(rng.choice([1, 2, 3]))
        else:
            # Toggle a built-in rule off and (usually) back on.
            service.exclude("syn-symmetry")
            if rng.random() < 0.8:
                service.include("syn-symmetry")
    for ticket in tickets:
        ticket.result(timeout=60.0)


@pytest.mark.parametrize("seed", SEEDS)
def test_delta_replay_is_bit_identical(seed):
    facts = _random_database(seed)
    service = DatabaseService(Database(facts))
    deltas = []
    try:
        snap, version = service.published_state()
        replica = build_replica(capture_bootstrap(snap, version))
        service.subscribe_deltas(deltas.append)
        _drive(service, random.Random(1000 + seed), 30)
        reference, final_version = service.published_state()
    finally:
        service.close()
    for delta in deltas:
        if delta.version > version:
            apply_delta_message(replica, delta)
            version = delta.version
    assert version == final_version
    _assert_identical(replica, reference, seed)


@pytest.mark.parametrize("seed", range(4))
def test_overlap_replay_is_idempotent(seed):
    """The disk-bootstrap overlap case: a replica whose bootstrap
    state is already *ahead* of the delta suffix it then receives
    (journal replay outran the captured sequence) must be unchanged by
    re-applying those deltas — re-adding a present fact and
    re-removing an absent one are no-ops."""
    facts = _random_database(seed)
    service = DatabaseService(Database(facts))
    deltas = []
    try:
        service.subscribe_deltas(deltas.append)
        _drive(service, random.Random(2000 + seed), 15)
        reference, final_version = service.published_state()
        # Bootstrap from the FINAL state, as a disk replay would after
        # the journal already contains every batch...
        replica = build_replica(
            capture_bootstrap(reference, final_version))
    finally:
        service.close()
    # ...then re-apply the fact content of a contiguous delta suffix
    # that state already reflects.  (Controls are not re-applied: the
    # pool ships configuration explicitly, not through the journal.)
    for delta in deltas[-5:]:
        replica.apply_delta(delta.adds, delta.removes)
    _assert_identical(replica, reference, seed)


def test_define_rule_ships_as_control():
    service = DatabaseService(Database())
    deltas = []
    try:
        snap, version = service.published_state()
        replica = build_replica(capture_bootstrap(snap, version))
        service.subscribe_deltas(deltas.append)
        service.define_rule(
            "sym", "(a, MARRIED-TO, b) => (b, MARRIED-TO, a)")
        service.add("ANN", "MARRIED-TO", "BOB")
        reference, _ = service.published_state()
    finally:
        service.close()
    for delta in deltas:
        apply_delta_message(replica, delta)
    assert replica.ask("(BOB, MARRIED-TO, ANN)")
    assert set(replica.closure().store) == set(reference.closure().store)


def test_coalesced_add_remove_cancels():
    """A fact added and removed inside one batch must not reach the
    replica at all (net-effect coalescing)."""
    service = DatabaseService(Database(), batch_window=0.05)
    deltas = []
    try:
        snap, version = service.published_state()
        replica = build_replica(capture_bootstrap(snap, version))
        service.subscribe_deltas(deltas.append)
        fact = Fact("FLASH", "∈", "TRANSIENT")
        keep = Fact("KEEP", "∈", "DURABLE")
        t1 = service.add_async(fact)
        t2 = service.remove_async(fact)
        t3 = service.add_async(keep)
        for ticket in (t1, t2, t3):
            ticket.result(timeout=30.0)
        reference, _ = service.published_state()
    finally:
        service.close()
    shipped = [f for d in deltas for f in d.adds + d.removes]
    assert keep in shipped
    for delta in deltas:
        apply_delta_message(replica, delta)
    assert set(replica.facts) == set(reference.facts)
    assert not replica.ask("(FLASH, ∈, TRANSIENT)")
