"""Tests for the rule surface syntax (rules/parse.py) and
Database.define_rule."""

from __future__ import annotations

import pytest

from repro.core.errors import RuleError
from repro.core.facts import Fact, Template, var
from repro.db import Database
from repro.rules.parse import parse_rule
from repro.rules.rule import Distinct

A, B, X = var("a"), var("b"), var("x")


class TestParseRule:
    def test_single_atom_sides(self):
        rule = parse_rule("(x, in, AGE) => (x, >, 0)", "age")
        assert rule.body == (Template(X, "∈", "AGE"),)
        assert rule.head == (Template(X, ">", "0"),)

    def test_conjunctive_body(self):
        rule = parse_rule(
            "(a, R, b) and (b, S, a) => (a, BOTH, b)", "both")
        assert len(rule.body) == 2

    def test_conjunctive_head(self):
        rule = parse_rule(
            "(a, SIBLING, b) => (a, RELATED, b) and (b, RELATED, a)",
            "sib")
        assert len(rule.head) == 2

    def test_guards(self):
        rule = parse_rule(
            "(s, R, t) and (t, R, u) => (s, R, u) where s != u", "t")
        assert rule.conditions == (Distinct(var("s"), var("u")),)

    def test_multiple_guards(self):
        rule = parse_rule(
            "(s, R, t) => (t, R, s) where s != t, s != JOHN", "g")
        assert len(rule.conditions) == 2
        assert Distinct(var("s"), "JOHN") in rule.conditions

    def test_aliases_apply(self):
        rule = parse_rule("(x, isa, B) => (x, in, C)", "alias")
        assert rule.body[0].relationship == "≺"
        assert rule.head[0].relationship == "∈"

    def test_constraint_flag(self):
        rule = parse_rule("(x, in, AGE) => (x, >, 0)", "age",
                          is_constraint=True)
        assert rule.is_constraint

    def test_description_keeps_text(self):
        rule = parse_rule("(a, R, b) => (b, R, a)", "r")
        assert "(a, R, b) => (b, R, a)" in rule.description

    def test_missing_arrow(self):
        with pytest.raises(RuleError, match="=>"):
            parse_rule("(a, R, b) and (b, R, a)", "bad")

    def test_two_arrows(self):
        with pytest.raises(RuleError):
            parse_rule("(a,R,b) => (b,R,a) => (a,R,a)", "bad")

    def test_disjunctive_side_rejected(self):
        with pytest.raises(RuleError, match="conjunction"):
            parse_rule("(a, R, b) or (a, S, b) => (a, T, b)", "bad")

    def test_unsafe_head_rejected(self):
        with pytest.raises(RuleError, match="unsafe"):
            parse_rule("(a, R, b) => (a, R, c)", "bad")

    def test_bad_guard_rejected(self):
        with pytest.raises(RuleError, match="guard"):
            parse_rule("(a, R, b) => (b, R, a) where a > b", "bad")


class TestDefineRule:
    def test_symmetric_relationship(self):
        db = Database()
        db.define_rule("sym", "(a, MARRIED-TO, b) => (b, MARRIED-TO, a)")
        db.add("JOHN", "MARRIED-TO", "MARY")
        assert db.ask("(MARY, MARRIED-TO, JOHN)")

    def test_transitivity_with_guard(self):
        db = Database()
        db.define_rule(
            "part-trans",
            "(s, PART-OF, t) and (t, PART-OF, u) => (s, PART-OF, u)"
            " where s != u")
        db.add("WHEEL", "PART-OF", "CAR")
        db.add("CAR", "PART-OF", "FLEET")
        assert db.ask("(WHEEL, PART-OF, FLEET)")

    def test_constraint_detected_by_integrity(self):
        db = Database()
        db.define_rule("age-positive", "(x, in, AGE) => (x, >, 0)",
                       is_constraint=True)
        db.add("30", "∈", "AGE")
        assert db.check_integrity() == []
        db.add("-4", "∈", "AGE")
        assert any(v.fact == Fact("-4", ">", "0")
                   for v in db.check_integrity())

    def test_rule_toggleable(self):
        db = Database()
        db.define_rule("sym", "(a, KNOWS, b) => (b, KNOWS, a)")
        db.add("A", "KNOWS", "B")
        assert db.ask("(B, KNOWS, A)")
        db.exclude("sym")
        assert not db.ask("(B, KNOWS, A)")

    def test_defined_rules_work_lazily_too(self):
        db = Database()
        db.define_rule("sym", "(a, KNOWS, b) => (b, KNOWS, a)")
        db.add("A", "KNOWS", "B")
        assert db.query_lazy("(B, KNOWS, x)") == {("A",)}

    def test_defined_rules_traced(self):
        db = Database(trace=True)
        db.define_rule("sym", "(a, KNOWS, b) => (b, KNOWS, a)")
        db.add("A", "KNOWS", "B")
        tree = db.why("(B, KNOWS, A)")
        assert tree.rule == "sym"

    def test_shell_rule_command(self):
        from repro.shell import BrowserShell

        shell = BrowserShell(Database())
        assert shell.execute(
            "rule rev (a, OWES, b) => (b, OWED-BY, a)"
        ).startswith("defined")
        shell.execute("add TOM OWES SUE")
        assert shell.execute("ask (SUE, OWED-BY, TOM)") == "true"
        assert shell.execute("rule broken").startswith("usage:")
        assert shell.execute("rule x (a, R, b)").startswith("error:")
