"""Randomized interned-vs-hash store equivalence suite.

:class:`~repro.core.interned.InternedFactStore` replaces the hash
store's dict-of-sets indexes with interned-id columns and CSR offset
maps, and feeds the planner exact counts — an entirely different
retrieval machine that must be *observationally identical*.  This
suite drives both stores over seeded random templates, queries,
closures, and provenance across every worked dataset plus random
heaps, asserting bit-identical results:

* store probes — ``match`` / ``match_many`` / ``solutions`` /
  ``facts_mentioning`` / ``count_estimate`` agree fact-for-fact;
* full query evaluation — a compacted database answers random
  formulas exactly like its hash-store twin, under both query
  engines;
* closure — all three rule engines produce the same closure (and the
  same provenance reachability) whether seeded from a hash or an
  interned base;
* provenance — ``why`` renders identical derivation trees after
  :meth:`~repro.db.Database.compact_store`.
"""

from __future__ import annotations

import random

import pytest

from repro.core.facts import Fact, Template, Variable
from repro.core.interned import InternedFactStore
from repro.core.store import FactStore
from repro.db import Database
from repro.datasets import books, movies, music, paper, university
from repro.datasets.synthetic import random_heap
from repro.query.ast import Query

from .test_engine_equivalence import _context, _random_database
from .test_query_engine_equivalence import _outcome, _random_formula

SEEDS = range(12)
TEMPLATES_PER_CASE = 25
QUERIES_PER_CASE = 5

X, Y = Variable("x"), Variable("y")


def _heap_database(database: Database = None) -> Database:
    if database is None:
        database = Database()
    for heap_fact in random_heap(40, 12, 5, seed=7):
        database.add_fact(heap_fact)
    database.add("E0", "∈", "C0")
    database.add("E1", "∈", "C0")
    database.add("C0", "≺", "C1")
    return database


_DATASETS = {
    "books": books.load,
    "music": music.load,
    "paper": paper.load,
    "university": university.load,
    "movies": movies.load,
    "heap": _heap_database,
}

_PAIR_CACHE = {}


def _pair(name):
    """(hash-store db, interned twin, entities, relationships)."""
    if name not in _PAIR_CACHE:
        hash_db = _DATASETS[name]()
        interned_db = _DATASETS[name]().compact_store()
        entities, relationships = set(), set()
        for heap_fact in hash_db.facts:
            entities.add(heap_fact.source)
            entities.add(heap_fact.target)
            relationships.add(heap_fact.relationship)
        _PAIR_CACHE[name] = (hash_db, interned_db,
                             sorted(entities), sorted(relationships))
    return _PAIR_CACHE[name]


def _random_template(rng, entities, relationships) -> Template:
    """A random probe: each position is a constant or a variable, with
    repeated variables included (the paper's ``(x, CITES, x)``)."""
    def term(pool):
        roll = rng.random()
        if roll < 0.40:
            return rng.choice((X, Y))
        if roll < 0.55:
            return X           # bias toward repeats
        return rng.choice(pool)

    return Template(term(entities), term(relationships), term(entities))


def _binding_set(solutions):
    return {frozenset(b.items()) for b in solutions}


# ----------------------------------------------------------------------
# Store probes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dataset", sorted(_DATASETS))
@pytest.mark.parametrize("seed", SEEDS)
def test_store_probes_identical(dataset, seed):
    hash_db, _interned_db, entities, relationships = _pair(dataset)
    reference = hash_db.facts
    interned = InternedFactStore.from_facts(reference)
    assert len(interned) == len(reference)
    rng = random.Random(f"{dataset}-{seed}")
    for _ in range(TEMPLATES_PER_CASE):
        probe = _random_template(rng, entities, relationships)
        expected = sorted(map(tuple, reference.match(probe)))
        assert sorted(map(tuple, interned.match(probe))) == expected, \
            f"match diverged on {probe!r}"
        assert (_binding_set(interned.solutions(probe))
                == _binding_set(reference.solutions(probe))), \
            f"solutions diverged on {probe!r}"
        # Exact counts: the interned store's estimate IS the answer
        # for single-variable-occurrence probes; repeated variables
        # filter below the per-position index count.
        count = interned.count_estimate(probe)
        if len(probe.variable_set()) == len(probe.variables()):
            assert count == len(expected), \
                f"count_estimate inexact on {probe!r}"
        else:
            assert count >= len(expected)
    batch = [_random_template(rng, entities, relationships)
             for _ in range(8)]
    assert ([sorted(map(tuple, group))
             for group in interned.match_many(batch)]
            == [sorted(map(tuple, group))
                for group in reference.match_many(batch)])
    for entity in rng.sample(entities, min(6, len(entities))):
        assert (interned.facts_mentioning(entity)
                == reference.facts_mentioning(entity))


# ----------------------------------------------------------------------
# Full query evaluation on a compacted database
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dataset", sorted(_DATASETS))
@pytest.mark.parametrize("seed", SEEDS)
def test_compacted_database_answers_identically(dataset, seed):
    hash_db, interned_db, entities, relationships = _pair(dataset)
    assert getattr(interned_db.facts, "interned", False)
    assert interned_db.view().exact_counts
    rng = random.Random(f"{dataset}-interned-{seed}")
    for _ in range(QUERIES_PER_CASE):
        formula = _random_formula(rng, entities, relationships)
        query = Query.of(formula)
        expected = _outcome(hash_db.evaluator(), query)
        assert _outcome(interned_db.evaluator(), query) == expected, \
            f"seed {seed}, dataset {dataset}: {query}"


@pytest.mark.parametrize("dataset", sorted(_DATASETS))
def test_compacted_database_api_surface(dataset):
    """match / navigate / try agree after compaction, and reference
    vs compiled query engines agree *on* the interned store."""
    hash_db, interned_db, entities, _relationships = _pair(dataset)
    sample = sorted(entities)[:8]
    for entity in sample:
        pattern = f"({entity}, *, *)"
        assert (sorted(map(tuple, interned_db.match(pattern)))
                == sorted(map(tuple, hash_db.match(pattern))))
        assert (sorted(map(tuple, interned_db.try_(entity)))
                == sorted(map(tuple, hash_db.try_(entity))))
        assert (interned_db.navigate(pattern).entities()
                == hash_db.navigate(pattern).entities())
    compiled = interned_db.query("(x, ≺, y)")
    reference_db = _DATASETS[dataset]().compact_store()
    reference_db.query_engine = "reference"
    assert reference_db.query("(x, ≺, y)") == compiled


# ----------------------------------------------------------------------
# Closure engines seeded from an interned base
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_closure_engines_agree_across_stores(seed):
    from repro.rules.builtin import STANDARD_RULES
    from repro.rules.dispatch import dispatched_closure
    from repro.rules.engine import naive_closure, semi_naive_closure

    facts = _random_database(seed)
    context = _context(facts)
    engines = (naive_closure, semi_naive_closure, dispatched_closure)
    results = []
    for engine in engines:
        for base in (FactStore(facts),
                     InternedFactStore.from_facts(facts)):
            results.append(engine(base, STANDARD_RULES, context,
                                  trace=True))
    baseline = set(results[0].store)
    for result in results[1:]:
        assert set(result.store) == baseline
        assert result.base_count == results[0].base_count
        assert (set(result.provenance or ())
                == set(results[0].provenance or ()))


@pytest.mark.parametrize("dataset", sorted(_DATASETS))
def test_provenance_renders_identically(dataset):
    """``why`` derivation trees survive compaction verbatim."""
    hash_db = _DATASETS[dataset](Database(trace=True))
    interned_db = _DATASETS[dataset](Database(trace=True)).compact_store()
    base = set(hash_db.facts)
    derived = sorted(f for f in hash_db.view().store
                     if f not in base)[:5]
    for derived_fact in derived:
        assert (str(interned_db.why(derived_fact))
                == str(hash_db.why(derived_fact)))


def test_attach_preserves_store_equivalence():
    """Shared-memory attach is one more representation change that
    must not change a single answer (single-process check; the
    cross-process version lives in the pool suite)."""
    hash_db, _interned_db, entities, relationships = _pair("movies")
    reference = hash_db.facts
    source = InternedFactStore.from_facts(reference)
    handle = source.generation.share()
    try:
        attached = InternedFactStore.attach(handle)
        try:
            rng = random.Random("attach-equivalence")
            for _ in range(TEMPLATES_PER_CASE):
                probe = _random_template(rng, entities, relationships)
                assert (sorted(map(tuple, attached.match(probe)))
                        == sorted(map(tuple, reference.match(probe))))
            # Attached stores stay mutable through their overlay.
            extra = Fact("ATTACHED", "∈", "PROBE")
            attached.add(extra)
            assert extra in attached
            assert extra not in reference
        finally:
            attached.close()
    finally:
        from repro.core.interned import unlink_generation

        source.close()
        unlink_generation(handle.name)
