"""Differential equivalence of the probing stack.

The rebuilt probe path — interned lattice, compiled executor, plan
cache, selectivity-ordered waves, menu cache — must produce outcomes
*identical* to the original candidate-at-a-time wave process over the
networkx hierarchy: same waves, same menus, same critical failures,
same "no such database entities" diagnoses.  These tests compare full
probe outcomes across randomized databases and seeds.

The reference side (``reference_probe`` + ``GeneralizationHierarchy``)
needs networkx; the whole module skips on minimal installs.
"""

from __future__ import annotations

import random

import pytest

pytest.importorskip("networkx")

from repro.browse.probe import GeneralizationHierarchy
from repro.browse.retraction import PROBE_COUNTERS, reference_probe
from repro.core.entities import ISA, MEMBER, SYN
from repro.db import Database
from repro.query.evaluate import Evaluator


def outcome_signature(result):
    """Everything observable about a probe outcome, in comparable
    form: the terminating value, every wave's attempted candidates and
    successes (queries, retraction paths, and values), the critical /
    exhausted flags, the entity diagnoses, and the rendered menu."""
    return {
        "succeeded": result.succeeded,
        "value": frozenset(result.value),
        "waves": [
            (wave.number,
             [(repr(c.query.templates), c.query.free, c.describe())
              for c in wave.attempted],
             [(repr(s.retracted.query.templates), s.describe(),
               frozenset(s.value))
              for s in wave.successes])
            for wave in result.waves
        ],
        "exhausted": result.exhausted,
        "critical": result.critical,
        "unknown": result.unknown_entities,
        "suggestions": result.spelling_suggestions,
        "menu": result.menu(),
    }


def reference_outcome(db, query, max_waves=25):
    """The original stack end to end: reference backtracking evaluator,
    networkx hierarchy, candidate-at-a-time wave loop, no caches."""
    hierarchy = GeneralizationHierarchy.from_store(db.closure().store)
    return reference_probe(Evaluator(db.view()), query, hierarchy,
                           max_waves=max_waves)


def random_database(seed):
    rng = random.Random(seed)
    db = Database(query_engine=rng.choice(["compiled", "reference"]))
    categories = [f"CAT{i}" for i in range(rng.randint(3, 8))]
    relations = [f"REL{i}" for i in range(rng.randint(1, 3))]
    members = [f"OBJ{i}" for i in range(rng.randint(2, 6))]
    for _ in range(rng.randint(2, 10)):
        db.add(rng.choice(categories), ISA, rng.choice(categories))
    for _ in range(rng.randint(0, 2)):
        db.add(rng.choice(relations), ISA, rng.choice(relations))
    if rng.random() < 0.4:
        db.add(rng.choice(categories), SYN, rng.choice(categories))
    for member in members:
        if rng.random() < 0.7:
            db.add(member, MEMBER, rng.choice(categories))
    for _ in range(rng.randint(0, 5)):
        db.add(rng.choice(members), rng.choice(relations),
               rng.choice(members))
    return db, rng, categories, relations, members


def random_queries(rng, categories, relations, members):
    queries = [
        f"(x, ∈, {rng.choice(categories)})",
        f"({rng.choice(members)}, ∈, {rng.choice(categories)})",
        f"(x, {rng.choice(relations)}, {rng.choice(members)})",
        f"(x, ∈, {rng.choice(categories)})"
        f" and (x, {rng.choice(relations)}, y)",
    ]
    if rng.random() < 0.5:
        queries.append(f"(x, ∈, GHOST{rng.randint(0, 3)})")
    if rng.random() < 0.5:
        # A near-miss spelling of a real category, for the
        # "did you mean" diagnosis.
        target = rng.choice(categories)
        queries.append(f"(x, ∈, {target[:-1]}X)")
    return queries


class TestProbeOutcomeEquivalence:
    @pytest.mark.parametrize("seed", range(25))
    def test_full_outcomes_match_reference(self, seed):
        db, rng, categories, relations, members = random_database(seed)
        for query in random_queries(rng, categories, relations, members):
            expected = outcome_signature(reference_outcome(db, query))
            actual = outcome_signature(db.probe(query))
            assert actual == expected, (seed, query)

    @pytest.mark.parametrize("seed", range(10))
    def test_engine_hatches_agree(self, seed):
        db, rng, categories, relations, members = random_database(seed)
        for query in random_queries(rng, categories, relations, members):
            compiled = outcome_signature(db.probe(query, engine="compiled"))
            reference = outcome_signature(db.probe(query, engine="reference"))
            assert compiled == reference, (seed, query)

    def test_outcomes_match_after_mutations(self):
        """Incremental lattice patches must not drift from a fresh
        reference build."""
        db = Database()
        db.add("FRESHMAN", ISA, "STUDENT")
        db.add("JOHN", MEMBER, "STUDENT")
        db.probe("(x, ∈, FRESHMAN)")  # builds the lattice
        db.add("STUDENT", ISA, "PERSON")
        db.add("SENIOR", ISA, "STUDENT")
        db.add("MARY", MEMBER, "PERSON")
        for query in ("(x, ∈, SENIOR)", "(x, ∈, FRESHMAN)",
                      "(MARY, ∈, STUDENT)"):
            expected = outcome_signature(reference_outcome(db, query))
            assert outcome_signature(db.probe(query)) == expected, query

    def test_max_waves_abandonment_matches(self):
        from repro.datasets.synthetic import deep_retraction_workload

        facts, query = deep_retraction_workload(depth=8)
        db = Database()
        for fact in facts:
            db.add_fact(fact)
        for max_waves in (1, 3, 25):
            expected = outcome_signature(
                reference_outcome(db, query, max_waves=max_waves))
            actual = outcome_signature(
                db.probe(query, max_waves=max_waves))
            assert actual == expected, max_waves


class TestMenuCache:
    def test_repeated_probe_hits_menu_cache(self):
        db = Database()
        db.add("FRESHMAN", ISA, "STUDENT")
        db.add("JOHN", MEMBER, "STUDENT")
        first = db.probe("(x, ∈, FRESHMAN)")
        hits_before = PROBE_COUNTERS["menu_hits"]
        second = db.probe("(x, ∈, FRESHMAN)")
        assert PROBE_COUNTERS["menu_hits"] > hits_before
        assert outcome_signature(second) == outcome_signature(first)

    def test_mutation_invalidates_menu(self):
        db = Database()
        db.add("FRESHMAN", ISA, "STUDENT")
        assert not db.probe("(x, ∈, FRESHMAN)").successes
        db.add("JOHN", MEMBER, "STUDENT")
        outcome = db.probe("(x, ∈, FRESHMAN)")
        assert [s.value for s in outcome.successes] == [{("JOHN",)}]

    def test_escape_hatch_bypasses_menu_cache(self):
        db = Database()
        db.add("FRESHMAN", ISA, "STUDENT")
        db.add("JOHN", MEMBER, "STUDENT")
        db.probe("(x, ∈, FRESHMAN)")
        misses_before = PROBE_COUNTERS["menu_misses"]
        hits_before = PROBE_COUNTERS["menu_hits"]
        db.probe("(x, ∈, FRESHMAN)", engine="compiled")
        assert PROBE_COUNTERS["menu_hits"] == hits_before
        assert PROBE_COUNTERS["menu_misses"] == misses_before
