"""Tests for the functional-model view (§6.1) and Database.explain."""

from __future__ import annotations

import pytest

from repro.db import Database
from repro.operators.ops import FunctionView


class TestFunctionView:
    def test_images(self, paper_db):
        earns = paper_db.function("EARNS")
        assert earns("JOHN") == ("$26000", "COMPENSATION", "SALARY")

    def test_unknown_entity_has_no_images(self, paper_db):
        assert paper_db.function("EARNS")("NOBODY") == ()

    def test_inverse(self, paper_db):
        earns = paper_db.function("EARNS")
        assert earns.inverse("$27000") == ("TOM",)

    def test_domain(self, paper_db):
        works_for = paper_db.function("WORKS-FOR")
        assert "JOHN" in works_for.domain()
        assert "MANAGER" in works_for.domain()  # inferred

    def test_single_valued_detection(self):
        db = Database()
        db.add("A", "F", "B")
        db.add("C", "F", "D")
        assert db.function("F").is_single_valued()
        db.add("A", "F", "E")
        assert not db.function("F").is_single_valued()

    def test_items(self):
        db = Database()
        db.add("A", "F", "B")
        db.add("A", "F", "C")
        assert list(db.function("F").items()) == [("A", ("B", "C"))]

    def test_sees_inferred_facts(self):
        db = Database()
        db.add("JOHN", "∈", "EMPLOYEE")
        db.add("EMPLOYEE", "EARNS", "SALARY")
        assert db.function("EARNS")("JOHN") == ("SALARY",)

    def test_standalone_construction(self, paper_db):
        view = FunctionView(paper_db.view(), "WORKS-FOR")
        assert "SHIPPING" in view("JOHN")


class TestDatabaseExplain:
    def test_render(self, paper_db):
        text = paper_db.explain(
            "(x, EARNS, y) and (JOHN, WORKS-FOR, x)").render()
        assert "safety: ok" in text
        assert "initial conjunct order" in text

    def test_explains_probe_style_query(self, university_db):
        from repro.datasets import university

        explanation = university_db.explain(university.STUDENTS_LOVE_FREE)
        assert explanation.safe
        assert len(explanation.steps) == 2
