"""Tests for EXPLAIN and differential tests against the brute-force
reference evaluator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entities import ISA, MEMBER
from repro.core.facts import Fact, Variable, var
from repro.core.store import FactStore
from repro.db import Database
from repro.query.ast import And, Atom, Exists, Or, Query, atom, exists
from repro.query.evaluate import Evaluator
from repro.query.explain import explain
from repro.query.parser import parse_query
from repro.query.reference import brute_force_evaluate
from repro.virtual.computed import FactView, VirtualRegistry

X, Y, Z = var("x"), var("y"), var("z")


class TestExplain:
    def test_selective_conjunct_first(self, paper_db):
        explanation = explain(
            paper_db.view(),
            "(x, EARNS, y) and (JOHN, WORKS-FOR, x)")
        # The fully-selective JOHN template should be ordered before
        # the open EARNS scan.
        first = explanation.steps[0].formula
        assert "WORKS-FOR" in str(first)

    def test_bound_variables_tracked(self, paper_db):
        explanation = explain(
            paper_db.view(), "(JOHN, WORKS-FOR, x) and (x, in, y)")
        assert explanation.steps[0].bound_before == set()
        assert "x" in explanation.steps[1].bound_before

    def test_render_mentions_safety(self, paper_db):
        text = explain(paper_db.view(), "(JOHN, EARNS, y)").render()
        assert "safety: ok" in text

    def test_unsafe_query_reported(self, paper_db):
        unsafe = Query.of(
            Or((atom(X, "R", Y), atom(X, "R", "B"))), (X, Y))
        explanation = explain(paper_db.view(), unsafe)
        assert not explanation.safe
        assert "unsafe" in explanation.safety_error

    def test_single_atom_no_ordering(self, paper_db):
        explanation = explain(paper_db.view(), "(JOHN, EARNS, y)")
        assert explanation.steps == []
        assert "no join ordering" in explanation.render()

    def test_exists_unwrapped(self, paper_db):
        explanation = explain(
            paper_db.view(),
            "exists y: (x, EARNS, y) and (y, >, 20000)")
        assert len(explanation.steps) == 2


# ----------------------------------------------------------------------
# Differential testing: production evaluator vs brute force.
# ----------------------------------------------------------------------
def _view(facts):
    # No virtual relations: the reference's domain-grounded semantics
    # and the production evaluator coincide exactly on stored facts.
    return FactView(FactStore(facts), VirtualRegistry())


_entities = st.sampled_from(["A", "B", "C"])
_relationships = st.sampled_from(["R", "S"])
_heaps = st.lists(
    st.builds(Fact, _entities, _relationships, _entities),
    min_size=1, max_size=10)

_components = st.one_of(
    st.sampled_from([X, Y, Z]),
    _entities,
)
_rel_components = st.one_of(st.sampled_from([X, Y, Z]), _relationships)
_atoms = st.builds(atom, _components, _rel_components, _components)


def _formulas(max_parts=3):
    return st.one_of(
        _atoms,
        st.lists(_atoms, min_size=2, max_size=max_parts).map(
            lambda parts: And(tuple(parts))),
        st.lists(_atoms, min_size=2, max_size=max_parts).map(
            lambda parts: Or(tuple(parts))),
        st.tuples(_atoms, _atoms).map(
            lambda pair: And((pair[0], exists(X, pair[1])))),
    )


@settings(max_examples=80, deadline=None)
@given(facts=_heaps, formula=_formulas())
def test_evaluator_matches_brute_force(facts, formula):
    view = _view(facts)
    free = sorted(formula.free_variables(), key=lambda v: v.name)
    query = Query.of(formula, tuple(free))
    evaluator = Evaluator(view)
    try:
        fast = evaluator.evaluate(query)
    except Exception:
        # Unsafe queries are rejected by the production evaluator;
        # nothing to compare.
        return
    slow = brute_force_evaluate(view, query)
    assert fast == slow, f"divergence on {query}"


@settings(max_examples=40, deadline=None)
@given(facts=_heaps)
def test_known_query_shapes_match_brute_force(facts):
    view = _view(facts)
    evaluator = Evaluator(view)
    for text in (
        "(x, R, y)",
        "(x, R, x)",
        "(x, R, y) and (y, S, z)",
        "(x, R, y) or (x, S, y)",
        "exists y: (x, R, y) and (y, S, x)",
        "(A, R, x) and (x, S, B)",
    ):
        query = parse_query(text)
        assert evaluator.evaluate(query) == brute_force_evaluate(
            view, query), text


def test_brute_force_forall(paper_db):
    """The reference also implements ∀; sanity-check on a toy case."""
    facts = [Fact("A", "R", "A"), Fact("A", "R", "R")]
    view = _view(facts)
    query = parse_query("(x, R, x) and forall y: (x, R, y)")
    assert brute_force_evaluate(view, query) == {("A",)}
    assert Evaluator(view).evaluate(query) == {("A",)}
