"""Unit tests for the interned columnar store (repro.core.interned)."""

import random

import pytest

from repro.core import Fact, FactStore, template, var
from repro.core.errors import FrozenStoreError
from repro.core.interned import (
    ColumnarGeneration,
    Interner,
    InternedFactStore,
    unlink_generation,
)


def random_facts(seed, n, entities=40, relationships=8):
    rng = random.Random(seed)
    names = [f"E{i}" for i in range(entities)]
    rels = [f"R{i}" for i in range(relationships)]
    facts = set()
    while len(facts) < n:
        facts.add(Fact(rng.choice(names), rng.choice(rels),
                       rng.choice(names)))
    return sorted(facts)


def all_ground_patterns(facts):
    """Every distinct ground probe derivable from the fact set, plus
    misses, for each of the eight bound-position specs."""
    subjects = sorted({f.source for f in facts}) + ["MISSING"]
    rels = sorted({f.relationship for f in facts}) + ["MISSING"]
    targets = sorted({f.target for f in facts}) + ["MISSING"]
    x, y, z = var("x"), var("y"), var("z")
    patterns = [template(x, y, z)]
    patterns += [template(s, y, z) for s in subjects]
    patterns += [template(x, r, z) for r in rels]
    patterns += [template(x, y, t) for t in targets]
    sample = facts[:: max(1, len(facts) // 25)]
    for f in sample:
        patterns.append(template(f.source, f.relationship, z))
        patterns.append(template(f.source, y, f.target))
        patterns.append(template(x, f.relationship, f.target))
        patterns.append(template(f.source, f.relationship, f.target))
    patterns.append(template("MISSING", "MISSING", z))
    patterns.append(template("MISSING", y, "MISSING"))
    patterns.append(template(x, "MISSING", "MISSING"))
    patterns.append(template("MISSING", "MISSING", "MISSING"))
    return patterns


class TestInterner:
    def test_round_trip(self):
        interner = Interner()
        a = interner.intern("ALPHA")
        b = interner.intern("BETA")
        assert interner.intern("ALPHA") == a
        assert interner.name_of(a) == "ALPHA"
        assert interner.name_of(b) == "BETA"
        assert interner.id_of("GAMMA") is None
        assert "ALPHA" in interner and "GAMMA" not in interner
        assert len(interner) == 2

    def test_rehydrate_from_names(self):
        interner = Interner(["A", "B", "C"])
        assert interner.id_of("C") == 2
        assert interner.intern("C") == 2
        assert interner.intern("D") == 3


class TestColumnarGeneration:
    def test_probe_equivalence_with_hash_store(self):
        facts = random_facts(7, 300)
        hash_store = FactStore(facts)
        gen = ColumnarGeneration.build(facts)
        store = InternedFactStore.from_generation(gen)
        for pattern in all_ground_patterns(facts):
            expected = sorted(hash_store.match(pattern))
            got = sorted(store.match(pattern))
            assert got == expected, pattern

    def test_exact_counts(self):
        facts = random_facts(11, 200)
        hash_store = FactStore(facts)
        store = InternedFactStore.from_facts(facts)
        for pattern in all_ground_patterns(facts):
            assert store.count_estimate(pattern) == \
                hash_store.count_estimate(pattern), pattern

    def test_iter_and_len(self):
        facts = random_facts(3, 120)
        gen = ColumnarGeneration.build(facts)
        assert len(gen) == len(facts)
        assert sorted(gen) == sorted(facts)

    def test_contains_fact(self):
        facts = random_facts(5, 80)
        gen = ColumnarGeneration.build(facts)
        for f in facts:
            assert gen.contains_fact(f)
        assert not gen.contains_fact(Fact("NO", "SUCH", "FACT"))
        assert not gen.contains_fact(
            Fact(facts[0].source, facts[0].relationship, "NOPE"))

    def test_duplicate_input_facts_dedupe(self):
        facts = random_facts(3, 30)
        doubled = facts + facts[::2]
        gen = ColumnarGeneration.build(doubled)
        assert len(gen) == len(FactStore(doubled))
        assert sorted(gen) == sorted(FactStore(doubled))
        store = InternedFactStore.from_facts(doubled)
        assert len(store) == len(FactStore(doubled))

    def test_empty_generation(self):
        gen = ColumnarGeneration.build([])
        assert len(gen) == 0
        assert list(gen) == []
        store = InternedFactStore.from_generation(gen)
        assert len(store) == 0
        assert list(store.match(template(var("x"), var("y"),
                                         var("z")))) == []


class TestInternedFactStore:
    def test_overlay_add_and_generation_dedup(self):
        facts = random_facts(2, 50)
        store = InternedFactStore.from_facts(facts)
        v = store.version
        assert not store.add(facts[0])       # already in generation
        assert store.version == v
        new = Fact("NEW", "REL", "TARGET")
        assert store.add(new)
        assert store.version == v + 1
        assert not store.add(new)            # already in overlay
        assert new in store
        assert len(store) == len(facts) + 1

    def test_tombstone_discard_and_resurrect(self):
        facts = random_facts(4, 60)
        store = InternedFactStore.from_facts(facts)
        victim = facts[10]
        assert store.discard(victim)
        assert victim not in store
        assert len(store) == len(facts) - 1
        assert not store.discard(victim)     # already gone
        assert store.add(victim)             # resurrection
        assert victim in store
        assert len(store) == len(facts)
        assert store.overlay_size == 0       # back to pure generation

    def test_discard_from_overlay(self):
        store = InternedFactStore.from_facts(random_facts(9, 30))
        extra = Fact("X", "Y", "Z")
        store.add(extra)
        assert store.discard(extra)
        assert extra not in store
        assert store.overlay_size == 0

    def test_mutation_equivalence_with_hash_store(self):
        facts = random_facts(13, 150)
        rng = random.Random(99)
        store = InternedFactStore.from_facts(facts)
        mirror = FactStore(facts)
        pool = facts + [Fact(f"N{i}", "REL", f"M{i}") for i in range(40)]
        for _ in range(400):
            f = rng.choice(pool)
            if rng.random() < 0.5:
                assert store.add(f) == mirror.add(f)
            else:
                assert store.discard(f) == mirror.discard(f)
        assert sorted(store) == sorted(mirror)
        assert len(store) == len(mirror)
        for pattern in all_ground_patterns(facts):
            assert sorted(store.match(pattern)) == \
                sorted(mirror.match(pattern)), pattern
            assert store.count_estimate(pattern) == \
                mirror.count_estimate(pattern), pattern
        assert store.entities() == mirror.entities()
        assert store.relationships() == mirror.relationships()
        for entity in list(mirror.entities()) + ["ABSENT"]:
            assert store.has_entity(entity) == mirror.has_entity(entity)
            assert store.has_relationship(entity) == \
                mirror.has_relationship(entity)

    def test_facts_mentioning(self):
        facts = random_facts(21, 100)
        store = InternedFactStore.from_facts(facts)
        mirror = FactStore(facts)
        for entity in sorted(mirror.entities())[:10] + ["ABSENT"]:
            assert store.facts_mentioning(entity) == \
                mirror.facts_mentioning(entity)

    def test_solutions(self):
        facts = random_facts(17, 90)
        store = InternedFactStore.from_facts(facts)
        mirror = FactStore(facts)
        x, y = var("x"), var("y")
        rel = facts[0].relationship
        pattern = template(x, rel, y)
        got = sorted(tuple(sorted((v.name, e) for v, e in b.items()))
                     for b in store.solutions(pattern))
        expected = sorted(tuple(sorted((v.name, e) for v, e in b.items()))
                          for b in mirror.solutions(pattern))
        assert got == expected

    def test_repeated_variable_pattern(self):
        store = InternedFactStore.from_facts(
            [Fact("A", "LIKES", "A"), Fact("A", "LIKES", "B")])
        x = var("x")
        matches = list(store.match(template(x, "LIKES", x)))
        assert matches == [Fact("A", "LIKES", "A")]

    def test_copy_shares_generation(self):
        facts = random_facts(6, 40)
        store = InternedFactStore.from_facts(facts)
        store.add(Fact("EXTRA", "R", "T"))
        clone = store.copy()
        assert clone.generation is store.generation
        assert sorted(clone) == sorted(store)
        clone.add(Fact("ONLY", "IN", "CLONE"))
        clone.discard(facts[0])
        assert Fact("ONLY", "IN", "CLONE") not in store
        assert facts[0] in store

    def test_freeze(self):
        store = InternedFactStore.from_facts(random_facts(1, 10))
        store.freeze()
        with pytest.raises(FrozenStoreError):
            store.add(Fact("A", "B", "C"))
        with pytest.raises(FrozenStoreError):
            store.discard(Fact("A", "B", "C"))
        unfrozen = store.copy()
        assert unfrozen.add(Fact("A", "B", "C"))

    def test_compact(self):
        facts = random_facts(8, 70)
        store = InternedFactStore.from_facts(facts)
        store.discard(facts[0])
        store.add(Fact("LATE", "ADD", "ITION"))
        compacted = store.compact()
        assert compacted.overlay_size == 0
        assert sorted(compacted) == sorted(store)
        assert compacted.version == store.version

    def test_version_continuity(self):
        facts = random_facts(12, 20)
        store = InternedFactStore.from_facts(facts, version=41)
        assert store.version == 41
        store.add(Fact("A", "B", "C"))
        assert store.version == 42

    def test_lookup_many(self):
        facts = random_facts(19, 120)
        store = InternedFactStore.from_facts(facts)
        store.add(Fact(facts[0].source, "OVERLAY", "REL"))
        store.discard(facts[1])
        mirror = FactStore(store)
        subjects = sorted({f.source for f in facts})[:10] + ["MISS"]
        specs = {
            "s": [template(s, var("y"), var("z")) for s in subjects],
            "sr": [template(f.source, f.relationship, var("z"))
                   for f in facts[:10]],
            "st": [template(f.source, var("y"), f.target)
                   for f in facts[:10]],
            "rt": [template(var("x"), f.relationship, f.target)
                   for f in facts[:10]],
            "srt": [template(*facts[2]), template("A", "B", "C")],
        }
        for spec, templates in specs.items():
            got = store.lookup_many(spec, templates)
            expected = mirror.match_many(templates)
            assert [sorted(g) for g in got] == \
                [sorted(e) for e in expected], spec

    def test_index_for_view(self):
        facts = random_facts(23, 80)
        store = InternedFactStore.from_facts(facts)
        mirror = FactStore(facts)
        f = facts[0]
        for spec, key in (("s", f.source), ("r", f.relationship),
                          ("t", f.target),
                          ("sr", (f.source, f.relationship)),
                          ("st", (f.source, f.target)),
                          ("rt", (f.relationship, f.target))):
            got = store.index_for(spec).get(key, ())
            expected = mirror.index_for(spec).get(key, ())
            assert sorted(got) == sorted(expected), spec
        assert store.index_for("s").get("MISSING") is None
        with pytest.raises(KeyError):
            store.index_for("xyz")

    def test_clear(self):
        store = InternedFactStore.from_facts(random_facts(14, 25))
        v = store.version
        store.clear()
        assert len(store) == 0
        assert store.version > v
        assert store.add(Fact("A", "B", "C"))

    def test_hash_store_from_interned(self):
        facts = random_facts(16, 30)
        store = InternedFactStore.from_facts(facts)
        rebuilt = FactStore(store)
        assert sorted(rebuilt) == sorted(facts)


class TestSharedMemory:
    def test_share_attach_round_trip(self):
        facts = random_facts(31, 200)
        gen = ColumnarGeneration.build(facts, version=7)
        handle = gen.share()
        try:
            attached = ColumnarGeneration.attach(handle)
            try:
                assert attached.version == 7
                assert len(attached) == len(facts)
                assert sorted(attached) == sorted(facts)
                store = InternedFactStore.from_generation(attached)
                mirror = FactStore(facts)
                for pattern in all_ground_patterns(facts):
                    assert sorted(store.match(pattern)) == \
                        sorted(mirror.match(pattern)), pattern
                assert store.version == 7
            finally:
                attached.close()
        finally:
            gen.close()
            assert unlink_generation(handle.name)
            assert not unlink_generation(handle.name)  # idempotent

    def test_attached_store_is_mutable(self):
        facts = random_facts(37, 50)
        gen = ColumnarGeneration.build(facts)
        handle = gen.share()
        try:
            store = InternedFactStore.attach(handle)
            try:
                assert store.add(Fact("NEW", "FACT", "HERE"))
                assert store.discard(facts[0])
                assert len(store) == len(facts)
            finally:
                store.close()
        finally:
            gen.close()
            unlink_generation(handle.name)

    def test_handle_is_picklable(self):
        import pickle

        gen = ColumnarGeneration.build(random_facts(41, 20))
        handle = gen.share()
        try:
            clone = pickle.loads(pickle.dumps(handle))
            assert clone.name == handle.name
            assert clone.layout == handle.layout
            attached = ColumnarGeneration.attach(clone)
            try:
                assert sorted(attached) == sorted(gen)
            finally:
                attached.close()
        finally:
            gen.close()
            unlink_generation(handle.name)

    def test_unlink_missing_segment(self):
        assert not unlink_generation("repro-gen-definitely-missing")
