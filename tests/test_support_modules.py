"""Tests for the support modules: canonical forms, rendering, the
bench harness, and parser round-trips."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchio.harness import Measurement, Sweep, timed
from repro.benchio.reporting import (
    format_sweep,
    format_table,
    format_value,
)
from repro.browse.render import format_columns, render_relation_table
from repro.core.facts import Template, Variable, var
from repro.query.canonical import canonical_form
from repro.query.parser import parse_template

X, Y, Z = var("x"), var("y"), var("z")


class TestCanonicalForm:
    def test_identical_queries_equal(self):
        templates = (Template("A", "R", X), Template(X, "S", "B"))
        assert canonical_form(templates, (X,)) == canonical_form(
            templates, (X,))

    def test_template_order_irrelevant(self):
        a = (Template("A", "R", X), Template(X, "S", "B"))
        b = (Template(X, "S", "B"), Template("A", "R", X))
        assert canonical_form(a, (X,)) == canonical_form(b, (X,))

    def test_existential_renaming_irrelevant(self):
        a = (Template("A", "R", Y),)
        b = (Template("A", "R", Z),)
        assert canonical_form(a, ()) == canonical_form(b, ())

    def test_free_variable_position_matters(self):
        a = (Template(X, "R", Y),)
        assert canonical_form(a, (X,)) != canonical_form(a, (Y,))

    def test_different_entities_differ(self):
        a = (Template("A", "R", X),)
        b = (Template("B", "R", X),)
        assert canonical_form(a, (X,)) != canonical_form(b, (X,))

    def test_free_vs_existential_differ(self):
        a = (Template("A", "R", X),)
        assert canonical_form(a, (X,)) != canonical_form(a, ())

    def test_hashable(self):
        form = canonical_form((Template("A", "R", X),), (X,))
        assert {form: 1}[form] == 1


class TestRenderHelpers:
    def test_format_columns_alignment(self):
        text = format_columns("(T)", ["AAA", "B"],
                              [["one", "two"], ["three"]])
        lines = text.splitlines()
        assert lines[0] == "(T)"
        assert "AAA" in lines[1] and "B" in lines[1]
        assert lines[2].startswith("---")
        assert "one" in lines[3] and "three" in lines[3]
        assert "two" in lines[4]

    def test_format_columns_empty_columns(self):
        text = format_columns("(T)", ["A"], [[]])
        assert "A" in text

    def test_relation_table_multivalue_cells(self):
        text = render_relation_table(
            ["K", "V"], [["row1", ("a", "b")], ["row2", ()]])
        assert "a, b" in text
        assert "-" in text

    def test_no_trailing_whitespace(self):
        text = format_columns("(T)", ["A", "B"], [["x"], []])
        for line in text.splitlines():
            assert line == line.rstrip()


class TestBenchHarness:
    def test_timed_returns_positive(self):
        assert timed(lambda: sum(range(100)), repeat=2) > 0

    def test_sweep_columns_union(self):
        sweep = Sweep(name="s", parameter="n")
        sweep.add(1, a=10)
        sweep.add(2, b=20)
        assert sweep.columns() == ["n", "a", "b"]

    def test_sweep_series(self):
        sweep = Sweep(name="s", parameter="n")
        sweep.add(1, a=10)
        sweep.add(2, a=30)
        assert sweep.series("a") == [(1, 10), (2, 30)]

    def test_measurement_dataclass(self):
        m = Measurement(label="x", seconds=1.5)
        assert m.metrics == {}

    def test_host_metadata_covers_load_and_memory(self):
        from repro.benchio.harness import host_metadata

        metadata = host_metadata()
        assert metadata["cpu_count"] >= 1
        # Linux exposes both; the fields are optional elsewhere.
        if "load_avg_1m" in metadata:
            assert metadata["load_avg_1m"] >= 0.0
        if "total_memory_bytes" in metadata:
            assert metadata["total_memory_bytes"] > 0

    def test_write_bench_json_stamps_metrics(self, tmp_path):
        from repro.benchio.harness import write_bench_json

        path = tmp_path / "bench.json"
        document = write_bench_json(
            str(path), "unit", [{"mode": "m", "ops_per_second": 1.0}],
            metrics={"counters": {"serve.requests": 3}})
        assert document["metrics"]["counters"]["serve.requests"] == 3
        assert "host" in document

    def test_bench_compare_matches_cells(self, tmp_path):
        import io
        import sys

        from repro.benchio.harness import write_bench_json

        sys.path.insert(0, "tools")
        try:
            from bench_compare import compare
        finally:
            sys.path.pop(0)
        baseline = tmp_path / "old.json"
        candidate = tmp_path / "new.json"
        rows = [{"mode": "read-only", "threads": 4,
                 "ops_per_second": 100.0, "p99_us": 50.0}]
        write_bench_json(str(baseline), "unit", rows)
        slower = [dict(rows[0], ops_per_second=80.0)]
        write_bench_json(str(candidate), "unit", slower)
        output = io.StringIO()
        assert compare(str(baseline), str(candidate),
                       out=output) == 0
        assert "ops_per_second -20.0%" in output.getvalue()
        # The guardrail trips on a 20% regression.
        assert compare(str(baseline), str(candidate),
                       fail_above=10.0, out=io.StringIO()) == 1
        assert compare(str(baseline), str(candidate),
                       fail_above=30.0, out=io.StringIO()) == 0

    def test_format_value(self):
        assert format_value(3) == "3"
        assert format_value(0.25) == "0.25"
        assert format_value(1.0000001) == "1"
        assert format_value(0.0000004) == "4.00e-07"
        assert format_value(0.0) == "0"
        assert format_value("text") == "text"

    def test_format_value_near_zero(self):
        # Both signed zeros collapse to the same bare "0".
        assert format_value(-0.0) == "0"
        # Values fixed-point would round to zero switch to scientific…
        assert format_value(0.00001) == "1.00e-05"
        assert format_value(-0.00001) == "-1.00e-05"
        # …but values that survive rounding stay fixed-point, even at
        # the boundary (0.0009999 rounds to 0.001, like its neighbors).
        assert format_value(0.0009999) == "0.001"
        assert format_value(0.001) == "0.001"
        assert format_value(0.5) == "0.5"
        assert format_value(-0.5) == "-0.5"
        assert format_value(-3) == "-3"
        assert format_value(True) == "True"

    def test_format_value_sign_symmetry(self):
        for magnitude in (0.0, 0.00001, 0.0004, 0.0009999, 0.001, 0.25,
                          0.5, 1.0, 3.14159, 12345.678):
            positive = format_value(magnitude)
            negative = format_value(-magnitude)
            if positive == "0":
                assert negative == "0"
            else:
                assert negative == "-" + positive

    def test_format_table(self):
        text = format_table(["a", "bee"], [[1, 2.5], [300, "x"]])
        lines = text.splitlines()
        assert "bee" in lines[0]
        assert lines[1].startswith("-")
        assert "2.5" in lines[2]
        assert "300" in lines[3]

    def test_format_sweep_title(self):
        sweep = Sweep(name="named", parameter="n")
        sweep.add(1, a=2)
        assert format_sweep(sweep).startswith("== named ==")
        assert format_sweep(sweep, "other").startswith("== other ==")


# ----------------------------------------------------------------------
# Parser round-trips on random templates.
# ----------------------------------------------------------------------
_entity_names = st.sampled_from(
    ["JOHN", "PC#9-WAM", "$25000", "NEW-YORK", "B1"])
_variable_names = st.sampled_from(["x", "y", "zeta"])


@st.composite
def _template_texts(draw):
    components = []
    expected = []
    for _ in range(3):
        kind = draw(st.sampled_from(["entity", "variable", "star"]))
        if kind == "entity":
            name = draw(_entity_names)
            components.append(name)
            expected.append(name)
        elif kind == "variable":
            name = draw(_variable_names)
            components.append(name)
            expected.append(Variable(name))
        else:
            components.append("*")
            expected.append(None)  # fresh variable, name unknown
    return "(" + ", ".join(components) + ")", expected


@settings(max_examples=80)
@given(case=_template_texts())
def test_template_parse_round_trip(case):
    text, expected = case
    parsed = parse_template(text)
    for component, want in zip(parsed, expected):
        if want is None:
            assert isinstance(component, Variable)
            assert component.name.startswith("_star")
        else:
            assert component == want


@settings(max_examples=60)
@given(case=_template_texts())
def test_template_reparse_of_repr(case):
    """repr() of a parsed template (with stars renamed) re-parses to an
    equivalent template."""
    text, _ = case
    parsed = parse_template(text)
    # repr writes variables as ?name; star variables are ?_starN, whose
    # bare name would not lex as a variable — give them a valid one.
    rendered = repr(parsed).replace("?_star", "vstar").replace("?", "")
    reparsed = parse_template(rendered)
    for a, b in zip(parsed, reparsed):
        if isinstance(a, Variable):
            assert isinstance(b, Variable)
        else:
            assert a == b
