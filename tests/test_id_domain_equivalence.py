"""Seeded randomized id-domain ≡ string-domain equivalence suite.

The compiled executor runs integer-native over interned stores
(``repro.query.exec.ID_DOMAIN``): query constants are interned at
plan-bind time, joins/dedup/∨/∃/∀ operate on id tuples, and names are
decoded exactly once at emission.  This suite proves the optimization
is *unobservable*: over seeded random formulas (atoms with constants,
repeated variables, virtual relationships, ∧/∨/∃/∀) and every store
representation — plain, freshly interned, and interned with
post-compaction adds (scratch ids), overlay facts, and tombstones —
the id path and the string path produce identical answer sets, ask /
succeeds verdicts, :class:`QueryError` messages, and explain-analyze
per-operator row counts, and both agree with the reference engine.
"""

from __future__ import annotations

import random

import pytest

from repro.core.errors import QueryError
from repro.core.facts import Fact, Template, Variable
from repro.db import Database
from repro.query import CompiledEvaluator, Evaluator
from repro.query import exec as qexec
from repro.query.ast import And, Formula, Or, Query, atom, exists, forall
from repro.query.explain import explain_analyze
from repro.query.plancache import PlanCache
from repro.virtual.computed import ComputedRelation

SEEDS = range(12)
QUERIES_PER_CASE = 5

X, Y, Z = (Variable(name) for name in "xyz")
VARIABLES = (X, Y, Z)
QUANTIFIED = Variable("w")


# ----------------------------------------------------------------------
# Store variants: one logical content, three representations
# ----------------------------------------------------------------------
def _populate(db: Database) -> None:
    for i in range(8):
        db.add(f"E{i}", "∈", "ENGINEER" if i % 2 else "CLERK")
        db.add(f"E{i}", "WORKS-FOR", f"D{i % 3}")
        db.add(f"E{i}", "EARNS", f"{30 + i}000")
    db.add("ENGINEER", "≺", "EMPLOYEE")
    db.add("CLERK", "≺", "EMPLOYEE")
    db.add("EMPLOYEE", "≺", "PERSON")
    db.add("D0", "∈", "DEPARTMENT")
    db.add("D1", "∈", "DEPARTMENT")
    db.add("E1", "CITES", "E1")        # repeated-variable fodder
    db.add("E2", "CITES", "E3")


def _mutate(db: Database) -> None:
    """Post-compaction churn: scratch-id entities land in the overlay,
    a stored fact gains a tombstone."""
    db.add("NEWCO", "∈", "DEPARTMENT")
    db.add("E0", "WORKS-FOR", "NEWCO")
    db.remove_fact(Fact("E2", "WORKS-FOR", "D2"))


def _plain(mutated: bool) -> Database:
    db = Database()
    _populate(db)
    db.view()
    if mutated:
        _mutate(db)
    return db


def _interned(mutated: bool) -> Database:
    db = Database()
    _populate(db)
    db.view()            # closure lands in the base before the freeze
    db.compact_store()
    if mutated:
        _mutate(db)
    return db


_VARIANTS = {
    "plain": lambda: _plain(False),
    "interned": lambda: _interned(False),
    "interned-mutated": lambda: _interned(True),
}

_CACHE: dict = {}


def _views(variant: str):
    """``(variant view, plain twin view, entities, relationships)``."""
    if variant not in _CACHE:
        view = _VARIANTS[variant]().view()
        twin = _plain(variant.endswith("mutated")).view()
        entities, relationships = set(), set()
        for fact in view.store:
            entities.add(fact.source)
            entities.add(fact.target)
            relationships.add(fact.relationship)
        _CACHE[variant] = (view, twin,
                           sorted(entities), sorted(relationships))
    return _CACHE[variant]


@pytest.fixture(params=[True, False], ids=["id-domain", "string-domain"])
def id_domain(request):
    """Run the test body under both executor value domains."""
    previous = qexec.ID_DOMAIN
    qexec.ID_DOMAIN = request.param
    try:
        yield request.param
    finally:
        qexec.ID_DOMAIN = previous


# ----------------------------------------------------------------------
# Random formula generation (same shape corpus as the engine suite)
# ----------------------------------------------------------------------
def _random_term(rng, entities):
    if rng.random() < 0.45:
        return rng.choice(VARIABLES)
    return rng.choice(entities)


def _random_atom(rng, entities, relationships):
    roll = rng.random()
    if roll < 0.65:
        relationship = rng.choice(relationships)
    elif roll < 0.80:
        relationship = rng.choice(("≠", ">", "<"))   # virtual idioms
    else:
        relationship = rng.choice(VARIABLES)
    return atom(_random_term(rng, entities), relationship,
                _random_term(rng, entities))


def _random_formula(rng, entities, relationships,
                    depth: int = 2) -> Formula:
    roll = rng.random()
    if depth == 0 or roll < 0.45:
        return _random_atom(rng, entities, relationships)
    if roll < 0.70:
        parts = tuple(
            _random_formula(rng, entities, relationships, depth - 1)
            for _ in range(rng.randint(2, 3)))
        return And(parts)
    if roll < 0.85:
        parts = tuple(
            _random_formula(rng, entities, relationships, depth - 1)
            for _ in range(2))
        return Or(parts)
    body = _random_formula(rng, entities, relationships, depth - 1)
    if roll < 0.95:
        return exists(rng.choice(VARIABLES), body)
    return forall(QUANTIFIED, body)


def _outcome(evaluator, query):
    try:
        return ("value", evaluator.evaluate(query))
    except QueryError as error:
        return ("QueryError", str(error))


# ----------------------------------------------------------------------
# The randomized sweep
# ----------------------------------------------------------------------
@pytest.mark.parametrize("variant", sorted(_VARIANTS))
@pytest.mark.parametrize("seed", SEEDS)
def test_engines_and_domains_agree(variant, seed, id_domain):
    view, twin, entities, relationships = _views(variant)
    compiled = CompiledEvaluator(view, plans=PlanCache())
    reference = Evaluator(view)
    twin_reference = Evaluator(twin)
    rng = random.Random(f"{variant}-{seed}")
    for _ in range(QUERIES_PER_CASE):
        formula = _random_formula(rng, entities, relationships)
        query = Query.of(formula)
        expected = _outcome(reference, query)
        # The representation itself must be unobservable too.
        assert _outcome(twin_reference, query) == expected, \
            f"seed {seed}, variant {variant}: {query}"
        actual = _outcome(compiled, query)
        assert actual == expected, \
            f"seed {seed}, variant {variant}: {query}"
        if expected[0] == "value":
            assert compiled.succeeds(query) == reference.succeeds(query)
            if query.is_proposition:
                assert compiled.ask(query) == reference.ask(query)


# ----------------------------------------------------------------------
# Explain-analyze row counts: id on/off must agree operator by operator
# ----------------------------------------------------------------------
_EXPLAIN_QUERIES = (
    "(x, ∈, EMPLOYEE) and (x, WORKS-FOR, y) and (y, ∈, DEPARTMENT)",
    "(x, WORKS-FOR, D0) or (x, WORKS-FOR, NEWCO)",
    "(x, CITES, x)",
    "(x, ∈, ENGINEER) and (x, EARNS, s) and (s, >, 31000)",
)


@pytest.mark.parametrize("text", _EXPLAIN_QUERIES)
def test_explain_analyze_rows_match_across_domains(text):
    view, _twin, _e, _r = _views("interned-mutated")
    previous = qexec.ID_DOMAIN
    try:
        qexec.ID_DOMAIN = True
        with_ids = explain_analyze(view, text, engine="compiled")
        qexec.ID_DOMAIN = False
        without = explain_analyze(view, text, engine="compiled")
    finally:
        qexec.ID_DOMAIN = previous
    assert with_ids.value == without.value
    assert [(s.formula, s.evals, s.actual_rows)
            for s in with_ids.steps] \
        == [(s.formula, s.evals, s.actual_rows) for s in without.steps]


# ----------------------------------------------------------------------
# Routing: when the id path may not run, it must not run
# ----------------------------------------------------------------------
class _UpperEcho(ComputedRelation):
    """A non-standard computed relation: (A, ECHOES, A) for every
    entity.  Its presence makes virtual triggering undecidable in id
    space, so executions must fall back to the string path."""

    def handles(self, pattern: Template) -> bool:
        return pattern.relationship == "ECHOES"

    def facts(self, pattern, store):
        for entity in store.entities():
            fact = Fact(entity, "ECHOES", entity)
            if pattern.match(fact) is not None:
                yield fact

    def estimate(self, pattern, store) -> int:
        return len(store.entities())


def _run_flag(view, text) -> bool:
    """Execute ``text`` uncached and report whether the execution ran
    in the integer domain."""
    _value, run = CompiledEvaluator(view).evaluate_with_stats(text)
    return run.id_domain


def test_id_domain_engages_on_interned_stores(id_domain):
    view, _twin, _e, _r = _views("interned")
    text = "(x, ∈, EMPLOYEE) and (x, WORKS-FOR, y)"
    assert _run_flag(view, text) is id_domain


def test_plain_stores_stay_on_the_string_path(id_domain):
    view, _twin, _e, _r = _views("plain")
    assert _run_flag(view, "(x, ∈, EMPLOYEE)") is False


def test_custom_virtual_registry_falls_back_to_strings():
    db = _interned(False)
    view = db.view()
    view.virtual.register(_UpperEcho())
    assert _run_flag(view, "(x, ∈, EMPLOYEE)") is False
    # ...and the answers still fold the custom relation in correctly.
    compiled = CompiledEvaluator(view, plans=PlanCache())
    reference = Evaluator(view)
    text = "(x, ECHOES, x) and (x, ∈, ENGINEER)"
    assert compiled.evaluate(text) == reference.evaluate(text)
