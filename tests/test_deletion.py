"""Delete/Rederive (DRed) tests: equivalence with recomputation under
arbitrary deletion sequences, alternative-derivation survival, and
provenance pruning."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entities import INV, ISA, MEMBER, SYN
from repro.core.facts import Fact
from repro.core.store import FactStore
from repro.db import Database
from repro.rules.builtin import STANDARD_RULES
from repro.rules.deletion import delete_with_rederivation
from repro.rules.engine import semi_naive_closure
from repro.rules.rule import RelationshipClassifier, RuleContext


def _closure_of(facts):
    store = FactStore(facts)
    context = RuleContext(classifier=RelationshipClassifier(store))
    return semi_naive_closure(facts, STANDARD_RULES, context)


class TestDeleteWithRederivation:
    def test_consequences_removed(self):
        facts = [Fact("JOHN", MEMBER, "EMPLOYEE"),
                 Fact("EMPLOYEE", "EARNS", "SALARY")]
        result = _closure_of(facts)
        base = FactStore(facts)
        deleted = Fact("JOHN", MEMBER, "EMPLOYEE")
        base.discard(deleted)
        context = RuleContext(classifier=RelationshipClassifier(base))
        stats = delete_with_rederivation(result, base, deleted,
                                         STANDARD_RULES, context)
        assert Fact("JOHN", "EARNS", "SALARY") not in result.store
        assert stats.overdeleted >= 2

    def test_alternative_derivation_survives(self):
        """(B, R, X) is endangered through the synonym derivation but
        survives because it is stored; (A, R, X) is rederived from it."""
        facts = [Fact("A", SYN, "B"), Fact("A", "R", "X"),
                 Fact("B", "R", "X")]
        result = _closure_of(facts)
        base = FactStore(facts)
        deleted = Fact("A", "R", "X")
        base.discard(deleted)
        context = RuleContext(classifier=RelationshipClassifier(base))
        stats = delete_with_rederivation(result, base, deleted,
                                         STANDARD_RULES, context)
        assert Fact("B", "R", "X") in result.store
        assert Fact("A", "R", "X") in result.store  # via syn-source
        assert stats.rederived >= 1

    def test_deleting_absent_fact_is_noop(self):
        facts = [Fact("A", "R", "B")]
        result = _closure_of(facts)
        base = FactStore(facts)
        context = RuleContext(classifier=RelationshipClassifier(base))
        stats = delete_with_rederivation(
            result, base, Fact("Z", "Z", "Z"), STANDARD_RULES, context)
        assert stats.overdeleted == 0
        assert Fact("A", "R", "B") in result.store

    def test_other_base_facts_never_endangered(self):
        facts = [Fact("A", ISA, "B"), Fact("B", ISA, "C")]
        result = _closure_of(facts)
        base = FactStore(facts)
        deleted = Fact("A", ISA, "B")
        base.discard(deleted)
        context = RuleContext(classifier=RelationshipClassifier(base))
        delete_with_rederivation(result, base, deleted,
                                 STANDARD_RULES, context)
        assert Fact("B", ISA, "C") in result.store
        assert Fact("A", ISA, "C") not in result.store


class TestDatabaseDeletion:
    def test_queries_after_incremental_delete(self):
        db = Database()
        db.add("JOHN", MEMBER, "EMPLOYEE")
        db.add("EMPLOYEE", "EARNS", "SALARY")
        assert db.ask("(JOHN, EARNS, SALARY)")  # cache built
        db.remove_fact(Fact("JOHN", MEMBER, "EMPLOYEE"))
        assert not db.ask("(JOHN, EARNS, SALARY)")

    def test_composition_refreshes_after_delete(self):
        db = Database()
        db.limit(2)
        db.add("A", "R", "B")
        db.add("B", "S", "C")
        assert db.ask("(A, R.B.S, C)")
        db.remove_fact(Fact("B", "S", "C"))
        assert not db.ask("(A, R.B.S, C)")

    def test_provenance_pruned_and_restored(self):
        db = Database(trace=True)
        db.add("A", SYN, "B")
        db.add("A", "R", "X")
        db.add("B", "R", "X")
        db.closure()
        db.remove_fact(Fact("A", "R", "X"))
        tree = db.why("(A, R, X)")  # now derived, not stored
        assert not tree.is_stored
        assert Fact("B", "R", "X") in tree.stored_support()

    def test_classification_removal_recomputes(self):
        db = Database()
        db.add("JOHN", MEMBER, "EMPLOYEE")
        db.add("EMPLOYEE", "TOTAL-NUMBER", "180")
        db.declare_class_relationship("TOTAL-NUMBER")
        assert not db.ask("(JOHN, TOTAL-NUMBER, 180)")
        db.remove_fact(
            Fact("TOTAL-NUMBER", MEMBER, "CLASS-RELATIONSHIP"))
        # Un-classifying re-enables inheritance: only a recomputation
        # can discover the new derivations.
        assert db.ask("(JOHN, TOTAL-NUMBER, 180)")

    def test_hierarchy_refreshes_after_delete(self):
        db = Database()
        db.add("A", ISA, "B")
        db.add("B", ISA, "C")
        assert db.hierarchy().generalizes("C", "A")
        db.remove_fact(Fact("B", ISA, "C"))
        assert not db.hierarchy().generalizes("C", "A")


# ----------------------------------------------------------------------
# Property: DRed equals recomputation for arbitrary add/remove
# sequences with reads interleaved.
# ----------------------------------------------------------------------
_entities = st.sampled_from(["A", "B", "C", "D"])
_relationships = st.sampled_from(["R", "S", ISA, MEMBER, SYN, INV])
_facts = st.builds(Fact, _entities, _relationships, _entities)


@settings(max_examples=40, deadline=None)
@given(initial=st.lists(_facts, min_size=1, max_size=10),
       removals=st.lists(st.integers(0, 9), max_size=5))
def test_dred_equals_recomputation(initial, removals):
    incremental = Database(with_axioms=False)
    incremental.add_facts(initial)
    incremental.closure()  # materialize before deleting
    survivors = list(dict.fromkeys(initial))
    for index in removals:
        if not survivors:
            break
        target = survivors[index % len(survivors)]
        survivors.remove(target)
        incremental.remove_fact(target)
        incremental.closure()
    fresh = Database(with_axioms=False)
    fresh.add_facts(survivors)
    assert set(incremental.closure().store) == set(fresh.closure().store)


@settings(max_examples=25, deadline=None)
@given(initial=st.lists(_facts, min_size=2, max_size=10),
       flips=st.lists(st.tuples(st.booleans(), st.integers(0, 9)),
                      max_size=8))
def test_mixed_add_remove_equals_recomputation(initial, flips):
    """Random interleavings of insertion (extend) and deletion (DRed)
    against the same final state recomputed fresh."""
    incremental = Database(with_axioms=False)
    incremental.add_facts(initial)
    present = list(dict.fromkeys(initial))
    extra_pool = [Fact("E", "R", e) for e in ("A", "B", "C", "D")]
    for add, index in flips:
        incremental.closure()
        if add:
            fact = extra_pool[index % len(extra_pool)]
            if fact not in present:
                present.append(fact)
            incremental.add_fact(fact)
        elif present:
            fact = present[index % len(present)]
            present.remove(fact)
            incremental.remove_fact(fact)
    fresh = Database(with_axioms=False)
    fresh.add_facts(present)
    assert set(incremental.closure().store) == set(fresh.closure().store)
