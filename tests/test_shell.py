"""Tests for the interactive browser shell."""

from __future__ import annotations

import io

import pytest

from repro.core.facts import Fact
from repro.datasets import music, university
from repro.db import Database
from repro.shell import BrowserShell, main


@pytest.fixture
def shell(music_db):
    return BrowserShell(music_db)


@pytest.fixture
def probing_shell(university_db):
    return BrowserShell(university_db)


class TestNavigationCommands:
    def test_template_line_navigates(self, shell):
        output = shell.execute("(JOHN, *, *)")
        assert output.splitlines()[0] == "(JOHN, *, *)"
        assert "FELIX" in output

    def test_go(self, shell):
        output = shell.execute("go PC#9-WAM")
        assert "COMPOSED-BY" in output and "MOZART" in output

    def test_incoming(self, shell):
        output = shell.execute("incoming FELIX")
        assert "JOHN" in output

    def test_between(self, shell):
        output = shell.execute("between LEOPOLD MOZART")
        assert "FATHER-OF" in output

    def test_back(self, shell):
        shell.execute("go JOHN")
        shell.execute("go PC#9-WAM")
        output = shell.execute("back")
        assert output.splitlines()[0] == "(JOHN, *, *)"
        assert shell.execute("back") == "(no earlier step)"

    def test_navigation_sees_limit_change(self, shell):
        before = shell.execute("between LEOPOLD MOZART")
        assert "PERFORMED.PC#9-WAM.COMPOSED-BY" not in before
        shell.execute("limit 2")
        after = shell.execute("between LEOPOLD MOZART")
        assert "PERFORMED.PC#9-WAM.COMPOSED-BY" in after


class TestQueryCommands:
    def test_query_with_rows(self, shell):
        output = shell.execute("query (JOHN, LIKES, y)")
        assert output.splitlines()[0] == "y"
        assert "  FELIX" in output

    def test_query_empty(self, shell):
        assert shell.execute("query (NOBODY, LIKES, y)") == "(empty)"

    def test_ask(self, shell):
        assert shell.execute("ask (JOHN, LIKES, FELIX)") == "true"
        assert shell.execute("ask (FELIX, LIKES, JOHN)") == "false"

    def test_try(self, shell):
        output = shell.execute("try MOZART")
        assert "(LEOPOLD, FATHER-OF, MOZART)" in output

    def test_try_unknown(self, shell):
        assert shell.execute("try NOBODY") == "(no facts mention it)"

    def test_parse_errors_are_reported_not_raised(self, shell):
        output = shell.execute("query (A, B")
        assert output.startswith("error:")


class TestProbing:
    def test_probe_failure_shows_menu(self, probing_shell):
        output = probing_shell.execute(
            "probe " + university.STUDENTS_LOVE_FREE)
        assert "Query failed. Retrying" in output
        assert "1. Success with FRESHMAN instead of STUDENT" in output

    def test_select_after_probe(self, probing_shell):
        probing_shell.execute("probe " + university.STUDENTS_LOVE_FREE)
        assert "CAMPUS-CONCERTS" in probing_shell.execute("select 1")
        assert "COFFEE" in probing_shell.execute("select 2")

    def test_select_bounds(self, probing_shell):
        probing_shell.execute("probe " + university.STUDENTS_LOVE_FREE)
        assert "choose between" in probing_shell.execute("select 9")

    def test_select_without_probe(self, shell):
        assert shell.execute("select 1") == "no probe to select from"

    def test_probe_success_prints_value(self, probing_shell):
        output = probing_shell.execute("probe (z, LOVES, OPERA)")
        assert output.splitlines()[0] == "Query succeeded."
        assert "ANNA" in output


class TestUpdatesAndRules:
    def test_add_and_remove(self, shell):
        assert shell.execute("add JOHN OWNS BICYCLE").startswith("added")
        assert shell.execute("ask (JOHN, OWNS, BICYCLE)") == "true"
        assert shell.execute("add JOHN OWNS BICYCLE") == "already present"
        assert shell.execute("remove JOHN OWNS BICYCLE") == "removed"
        assert shell.execute("remove JOHN OWNS BICYCLE") \
            == "no such stored fact"

    def test_quoted_entities(self, shell):
        shell.execute('add JOHN EARNS "$25,000"')
        assert Fact("JOHN", "EARNS", "$25,000") in shell.db.facts

    def test_include_exclude(self, shell):
        assert shell.execute("ask (JOHN, ∈, PERSON)") == "true"
        shell.execute("exclude mem-upward")
        assert shell.execute("ask (JOHN, ∈, PERSON)") == "false"
        shell.execute("include mem-upward")
        assert shell.execute("ask (JOHN, ∈, PERSON)") == "true"

    def test_unknown_rule_is_error_text(self, shell):
        assert shell.execute("exclude no-such-rule").startswith("error:")

    def test_limit_off(self, shell):
        assert shell.execute("limit off") == "composition unlimited"
        assert shell.db.composition_limit is None

    def test_limit_usage(self, shell):
        assert shell.execute("limit zero").startswith("usage:")

    def test_rules_listing(self, shell):
        output = shell.execute("rules")
        assert "[on ] gen-transitive" in output
        shell.execute("exclude gen-transitive")
        assert "[off] gen-transitive" in shell.execute("rules")

    def test_relation_command(self):
        from repro.datasets import paper

        shell = BrowserShell(paper.load())
        output = shell.execute(
            "relation EMPLOYEE WORKS-FOR:DEPARTMENT EARNS:SALARY")
        assert "JOHN" in output and "SHIPPING" in output

    def test_relation_bad_spec(self, shell):
        assert "bad column spec" in shell.execute("relation X NOPE")

    def test_stats(self, shell):
        output = shell.execute("stats")
        assert "base_facts:" in output

    def test_explain_command(self, shell):
        output = shell.execute(
            "explain (JOHN, LIKES, y) and (y, in, CAT)")
        assert "safety: ok" in output
        assert "initial conjunct order" in output

    def test_function_command_full_listing(self, shell):
        output = shell.execute("function FATHER-OF")
        assert "LEOPOLD -> MOZART" in output
        assert "single-valued" in output

    def test_function_command_single_entity(self, shell):
        output = shell.execute("function LIKES JOHN")
        assert "FELIX" in output
        assert shell.execute("function LIKES NOBODY") == "(no images)"

    def test_function_command_empty(self, shell):
        assert shell.execute("function NO-SUCH-REL") == "(empty function)"

    def test_why_command_on_traced_database(self):
        db = Database(trace=True)
        db.add("JOHN", "∈", "EMPLOYEE")
        db.add("EMPLOYEE", "EARNS", "SALARY")
        shell = BrowserShell(db)
        output = shell.execute("why JOHN EARNS SALARY")
        assert "[mem-source]" in output
        assert "[stored]" in output

    def test_why_command_without_trace_is_error_text(self, shell):
        shell.execute("add A NEWREL B")
        output = shell.execute("why A MISSING B")
        assert output.startswith("error:")

    def test_why_usage(self, shell):
        assert shell.execute("why A B").startswith("usage:")


class TestShellMechanics:
    def test_empty_line(self, shell):
        assert shell.execute("") == ""

    def test_unknown_command(self, shell):
        assert "unknown command" in shell.execute("dance")

    def test_help_lists_commands(self, shell):
        output = shell.execute("help")
        assert "probe QUERY" in output

    def test_quit_sets_done(self, shell):
        assert shell.execute("quit") == "bye"
        assert shell.done

    def test_run_loop(self, music_db):
        stdin = io.StringIO("try MOZART\nquit\n")
        stdout = io.StringIO()
        BrowserShell(music_db).run(stdin=stdin, stdout=stdout)
        text = stdout.getvalue()
        assert "browser" in text
        assert "FATHER-OF" in text
        assert "bye" in text

    def test_run_loop_handles_eof(self, music_db):
        stdin = io.StringIO("try MOZART\n")  # no quit: EOF ends it
        stdout = io.StringIO()
        BrowserShell(music_db).run(stdin=stdin, stdout=stdout)
        assert "FATHER-OF" in stdout.getvalue()


class TestMain:
    def test_loads_dataset_by_name(self, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO("quit\n"))
        assert main(["music"]) == 0

    def test_loads_durable_directory(self, tmp_path, monkeypatch):
        from repro.storage.session import open_database

        db, session = open_database(tmp_path / "d")
        db.add("A", "R", "B")
        session.close()
        monkeypatch.setattr("sys.stdin", io.StringIO("ask (A, R, B)\nquit\n"))
        monkeypatch.setattr("sys.stdout", io.StringIO())
        assert main([str(tmp_path / "d")]) == 0

    def test_usage_error(self):
        assert main(["a", "b"]) == 2

    def test_monitor_mode_renders_frames(self, capsys):
        from repro.db import Database
        from repro.obs import metrics as obs_metrics
        from repro.serve import DatabaseService
        from repro.serve.net import ServiceClient, ServiceServer

        obs_metrics.enable_metrics(fresh=True)
        db = Database()
        db.add("A", "R", "B")
        service = DatabaseService(db)
        server = ServiceServer(service, port=0)
        server.start()
        host, port = server.address
        try:
            with ServiceClient(host, port) as client:
                client.query("(x, R, y)")
            assert main(["monitor", f"{host}:{port}", "--count", "2",
                         "--interval", "0.05", "--no-clear"]) == 0
        finally:
            server.close()
            service.close()
            obs_metrics.disable_metrics()
        output = capsys.readouterr().out
        assert "repro monitor" in output
        assert "frame 2" in output
        assert "query" in output
