"""Derivation provenance tests: justification recording, tree
construction, composition splitting, and support sets."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entities import ISA, MEMBER, SYN
from repro.core.facts import Fact
from repro.core.store import FactStore
from repro.db import Database
from repro.rules.builtin import STANDARD_RULES
from repro.rules.engine import Justification, semi_naive_closure
from repro.rules.provenance import (
    DerivationTree,
    ProvenanceError,
    explain_fact,
)
from repro.rules.rule import RelationshipClassifier, RuleContext


def traced_db(*facts) -> Database:
    db = Database(trace=True)
    for fact in facts:
        db.add(*fact)
    return db


class TestJustificationRecording:
    def test_every_derived_fact_justified(self):
        facts = [
            Fact("JOHN", MEMBER, "EMPLOYEE"),
            Fact("EMPLOYEE", ISA, "PERSON"),
            Fact("EMPLOYEE", "EARNS", "SALARY"),
        ]
        store = FactStore(facts)
        context = RuleContext(classifier=RelationshipClassifier(store))
        result = semi_naive_closure(facts, STANDARD_RULES, context,
                                    trace=True)
        derived = set(result.store) - set(facts)
        assert derived
        for fact in derived:
            assert fact in result.provenance

    def test_premises_are_earlier_facts(self):
        facts = [Fact("A", ISA, "B"), Fact("B", ISA, "C"),
                 Fact("C", ISA, "D")]
        store = FactStore(facts)
        context = RuleContext(classifier=RelationshipClassifier(store))
        result = semi_naive_closure(facts, STANDARD_RULES, context,
                                    trace=True)
        for fact, justification in result.provenance.items():
            for premise in justification.premises:
                assert premise in result.store

    def test_trace_off_by_default(self):
        facts = [Fact("A", ISA, "B")]
        store = FactStore(facts)
        context = RuleContext(classifier=RelationshipClassifier(store))
        result = semi_naive_closure(facts, STANDARD_RULES, context)
        assert result.provenance is None


class TestWhy:
    def test_stored_fact(self):
        db = traced_db(("A", "R", "B"))
        tree = db.why("(A, R, B)")
        assert tree.is_stored
        assert tree.depth() == 0

    def test_single_step_derivation(self):
        db = traced_db(("JOHN", MEMBER, "EMPLOYEE"),
                       ("EMPLOYEE", "EARNS", "SALARY"))
        tree = db.why("(JOHN, EARNS, SALARY)")
        assert tree.rule == "mem-source"
        assert tree.depth() == 1
        assert {p.fact for p in tree.premises} == {
            Fact("JOHN", MEMBER, "EMPLOYEE"),
            Fact("EMPLOYEE", "EARNS", "SALARY"),
        }

    def test_multi_step_derivation(self):
        db = traced_db(("JOHN", MEMBER, "EMPLOYEE"),
                       ("EMPLOYEE", "EARNS", "SALARY"),
                       ("SALARY", ISA, "COMPENSATION"))
        tree = db.why("(JOHN, EARNS, COMPENSATION)")
        assert tree.depth() == 2

    def test_stored_support(self):
        db = traced_db(("JOHN", MEMBER, "EMPLOYEE"),
                       ("EMPLOYEE", "EARNS", "SALARY"),
                       ("SALARY", ISA, "COMPENSATION"))
        support = db.why("(JOHN, EARNS, COMPENSATION)").stored_support()
        assert support == {
            Fact("JOHN", MEMBER, "EMPLOYEE"),
            Fact("EMPLOYEE", "EARNS", "SALARY"),
            Fact("SALARY", ISA, "COMPENSATION"),
        }

    def test_composition_provenance(self):
        db = traced_db(("A", "R", "B"), ("B", "S", "C"))
        db.limit(2)
        tree = db.why("(A, R.B.S, C)")
        assert tree.rule == "composition"
        assert {p.fact for p in tree.premises} == {
            Fact("A", "R", "B"), Fact("B", "S", "C")}

    def test_nested_composition_provenance(self):
        db = traced_db(("A", "R", "B"), ("B", "S", "C"), ("C", "T", "D"))
        db.limit(3)
        tree = db.why("(A, R.B.S.C.T, D)")
        assert tree.rule == "composition"
        assert tree.stored_support() == {
            Fact("A", "R", "B"), Fact("B", "S", "C"),
            Fact("C", "T", "D")}

    def test_virtual_fact(self):
        db = traced_db(("A", "R", "B"))
        tree = db.why("(5, <, 8)")
        assert tree.rule == "virtual"

    def test_unknown_fact_raises(self):
        db = traced_db(("A", "R", "B"))
        with pytest.raises(ProvenanceError):
            db.why("(A, R, NOPE)")

    def test_trace_off_raises_helpfully(self):
        db = Database()
        db.add("JOHN", MEMBER, "EMPLOYEE")
        db.add("EMPLOYEE", "EARNS", "SALARY")
        with pytest.raises(ProvenanceError, match="trace=True"):
            db.why("(JOHN, EARNS, SALARY)")

    def test_non_ground_text_rejected(self):
        db = traced_db(("A", "R", "B"))
        with pytest.raises(Exception):
            db.why("(A, R, x)")

    def test_incremental_insertions_are_traced(self):
        db = traced_db(("EMPLOYEE", "EARNS", "SALARY"))
        db.closure()  # materialize, then extend incrementally
        db.add("JOHN", MEMBER, "EMPLOYEE")
        tree = db.why("(JOHN, EARNS, SALARY)")
        assert tree.rule == "mem-source"


class TestRendering:
    def test_render_shape(self):
        db = traced_db(("JOHN", MEMBER, "EMPLOYEE"),
                       ("EMPLOYEE", "EARNS", "SALARY"))
        text = db.why("(JOHN, EARNS, SALARY)").render()
        lines = text.splitlines()
        assert lines[0].endswith("[mem-source]")
        assert lines[1].startswith("├── ")
        assert lines[2].startswith("└── ")
        assert all("[stored]" in line for line in lines[1:])

    def test_render_nested_indentation(self):
        db = traced_db(("JOHN", MEMBER, "EMPLOYEE"),
                       ("EMPLOYEE", "EARNS", "SALARY"),
                       ("SALARY", ISA, "COMPENSATION"))
        text = db.why("(JOHN, EARNS, COMPENSATION)").render()
        assert "│   " in text or "    " in text


# ----------------------------------------------------------------------
# Property: every derived fact of a random heap explains down to
# stored facts, and the premises really derive it.
# ----------------------------------------------------------------------
_entities = st.sampled_from(["A", "B", "C", "D"])
_relationships = st.sampled_from(["R", "S", ISA, MEMBER, SYN])
_heaps = st.lists(
    st.builds(Fact, _entities, _relationships, _entities),
    min_size=1, max_size=10)


@settings(max_examples=30, deadline=None)
@given(facts=_heaps)
def test_all_derivations_ground_out(facts):
    store = FactStore(facts)
    context = RuleContext(classifier=RelationshipClassifier(store))
    result = semi_naive_closure(facts, STANDARD_RULES, context,
                                trace=True)
    for fact in result.store:
        tree = explain_fact(fact, store, result.provenance)
        support = tree.stored_support()
        assert support <= set(facts)
        if not tree.is_stored:
            assert support  # every derivation rests on stored facts
