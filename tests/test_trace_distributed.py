"""Distributed request tracing: context propagation, span stitching,
and the end-to-end acceptance path — one traced request through a TCP
server backed by a replica pool yields one tree spanning processes."""

from __future__ import annotations

import os

import pytest

from repro.db import Database
from repro.obs.context import (
    SpanRecord,
    TraceContext,
    render_trace,
    stitch,
    trace_processes,
)
from repro.serve import DatabaseService, ReplicaPool
from repro.serve.net import ServiceClient, ServiceServer


# ----------------------------------------------------------------------
# Context unit behavior
# ----------------------------------------------------------------------
class TestTraceContext:
    def test_span_records_nest(self):
        ctx = TraceContext.new()
        with ctx.span("outer", role="client") as outer:
            with ctx.span("inner", role="client"):
                pass
        records = ctx.collect()
        assert len(records) == 2
        inner = next(r for r in records if r["name"] == "inner")
        assert inner["parent_id"] == outer.span_id
        assert all(r["trace_id"] == ctx.trace_id for r in records)

    def test_span_captures_errors(self):
        ctx = TraceContext.new()
        with pytest.raises(ValueError):
            with ctx.span("fails"):
                raise ValueError("boom")
        record = ctx.collect()[0]
        assert "ValueError" in record["error"]

    def test_wire_round_trip(self):
        parent = TraceContext.new()
        with parent.span("parent"):
            wire = parent.wire()
        child = TraceContext.from_wire(wire)
        assert child is not None
        assert child.trace_id == parent.trace_id
        with child.span("remote", role="replica"):
            pass
        parent.absorb(child.collect())
        roots = stitch(parent.collect())
        assert len(roots) == 1
        assert roots[0]["children"][0]["span"]["name"] == "remote"

    def test_from_wire_rejects_absent(self):
        assert TraceContext.from_wire(None) is None
        assert TraceContext.from_wire({}) is None

    def test_stitch_orphans_become_roots(self):
        record = SpanRecord(trace_id="t", span_id="s",
                            parent_id="missing", name="lonely",
                            role="x", pid=1, start=0.0, wall=0.1)
        roots = stitch([record.as_dict()])
        assert len(roots) == 1
        assert roots[0]["span"]["name"] == "lonely"

    def test_trace_processes_distinct(self):
        records = [
            SpanRecord(trace_id="t", span_id=str(index), parent_id=None,
                       name="n", role="r", pid=pid, start=0.0,
                       wall=0.0).as_dict()
            for index, pid in enumerate([10, 10, 20])]
        assert sorted(trace_processes(records)) == [10, 20]

    def test_render_trace_shows_tree(self):
        ctx = TraceContext.new()
        with ctx.span("request", role="client"):
            with ctx.span("dispatch", role="server"):
                pass
        text = render_trace(ctx.collect())
        assert "request" in text and "dispatch" in text
        # The child is indented under the root.
        request_line, dispatch_line = [
            line for line in text.splitlines()
            if "request" in line or "dispatch" in line]
        indent = len(dispatch_line) - len(dispatch_line.lstrip())
        assert indent > len(request_line) - len(request_line.lstrip())


# ----------------------------------------------------------------------
# End-to-end: the acceptance trace
# ----------------------------------------------------------------------
def _build_database() -> Database:
    db = Database()
    for index in range(4):
        db.add(f"P{index}", "WORKS-IN", f"D{index % 2}")
        db.add(f"D{index % 2}", "PART-OF", "ORG")
    return db


@pytest.fixture()
def pooled_server():
    """TCP server backed by a 2-worker replica pool."""
    service = DatabaseService(_build_database())
    pool = ReplicaPool(service, workers=2)
    server = ServiceServer(service, port=0, pool=pool)
    server.start()
    try:
        yield server.address
    finally:
        server.close()
        pool.close()
        service.close()


class TestDistributedTrace:
    def test_probe_through_pool_stitches_multi_process_tree(
            self, pooled_server):
        host, port = pooled_server
        with ServiceClient(host, port, trace=True) as client:
            outcome = client.probe("(x, PART-OF, ORG)")
            assert outcome["succeeded"]
            spans = client.last_trace

        # One request → one stitched tree with at least four spans
        # (client, server dispatch, pool routing, replica evaluation)
        # spanning at least two OS processes.
        assert len(spans) >= 4
        roots = stitch(spans)
        assert len(roots) == 1
        processes = trace_processes(spans)
        assert len(processes) >= 2
        assert os.getpid() in processes
        roles = {span["role"] for span in spans}
        assert {"client", "server", "pool", "replica"} <= roles
        # Every span belongs to the same trace.
        assert len({span["trace_id"] for span in spans}) == 1

    def test_traced_write_covers_writer_thread(self, pooled_server):
        host, port = pooled_server
        with ServiceClient(host, port, trace=True) as client:
            assert client.add("NEW", "WORKS-IN", "D0")
            spans = client.last_trace
        roles = {span["role"] for span in spans}
        assert "writer" in roles
        writer = next(s for s in spans if s["role"] == "writer")
        assert writer["attributes"]["op"] == "add"

    def test_untraced_requests_carry_no_trace(self, pooled_server):
        host, port = pooled_server
        with ServiceClient(host, port) as client:
            assert client.query("(x, WORKS-IN, y)")
            assert client.last_trace == []

    def test_trace_toggle_is_per_client(self, pooled_server):
        host, port = pooled_server
        with ServiceClient(host, port, trace=True) as traced, \
                ServiceClient(host, port) as plain:
            traced.query("(x, WORKS-IN, y)")
            plain.query("(x, WORKS-IN, y)")
            assert traced.last_trace
            assert plain.last_trace == []

    def test_render_last_trace(self, pooled_server):
        host, port = pooled_server
        with ServiceClient(host, port, trace=True) as client:
            client.query("(x, WORKS-IN, y)")
            text = client.render_last_trace()
        assert "client.request" in text
        assert "replica.read" in text
