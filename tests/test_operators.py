"""Tests for the §6.1 operators: try, relation, define/invoke,
include/exclude/limit as Database methods."""

from __future__ import annotations

import pytest

from repro.core.entities import MEMBER
from repro.core.errors import QueryError
from repro.core.facts import Fact
from repro.db import Database
from repro.datasets import paper
from repro.operators.definitions import OperatorRegistry


class TestTry:
    def test_finds_entity_in_every_position(self, empty_db):
        empty_db.add("JOHN", "LIKES", "FELIX")
        empty_db.add("MARY", "JOHN", "X")       # relationship position
        empty_db.add("FELIX", "OWNED-BY", "JOHN")
        facts = empty_db.try_("JOHN")
        assert Fact("JOHN", "LIKES", "FELIX") in facts
        assert Fact("MARY", "JOHN", "X") in facts
        assert Fact("FELIX", "OWNED-BY", "JOHN") in facts

    def test_includes_derived_facts(self, paper_db):
        facts = paper_db.try_("JOHN")
        assert Fact("JOHN", "WORKS-FOR", "DEPARTMENT") in facts

    def test_unknown_entity_gives_nothing(self, paper_db):
        assert paper_db.try_("NOBODY") == []

    def test_results_sorted_and_unique(self, paper_db):
        facts = paper_db.try_("JOHN")
        assert facts == sorted(set(facts))


class TestRelationOperator:
    def test_paper_table(self, paper_db):
        """E5: the §6.1 employee table, exactly."""
        table = paper_db.relation(
            "EMPLOYEE", ("WORKS-FOR", "DEPARTMENT"), ("EARNS", "SALARY"))
        rows = {row.instance: row.cells for row in table.rows}
        assert rows == {
            "JOHN": (("SHIPPING",), ("$26000",)),
            "TOM": (("ACCOUNTING",), ("$27000",)),
            "MARY": (("RECEIVING",), ("$25000",)),
        }

    def test_headers(self, paper_db):
        table = paper_db.relation(
            "EMPLOYEE", ("WORKS-FOR", "DEPARTMENT"), ("EARNS", "SALARY"))
        assert table.headers() == [
            "EMPLOYEE", "WORKS-FOR DEPARTMENT", "EARNS SALARY"]

    def test_render_contains_rows(self, paper_db):
        text = paper_db.relation(
            "EMPLOYEE", ("WORKS-FOR", "DEPARTMENT"),
            ("EARNS", "SALARY")).render()
        assert "JOHN" in text and "SHIPPING" in text and "$26000" in text

    def test_non_first_normal_form(self, empty_db):
        """§6.1: cells may hold any number of entities."""
        empty_db.add("E1", MEMBER, "EMPLOYEE")
        empty_db.add("D1", MEMBER, "DEPARTMENT")
        empty_db.add("D2", MEMBER, "DEPARTMENT")
        empty_db.add("E1", "WORKS-FOR", "D1")
        empty_db.add("E1", "WORKS-FOR", "D2")
        table = empty_db.relation("EMPLOYEE", ("WORKS-FOR", "DEPARTMENT"))
        assert table.rows[0].cells == (("D1", "D2"),)

    def test_empty_cell_rendered_as_dash(self, empty_db):
        empty_db.add("E1", MEMBER, "EMPLOYEE")
        table = empty_db.relation("EMPLOYEE", ("WORKS-FOR", "DEPARTMENT"))
        assert "-" in table.render()

    def test_target_class_filters(self, paper_db):
        """Values outside the declared target class are excluded — the
        derived (JOHN, EARNS, SALARY) does not pollute the table."""
        table = paper_db.relation("EMPLOYEE", ("EARNS", "SALARY"))
        for row in table.rows:
            assert "SALARY" not in row.cells[0]
            assert "COMPENSATION" not in row.cells[0]


class TestDefineInvoke:
    def test_string_operator(self, paper_db):
        paper_db.define("instances", "(x, in, $1)")
        assert paper_db.invoke("instances", "EMPLOYEE") == {
            ("JOHN",), ("TOM",), ("MARY",)}

    def test_multi_argument_operator(self, paper_db):
        paper_db.define("related", "($1, $2, x)")
        assert paper_db.invoke("related", "JOHN", "EARNS") == {
            ("$26000",), ("SALARY",), ("COMPENSATION",)}

    def test_callable_operator(self, paper_db):
        paper_db.define("fact-count", lambda db: len(db.facts))
        assert paper_db.invoke("fact-count") == len(paper_db.facts)

    def test_unknown_operator(self, paper_db):
        with pytest.raises(QueryError):
            paper_db.invoke("nope")

    def test_placeholder_out_of_range(self, paper_db):
        paper_db.define("bad", "(x, in, $2)")
        with pytest.raises(QueryError):
            paper_db.invoke("bad", "EMPLOYEE")

    def test_arguments_are_quoted(self, paper_db):
        """Entities with commas/quotes cannot inject syntax."""
        paper_db.define("instances", "(x, in, $1)")
        assert paper_db.invoke("instances", 'WEIRD, "NAME') == set()

    def test_registry_names(self):
        registry = OperatorRegistry()
        registry.define("a", "(x, R, $1)")
        registry.define("b", lambda db: None)
        assert registry.names() == ["a", "b"]
        registry.undefine("a")
        assert "a" not in registry

    def test_expand_rejects_callable(self):
        registry = OperatorRegistry()
        registry.define("f", lambda db: None)
        with pytest.raises(QueryError):
            registry.expand("f", ())


class TestIncludeExcludeLimit:
    def test_exclude_disables_inference(self, paper_db):
        assert paper_db.ask("(MANAGER, WORKS-FOR, DEPARTMENT)")
        paper_db.exclude("gen-source")
        assert not paper_db.ask("(MANAGER, WORKS-FOR, DEPARTMENT)")
        paper_db.include("gen-source")
        assert paper_db.ask("(MANAGER, WORKS-FOR, DEPARTMENT)")

    def test_limit_gates_composition(self, empty_db):
        empty_db.add("TOM", "ENROLLED-IN", "CS100")
        empty_db.add("CS100", "TAUGHT-BY", "HARRY")
        composed = "(TOM, ENROLLED-IN.CS100.TAUGHT-BY, HARRY)"
        assert not empty_db.ask(composed)
        empty_db.limit(2)
        assert empty_db.ask(composed)
        empty_db.limit(1)
        assert not empty_db.ask(composed)

    def test_limit_validation(self, empty_db):
        with pytest.raises(ValueError):
            empty_db.limit(0)

    def test_unlimited(self, empty_db):
        empty_db.add("A", "R", "B")
        empty_db.add("B", "R", "C")
        empty_db.add("C", "R", "D")
        empty_db.limit(None)
        assert empty_db.ask("(A, R.B.R.C.R, D)")
