"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import Database
from repro.datasets import books, music, paper, university


@pytest.fixture
def empty_db() -> Database:
    return Database()


@pytest.fixture
def music_db() -> Database:
    return music.load()


@pytest.fixture
def paper_db() -> Database:
    return paper.load()


@pytest.fixture
def university_db() -> Database:
    return university.load()


@pytest.fixture
def books_db() -> Database:
    return books.load()
