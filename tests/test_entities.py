"""Unit tests for repro.core.entities."""

from __future__ import annotations

import pytest

from repro.core.entities import (
    BOTTOM,
    CONTRA,
    EQ,
    GE,
    GT,
    INV,
    ISA,
    LE,
    LT,
    MATH_RELATIONSHIPS,
    MEMBER,
    NE,
    SPECIAL_RELATIONSHIPS,
    SYN,
    TOP,
    compose_relationship,
    composition_length,
    is_composed,
    is_math_relationship,
    is_numeric,
    is_special_relationship,
    numeric_value,
    validate_entity,
)
from repro.core.errors import EntityError


class TestValidateEntity:
    def test_accepts_plain_names(self):
        assert validate_entity("JOHN") == "JOHN"

    def test_accepts_symbols_and_digits(self):
        assert validate_entity("PC#9-WAM") == "PC#9-WAM"
        assert validate_entity("$25000") == "$25000"

    def test_accepts_special_glyphs(self):
        for glyph in (ISA, MEMBER, SYN, INV, CONTRA, TOP, BOTTOM):
            assert validate_entity(glyph) == glyph

    def test_rejects_empty(self):
        with pytest.raises(EntityError):
            validate_entity("")

    def test_rejects_non_string(self):
        with pytest.raises(EntityError):
            validate_entity(25000)

    def test_rejects_surrounding_whitespace(self):
        with pytest.raises(EntityError):
            validate_entity(" JOHN")
        with pytest.raises(EntityError):
            validate_entity("JOHN ")

    def test_rejects_newlines(self):
        with pytest.raises(EntityError):
            validate_entity("JO\nHN")

    def test_allows_interior_spaces(self):
        assert validate_entity("NEW YORK") == "NEW YORK"


class TestSpecialSets:
    def test_math_subset_of_special(self):
        assert MATH_RELATIONSHIPS <= SPECIAL_RELATIONSHIPS

    def test_special_relationship_predicate(self):
        assert is_special_relationship(ISA)
        assert is_special_relationship(LT)
        assert not is_special_relationship("LIKES")

    def test_math_predicate(self):
        for comparator in (LT, GT, EQ, NE, LE, GE):
            assert is_math_relationship(comparator)
        assert not is_math_relationship(ISA)

    def test_top_bottom_not_relationships(self):
        assert TOP not in SPECIAL_RELATIONSHIPS
        assert BOTTOM not in SPECIAL_RELATIONSHIPS


class TestNumericValue:
    def test_plain_integer(self):
        assert numeric_value("25000") == 25000

    def test_dollar_prefix(self):
        assert numeric_value("$25000") == 25000

    def test_thousands_separators(self):
        assert numeric_value("$25,000") == 25000

    def test_float(self):
        assert numeric_value("2.6") == 2.6

    def test_negative(self):
        assert numeric_value("-5") == -5

    def test_non_numeric_is_none(self):
        assert numeric_value("JOHN") is None

    def test_bare_dollar_is_none(self):
        assert numeric_value("$") is None

    def test_inf_nan_are_names_not_numbers(self):
        assert numeric_value("inf") is None
        assert numeric_value("nan") is None
        assert numeric_value("-inf") is None

    def test_is_numeric(self):
        assert is_numeric("$27000")
        assert not is_numeric("SHIPPING")


class TestComposition:
    def test_compose_relationship_name(self):
        name = compose_relationship("ENROLLED-IN", "CS100", "TAUGHT-BY")
        assert name == "ENROLLED-IN.CS100.TAUGHT-BY"

    def test_is_composed(self):
        assert is_composed("ENROLLED-IN.CS100.TAUGHT-BY")
        assert not is_composed("ENROLLED-IN")

    def test_composition_length_primitive(self):
        assert composition_length("LIKES") == 1

    def test_composition_length_single(self):
        assert composition_length("A.B.C") == 2

    def test_composition_length_nested(self):
        nested = compose_relationship("A.B.C", "D", "E")
        assert composition_length(nested) == 3
