"""Lazy (tabled, query-driven) inference: equivalence with the
materialized closure, goal canonicalization, and laziness itself."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entities import INV, ISA, MEMBER, SYN
from repro.core.facts import Fact, Template, Variable, var
from repro.core.store import FactStore
from repro.db import Database
from repro.rules.builtin import STANDARD_RULES
from repro.rules.engine import semi_naive_closure
from repro.rules.lazy import LazyEngine, canonical_goal
from repro.rules.rule import RelationshipClassifier, RuleContext

X, Y, Z = var("x"), var("y"), var("z")


def _engine(facts, rules=None):
    store = FactStore(facts)
    context = RuleContext(classifier=RelationshipClassifier(store))
    return LazyEngine(store,
                      STANDARD_RULES if rules is None else rules, context)


def _closure(facts):
    store = FactStore(facts)
    context = RuleContext(classifier=RelationshipClassifier(store))
    return semi_naive_closure(facts, STANDARD_RULES, context).store


class TestCanonicalGoal:
    def test_alpha_equivalence(self):
        assert canonical_goal(Template(X, "R", Y)) == canonical_goal(
            Template(Z, "R", X))

    def test_repeated_variables_preserved(self):
        repeated = canonical_goal(Template(X, "R", X))
        distinct = canonical_goal(Template(X, "R", Y))
        assert repeated != distinct
        assert repeated.source == repeated.target

    def test_ground_positions_untouched(self):
        goal = canonical_goal(Template("JOHN", X, "FELIX"))
        assert goal.source == "JOHN"
        assert goal.target == "FELIX"


class TestLazyDerivation:
    def test_membership_inference(self):
        engine = _engine([
            Fact("JOHN", MEMBER, "EMPLOYEE"),
            Fact("EMPLOYEE", "EARNS", "SALARY"),
        ])
        facts = set(engine.match(Template("JOHN", "EARNS", X)))
        assert facts == {Fact("JOHN", "EARNS", "SALARY")}

    def test_transitive_generalization(self):
        chain = [Fact(f"N{i}", ISA, f"N{i+1}") for i in range(5)]
        engine = _engine(chain)
        facts = set(engine.match(Template("N0", ISA, X)))
        assert Fact("N0", ISA, "N5") in facts

    def test_synonym_substitution(self):
        engine = _engine([
            Fact("JOHN", SYN, "JOHNNY"),
            Fact("JOHN", "EARNS", "$25000"),
        ])
        assert Fact("JOHNNY", "EARNS", "$25000") in engine

    def test_inversion(self):
        engine = _engine([
            Fact(INV, INV, INV),
            Fact("INSTRUCTOR", "TEACHES", "COURSE"),
            Fact("TEACHES", INV, "TAUGHT-BY"),
        ])
        assert Fact("COURSE", "TAUGHT-BY", "INSTRUCTOR") in engine

    def test_open_goal_is_full_closure(self):
        facts = [
            Fact("A", ISA, "B"), Fact("B", ISA, "C"),
            Fact("I", MEMBER, "A"),
        ]
        engine = _engine(facts)
        assert set(engine) == set(_closure(facts))

    def test_no_rules_means_base_only(self):
        facts = [Fact("A", ISA, "B"), Fact("B", ISA, "C")]
        engine = _engine(facts, rules=[])
        assert set(engine) == set(facts)

    def test_facts_mentioning(self):
        engine = _engine([
            Fact("JOHN", MEMBER, "EMPLOYEE"),
            Fact("EMPLOYEE", "EARNS", "SALARY"),
        ])
        mentioning = engine.facts_mentioning("JOHN")
        assert Fact("JOHN", "EARNS", "SALARY") in mentioning


class TestLaziness:
    def test_point_query_avoids_full_derivation(self):
        """A selective query must not derive the whole closure."""
        facts = [Fact(f"E{i}", "LIKES", f"E{i+1}") for i in range(50)]
        facts += [Fact(f"E{i}", MEMBER, "THING") for i in range(50)]
        facts.append(Fact("JOHN", "LIKES", "FELIX"))
        engine = _engine(facts)
        list(engine.match(Template("JOHN", "LIKES", X)))
        closure_size = len(_closure(facts))
        derived = engine.stats.derived + engine.stats.base_matches
        assert derived < closure_size / 2

    def test_tables_are_reused(self):
        engine = _engine([
            Fact("JOHN", MEMBER, "EMPLOYEE"),
            Fact("EMPLOYEE", "EARNS", "SALARY"),
        ])
        list(engine.match(Template("JOHN", "EARNS", X)))
        rounds_after_first = engine.stats.rounds
        list(engine.match(Template("JOHN", "EARNS", X)))
        assert engine.stats.rounds == rounds_after_first

    def test_nested_consumption_is_safe(self):
        """Consuming one goal while triggering another (the evaluator's
        join pattern) neither crashes nor loses answers."""
        engine = _engine([
            Fact("A", ISA, "B"), Fact("B", ISA, "C"),
            Fact("C", "HAS", "D"), Fact("B", "HAS", "E"),
        ])
        pairs = set()
        for isa_fact in engine.match(Template("A", ISA, X)):
            for has_fact in engine.match(
                    Template(isa_fact.target, "HAS", Y)):
                pairs.add((isa_fact.target, has_fact.target))
        assert ("C", "D") in pairs
        # gen-source pushes HAS facts down to A's generalizations' ...
        assert ("B", "E") in pairs


class TestDatabaseLazy:
    def test_query_lazy_equals_query(self, paper_db):
        for text in (
            "(JOHN, EARNS, y)",
            "(MANAGER, WORKS-FOR, y)",
            "(x, in, EMPLOYEE)",
            "exists y: (z, in, EMPLOYEE) and (z, EARNS, y)"
            " and (y, >, 26500)",
        ):
            assert paper_db.query_lazy(text) == paper_db.query(text), text

    def test_lazy_engine_cached_and_invalidated(self, paper_db):
        first = paper_db.lazy_engine()
        assert paper_db.lazy_engine() is first
        paper_db.add("NEW", "R", "B")
        assert paper_db.lazy_engine() is not first

    def test_lazy_sees_virtual_relations(self, paper_db):
        assert paper_db.query_lazy("(y, >, 26500) and (TOM, EARNS, y)") \
            == {("$27000",)}

    def test_lazy_view_endpoint_witness(self, university_db):
        """Retraction-style endpoint templates derive lazily too."""
        from repro.query.parser import parse_template

        matches = list(university_db.lazy_view().match(
            parse_template("(JAKE, GRADUATE-OF, TOP)")))
        assert matches == []  # Jake attended, never graduated
        matches = list(university_db.lazy_view().match(
            parse_template("(BOB, GRADUATE-OF, TOP)")))
        assert matches  # Bob graduated from UCLA


# ----------------------------------------------------------------------
# Property: lazy matching agrees with the materialized closure, for
# every goal shape, on random heaps.
# ----------------------------------------------------------------------
_entities = st.sampled_from(["A", "B", "C", "D"])
_relationships = st.sampled_from(["R", "S", ISA, MEMBER, SYN])
_heaps = st.lists(
    st.builds(Fact, _entities, _relationships, _entities),
    min_size=1, max_size=12)
_shapes = st.tuples(st.booleans(), st.booleans(), st.booleans())
_probes = st.builds(Fact, _entities, _relationships, _entities)


def _pattern(shape, probe: Fact) -> Template:
    names = iter((X, Y, Z))
    return Template(*[
        component if keep else next(names)
        for keep, component in zip(shape, probe)
    ])


@settings(max_examples=50, deadline=None)
@given(facts=_heaps, shape=_shapes, probe=_probes)
def test_lazy_matches_materialized(facts, shape, probe):
    pattern = _pattern(shape, probe)
    lazy = set(_engine(facts).match(pattern))
    materialized = set(_closure(facts).match(pattern))
    assert lazy == materialized


@settings(max_examples=25, deadline=None)
@given(facts=_heaps)
def test_lazy_full_enumeration_matches(facts):
    assert set(_engine(facts)) == set(_closure(facts))
