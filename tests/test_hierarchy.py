"""Tests for the generalization hierarchy (broadness, §5.1).

These are semantic tests of the §5.1 contract, exercised against the
production :class:`~repro.browse.lattice.GeneralizationLattice` (the
networkx reference implementation is covered differentially by
``test_lattice.py``).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.browse.lattice import GeneralizationLattice
from repro.core.entities import BOTTOM, ISA, SYN, TOP
from repro.core.facts import Fact
from repro.core.store import FactStore
from repro.db import Database


def hierarchy_of(*pairs, extra_entities=()):
    facts = [Fact(s, ISA, t) for s, t in pairs]
    store = FactStore(facts)
    for entity in extra_entities:
        store.add(Fact(entity, "SELF", entity))
    return GeneralizationLattice.from_store(store)


class TestMinimalGeneralizations:
    def test_single_parent(self):
        h = hierarchy_of(("FRESHMAN", "STUDENT"))
        assert h.minimal_generalizations("FRESHMAN") == {"STUDENT"}

    def test_transitive_parent_not_minimal(self):
        h = hierarchy_of(("A", "B"), ("B", "C"))
        assert h.minimal_generalizations("A") == {"B"}

    def test_transitively_closed_input_still_reduced(self):
        """The hierarchy is built from the closure, where (A,≺,C) is
        materialized; transitive reduction must recover the covers."""
        h = hierarchy_of(("A", "B"), ("B", "C"), ("A", "C"))
        assert h.minimal_generalizations("A") == {"B"}

    def test_multiple_minimal_generalizations(self):
        """§5.1: an entity may have several minimal generalizations."""
        h = hierarchy_of(("OPERA", "MUSIC"), ("OPERA", "THEATER"))
        assert h.minimal_generalizations("OPERA") == {"MUSIC", "THEATER"}

    def test_maximal_entity_generalizes_to_top(self):
        h = hierarchy_of(("A", "B"))
        assert h.minimal_generalizations("B") == {TOP}

    def test_isolated_known_entity_generalizes_to_top(self):
        h = hierarchy_of(("A", "B"), extra_entities=("LONER",))
        assert h.minimal_generalizations("LONER") == {TOP}

    def test_unknown_entity_never_replaced(self):
        h = hierarchy_of(("A", "B"))
        assert h.minimal_generalizations("GHOST") == frozenset()

    def test_top_and_bottom_terminal(self):
        h = hierarchy_of(("A", "B"))
        assert h.minimal_generalizations(TOP) == frozenset()
        assert h.minimal_generalizations(BOTTOM) == frozenset()

    def test_synonyms_are_skipped(self):
        """Synonyms (mutual ≺) are interchangeable, not broader."""
        h = hierarchy_of(("JOHN", "JOHNNY"), ("JOHNNY", "JOHN"),
                         ("JOHN", "PERSON"))
        assert h.minimal_generalizations("JOHN") == {"PERSON"}
        assert h.minimal_generalizations("JOHNNY") == {"PERSON"}


class TestMinimalSpecializations:
    def test_single_child(self):
        h = hierarchy_of(("FRESHMAN", "STUDENT"))
        assert h.minimal_specializations("STUDENT") == {"FRESHMAN"}

    def test_minimal_entity_specializes_to_bottom(self):
        h = hierarchy_of(("FRESHMAN", "STUDENT"))
        assert h.minimal_specializations("FRESHMAN") == {BOTTOM}

    def test_covers_only(self):
        h = hierarchy_of(("A", "B"), ("B", "C"))
        assert h.minimal_specializations("C") == {"B"}

    def test_unknown_entity(self):
        h = hierarchy_of(("A", "B"))
        assert h.minimal_specializations("GHOST") == frozenset()

    def test_endpoints_terminal(self):
        h = hierarchy_of(("A", "B"))
        assert h.minimal_specializations(TOP) == frozenset()
        assert h.minimal_specializations(BOTTOM) == frozenset()


class TestGeneralizes:
    def test_reflexive(self):
        h = hierarchy_of(("A", "B"))
        assert h.generalizes("A", "A")

    def test_direct_and_transitive(self):
        h = hierarchy_of(("A", "B"), ("B", "C"))
        assert h.generalizes("B", "A")
        assert h.generalizes("C", "A")
        assert not h.generalizes("A", "C")

    def test_top_and_bottom(self):
        h = hierarchy_of(("A", "B"))
        assert h.generalizes(TOP, "A")
        assert h.generalizes("A", BOTTOM)

    def test_synonyms_generalize_each_other(self):
        h = hierarchy_of(("X", "Y"), ("Y", "X"))
        assert h.generalizes("X", "Y")
        assert h.generalizes("Y", "X")
        assert not h.strictly_generalizes("X", "Y")

    def test_strict_excludes_self(self):
        h = hierarchy_of(("A", "B"))
        assert h.strictly_generalizes("B", "A")
        assert not h.strictly_generalizes("A", "A")

    def test_unrelated(self):
        h = hierarchy_of(("A", "B"), ("C", "D"))
        assert not h.generalizes("B", "C")


class TestSynonymClass:
    def test_singleton(self):
        h = hierarchy_of(("A", "B"))
        assert h.synonym_class("A") == {"A"}

    def test_cycle_collapses(self):
        h = hierarchy_of(("X", "Y"), ("Y", "Z"), ("Z", "X"))
        assert h.synonym_class("X") == {"X", "Y", "Z"}

    def test_unknown(self):
        h = hierarchy_of(("A", "B"))
        assert h.synonym_class("GHOST") == {"GHOST"}


class TestChainDepth:
    def test_depths(self):
        h = hierarchy_of(("A", "B"), ("B", "C"))
        assert h.generalization_chain_depth("A") == 2
        assert h.generalization_chain_depth("B") == 1
        assert h.generalization_chain_depth("C") == 0


class TestFromDatabase:
    def test_database_hierarchy_uses_closure(self):
        """Synonym facts imply mutual ≺ only in the closure; the
        hierarchy must see them."""
        db = Database()
        db.add("JOHN", SYN, "JOHNNY")
        db.add("JOHN", ISA, "PERSON")
        h = db.hierarchy()
        assert h.synonym_class("JOHN") == {"JOHN", "JOHNNY"}
        assert h.minimal_generalizations("JOHNNY") == {"PERSON"}

    def test_knows_covers_active_domain(self):
        db = Database()
        db.add("A", "R", "B")
        h = db.hierarchy()
        assert h.knows("A") and h.knows("R") and h.knows("B")
        assert h.knows(TOP) and h.knows(BOTTOM)
        assert not h.knows("GHOST")


# ----------------------------------------------------------------------
# Property: covers reconstruct reachability on random DAGs.
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(edges=st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6)).filter(
        lambda e: e[0] < e[1]),
    max_size=15))
def test_minimal_generalizations_are_minimal(edges):
    pairs = [(f"N{a}", f"N{b}") for a, b in edges]
    h = hierarchy_of(*pairs)
    entities = {e for pair in pairs for e in pair}
    for entity in entities:
        covers = h.minimal_generalizations(entity)
        if covers == {TOP}:
            continue
        for cover in covers:
            assert h.strictly_generalizes(cover, entity)
            # Minimality: nothing strictly between entity and cover.
            for other in entities:
                if other in (entity, cover):
                    continue
                between = (h.strictly_generalizes(other, entity)
                           and h.strictly_generalizes(cover, other))
                assert not between
