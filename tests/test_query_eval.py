"""Evaluator tests: semantics of ∧ ∨ ∃ ∀, safety, and the paper's
§2.7 example queries."""

from __future__ import annotations

import pytest

from repro.core.entities import EQ, GT, MEMBER, NE
from repro.core.errors import QueryError
from repro.core.facts import Fact, Template, var
from repro.core.store import FactStore
from repro.query.ast import (
    And,
    Atom,
    Exists,
    ForAll,
    Or,
    Query,
    atom,
    exists,
    forall,
)
from repro.query.evaluate import Evaluator, check_safety, limited_variables
from repro.query.parser import parse_query
from repro.virtual.computed import FactView
from repro.virtual.special import standard_virtual_registry

X, Y, Z = var("x"), var("y"), var("z")


def evaluator(facts):
    return Evaluator(FactView(FactStore(facts),
                              standard_virtual_registry()))


BOOKS = [
    Fact("B1", MEMBER, "BOOK"),
    Fact("B2", MEMBER, "BOOK"),
    Fact("B1", "CITES", "B1"),
    Fact("B1", "CITES", "B2"),
    Fact("B1", "AUTHOR", "SARAH"),
    Fact("B2", "AUTHOR", "JOHN"),
    Fact("SARAH", MEMBER, "PERSON"),
    Fact("JOHN", MEMBER, "PERSON"),
]


class TestAtoms:
    def test_single_free_variable(self):
        result = evaluator(BOOKS).evaluate(
            Query.of(atom(Y, MEMBER, "BOOK"), (Y,)))
        assert result == {("B1",), ("B2",)}

    def test_self_citation(self):
        result = evaluator(BOOKS).evaluate(
            Query.of(atom(X, "CITES", X), (X,)))
        assert result == {("B1",)}

    def test_two_free_variables(self):
        result = evaluator(BOOKS).evaluate(
            Query.of(atom(X, "CITES", Y), (X, Y)))
        assert result == {("B1", "B1"), ("B1", "B2")}


class TestConnectives:
    def test_conjunction_joins(self):
        formula = And((atom(X, MEMBER, "BOOK"), atom(X, "CITES", X)))
        result = evaluator(BOOKS).evaluate(Query.of(formula, (X,)))
        assert result == {("B1",)}

    def test_disjunction_unions(self):
        formula = Or((atom(X, "AUTHOR", "SARAH"),
                      atom(X, "AUTHOR", "JOHN")))
        result = evaluator(BOOKS).evaluate(Query.of(formula, (X,)))
        assert result == {("B1",), ("B2",)}

    def test_disjunction_deduplicates(self):
        formula = Or((atom(X, MEMBER, "BOOK"), atom(X, "CITES", X)))
        result = evaluator(BOOKS).evaluate(Query.of(formula, (X,)))
        assert result == {("B1",), ("B2",)}

    def test_empty_conjunct_fails_cleanly(self):
        formula = And((atom(X, MEMBER, "BOOK"),
                       atom(X, "CITES", "NOBODY")))
        assert evaluator(BOOKS).evaluate(Query.of(formula, (X,))) == set()


class TestQuantifiers:
    def test_exists_projects(self):
        formula = exists(X, And((atom(X, MEMBER, "BOOK"),
                                 atom(X, "AUTHOR", Y))))
        result = evaluator(BOOKS).evaluate(Query.of(formula, (Y,)))
        assert result == {("SARAH",), ("JOHN",)}

    def test_paper_self_citing_authors(self):
        formula = exists(X, And((
            atom(X, MEMBER, "BOOK"), atom(Y, MEMBER, "PERSON"),
            atom(X, "CITES", X), atom(X, "AUTHOR", Y))))
        result = evaluator(BOOKS).evaluate(Query.of(formula, (Y,)))
        assert result == {("SARAH",)}

    def test_negation_idiom_with_ne(self):
        formula = exists(Y, And((
            atom(X, MEMBER, "BOOK"), atom(X, "AUTHOR", Y),
            atom(Y, NE, "JOHN"))))
        result = evaluator(BOOKS).evaluate(Query.of(formula, (X,)))
        assert result == {("B1",)}

    def test_forall_as_filter(self):
        # The active domain here is {A, R}: A relates to both, so A
        # satisfies ∀y (A, R, y).
        facts = [Fact("A", "R", "A"), Fact("A", "R", "R")]
        ev = evaluator(facts)
        formula = And((atom(X, "R", X), forall(Y, atom(X, "R", Y))))
        assert ev.evaluate(Query.of(formula, (X,))) == {("A",)}

    def test_forall_fails_on_counterexample(self):
        ev = evaluator(BOOKS)
        formula = And((atom(X, MEMBER, "BOOK"),
                       forall(Y, atom(X, "CITES", Y))))
        # B1 does not cite SARAH (or itself? it does), so no x passes.
        assert ev.evaluate(Query.of(formula, (X,))) == set()

    def test_shadowed_variable_scopes_correctly(self):
        # exists x: (x, CITES, x) inside a query whose outer x is free
        # in another conjunct must not leak.
        inner = exists(X, atom(X, "CITES", X))
        formula = And((atom(X, MEMBER, "PERSON"), inner))
        result = evaluator(BOOKS).evaluate(Query.of(formula, (X,)))
        assert result == {("SARAH",), ("JOHN",)}


class TestPropositions:
    def test_true_proposition(self):
        ev = evaluator([Fact("JOHN", "LIKES", "FELIX"),
                        Fact("FELIX", "LIKES", "JOHN")])
        query = parse_query(
            "(JOHN, LIKES, FELIX) and (FELIX, LIKES, JOHN)")
        assert ev.ask(query)

    def test_false_proposition(self):
        ev = evaluator([Fact("JOHN", "LIKES", "FELIX")])
        query = parse_query(
            "(JOHN, LIKES, FELIX) and (FELIX, LIKES, JOHN)")
        assert not ev.ask(query)

    def test_ask_rejects_open_formulas(self):
        ev = evaluator(BOOKS)
        with pytest.raises(QueryError):
            ev.ask(parse_query("(x, CITES, x)"))


class TestMathInQueries:
    def test_salary_threshold(self):
        facts = [
            Fact("JOHN", MEMBER, "EMPLOYEE"),
            Fact("JOHN", "EARNS", "25000"),
            Fact("TOM", MEMBER, "EMPLOYEE"),
            Fact("TOM", "EARNS", "18000"),
        ]
        ev = evaluator(facts)
        query = parse_query(
            "exists y: (z, in, EMPLOYEE) and (z, EARNS, y)"
            " and (y, >, 20000)")
        assert ev.evaluate(query) == {("JOHN",)}

    def test_comparator_with_both_sides_bound_by_joins(self):
        facts = [
            Fact("JOHN", "EARNS", "25000"),
            Fact("MARY", "EARNS", "30000"),
        ]
        ev = evaluator(facts)
        query = parse_query(
            "exists u, v: (JOHN, EARNS, u) and (MARY, EARNS, v)"
            " and (v, >, u)")
        assert ev.ask(query)


class TestSafety:
    def test_limited_variables_atom(self):
        assert limited_variables(atom(X, "R", Y)) == frozenset({X, Y})

    def test_limited_variables_or_intersects(self):
        formula = Or((atom(X, "R", Y), atom(X, "R", "B")))
        assert limited_variables(formula) == frozenset({X})

    def test_unsafe_disjunct_rejected(self):
        formula = Or((atom(X, "R", Y), atom(X, "R", "B")))
        with pytest.raises(QueryError, match="unsafe"):
            check_safety(formula)

    def test_safe_query_passes(self):
        check_safety(And((atom(X, "R", Y), atom(Y, "S", Z))))

    def test_forall_needs_enclosing_generator(self):
        formula = forall(Y, atom(X, "CITES", Y))
        with pytest.raises(QueryError):
            check_safety(formula)

    def test_forall_with_generator_passes(self):
        formula = And((atom(X, MEMBER, "BOOK"),
                       forall(Y, atom(X, "CITES", Y))))
        check_safety(formula)

    def test_evaluate_checks_safety(self):
        ev = evaluator(BOOKS)
        unsafe = Query.of(forall(Y, atom(X, "CITES", Y)), (X,))
        with pytest.raises(QueryError):
            ev.evaluate(unsafe)


class TestFormulaCombinators:
    def test_and_operator(self):
        combined = atom(X, "R", Y) & atom(Y, "S", Z)
        assert isinstance(combined, And)
        assert len(combined.parts) == 2

    def test_and_flattens(self):
        combined = atom(X, "R", Y) & atom(Y, "S", Z) & atom(Z, "T", X)
        assert len(combined.parts) == 3

    def test_or_operator(self):
        combined = atom(X, "R", Y) | atom(X, "S", Y)
        assert isinstance(combined, Or)

    def test_query_of_validates_variables(self):
        with pytest.raises(QueryError):
            Query.of(atom(X, "R", Y), (X,))
        with pytest.raises(QueryError):
            Query.of(atom(X, "R", "B"), (X, Y))

    def test_query_of_defaults_to_sorted(self):
        query = Query.of(atom(Y, "R", X))
        assert query.variables == (X, Y)
