"""Tests for the interned generalization lattice.

Three layers:

* unit tests of lattice-specific behavior (incremental patching,
  merge rebuilds, store-bound views, structural copies);
* a randomized multi-seed differential suite asserting every §5.1
  answer — broader-than, minimal generalizations/specializations,
  synonym collapse, Δ/∇ fallback, chain depth — identical to the
  networkx reference ``GeneralizationHierarchy`` (skipped when
  networkx is not installed);
* regression tests for the database's lattice lifecycle: non-``≺``
  mutations must not rebuild, ``compact_store`` must not drop the
  structure, and snapshots must not see later patches.
"""

from __future__ import annotations

import random

import pytest

from repro.browse.lattice import GeneralizationLattice
from repro.core.entities import BOTTOM, ISA, SYN, TOP
from repro.core.facts import Fact
from repro.core.store import FactStore
from repro.db import Database


def lattice_of(*pairs, extra_entities=()):
    facts = [Fact(s, ISA, t) for s, t in pairs]
    store = FactStore(facts)
    for entity in extra_entities:
        store.add(Fact(entity, "SELF", entity))
    return GeneralizationLattice.from_store(store)


# ----------------------------------------------------------------------
# Lattice-specific behavior
# ----------------------------------------------------------------------
class TestIncrementalPatching:
    def test_acyclic_edge_patches_in_place(self):
        lattice = lattice_of(("A", "B"))
        assert lattice.add_isa_pairs([("B", "C")]) == "patched"
        assert lattice.generalizes("C", "A")
        assert lattice.minimal_generalizations("B") == {"C"}
        stats = lattice.stats()
        assert stats["patches"] == 1
        assert stats["merge_rebuilds"] == 0

    def test_implied_edge_is_free(self):
        lattice = lattice_of(("A", "B"), ("B", "C"))
        before = lattice.stats()["cover_edges"]
        assert lattice.add_isa_pairs([("A", "C")]) == "patched"
        assert lattice.stats()["cover_edges"] == before
        assert lattice.minimal_generalizations("A") == {"B"}

    def test_known_pair_is_noop(self):
        lattice = lattice_of(("A", "B"))
        assert lattice.add_isa_pairs([("A", "B")]) == "noop"

    def test_cycle_creating_edge_rebuilds_and_merges(self):
        lattice = lattice_of(("X", "Y"), ("X", "P"))
        assert lattice.add_isa_pairs([("Y", "X")]) == "rebuilt"
        assert lattice.synonym_class("X") == {"X", "Y"}
        assert lattice.minimal_generalizations("Y") == {"P"}
        assert lattice.stats()["merge_rebuilds"] == 1

    def test_patch_brings_in_new_entities(self):
        lattice = lattice_of(("A", "B"))
        lattice.add_isa_pairs([("NEW1", "NEW2"), ("NEW2", "A")])
        assert lattice.generalizes("B", "NEW1")
        assert lattice.minimal_generalizations("NEW1") == {"NEW2"}

    def test_patched_equals_rebuilt_on_random_sequences(self):
        for seed in range(20):
            rng = random.Random(seed)
            names = [f"E{i}" for i in range(10)]
            pairs = [(rng.choice(names), rng.choice(names))
                     for _ in range(25)]
            incremental = GeneralizationLattice(pairs[:5], names)
            for start in range(5, len(pairs), 4):
                incremental.add_isa_pairs(pairs[start:start + 4])
            rebuilt = GeneralizationLattice(pairs, names)
            for entity in names:
                assert incremental.minimal_generalizations(entity) \
                    == rebuilt.minimal_generalizations(entity), seed
                assert incremental.minimal_specializations(entity) \
                    == rebuilt.minimal_specializations(entity), seed
                assert incremental.synonym_class(entity) \
                    == rebuilt.synonym_class(entity), seed
                for other in names:
                    assert incremental.generalizes(entity, other) \
                        == rebuilt.generalizes(entity, other), seed


class TestViews:
    def test_with_store_shares_structure(self):
        lattice = lattice_of(("A", "B"))
        store = FactStore([Fact("A", ISA, "B"), Fact("Z", "R", "Z")])
        view = lattice.with_store(store)
        assert view.shares_core(lattice)
        assert view.knows("Z") and not lattice.knows("Z")
        lattice.add_isa_pairs([("B", "C")])
        # In-place patches are visible through every view of the core.
        assert view.generalizes("C", "A")

    def test_structural_copy_is_isolated(self):
        lattice = lattice_of(("A", "B"))
        copy = lattice.structural_copy()
        assert not copy.shares_core(lattice)
        copy.add_isa_pairs([("B", "C")])
        assert copy.generalizes("C", "A")
        assert not lattice.generalizes("C", "A")


# ----------------------------------------------------------------------
# Differential equivalence against the networkx reference
# ----------------------------------------------------------------------
def random_pairs(rng, n_entities, n_edges, cycle_bias):
    names = [f"N{i}" for i in range(n_entities)]
    pairs = []
    for _ in range(n_edges):
        source, target = rng.choice(names), rng.choice(names)
        pairs.append((source, target))
        if rng.random() < cycle_bias:
            pairs.append((target, source))  # synonym-class material
    # Occasionally touch the lattice endpoints and reflexive pairs,
    # which both implementations must filter out.
    if rng.random() < 0.5:
        pairs.append((rng.choice(names), TOP))
        pairs.append((BOTTOM, rng.choice(names)))
        loop = rng.choice(names)
        pairs.append((loop, loop))
    return names, pairs


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("seed", range(40))
    def test_matches_networkx_reference(self, seed):
        probe = pytest.importorskip("networkx") and __import__(
            "repro.browse.probe", fromlist=["GeneralizationHierarchy"])
        rng = random.Random(seed)
        names, pairs = random_pairs(
            rng, n_entities=rng.randint(2, 12),
            n_edges=rng.randint(0, 30), cycle_bias=0.15)
        known = set(names) | {"EXTRA", TOP, BOTTOM}
        reference = probe.GeneralizationHierarchy(pairs, known)
        lattice = GeneralizationLattice(pairs, known)
        queried = list(known) + ["GHOST"]
        for entity in queried:
            assert lattice.knows(entity) == reference.knows(entity)
            assert lattice.synonym_class(entity) \
                == reference.synonym_class(entity), (seed, entity)
            assert lattice.minimal_generalizations(entity) \
                == reference.minimal_generalizations(entity), (seed, entity)
            assert lattice.minimal_specializations(entity) \
                == reference.minimal_specializations(entity), (seed, entity)
            assert lattice.generalization_chain_depth(entity) \
                == reference.generalization_chain_depth(entity), (seed, entity)
            for other in queried:
                assert lattice.generalizes(entity, other) \
                    == reference.generalizes(entity, other), (seed, entity, other)
                assert lattice.strictly_generalizes(entity, other) \
                    == reference.strictly_generalizes(entity, other), (
                        seed, entity, other)

    def test_closest_known_matches_reference(self):
        probe = pytest.importorskip("networkx") and __import__(
            "repro.browse.probe", fromlist=["GeneralizationHierarchy"])
        known = ["EMPLOYEE", "EMPLOYER", "DEPARTMENT", "PERSON"]
        reference = probe.GeneralizationHierarchy([], known)
        lattice = GeneralizationLattice([], known)
        for misspelling in ("EMPLOYE", "PRESON", "XQZW"):
            assert lattice.closest_known(misspelling) \
                == reference.closest_known(misspelling)


# ----------------------------------------------------------------------
# Database lattice lifecycle
# ----------------------------------------------------------------------
class TestDatabaseLifecycle:
    def test_non_isa_mutations_do_not_rebuild(self):
        """The over-invalidation regression: mutations that touch no
        generalization/synonym fact must neither rebuild nor patch."""
        db = Database()
        db.add("A", ISA, "B")
        db.hierarchy()
        assert db.stats()["hierarchy"]["rebuilds"] == 1
        for i in range(10):
            db.add(f"EMP{i}", "WORKS-FOR", "SALES")
        hierarchy = db.stats()["hierarchy"]
        assert hierarchy["rebuilds"] == 1
        assert hierarchy["patches"] == 0
        assert hierarchy["cached"]

    def test_new_isa_fact_patches_instead_of_rebuilding(self):
        db = Database()
        db.add("A", ISA, "B")
        assert db.hierarchy().minimal_generalizations("A") == {"B"}
        db.add("B", ISA, "C")
        assert db.hierarchy().minimal_generalizations("B") == {"C"}
        hierarchy = db.stats()["hierarchy"]
        assert hierarchy["rebuilds"] == 1
        assert hierarchy["patches"] >= 1

    def test_synonym_fact_maintains_hierarchy(self):
        db = Database()
        db.add("JOHN", ISA, "PERSON")
        db.hierarchy()
        db.add("JOHN", SYN, "JOHNNY")
        h = db.hierarchy()
        assert h.synonym_class("JOHN") == {"JOHN", "JOHNNY"}
        assert h.minimal_generalizations("JOHNNY") == {"PERSON"}

    def test_isa_deletion_invalidates(self):
        db = Database()
        db.add("A", ISA, "B")
        db.add("B", ISA, "C")
        assert db.hierarchy().generalizes("C", "A")
        db.remove_fact(Fact("B", ISA, "C"))
        assert not db.hierarchy().generalizes("C", "A")
        assert db.stats()["hierarchy"]["rebuilds"] == 2

    def test_lattice_survives_compaction(self):
        db = Database()
        db.add("A", ISA, "B")
        db.hierarchy()
        db.compact_store()
        assert db.hierarchy().minimal_generalizations("A") == {"B"}
        assert db.stats()["hierarchy"]["rebuilds"] == 1

    def test_snapshot_does_not_see_later_patches(self):
        db = Database()
        db.add("A", ISA, "B")
        db.hierarchy()
        snap = db.snapshot()
        db.add("B", ISA, "C")
        assert db.hierarchy().generalizes("C", "A")
        assert not snap.hierarchy().generalizes("C", "A")
        assert snap.hierarchy().minimal_generalizations("B") == {TOP}

    def test_hierarchy_answers_probe_after_patch(self):
        db = Database()
        db.add("STUDENT", ISA, "PERSON")
        db.add("JOHN", "∈", "PERSON")
        db.hierarchy()
        db.add("FRESHMAN", ISA, "STUDENT")
        outcome = db.probe("(x, ∈, FRESHMAN)")
        assert not outcome.succeeded
        assert outcome.waves  # retracted upward through the lattice
