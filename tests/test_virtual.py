"""Tests for the virtual (computed) relations and the FactView."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entities import BOTTOM, EQ, GE, GT, ISA, LE, LT, NE, TOP
from repro.core.facts import Fact, Template, var
from repro.core.store import FactStore
from repro.virtual.computed import FactView, VirtualRegistry
from repro.virtual.math_facts import MathRelation, compare, entities_equal
from repro.virtual.special import (
    EndpointWitness,
    ReflexiveGeneralization,
    standard_virtual_registry,
)

X, Y = var("x"), var("y")


def make_view(facts=()):
    return FactView(FactStore(facts), standard_virtual_registry())


class TestEntitiesEqual:
    def test_same_name(self):
        assert entities_equal("JOHN", "JOHN")

    def test_different_names(self):
        assert not entities_equal("JOHN", "MARY")

    def test_numeric_value_equality(self):
        assert entities_equal("$25,000", "25000")
        assert entities_equal("2.0", "2")

    def test_number_vs_name(self):
        assert not entities_equal("25000", "JOHN")


class TestCompare:
    @pytest.mark.parametrize("rel,left,right,expected", [
        (LT, "5", "8", True),
        (LT, "8", "5", False),
        (GT, "25000", "20000", True),
        (LE, "5", "5", True),
        (GE, "5", "8", False),
        (EQ, "JOHN", "JOHN", True),
        (NE, "JOHN", "MARY", True),
        (NE, "JOHN", "JOHN", False),
    ])
    def test_table(self, rel, left, right, expected):
        assert compare(rel, left, right) is expected

    def test_order_on_non_numbers_is_false(self):
        assert not compare(LT, "JOHN", "MARY")
        assert not compare(GT, "JOHN", "5")

    def test_dollar_values(self):
        assert compare(GT, "$25000", "20000")


class TestMathRelation:
    def test_ground_comparison(self):
        view = make_view()
        assert list(view.match(Template("25000", GT, "20000"))) == [
            Fact("25000", GT, "20000")]
        assert list(view.match(Template("10", GT, "20000"))) == []

    def test_enumerates_numeric_domain(self):
        view = make_view([Fact("JOHN", "EARNS", "25000"),
                          Fact("TOM", "EARNS", "19000")])
        matches = {f.source for f in view.match(Template(X, GT, "20000"))}
        assert matches == {"25000"}

    def test_equality_binds_without_domain(self):
        view = make_view()
        assert list(view.match(Template(X, EQ, "JOHN"))) == [
            Fact("JOHN", EQ, "JOHN")]

    def test_inequality_enumerates_domain(self):
        view = make_view([Fact("A", "R", "B")])
        matches = {f.source for f in view.match(Template(X, NE, "A"))}
        assert matches == {"R", "B"}

    def test_same_variable_both_sides(self):
        view = make_view([Fact("A", "R", "B")])
        eq_matches = set(view.match(Template(X, EQ, X)))
        assert eq_matches == {Fact(e, EQ, e) for e in ("A", "R", "B")}
        assert set(view.match(Template(X, NE, X))) == set()

    def test_relationship_variable_not_handled(self):
        """Math facts only match when the comparator is explicit —
        otherwise (x, y, z) would enumerate mathematics."""
        view = make_view([Fact("5", "R", "8")])
        facts = set(view.match(Template("5", Y, "8")))
        assert facts == {Fact("5", "R", "8")}


class TestReflexiveGeneralization:
    def test_reflexive_for_domain_entities(self):
        view = make_view([Fact("A", "R", "B")])
        assert Fact("A", ISA, "A") in set(view.match(Template("A", ISA, X)))

    def test_everything_below_top(self):
        view = make_view([Fact("A", "R", "B")])
        assert list(view.match(Template("A", ISA, TOP)))

    def test_bottom_below_everything(self):
        view = make_view([Fact("A", "R", "B")])
        assert list(view.match(Template(BOTTOM, ISA, "A")))

    def test_unknown_entity_not_reflexive(self):
        view = make_view([Fact("A", "R", "B")])
        assert list(view.match(Template("GHOST", ISA, "GHOST"))) == []

    def test_open_isa_includes_reflexives_and_endpoints(self):
        view = make_view([Fact("A", "R", "B")])
        facts = set(view.match(Template(X, ISA, Y)))
        assert Fact("A", ISA, "A") in facts
        assert Fact("A", ISA, TOP) in facts
        assert Fact(BOTTOM, ISA, "A") in facts

    def test_stored_isa_facts_still_match(self):
        view = make_view([Fact("CAT", ISA, "ANIMAL")])
        facts = set(view.match(Template("CAT", ISA, X)))
        assert Fact("CAT", ISA, "ANIMAL") in facts


class TestEndpointWitness:
    def test_top_relationship_witnessed(self):
        view = make_view([Fact("JOHN", "LIKES", "FELIX")])
        assert list(view.match(Template("JOHN", TOP, "FELIX"))) == [
            Fact("JOHN", TOP, "FELIX")]

    def test_top_relationship_absent_without_witness(self):
        view = make_view([Fact("JOHN", "LIKES", "FELIX")])
        assert list(view.match(Template("JOHN", TOP, "MARY"))) == []

    def test_bottom_source_witnessed(self):
        view = make_view([Fact("JOHN", "LIKES", "FELIX")])
        assert list(view.match(Template(BOTTOM, "LIKES", "FELIX"))) == [
            Fact(BOTTOM, "LIKES", "FELIX")]

    def test_top_target_witnessed(self):
        view = make_view([Fact("JOHN", "LIKES", "FELIX")])
        assert list(view.match(Template("JOHN", "LIKES", TOP))) == [
            Fact("JOHN", "LIKES", TOP)]

    def test_combined_endpoints(self):
        view = make_view([Fact("JOHN", "LIKES", "FELIX")])
        assert list(view.match(Template(BOTTOM, TOP, "FELIX"))) == [
            Fact(BOTTOM, TOP, "FELIX")]

    def test_open_positions_enumerate_witnesses(self):
        view = make_view([
            Fact("JOHN", "LIKES", "FELIX"),
            Fact("JOHN", "LIKES", "MARY"),
            Fact("TOM", "HATES", "FELIX"),
        ])
        matches = set(view.match(Template(X, TOP, "FELIX")))
        assert matches == {Fact("JOHN", TOP, "FELIX"),
                           Fact("TOM", TOP, "FELIX")}

    def test_star_navigation_not_polluted(self):
        """A free relationship variable must not surface Δ facts."""
        view = make_view([Fact("JOHN", "LIKES", "FELIX")])
        facts = set(view.match(Template("JOHN", Y, "FELIX")))
        assert facts == {Fact("JOHN", "LIKES", "FELIX")}


class TestFactView:
    def test_contains_stored_and_virtual(self):
        view = make_view([Fact("A", "R", "B")])
        assert Fact("A", "R", "B") in view
        assert Fact("A", ISA, TOP) in view
        assert Fact("5", LT, "8") in view
        assert Fact("A", "S", "B") not in view

    def test_solutions_merge_sources(self):
        view = make_view([Fact("25000", "IS", "BIG")])
        solutions = list(view.solutions(Template("25000", GT, X)))
        # enumerates numeric entities below 25000 in the domain — only
        # 25000 itself is numeric here, and 25000 > 25000 is false.
        assert solutions == []

    def test_dedupes_stored_vs_virtual(self):
        # A stored fact that the virtual layer would also produce must
        # appear once.
        view = make_view([Fact("A", ISA, "A")])
        matches = list(view.match(Template("A", ISA, "A")))
        assert matches == [Fact("A", ISA, "A")]

    def test_count_estimate_includes_virtual(self):
        view = make_view([Fact("A", "R", "B")])
        assert view.count_estimate(Template(X, ISA, Y)) > 0

    def test_entities_excludes_virtual_endpoints(self):
        view = make_view([Fact("A", "R", "B")])
        domain = view.entities()
        assert TOP not in domain and BOTTOM not in domain


@settings(max_examples=40)
@given(left=st.integers(-50, 50), right=st.integers(-50, 50))
def test_exactly_one_of_lt_gt_eq(left, right):
    """§3.6: for every two numbers exactly one of <, >, = holds."""
    holds = [compare(rel, str(left), str(right)) for rel in (LT, GT, EQ)]
    assert sum(holds) == 1


@settings(max_examples=40)
@given(left=st.sampled_from(["A", "B", "5", "JOHN"]),
       right=st.sampled_from(["A", "B", "5", "JOHN"]))
def test_exactly_one_of_eq_ne(left, right):
    assert compare(EQ, left, right) != compare(NE, left, right)
