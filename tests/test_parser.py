"""Tests for the textual query syntax."""

from __future__ import annotations

import pytest

from repro.core.entities import GE, ISA, LE, MEMBER, NE, SYN, TOP
from repro.core.errors import ParseError
from repro.core.facts import Template, Variable, var
from repro.query.ast import And, Atom, Exists, ForAll, Or
from repro.query.parser import parse_formula, parse_query, parse_template


class TestTemplates:
    def test_simple(self):
        assert parse_template("(JOHN, LIKES, FELIX)") == Template(
            "JOHN", "LIKES", "FELIX")

    def test_whitespace_flexible(self):
        assert parse_template("(JOHN,LIKES,FELIX)") == Template(
            "JOHN", "LIKES", "FELIX")

    def test_stars_become_fresh_variables(self):
        parsed = parse_template("(JOHN, *, *)")
        assert parsed.source == "JOHN"
        assert isinstance(parsed.relationship, Variable)
        assert isinstance(parsed.target, Variable)
        assert parsed.relationship != parsed.target

    def test_lowercase_is_variable(self):
        parsed = parse_template("(x, LIKES, y)")
        assert parsed.source == var("x")
        assert parsed.target == var("y")

    def test_repeated_variable_shared(self):
        parsed = parse_template("(x, CITES, x)")
        assert parsed.source is not None
        assert parsed.source == parsed.target

    def test_aliases(self):
        assert parse_template("(x, in, BOOK)").relationship == MEMBER
        assert parse_template("(x, IN, BOOK)").relationship == MEMBER
        assert parse_template("(x, isa, PERSON)").relationship == ISA
        assert parse_template("(x, syn, y)").relationship == SYN
        assert parse_template("(x, !=, JOHN)").relationship == NE
        assert parse_template("(x, <=, 5)").relationship == LE
        assert parse_template("(x, >=, 5)").relationship == GE
        assert parse_template("(x, TOP, y)").relationship == TOP

    def test_glyphs_pass_through(self):
        assert parse_template("(x, ∈, BOOK)").relationship == MEMBER
        assert parse_template("(x, ≺, PERSON)").relationship == ISA

    def test_quoted_entities(self):
        parsed = parse_template('(x, EARNS, "$25,000")')
        assert parsed.target == "$25,000"

    def test_quoted_protects_keywords(self):
        parsed = parse_template('(x, "in", BOOK)')
        assert parsed.relationship == "in"

    def test_symbols_in_entities(self):
        assert parse_template("(PC#9-WAM, *, *)").source == "PC#9-WAM"
        assert parse_template("(x, EARNS, $25000)").target == "$25000"

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_template("(A, B, C) extra")

    def test_malformed_rejected(self):
        with pytest.raises(ParseError):
            parse_template("(A, B)")
        with pytest.raises(ParseError):
            parse_template("A, B, C")


class TestFormulas:
    def test_conjunction(self):
        formula = parse_formula("(A, R, B) and (B, S, C)")
        assert isinstance(formula, And)
        assert len(formula.parts) == 2

    def test_disjunction(self):
        formula = parse_formula("(A, R, B) or (B, S, C)")
        assert isinstance(formula, Or)

    def test_precedence_and_binds_tighter(self):
        formula = parse_formula("(A,R,B) and (C,S,D) or (E,T,F)")
        assert isinstance(formula, Or)
        assert isinstance(formula.parts[0], And)

    def test_parentheses_group(self):
        formula = parse_formula("(A,R,B) and ((C,S,D) or (E,T,F))")
        assert isinstance(formula, And)
        assert isinstance(formula.parts[1], Or)

    def test_exists(self):
        formula = parse_formula("exists x: (x, R, y)")
        assert isinstance(formula, Exists)
        assert formula.variable == var("x")

    def test_exists_scope_extends_right(self):
        formula = parse_formula("exists x: (x, R, y) and (x, S, z)")
        assert isinstance(formula, Exists)
        assert isinstance(formula.body, And)

    def test_forall(self):
        formula = parse_formula("forall x: (x, R, y)")
        assert isinstance(formula, ForAll)

    def test_multi_variable_quantifier(self):
        formula = parse_formula("exists x, y: (x, R, y)")
        assert isinstance(formula, Exists)
        assert isinstance(formula.body, Exists)

    def test_keywords_case_insensitive(self):
        formula = parse_formula("(A,R,B) AND (C,S,D)")
        assert isinstance(formula, And)

    def test_reserved_words_rejected_as_components(self):
        with pytest.raises(ParseError):
            parse_formula("(and, R, B)")

    def test_unclosed_paren(self):
        with pytest.raises(ParseError):
            parse_formula("((A,R,B) and (C,S,D)")

    def test_missing_colon(self):
        with pytest.raises(ParseError):
            parse_formula("exists x (x, R, y)")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_formula("")


class TestQueries:
    def test_free_variables_in_appearance_order(self):
        query = parse_query("(y, R, x) and (x, S, z)")
        assert query.variables == (var("y"), var("x"), var("z"))

    def test_quantified_variables_not_free(self):
        query = parse_query("exists x: (x, R, y)")
        assert query.variables == (var("y"),)

    def test_proposition_detection(self):
        assert parse_query("(JOHN, LIKES, FELIX)").is_proposition
        assert not parse_query("(JOHN, LIKES, y)").is_proposition

    def test_star_variables_are_output_columns(self):
        query = parse_query("(JOHN, *, *)")
        assert len(query.variables) == 2

    def test_named_before_stars(self):
        query = parse_query("(JOHN, *, y)")
        assert query.variables[0] == var("y")

    def test_paper_self_citing_authors(self):
        text = ("exists x: (x, in, BOOK) and (y, in, PERSON)"
                " and (x, CITES, x) and (x, AUTHOR, y)")
        query = parse_query(text)
        assert query.variables == (var("y"),)

    def test_round_trip_through_str(self):
        query = parse_query("(JOHN, LIKES, y) and (y, in, CAT)")
        assert "LIKES" in str(query)
