#!/usr/bin/env python3
"""Prometheus exporter bridging a repro server to a scrape endpoint.

The JSON-lines protocol's ``metrics`` verb returns a merged snapshot
(primary plus replica workers); this tool turns that into Prometheus
text exposition format 0.0.4 — either once to stdout (for piping into
a textfile collector) or continuously over a tiny stdlib HTTP server
that Prometheus can scrape directly.

One-shot:     python tools/prom_exporter.py localhost:7474
HTTP bridge:  python tools/prom_exporter.py localhost:7474 --listen 9464
              # then scrape http://127.0.0.1:9464/metrics

The server being scraped must be running with metrics collection on
(``python -m repro.shell serve ... --metrics``); without it the
snapshot is empty and the exposition contains no series.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.metrics import to_prometheus  # noqa: E402
from repro.serve.net import ServiceClient  # noqa: E402


def scrape(host: str, port: int, prefix: str, refresh: bool) -> str:
    """One exposition document from a running server."""
    with ServiceClient(host, port) as client:
        snapshot = client.metrics(refresh=refresh)
    return to_prometheus(snapshot, prefix=prefix)


def serve_http(host: str, port: int, listen_port: int, prefix: str,
               refresh: bool) -> None:
    """A minimal scrape endpoint: GET /metrics → text exposition."""
    from http.server import BaseHTTPRequestHandler, HTTPServer

    class Handler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 - http.server API
            if self.path.rstrip("/") not in ("", "/metrics"):
                self.send_error(404)
                return
            try:
                body = scrape(host, port, prefix, refresh).encode("utf-8")
            except OSError as error:
                self.send_error(502, f"upstream unreachable: {error}")
                return
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):  # quiet: one line per scrape is noise
            pass

    endpoint = HTTPServer(("127.0.0.1", listen_port), Handler)
    print(f"exporting {host}:{port} metrics on"
          f" http://127.0.0.1:{endpoint.server_port}/metrics"
          " (ctrl-c stops)")
    try:
        endpoint.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        endpoint.server_close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Export a repro server's metrics in Prometheus"
                    " text format.")
    parser.add_argument("address", help="HOST[:PORT] of a running server")
    parser.add_argument("--listen", type=int, default=None, metavar="PORT",
                        help="serve a /metrics HTTP endpoint on this port"
                             " instead of printing once (0 = ephemeral)")
    parser.add_argument("--prefix", default="repro",
                        help="metric name prefix (default: repro)")
    parser.add_argument("--no-refresh", action="store_true",
                        help="skip the synchronous worker-snapshot"
                             " refresh; use whatever the heartbeat has")
    options = parser.parse_args(argv)
    host, _, port_text = options.address.partition(":")
    host = host or "127.0.0.1"
    port = int(port_text) if port_text else 7474
    refresh = not options.no_refresh
    if options.listen is None:
        sys.stdout.write(scrape(host, port, options.prefix, refresh))
        return 0
    serve_http(host, port, options.listen, options.prefix, refresh)
    return 0


if __name__ == "__main__":
    sys.exit(main())
