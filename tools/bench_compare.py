#!/usr/bin/env python3
"""Compare two BENCH_*.json documents cell by cell.

Joins the result matrices of a baseline and a candidate document on
their identifying columns (``mode`` plus whichever of ``threads`` /
``workers`` / ``client_threads`` the row carries), then reports the
relative change in throughput (``ops_per_second``), tail latency
(``p50_us`` / ``p95_us`` / ``p99_us``), and memory
(``worker_rss_mb`` / ``worker_rss_anon_mb`` / ``bootstrap_seconds``)
per matched cell.

    python tools/bench_compare.py BENCH_serving.json /tmp/new.json
    python tools/bench_compare.py old.json new.json --fail-above 10

``--fail-above PCT`` exits non-zero when any matched cell's throughput
regressed by more than PCT percent — the CI guardrail against a
telemetry change quietly taxing the serving path.  ``--fail-p99-above
PCT`` is the same guard on tail latency (``p99_us``, lower is better)
— the probe-session benchmark's menu-latency guardrail.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

#: Row fields that identify a cell (as opposed to measuring it).
KEY_FIELDS = ("mode", "threads", "workers", "client_threads", "writes",
              "bootstrap", "facts", "engine", "workload", "shape",
              "dataset", "limit")

#: Measured fields worth diffing, with their improvement direction.
METRIC_FIELDS = (
    ("ops_per_second", "higher"),
    ("sessions_per_second", "higher"),
    ("p50_us", "lower"),
    ("p95_us", "lower"),
    ("p99_us", "lower"),
    ("bootstrap_seconds", "lower"),
    ("worker_rss_mb", "lower"),
    ("worker_rss_anon_mb", "lower"),
    ("seconds", "lower"),
)


def load_rows(path: str) -> Tuple[str, List[Dict[str, object]]]:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    return document.get("benchmark", path), document.get("results", [])


def row_key(row: Dict[str, object]) -> Tuple:
    return tuple((field, row[field]) for field in KEY_FIELDS
                 if field in row)


def percent_change(before: float, after: float) -> Optional[float]:
    if not isinstance(before, (int, float)) or not before:
        return None
    if not isinstance(after, (int, float)):
        return None
    return 100.0 * (after - before) / before


def compare(baseline_path: str, candidate_path: str,
            fail_above: Optional[float] = None,
            fail_p99_above: Optional[float] = None,
            out=sys.stdout) -> int:
    baseline_name, baseline_rows = load_rows(baseline_path)
    candidate_name, candidate_rows = load_rows(candidate_path)
    out.write(f"baseline:  {baseline_path} ({baseline_name},"
              f" {len(baseline_rows)} cells)\n")
    out.write(f"candidate: {candidate_path} ({candidate_name},"
              f" {len(candidate_rows)} cells)\n")

    baseline_index = {row_key(row): row for row in baseline_rows}
    matched = 0
    worst_regression = 0.0
    worst_cell = None
    worst_p99 = 0.0
    worst_p99_cell = None
    for row in candidate_rows:
        key = row_key(row)
        before = baseline_index.get(key)
        if before is None:
            out.write(f"  new cell (no baseline): {dict(key)}\n")
            continue
        matched += 1
        label = " ".join(f"{field}={value}" for field, value in key)
        deltas = []
        for field, direction in METRIC_FIELDS:
            change = percent_change(before.get(field), row.get(field))
            if change is None:
                continue
            marker = ""
            regressed = (change < 0 if direction == "higher"
                         else change > 0)
            if abs(change) >= 2.0 and regressed:
                marker = " (worse)"
            deltas.append(f"{field} {change:+.1f}%{marker}")
            if (field == "ops_per_second" and regressed
                    and -change > worst_regression):
                worst_regression = -change
                worst_cell = label
            if (field == "p99_us" and regressed
                    and change > worst_p99):
                worst_p99 = change
                worst_p99_cell = label
        out.write(f"  {label}: {', '.join(deltas) or 'no shared metrics'}\n")

    unmatched = len(baseline_index) - matched
    if unmatched:
        out.write(f"  {unmatched} baseline cell(s) missing from"
                  " candidate\n")
    out.write(f"matched {matched} cell(s); worst throughput regression"
              f" {worst_regression:.1f}%"
              + (f" ({worst_cell})" if worst_cell else "") + "\n")
    if worst_p99_cell is not None:
        out.write(f"worst p99 regression {worst_p99:.1f}%"
                  f" ({worst_p99_cell})\n")
    failed = False
    if fail_above is not None and worst_regression > fail_above:
        out.write(f"FAIL: {worst_regression:.1f}% >"
                  f" --fail-above {fail_above}%\n")
        failed = True
    if fail_p99_above is not None and worst_p99 > fail_p99_above:
        out.write(f"FAIL: p99 {worst_p99:.1f}% >"
                  f" --fail-p99-above {fail_p99_above}%\n")
        failed = True
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff throughput and latency percentiles between"
                    " two BENCH_*.json documents.")
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("candidate", help="candidate BENCH_*.json")
    parser.add_argument("--fail-above", type=float, default=None,
                        metavar="PCT",
                        help="exit 1 if any cell's ops/s regressed by"
                             " more than PCT percent")
    parser.add_argument("--fail-p99-above", type=float, default=None,
                        metavar="PCT",
                        help="exit 1 if any cell's p99_us latency"
                             " regressed by more than PCT percent")
    options = parser.parse_args(argv)
    return compare(options.baseline, options.candidate,
                   fail_above=options.fail_above,
                   fail_p99_above=options.fail_p99_above)


if __name__ == "__main__":
    sys.exit(main())
