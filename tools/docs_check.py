#!/usr/bin/env python3
"""Documentation checker: executable examples and dead links.

Two checks, both designed to keep the docs honest as the code moves:

1. **Fenced ``python`` blocks run.**  Every ```` ```python ```` block in
   ``README.md`` and ``docs/*.md`` is executed, in order, in a fresh
   namespace with the working directory switched to a throwaway temp
   dir (so examples may create files freely).  A block may opt out with
   a ``<!-- docs-check: skip -->`` comment on the line before the fence.

2. **Relative links resolve.**  Every ``[text](target)`` link in the
   repository's markdown files must point at a file that exists.
   ``http(s)://`` / ``mailto:`` links and pure ``#anchors`` are not
   checked (CI has no network and anchors move with headings).

Run:  python tools/docs_check.py            # check everything
      python tools/docs_check.py --links    # links only (fast)
Exits non-zero on the first category of failure, printing each offender
with file and line number.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile
import traceback
from pathlib import Path
from typing import Iterator, List, Tuple

ROOT = Path(__file__).resolve().parent.parent

# Markdown files whose ```python blocks must execute.
EXECUTABLE_DOCS = ["README.md", "docs"]

# Markdown files whose relative links must resolve.
LINKED_DOCS = ["README.md", "DESIGN.md", "ROADMAP.md", "CHANGES.md", "docs"]

SKIP_MARKER = "docs-check: skip"

_FENCE_RE = re.compile(r"^```(\w*)\s*$")
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _markdown_files(entries: List[str]) -> Iterator[Path]:
    for entry in entries:
        path = ROOT / entry
        if path.is_dir():
            yield from sorted(path.glob("*.md"))
        elif path.exists():
            yield path


def iter_python_blocks(path: Path) -> Iterator[Tuple[int, str]]:
    """Yield ``(first_line_number, source)`` for each ```python block."""
    lines = path.read_text(encoding="utf-8").splitlines()
    in_block = False
    skip_next = False
    start = 0
    buffer: List[str] = []
    for number, line in enumerate(lines, start=1):
        match = _FENCE_RE.match(line.strip())
        if not in_block:
            if SKIP_MARKER in line:
                skip_next = True
            elif match and match.group(1) == "python":
                if skip_next:
                    skip_next = False
                else:
                    in_block, start, buffer = True, number + 1, []
            elif match:
                skip_next = False
        elif match:
            in_block = False
            yield start, "\n".join(buffer)
        else:
            buffer.append(line)


def check_examples() -> List[str]:
    """Execute every fenced python block; return failure descriptions."""
    sys.path.insert(0, str(ROOT / "src"))
    failures: List[str] = []
    original_cwd = os.getcwd()
    for path in _markdown_files(EXECUTABLE_DOCS):
        rel = path.relative_to(ROOT)
        for lineno, source in iter_python_blocks(path):
            with tempfile.TemporaryDirectory() as scratch:
                os.chdir(scratch)
                try:
                    exec(compile(source, f"{rel}:{lineno}", "exec"), {})
                    print(f"ok      {rel}:{lineno}")
                except Exception:
                    failures.append(
                        f"{rel}:{lineno}\n{traceback.format_exc()}")
                    print(f"FAILED  {rel}:{lineno}")
                finally:
                    os.chdir(original_cwd)
    return failures


def check_links() -> List[str]:
    """Resolve relative markdown links; return descriptions of dead ones."""
    failures: List[str] = []
    for path in _markdown_files(LINKED_DOCS):
        rel = path.relative_to(ROOT)
        for number, line in enumerate(path.read_text(
                encoding="utf-8").splitlines(), start=1):
            for target in _LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                resolved = (path.parent / target.split("#", 1)[0]).resolve()
                if not resolved.exists():
                    failures.append(f"{rel}:{number}: dead link -> {target}")
    return failures


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--links", action="store_true",
                        help="check links only, skip executing examples")
    arguments = parser.parse_args(argv)

    link_failures = check_links()
    for failure in link_failures:
        print(failure)
    print(f"links: {'FAILED' if link_failures else 'ok'}")

    example_failures: List[str] = []
    if not arguments.links:
        example_failures = check_examples()
        for failure in example_failures:
            print("\n" + failure)
        print(f"examples: {'FAILED' if example_failures else 'ok'}")

    return 1 if (link_failures or example_failures) else 0


if __name__ == "__main__":
    raise SystemExit(main())
