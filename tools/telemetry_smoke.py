#!/usr/bin/env python3
"""End-to-end telemetry smoke test (the CI guard for the obs stack).

Stands up the full serving topology in one process tree — primary
service, 2-process replica pool, TCP server — with metrics collection
and slow-query logging on, then drives it through a traced client and
asserts the whole telemetry surface actually works:

* a traced read comes back with a stitched span tree covering at least
  two processes (client/server side plus the replica worker);
* the ``metrics`` verb returns a merged snapshot whose request
  counters cover the traffic just sent;
* the Prometheus exposition parses and carries the request series;
* the slow-query log captured the deliberately slow query.

Run:  PYTHONPATH=src python tools/telemetry_smoke.py
Exits non-zero with a diagnostic on the first broken property.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.db import Database  # noqa: E402
from repro.obs import context as obs_context  # noqa: E402
from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.serve import DatabaseService, ReplicaPool  # noqa: E402
from repro.serve.net import ServiceClient, ServiceServer  # noqa: E402


def build_database() -> Database:
    db = Database()
    for index in range(6):
        db.add(f"P{index}", "WORKS-IN", f"D{index % 2}")
        db.add(f"D{index % 2}", "PART-OF", "ORG")
    # Serve from the interned columnar store so the smoke covers the
    # shared-memory generation bootstrap path end to end.
    db.compact_store()
    return db


def fail(message: str) -> int:
    print(f"FAIL: {message}")
    return 1


def main() -> int:
    obs_metrics.enable_metrics(fresh=True)
    service = DatabaseService(build_database(),
                              slow_query_seconds=0.0)  # log every read
    pool = ReplicaPool(service, workers=2, bootstrap="generation")
    server = ServiceServer(service, port=0, pool=pool)
    server.start()
    host, port = server.address
    try:
        if pool.stats()["bootstrap"] != "generation":
            return fail("pool is not using generation bootstrap")
        if pool.stats()["generation_seq"] is None:
            return fail("pool has no published shared-memory generation")
        with ServiceClient(host, port, trace=True) as client:
            for _ in range(3):
                client.query("(x, WORKS-IN, y)")
            outcome = client.probe("(x, PART-OF, ORG)")
            if not outcome["succeeded"]:
                return fail("probe did not succeed")

            spans = client.last_trace
            processes = obs_context.trace_processes(spans)
            if len(spans) < 4:
                return fail(f"expected >= 4 spans, got {len(spans)}:\n"
                            + obs_context.render_trace(spans))
            if len(processes) < 2:
                return fail(f"trace covers {len(processes)} process(es),"
                            " expected >= 2")
            roots = obs_context.stitch(spans)
            if len(roots) != 1:
                return fail(f"expected one stitched root, got {len(roots)}")

            snapshot = client.metrics(refresh=True)
            requests = snapshot.get("counters", {}).get("serve.requests", 0)
            if requests < 4:
                return fail(f"merged snapshot shows {requests} requests,"
                            " expected >= 4")

            exposition = client.metrics(format="prometheus")
            series = obs_metrics.parse_prometheus(exposition)
            if not any(name.startswith("repro_serve_requests_total")
                       for name in series):
                return fail("prometheus exposition missing"
                            " repro_serve_requests_total")

            slowlog = client.slowlog()
            if slowlog["total"] < 1:
                return fail("slow-query log is empty despite a 0s"
                            " threshold")

        print(f"telemetry smoke OK: {len(spans)} spans across"
              f" {len(processes)} processes, {requests} requests in the"
              f" merged snapshot, {len(series)} prometheus series,"
              f" {slowlog['total']} slow-log records")
        return 0
    finally:
        server.close()
        pool.close()
        service.close()
        obs_metrics.disable_metrics()


if __name__ == "__main__":
    sys.exit(main())
