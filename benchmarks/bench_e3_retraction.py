"""E3 — §5.2 automatic retraction: the students-love-free menu.

Regenerates the paper's "Query failed. Retrying" menu exactly and
times the full probe (evaluate + one retraction wave).
"""

from __future__ import annotations

from repro.datasets import university

#: The menu the paper prints, line for line.
EXPECTED_MENU = """Query failed. Retrying

1. Success with FRESHMAN instead of STUDENT
2. Success with CHEAP instead of FREE

You may select"""


def test_e3_retraction_menu(benchmark, university_db):
    university_db.closure()
    result = benchmark(university_db.probe, university.STUDENTS_LOVE_FREE)
    assert result.menu() == EXPECTED_MENU
    assert result.select(1) == {("CAMPUS-CONCERTS",)}
    assert result.select(2) == {("COFFEE",)}
    print()
    print("> " + university.STUDENTS_LOVE_FREE)
    print(result.menu())


def test_e3_retraction_set_has_four_queries(benchmark, university_db):
    """The paper enumerates four minimally broader queries (FRESHMAN,
    LIKE, Δ, CHEAP)."""
    university_db.closure()
    result = benchmark(university_db.probe, university.STUDENTS_LOVE_FREE)
    assert len(result.waves[0].attempted) == 4
    replaced = {
        (c.path[0].old, c.path[0].new)
        for c in result.waves[0].attempted
    }
    assert replaced == {
        ("STUDENT", "FRESHMAN"),
        ("LOVE", "LIKE"),
        ("COSTS", "Δ"),
        ("FREE", "CHEAP"),
    }


def test_e3_misspelling_diagnosis(benchmark, university_db):
    """§5.2's terminal case: 'no such database entities'."""
    university_db.closure()
    result = benchmark(university_db.probe, university.MISSPELLED)
    assert result.exhausted
    assert result.unknown_entities == ("LUVS",)
    print()
    print("> " + university.MISSPELLED)
    print(result.menu())
