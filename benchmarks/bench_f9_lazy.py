"""F9 — query-driven (lazy) inference vs materializing the closure.

§6.2 leaves "suitable storage strategies … performance" open.  This
bench prices the two classical evaluation strategies on the same
heaps: materialize-then-match versus tabled top-down derivation.

Expected shape: for a *selective* query on a cold database, the lazy
engine wins by a wide margin (it derives only what the question
touches); for *open* queries it converges to closure cost; repeated
queries amortize either way (tables vs cache).
"""

from __future__ import annotations

import pytest

from repro.benchio import Sweep, print_sweep, timed
from repro.core.facts import Fact, Template, var
from repro.datasets.synthetic import hierarchy_facts, membership_facts
from repro.db import Database

X = var("x")


def _facts(depth: int):
    tree, leaves = hierarchy_facts(depth, 2)
    facts = list(tree)
    facts.extend(membership_facts(leaves, 2))
    facts.append(Fact("C0", "HAS-POLICY", "GENERAL"))
    facts.append(Fact("JOHN", "LIKES", "FELIX"))
    return facts


def _db(depth: int) -> Database:
    db = Database()
    db.add_facts(_facts(depth))
    return db


POINT_QUERY = "(JOHN, LIKES, y)"
INFERENCE_QUERY = "(I0, HAS-POLICY, y)"  # needs the ≺/∈ chain to C0
OPEN_QUERY = "(x, y, z)"


def test_f9_cold_selective_query(benchmark):
    """Cold-start cost of one selective question, per strategy."""
    sweep = Sweep(name="F9: cold selective query", parameter="depth")
    ratios = []
    for depth in (5, 6, 7):
        materialized_s = timed(
            lambda d=depth: _db(d).query(POINT_QUERY), repeat=3)
        lazy_s = timed(
            lambda d=depth: _db(d).query_lazy(POINT_QUERY), repeat=3)
        ratio = materialized_s / lazy_s
        ratios.append(ratio)
        sweep.add(depth, closure=_db(depth).closure().total,
                  materialized_s=materialized_s, lazy_s=lazy_s,
                  speedup=round(ratio, 1))
    print_sweep(sweep)
    # Shape: laziness wins cold, and more decisively as the heap grows
    # (the materialized cost tracks the closure, the lazy cost the
    # question).
    assert ratios[-1] > 5
    assert ratios[-1] > ratios[0]

    benchmark.pedantic(lambda: _db(6).query_lazy(POINT_QUERY),
                       rounds=3, iterations=1)


def test_f9_inference_heavy_point_query(benchmark):
    """A query whose answer requires deep derivation chains: here the
    tabling overhead exceeds semi-naive materialization — the honest
    other side of the trade-off (no winner asserted, only equality of
    answers)."""
    depth = 6
    materialized_s = timed(
        lambda: _db(depth).query(INFERENCE_QUERY), repeat=3)
    lazy_s = timed(
        lambda: _db(depth).query_lazy(INFERENCE_QUERY), repeat=3)
    sweep = Sweep(name="F9: derivation-chain query (depth 6)",
                  parameter="strategy")
    sweep.add("materialized", seconds=materialized_s)
    sweep.add("lazy", seconds=lazy_s)
    print_sweep(sweep)

    db = _db(depth)
    assert db.query(INFERENCE_QUERY) == db.query_lazy(INFERENCE_QUERY)
    assert db.query_lazy(INFERENCE_QUERY) == {("GENERAL",)}

    benchmark.pedantic(lambda: _db(depth).query_lazy(INFERENCE_QUERY),
                       rounds=3, iterations=1)


def test_f9_open_query_converges(benchmark):
    """The fully open template forces the lazy engine to derive the
    whole closure — no free lunch, and naive tabling pays overhead."""
    depth = 4
    db_lazy = _db(depth)
    db_mat = _db(depth)
    lazy_value = db_lazy.query_lazy(OPEN_QUERY)
    materialized_value = db_mat.query(OPEN_QUERY)
    assert lazy_value == materialized_value

    lazy_s = timed(lambda: _db(depth).query_lazy(OPEN_QUERY), repeat=3)
    materialized_s = timed(lambda: _db(depth).query(OPEN_QUERY), repeat=3)
    sweep = Sweep(name="F9: open template (x, y, z) (depth 4)",
                  parameter="strategy")
    sweep.add("materialized", seconds=materialized_s)
    sweep.add("lazy", seconds=lazy_s)
    print_sweep(sweep)

    benchmark.pedantic(lambda: _db(depth).query(OPEN_QUERY),
                       rounds=3, iterations=1)


def test_f9_warm_queries_amortize(benchmark):
    """Both strategies answer repeated selective queries from cache."""
    db = _db(6)
    db.query(POINT_QUERY)        # warm the closure
    db.query_lazy(POINT_QUERY)   # warm the tables
    warm_materialized = timed(lambda: db.query(POINT_QUERY), repeat=5)
    warm_lazy = timed(lambda: db.query_lazy(POINT_QUERY), repeat=5)
    sweep = Sweep(name="F9: warm repeated query", parameter="strategy")
    sweep.add("materialized", seconds=warm_materialized)
    sweep.add("lazy", seconds=warm_lazy)
    print_sweep(sweep)
    # Both are sub-millisecond warm; neither should be pathological.
    assert warm_materialized < 0.01
    assert warm_lazy < 0.01

    benchmark(db.query_lazy, POINT_QUERY)
