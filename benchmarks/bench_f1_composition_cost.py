"""F1 — §6.1: composition "may have serious effect on the cost of
query processing", contained by ``limit(n)``.

Sweeps the composition limit over a layered association graph and
reports closure size and browsing-query latency per limit.  Expected
shape: super-linear growth of composed facts with n, with ``limit``
keeping both size and latency bounded.
"""

from __future__ import annotations

import pytest

from repro.benchio import Sweep, print_sweep, timed
from repro.core.store import FactStore
from repro.datasets.synthetic import chain_facts, layered_dag_facts
from repro.db import Database
from repro.rules.composition import compose_closure

LIMITS = [1, 2, 3, 4]


def _dag_store() -> FactStore:
    return FactStore(layered_dag_facts(layers=5, width=8, out_degree=3,
                                       seed=11))


def test_f1_sweep_composition_limit(benchmark):
    store = _dag_store()
    sweep = Sweep(name="F1: composition cost vs limit(n)",
                  parameter="limit")
    sizes = {}
    for limit in LIMITS:
        seconds = timed(lambda: compose_closure(store, limit), repeat=3)
        result = compose_closure(store, limit)
        sizes[limit] = result.count
        sweep.add(limit, composed_facts=result.count,
                  compose_seconds=seconds)
    print_sweep(sweep)

    # Shape: strictly growing, and growth accelerating (super-linear).
    assert sizes[1] == 0
    assert sizes[2] < sizes[3] < sizes[4]
    assert (sizes[4] - sizes[3]) > (sizes[3] - sizes[2]) * 0.5

    benchmark(compose_closure, store, 3)


def test_f1_query_latency_grows_with_limit(benchmark):
    """The (s, *, t) browsing query gets more expensive as composed
    relationships multiply."""
    facts = layered_dag_facts(layers=5, width=8, out_degree=3, seed=11)
    sweep = Sweep(name="F1: (D0_0, *, D4_0) latency vs limit",
                  parameter="limit")
    counts = {}
    for limit in LIMITS:
        db = Database(with_axioms=False)
        db.add_facts(facts)
        db.limit(limit)
        db.closure()
        seconds = timed(
            lambda db=db: db.navigate("(D0_0, *, D4_0)"), repeat=3)
        answers = len(db.navigate("(D0_0, *, D4_0)").groups)
        counts[limit] = answers
        sweep.add(limit, associations=answers, query_seconds=seconds)
    print_sweep(sweep)
    assert counts[1] == 0          # no direct association
    assert counts[4] >= counts[3]  # more paths at higher limits
    assert counts[4] > 0

    db = Database(with_axioms=False)
    db.add_facts(facts)
    db.limit(4)
    db.closure()
    benchmark(db.navigate, "(D0_0, *, D4_0)")


def test_f1_unlimited_on_chain_is_quadratic(benchmark):
    """n = ∞ on a k-chain yields C(k,2) composed facts — the paper's
    'serious effect' in its purest form."""
    sweep = Sweep(name="F1: unlimited composition on a chain",
                  parameter="chain_length")
    for length in (10, 20, 40):
        store = FactStore(chain_facts(length))
        result = compose_closure(store, None)
        assert result.count == length * (length - 1) // 2
        sweep.add(length, composed_facts=result.count)
    print_sweep(sweep)
    store = FactStore(chain_facts(40))
    benchmark(compose_closure, store, None)
