"""F2 — closure computation: dispatched vs semi-naive vs naive.

The paper's closure (§2.6) is the cost every other operation amortizes;
this bench sweeps heap size across the three engines — the textbook
naive baseline, the interpreted semi-naive engine, and the dispatched
fast path (compiled joins + relationship-indexed dispatch + stratified
rounds, :mod:`repro.rules.dispatch`) — and verifies they agree fact for
fact while the fast path wins the wall clock.

Run as a script to emit ``BENCH_closure.json`` (the engine × dataset ×
limit matrix with wall times and lookup counters) for the perf
trajectory::

    PYTHONPATH=src python benchmarks/bench_f2_closure.py [--quick]
"""

from __future__ import annotations

import argparse
import sys

import pytest

from repro.benchio import Sweep, print_sweep, timed
from repro.benchio.harness import measure, write_bench_json
from repro.core.facts import Fact
from repro.core.interned import InternedFactStore
from repro.core.store import FactStore
from repro.datasets.synthetic import hierarchy_facts, membership_facts
from repro.rules.builtin import STANDARD_RULES
from repro.rules.composition import compose_closure
from repro.rules.dispatch import compile_ruleset, dispatched_closure
from repro.rules.engine import naive_closure, semi_naive_closure
from repro.rules.rule import RelationshipClassifier, RuleContext


def _workload(depth: int, fanout: int, instances: int):
    """Hierarchy + memberships + one class-level fact to inherit."""
    tree, leaves = hierarchy_facts(depth, fanout)
    facts = list(tree)
    facts.extend(membership_facts(leaves, instances))
    facts.append(Fact("C0", "HAS-POLICY", "GENERAL-POLICY"))
    return facts


def _context(facts):
    return RuleContext(classifier=RelationshipClassifier(FactStore(facts)))


def _inference_heavy_workload(relationship_facts: int):
    """A hierarchy with instances plus ordinary facts over the class
    entities: every §3 rule family fires, and the closure is an order
    of magnitude larger than the base — the regime where naive
    re-derivation hurts."""
    import random

    tree, leaves = hierarchy_facts(4, 2)
    facts = list(tree) + membership_facts(leaves, 2)
    rng = random.Random(0)
    entities = [f"C{i}" for i in range(31)]
    for index in range(relationship_facts):
        facts.append(Fact(rng.choice(entities), f"R{index % 8}",
                          rng.choice(entities)))
    return facts


def test_f2_engines_sweep(benchmark):
    sweep = Sweep(name="F2: closure engines vs workload size",
                  parameter="rel_facts")
    ratios = []
    compiled = compile_ruleset(STANDARD_RULES)
    for relationship_facts in (20, 40, 60):
        facts = _inference_heavy_workload(relationship_facts)
        context = _context(facts)
        # measure() times untraced (comparable to plain timed()) and
        # attaches obs counters from one extra observed run, so the
        # sweep explains the speedup: the lookup counts ARE the work
        # naive re-derivation repeats (and dispatch skips).
        semi_m = measure(
            "semi-naive",
            lambda: semi_naive_closure(facts, STANDARD_RULES, context),
            repeat=3, counter_prefixes=("store.lookups", "engine.rounds"))
        naive_m = measure(
            "naive",
            lambda: naive_closure(facts, STANDARD_RULES, context),
            repeat=3, counter_prefixes=("store.lookups",))
        dispatched_m = measure(
            "dispatched",
            lambda: dispatched_closure(facts, STANDARD_RULES, context,
                                       compiled=compiled),
            repeat=3,
            counter_prefixes=("store.lookups", "dispatch.skipped_rules"))
        semi = semi_naive_closure(facts, STANDARD_RULES, context)
        naive = naive_closure(facts, STANDARD_RULES, context)
        dispatched = dispatched_closure(facts, STANDARD_RULES, context,
                                        compiled=compiled)
        assert set(semi.store) == set(naive.store) == set(dispatched.store)
        assert semi.rule_firings == dispatched.rule_firings
        ratio = naive_m.seconds / semi_m.seconds
        ratios.append(ratio)
        sweep.add(relationship_facts, base=len(facts), closure=semi.total,
                  iterations=semi.iterations,
                  naive_s=naive_m.seconds, semi_naive_s=semi_m.seconds,
                  dispatched_s=dispatched_m.seconds,
                  semi_lookups=semi_m.metrics.get("store.lookups"),
                  dispatched_lookups=dispatched_m.metrics.get(
                      "store.lookups"),
                  skipped=dispatched_m.metrics.get(
                      "dispatch.skipped_rules"),
                  speedup=round(ratio, 2))
    print_sweep(sweep)
    # Shape: semi-naive wins decisively on the largest workload.
    assert ratios[-1] > 1.3

    facts = _inference_heavy_workload(40)
    context = _context(facts)
    benchmark.pedantic(
        semi_naive_closure, args=(facts, STANDARD_RULES, context),
        rounds=3, iterations=1)


def test_f2_semi_naive_largest(benchmark):
    facts = _workload(5, 2, 2)
    context = _context(facts)
    result = benchmark(semi_naive_closure, facts, STANDARD_RULES, context)
    assert result.derived_count > 0


def test_f2_naive_largest(benchmark):
    facts = _workload(5, 2, 2)
    context = _context(facts)
    result = benchmark(naive_closure, facts, STANDARD_RULES, context)
    assert result.derived_count > 0


def test_f2_dispatched_largest(benchmark):
    facts = _workload(5, 2, 2)
    context = _context(facts)
    compiled = compile_ruleset(STANDARD_RULES)
    result = benchmark(dispatched_closure, facts, STANDARD_RULES, context,
                       compiled=compiled)
    assert result.derived_count > 0
    baseline = semi_naive_closure(facts, STANDARD_RULES, context)
    assert set(result.store) == set(baseline.store)


def test_f2_iterations_scale_with_chain_depth(benchmark):
    """Semi-naive round count tracks the longest derivation chain."""
    sweep = Sweep(name="F2: iterations vs ≺-chain length",
                  parameter="chain")
    for chain in (4, 8, 16):
        facts = [Fact(f"N{i}", "≺", f"N{i+1}") for i in range(chain)]
        result = semi_naive_closure(facts, STANDARD_RULES,
                                    _context(facts))
        sweep.add(chain, iterations=result.iterations,
                  closure=result.total)
        assert result.iterations <= chain + 1
    print_sweep(sweep)
    facts = [Fact(f"N{i}", "≺", f"N{i+1}") for i in range(16)]
    benchmark(semi_naive_closure, facts, STANDARD_RULES, _context(facts))


# ----------------------------------------------------------------------
# Script mode: the engine × dataset × limit matrix → BENCH_closure.json
# ----------------------------------------------------------------------
def _dag_workload():
    from repro.datasets.synthetic import layered_dag_facts
    return layered_dag_facts(5, 10, 3, seed=1)


#: Dataset name → (factory, composition limits to measure).  The
#: inference-heavy series carries the engine comparison (composition
#: off — the closure itself is the workload); the layered DAG carries
#: the limit axis, since composing an inference-heavy closure explodes
#: combinatorially and would swamp the engine signal.
_DATASETS = {
    "inference-heavy-100": (lambda: _inference_heavy_workload(100), (1,)),
    "inference-heavy-250": (lambda: _inference_heavy_workload(250), (1,)),
    "inference-heavy-400": (lambda: _inference_heavy_workload(400), (1,)),
    "layered-dag": (_dag_workload, (1, 2, 4)),
}
#: Quick mode (the CI smoke configuration) keeps the small datasets so
#: the run finishes in seconds.
_QUICK_DATASETS = ("inference-heavy-100", "layered-dag")
#: The naive baseline re-derives the full closure every round — it is
#: only affordable on the small datasets.
_NAIVE_DATASETS = ("inference-heavy-100", "layered-dag")


def _engine_runner(engine: str, facts, context, limit: int, compiled,
                   interned_base=None):
    """A zero-argument closure computing one matrix cell."""
    def run():
        if engine == "naive":
            result = naive_closure(facts, STANDARD_RULES, context)
        elif engine == "semi-naive":
            result = semi_naive_closure(facts, STANDARD_RULES, context)
        elif engine == "dispatched-interned":
            # Same fast path, but seeded from an interned columnar
            # base: seed_store() shares the frozen generation instead
            # of rebuilding hash indexes, so this cell prices the
            # closure as a replica attached to a shared generation
            # would pay it.
            result = dispatched_closure(interned_base, STANDARD_RULES,
                                        context, compiled=compiled)
        else:
            result = dispatched_closure(facts, STANDARD_RULES, context,
                                        compiled=compiled)
        if limit > 1:
            combined = result.store.copy()
            combined.add_all(compose_closure(result.store, limit).facts)
            return combined
        return result.store
    return run


def run_matrix(quick: bool = False, repeat: int = 3):
    """Measure the engine × dataset × limit matrix.

    Returns ``(rows, summary)``: one row per cell with wall seconds and
    lookup/dispatch counters, and the headline before/after comparison
    on the largest dataset (composition off).
    """
    if quick:
        repeat = 1
    dataset_names = _QUICK_DATASETS if quick else tuple(_DATASETS)
    compiled = compile_ruleset(STANDARD_RULES)
    rows = []
    seconds = {}
    for dataset_name in dataset_names:
        factory, limits = _DATASETS[dataset_name]
        facts = factory()
        context = _context(facts)
        interned_base = InternedFactStore.from_facts(facts)
        sizes = {}
        for limit in limits:
            for engine in ("naive", "semi-naive", "dispatched",
                           "dispatched-interned"):
                if engine == "naive" \
                        and dataset_name not in _NAIVE_DATASETS:
                    continue
                # The interned axis prices the base representation;
                # composition never touches it, so one limit suffices.
                if engine == "dispatched-interned" and limit != 1:
                    continue
                runner = _engine_runner(engine, facts, context, limit,
                                        compiled,
                                        interned_base=interned_base)
                m = measure(f"{engine}/{dataset_name}/limit={limit}",
                            runner, repeat=repeat,
                            counter_prefixes=("store.lookups",
                                              "store.adds",
                                              "dispatch.",
                                              "engine.rounds",
                                              "engine.strata"))
                closure_size = len(runner())
                sizes.setdefault(limit, set()).add(closure_size)
                seconds[engine, dataset_name, limit] = m.seconds
                rows.append({
                    "engine": engine,
                    "dataset": dataset_name,
                    "limit": limit,
                    "base_facts": len(facts),
                    "closure_facts": closure_size,
                    "seconds": round(m.seconds, 6),
                    "metrics": m.metrics,
                })
                print(f"  {m.label:45s} {m.seconds:8.4f}s"
                      f"  closure={closure_size}")
        # Engines must agree fact-for-fact at every limit.
        for limit, observed in sizes.items():
            if len(observed) != 1:
                raise AssertionError(
                    f"engines disagree on {dataset_name} at"
                    f" limit={limit}: sizes {sorted(observed)}")
    largest = max(
        (name for name in dataset_names if name.startswith("inference")),
        key=lambda name: int(name.rsplit("-", 1)[1]))
    before = seconds["semi-naive", largest, 1]
    after = seconds["dispatched", largest, 1]
    interned = seconds["dispatched-interned", largest, 1]
    summary = {
        "largest_dataset": largest,
        "semi_naive_seconds": round(before, 6),
        "dispatched_seconds": round(after, 6),
        "speedup": round(before / after, 2),
        # Dispatched closure seeded from an interned columnar base —
        # the cost a shared-generation replica pays to warm its closure.
        "dispatched_interned_seconds": round(interned, 6),
        "interned_speedup": round(before / interned, 2),
    }
    return rows, summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="F2 closure benchmark: engine × dataset × limit"
                    " matrix → BENCH_closure.json")
    parser.add_argument("--quick", action="store_true",
                        help="small datasets, single repetition (the CI"
                             " smoke configuration)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing repetitions per cell (best-of)")
    parser.add_argument("--output", default="BENCH_closure.json",
                        help="where to write the JSON document")
    options = parser.parse_args(argv)
    print(f"F2 closure matrix ({'quick' if options.quick else 'full'})")
    rows, summary = run_matrix(quick=options.quick, repeat=options.repeat)
    document = write_bench_json(
        options.output, "F2-closure", rows, summary=summary,
        config={"quick": options.quick,
                "repeat": 1 if options.quick else options.repeat,
                "rules": len(STANDARD_RULES)})
    print(f"wrote {options.output}: {len(rows)} cells;"
          f" {summary['largest_dataset']} semi-naive"
          f" {summary['semi_naive_seconds']}s → dispatched"
          f" {summary['dispatched_seconds']}s"
          f" ({summary['speedup']}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
