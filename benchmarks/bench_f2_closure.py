"""F2 — closure computation: semi-naive vs naive forward chaining.

The paper's closure (§2.6) is the cost every other operation amortizes;
this bench sweeps heap size and shows the production engine dominating
the textbook baseline, with the gap widening as iteration count grows.
"""

from __future__ import annotations

import pytest

from repro.benchio import Sweep, print_sweep, timed
from repro.benchio.harness import measure
from repro.core.facts import Fact
from repro.core.store import FactStore
from repro.datasets.synthetic import hierarchy_facts, membership_facts
from repro.rules.builtin import STANDARD_RULES
from repro.rules.engine import naive_closure, semi_naive_closure
from repro.rules.rule import RelationshipClassifier, RuleContext


def _workload(depth: int, fanout: int, instances: int):
    """Hierarchy + memberships + one class-level fact to inherit."""
    tree, leaves = hierarchy_facts(depth, fanout)
    facts = list(tree)
    facts.extend(membership_facts(leaves, instances))
    facts.append(Fact("C0", "HAS-POLICY", "GENERAL-POLICY"))
    return facts


def _context(facts):
    return RuleContext(classifier=RelationshipClassifier(FactStore(facts)))


def _inference_heavy_workload(relationship_facts: int):
    """A hierarchy with instances plus ordinary facts over the class
    entities: every §3 rule family fires, and the closure is an order
    of magnitude larger than the base — the regime where naive
    re-derivation hurts."""
    import random

    tree, leaves = hierarchy_facts(4, 2)
    facts = list(tree) + membership_facts(leaves, 2)
    rng = random.Random(0)
    entities = [f"C{i}" for i in range(31)]
    for index in range(relationship_facts):
        facts.append(Fact(rng.choice(entities), f"R{index % 8}",
                          rng.choice(entities)))
    return facts


def test_f2_semi_naive_vs_naive_sweep(benchmark):
    sweep = Sweep(name="F2: closure engines vs workload size",
                  parameter="rel_facts")
    ratios = []
    for relationship_facts in (20, 40, 60):
        facts = _inference_heavy_workload(relationship_facts)
        context = _context(facts)
        # measure() times untraced (comparable to plain timed()) and
        # attaches obs counters from one extra observed run, so the
        # sweep explains the speedup: the lookup counts ARE the work
        # naive re-derivation repeats.
        semi_m = measure(
            "semi-naive",
            lambda: semi_naive_closure(facts, STANDARD_RULES, context),
            repeat=3, counter_prefixes=("store.lookups", "engine.rounds"))
        naive_m = measure(
            "naive",
            lambda: naive_closure(facts, STANDARD_RULES, context),
            repeat=3, counter_prefixes=("store.lookups",))
        semi_seconds = semi_m.seconds
        naive_seconds = naive_m.seconds
        semi = semi_naive_closure(facts, STANDARD_RULES, context)
        naive = naive_closure(facts, STANDARD_RULES, context)
        assert set(semi.store) == set(naive.store)
        ratio = naive_seconds / semi_seconds
        ratios.append(ratio)
        sweep.add(relationship_facts, base=len(facts), closure=semi.total,
                  iterations=semi.iterations,
                  semi_naive_s=semi_seconds, naive_s=naive_seconds,
                  semi_lookups=semi_m.metrics.get("store.lookups"),
                  naive_lookups=naive_m.metrics.get("store.lookups"),
                  speedup=round(ratio, 2))
    print_sweep(sweep)
    # Shape: semi-naive wins decisively on the largest workload.
    assert ratios[-1] > 1.3

    facts = _inference_heavy_workload(40)
    context = _context(facts)
    benchmark.pedantic(
        semi_naive_closure, args=(facts, STANDARD_RULES, context),
        rounds=3, iterations=1)


def test_f2_semi_naive_largest(benchmark):
    facts = _workload(5, 2, 2)
    context = _context(facts)
    result = benchmark(semi_naive_closure, facts, STANDARD_RULES, context)
    assert result.derived_count > 0


def test_f2_naive_largest(benchmark):
    facts = _workload(5, 2, 2)
    context = _context(facts)
    result = benchmark(naive_closure, facts, STANDARD_RULES, context)
    assert result.derived_count > 0


def test_f2_iterations_scale_with_chain_depth(benchmark):
    """Semi-naive round count tracks the longest derivation chain."""
    sweep = Sweep(name="F2: iterations vs ≺-chain length",
                  parameter="chain")
    for chain in (4, 8, 16):
        facts = [Fact(f"N{i}", "≺", f"N{i+1}") for i in range(chain)]
        result = semi_naive_closure(facts, STANDARD_RULES,
                                    _context(facts))
        sweep.add(chain, iterations=result.iterations,
                  closure=result.total)
        assert result.iterations <= chain + 1
    print_sweep(sweep)
    facts = [Fact(f"N{i}", "≺", f"N{i+1}") for i in range(16)]
    benchmark(semi_naive_closure, facts, STANDARD_RULES, _context(facts))
