"""F6 — the storage substrate: journal throughput, snapshot cost,
recovery replay, and closure-invalidation overhead on updates.

The paper stores facts "one by one" (§2.6) and defers storage strategy
to future work; these numbers describe *our* substrate, not the
paper's (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.benchio import Sweep, print_sweep, timed
from repro.core.facts import Fact
from repro.datasets.synthetic import random_heap
from repro.db import Database
from repro.storage.journal import OP_ADD, Journal
from repro.storage.session import open_database
from repro.storage.snapshot import SnapshotState, read_snapshot, write_snapshot

N_FACTS = 2000


@pytest.fixture
def facts():
    return random_heap(N_FACTS, n_entities=400, n_relationships=30,
                       seed=9)


def test_f6_journal_append_throughput(benchmark, tmp_path, facts):
    journal = Journal(tmp_path / "bench.jsonl")

    def append_all():
        for fact in facts:
            journal.append(OP_ADD, fact)

    benchmark.pedantic(append_all, rounds=3, iterations=1)
    journal.close()
    assert len(journal) >= N_FACTS


def test_f6_snapshot_roundtrip(benchmark, tmp_path, facts):
    state = SnapshotState(facts=list(facts))
    path = tmp_path / "snap.json"

    def roundtrip():
        write_snapshot(path, state)
        return read_snapshot(path)

    loaded = benchmark(roundtrip)
    assert set(loaded.facts) == set(facts)


def test_f6_recovery_replay(benchmark, tmp_path, facts):
    db, session = open_database(tmp_path / "d")
    db.add_facts(facts)
    session.close()

    def recover():
        recovered, fresh_session = open_database(tmp_path / "d")
        fresh_session.close()
        return recovered

    recovered = benchmark(recover)
    assert len(recovered.facts) >= N_FACTS


def test_f6_checkpoint_compaction(benchmark, tmp_path, facts):
    sweep = Sweep(name="F6: recovery, journal vs snapshot",
                  parameter="state")
    db, session = open_database(tmp_path / "d")
    db.add_facts(facts)
    journal_recover = timed(
        lambda: session.recover(), repeat=3)
    sweep.add("journal-only", recover_seconds=journal_recover)
    session.checkpoint()
    snapshot_recover = timed(
        lambda: session.recover(), repeat=3)
    sweep.add("after-checkpoint", recover_seconds=snapshot_recover)
    session.close()
    print_sweep(sweep)

    db2, session2 = open_database(tmp_path / "d")
    assert len(db2.facts) >= N_FACTS
    session2.close()

    benchmark.pedantic(
        lambda: DurableRecover(tmp_path / "d"), rounds=3, iterations=1)


def DurableRecover(path):
    from repro.storage.session import DurableSession

    session = DurableSession(path)
    database = session.recover()
    session.close()
    return database


def test_f6_update_invalidation_cost(benchmark, facts):
    """Each mutation invalidates the cached closure; the next query
    pays recomputation.  This is the paper's organization-free update
    path: O(1) insert, closure on demand."""
    db = Database(with_axioms=False)
    db.add_facts(facts[:-50])
    db.closure()
    extra = facts[-50:]

    def update_then_query():
        for fact in extra:
            db.add_fact(fact)
            db.remove_fact(fact)
        return db.closure().total

    total = benchmark(update_then_query)
    assert total > 0
