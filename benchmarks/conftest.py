"""Shared fixtures for the benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only -s

(``-s`` shows the paper-table reproductions each bench prints in
addition to its timings.)
"""

from __future__ import annotations

import pytest

from repro.datasets import books, music, paper, university


@pytest.fixture
def music_db():
    return music.load()


@pytest.fixture
def paper_db():
    return paper.load()


@pytest.fixture
def university_db():
    return university.load()


@pytest.fixture
def books_db():
    return books.load()
