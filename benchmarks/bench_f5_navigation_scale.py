"""F5 — navigation latency vs heap size: indexed heap vs the
"extensive scan" the paper's introduction warns about.

A user who wants "something interesting about John" needs the
neighborhood query (JOHN, *, *).  On the indexed heap its cost tracks
John's degree; on an unindexed store it tracks the whole heap.
Expected shape: indexed latency flat as the heap grows, scan latency
linear.
"""

from __future__ import annotations

import pytest

from repro.baselines.scan import ScanStore
from repro.benchio import Sweep, print_sweep, timed
from repro.core.facts import Fact, Template, var
from repro.core.store import FactStore
from repro.datasets.synthetic import random_heap

HEAP_SIZES = [2000, 8000, 32000]
JOHN_DEGREE = 12
R, T = var("r"), var("t")


def _heap(size: int):
    facts = random_heap(size, n_entities=size // 4,
                        n_relationships=40, seed=5)
    # John's neighborhood stays the same size as the heap grows.
    for index in range(JOHN_DEGREE):
        facts.append(Fact("JOHN", f"R{index % 7}", f"E{index}"))
    return facts


def test_f5_indexed_flat_scan_linear(benchmark):
    sweep = Sweep(name="F5: (JOHN, *, *) latency vs heap size",
                  parameter="heap_facts")
    indexed_times = []
    scan_times = []
    pattern = Template("JOHN", R, T)
    for size in HEAP_SIZES:
        facts = _heap(size)
        indexed = FactStore(facts)
        scan = ScanStore(facts)
        indexed_seconds = timed(
            lambda: list(indexed.match(pattern)), repeat=5)
        scan_seconds = timed(lambda: list(scan.match(pattern)), repeat=5)
        assert (set(indexed.match(pattern))
                == set(scan.match(pattern)))
        indexed_times.append(indexed_seconds)
        scan_times.append(scan_seconds)
        sweep.add(size, indexed_s=indexed_seconds, scan_s=scan_seconds,
                  scan_over_indexed=round(scan_seconds
                                          / indexed_seconds, 1))
    print_sweep(sweep)

    # Shape: the scan degrades with heap size; the index does not.
    assert scan_times[-1] / scan_times[0] > 4      # ~16x size → ≥4x time
    assert scan_times[-1] / indexed_times[-1] > 50  # index >> scan

    store = FactStore(_heap(HEAP_SIZES[-1]))
    benchmark.pedantic(lambda: list(store.match(pattern)),
                       rounds=5, iterations=10)


def test_f5_indexed_navigation_largest(benchmark):
    facts = _heap(HEAP_SIZES[-1])
    store = FactStore(facts)
    pattern = Template("JOHN", R, T)
    result = benchmark(lambda: list(store.match(pattern)))
    assert len(result) == JOHN_DEGREE


def test_f5_scan_navigation_largest(benchmark):
    facts = _heap(HEAP_SIZES[-1])
    store = ScanStore(facts)
    pattern = Template("JOHN", R, T)
    result = benchmark(lambda: list(store.match(pattern)))
    assert len(result) == JOHN_DEGREE
