"""F14 — point reads through the service layer: the plan-cache payoff.

A browsing session is mostly *point reads*: fully-ground ``ask``
probes ("does EMP7 work for DEPT3?") and single-atom navigation stars
("what does EMP7 earn?").  PR 8's plan-time shape classifier routes
both straight to the store's indexes through a pre-bound
:class:`~repro.query.plancache.FastProbe`, skipping parse, compile,
and operator dispatch on every repeat.  This harness prices that path
end-to-end — client call → :class:`~repro.serve.DatabaseService`
snapshot read → plan cache → fast probe — under three locality
regimes:

* **hot** — a small working set (~64 distinct texts) cycling, the
  navigation pattern of a user stepping around a neighbourhood.  Both
  the plan cache and the versioned result cache converge to ~100%
  hits; this is the headline ops/s number.
* **uniform** — a working set sized between the result cache (512
  entries) and the plan cache (1024): cycling 768 distinct texts
  thrashes result reuse while every plan stays cached — the cost of a
  cached-plan fast probe that must actually touch the store.
* **cold** — every op a never-seen text: the full parse → classify →
  compile → bind miss path.  The floor, for contrast.

Each cell reports throughput, latency percentiles, and the plan-cache
hit rate observed by the service's published snapshot (snapshots share
the primary's plan cache, so the rate accumulates across cells of one
service).

Run as a script to emit ``BENCH_point_reads.json``::

    PYTHONPATH=src python benchmarks/bench_f14_point_reads.py [--quick]
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from typing import Dict, List

from repro.benchio.harness import write_bench_json
from repro.datasets.synthetic import employee_workload
from repro.db import Database
from repro.serve import DatabaseService


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------
def build_database(n_employees: int, n_departments: int,
                   interned: bool = True) -> Database:
    db = Database()
    db.add_facts(employee_workload(n_employees, n_departments,
                                   seed=11).facts)
    if interned:
        db.compact_store()
    return db


def point_queries(count: int) -> List[tuple]:
    """``count`` distinct ``(verb, text)`` ops: fully-ground ``ask``
    probes (point shape, mixing hits and misses) plus one-ground
    navigation stars through ``query`` every 4th op — the paper's
    browsing mix of membership probes and neighbourhood steps."""
    ops = []
    for index in range(count):
        emp = f"EMP{index % 997}"
        kind = index % 4
        if kind == 0:
            ops.append(("ask", f"({emp}, ∈, EMPLOYEE)"))    # point, hit
        elif kind == 1:
            ops.append(("ask", f"({emp}, WORKS-FOR, DEPT{index % 5})"))
        elif kind == 2:
            ops.append(("ask", f"({emp}, ∈, CONTRACTOR{index})"))  # miss
        else:
            ops.append(("query", f"({emp}, EARNS, s)"))     # star
    return ops


def percentile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _plan_cache_stats(service: DatabaseService) -> Dict[str, object]:
    return service.read_view().stats()["plan_cache"]


def _hit_rate(stats: Dict[str, object]) -> float:
    lookups = stats["hits"] + stats["misses"]
    return round(stats["hits"] / lookups, 4) if lookups else 0.0


# ----------------------------------------------------------------------
# One cell
# ----------------------------------------------------------------------
def run_cell(service: DatabaseService, mode: str, ops: List[tuple],
             threads: int, ops_per_thread: int,
             cold: bool = False) -> Dict[str, object]:
    """Drive ``threads`` readers issuing point reads against the
    service.  ``cold`` invents a never-seen text per op so each one
    takes the full plan-cache miss path."""
    calls = [(service.ask if verb == "ask" else service.query, text)
             for verb, text in ops]
    for fn, text in calls:             # warm: plans compiled and bound
        fn(text)
    before = dict(_plan_cache_stats(service))
    latencies: List[List[float]] = [[] for _ in range(threads)]
    errors: List[BaseException] = []
    barrier = threading.Barrier(threads + 1)

    def reader(slot: int) -> None:
        try:
            barrier.wait()
            mine = latencies[slot]
            ask = service.ask
            for index in range(ops_per_thread):
                offset = slot * ops_per_thread + index
                if cold:
                    started = time.perf_counter()
                    ask(f"(NOBODY{slot}X{index}, ∈, EMPLOYEE)")
                else:
                    fn, text = calls[offset % len(calls)]
                    started = time.perf_counter()
                    fn(text)
                mine.append(time.perf_counter() - started)
        except BaseException as error:  # noqa: BLE001 - recorded
            errors.append(error)

    workers = [threading.Thread(target=reader, args=(slot,))
               for slot in range(threads)]
    for worker in workers:
        worker.start()
    barrier.wait()
    started = time.perf_counter()
    for worker in workers:
        worker.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    after = _plan_cache_stats(service)
    window = {
        "hits": after["hits"] - before["hits"],
        "misses": after["misses"] - before["misses"],
    }
    flat = [sample for series in latencies for sample in series]
    total = threads * ops_per_thread
    return {
        "mode": mode,
        "threads": threads,
        "distinct_texts": len(calls) if not cold else total,
        "total_ops": total,
        "wall_seconds": round(wall, 6),
        "ops_per_second": round(total / wall, 1),
        "p50_us": round(percentile(flat, 0.50) * 1e6, 1),
        "p95_us": round(percentile(flat, 0.95) * 1e6, 1),
        "p99_us": round(percentile(flat, 0.99) * 1e6, 1),
        "plancache_hit_rate": _hit_rate(window),
        "plancache_entries": after["entries"],
    }


# ----------------------------------------------------------------------
# Matrix
# ----------------------------------------------------------------------
def run_matrix(quick: bool = False):
    if quick:
        n_employees, n_departments = 200, 8
        hot_set, uniform_set = 64, 768
        ops_per_thread, thread_counts = 2_000, [1]
        cold_ops = 300
    else:
        n_employees, n_departments = 1000, 20
        hot_set, uniform_set = 64, 768
        ops_per_thread, thread_counts = 20_000, [1, 4]
        cold_ops = 2_000

    rows: List[Dict[str, object]] = []
    db = build_database(n_employees, n_departments)
    service = DatabaseService(db)
    try:
        for threads in thread_counts:
            for mode, count in (("hot", hot_set), ("uniform", uniform_set)):
                rows.append(run_cell(service, mode, point_queries(count),
                                     threads, ops_per_thread))
                print("  {mode} threads={threads}:"
                      " {ops_per_second} ops/s p50={p50_us}us"
                      " p99={p99_us}us plan-cache"
                      " {plancache_hit_rate:.0%}".format(**rows[-1]))
        rows.append(run_cell(service, "cold", [], 1, cold_ops, cold=True))
        print("  {mode} threads={threads}: {ops_per_second} ops/s"
              " p50={p50_us}us (plan-cache miss path)".format(**rows[-1]))
        lifetime = _plan_cache_stats(service)
    finally:
        service.close()

    hot_single = max(
        (row for row in rows
         if row["mode"] == "hot" and row["threads"] == 1),
        key=lambda row: row["ops_per_second"])
    cold_row = next(row for row in rows if row["mode"] == "cold")
    summary = {
        "hot_ops_per_second": hot_single["ops_per_second"],
        "hot_p99_us": hot_single["p99_us"],
        "uniform_ops_per_second": max(
            row["ops_per_second"] for row in rows
            if row["mode"] == "uniform"),
        "cold_ops_per_second": cold_row["ops_per_second"],
        "hot_over_cold": round(hot_single["ops_per_second"]
                               / max(cold_row["ops_per_second"], 1e-9), 2),
        "plancache_lifetime_hit_rate": _hit_rate(lifetime),
        "plancache_entries": lifetime["entries"],
    }
    return rows, summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="F14 point-read benchmark: plan-cached ask/star"
                    " probes through DatabaseService →"
                    " BENCH_point_reads.json")
    parser.add_argument("--quick", action="store_true",
                        help="small dataset and op counts (the CI"
                             " smoke configuration)")
    parser.add_argument("--fail-below", type=float, default=None,
                        metavar="OPS",
                        help="exit non-zero unless the hot"
                             " single-thread cell sustains at least"
                             " OPS ops/s")
    parser.add_argument("--output", default="BENCH_point_reads.json",
                        help="where to write the JSON document")
    options = parser.parse_args(argv)
    print(f"F14 point reads ({'quick' if options.quick else 'full'})")
    rows, summary = run_matrix(quick=options.quick)
    write_bench_json(options.output, "F14-point-reads", rows,
                     summary=summary, config={"quick": options.quick})
    print(f"wrote {options.output}: {len(rows)} cells;"
          f" hot {summary['hot_ops_per_second']} ops/s"
          f" (p99 {summary['hot_p99_us']}us,"
          f" {summary['hot_over_cold']}x over cold),"
          f" plan-cache hit rate"
          f" {summary['plancache_lifetime_hit_rate']:.1%}")
    if (options.fail_below is not None
            and summary["hot_ops_per_second"] < options.fail_below):
        print(f"FAIL: hot ops/s {summary['hot_ops_per_second']}"
              f" < floor {options.fail_below}")
        return 1
    return 0


# ----------------------------------------------------------------------
# pytest entry: the fast path holds up through the service layer
# ----------------------------------------------------------------------
def test_f14_point_reads_hit_plan_cache():
    db = build_database(100, 5)
    service = DatabaseService(db)
    try:
        row = run_cell(service, "hot", point_queries(32), 1, 500)
    finally:
        service.close()
    assert row["plancache_hit_rate"] > 0.99
    assert row["ops_per_second"] > 1_000   # sanity floor, not a target


if __name__ == "__main__":
    sys.exit(main())
