"""E2 — §5.1 broadness: the opera query's minimal generalizations.

Regenerates the paper's retraction set {Q1, Q2, Q3} of
Q(z) = (z, LOVES, OPERA) and times retraction-set construction.
"""

from __future__ import annotations

from repro.browse.retraction import ConjunctiveQuery, RetractedQuery, retraction_set
from repro.core.facts import Template, var

Z = var("z")

#: The paper's minimally broader queries of (z, LOVES, OPERA).
EXPECTED = {
    Template(Z, "ENJOYS", "OPERA"),   # Q1: (LOVES, ≺, ENJOYS)
    Template(Z, "LOVES", "MUSIC"),    # Q2: (OPERA, ≺, MUSIC)
    Template(Z, "LOVES", "THEATER"),  # Q3: (OPERA, ≺, THEATER)
}


def test_e2_opera_retraction_set(benchmark, university_db):
    hierarchy = university_db.hierarchy()
    original = RetractedQuery(
        query=ConjunctiveQuery.from_query("(z, LOVES, OPERA)"), path=())

    candidates = benchmark(retraction_set, original, hierarchy)

    assert {c.query.templates[0] for c in candidates} == EXPECTED
    print()
    print("Q (z) = (z, LOVES, OPERA) — minimally broader queries:")
    for index, candidate in enumerate(candidates, start=1):
        print(f"  Q{index}(z) = {candidate.query.templates[0]!r}"
              f"   [{candidate.describe()}]")


def test_e2_broadness_is_sound(benchmark, university_db):
    """If Q succeeds, each broader query succeeds and contains {Q}."""
    evaluator = university_db.evaluator()
    hierarchy = university_db.hierarchy()
    cq = ConjunctiveQuery.from_query("(z, LOVES, OPERA)")

    def check():
        original_value = evaluator.evaluate(cq.to_query())
        for candidate in retraction_set(
                RetractedQuery(query=cq, path=()), hierarchy):
            broader = evaluator.evaluate(candidate.query.to_query())
            assert original_value <= broader
        return original_value

    value = benchmark(check)
    assert ("ANNA",) in value


def test_e2_hierarchy_construction(benchmark, university_db):
    university_db.closure()

    def build():
        university_db._hierarchy = None
        return university_db.hierarchy()

    hierarchy = benchmark(build)
    assert hierarchy.minimal_generalizations("OPERA") == {
        "MUSIC", "THEATER"}
