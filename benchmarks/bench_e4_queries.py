"""E4 — §2.7 standard query language on the book world.

Regenerates the paper's example queries (all books, self-citations,
self-citing authors, the ≠ idiom for negation, a proposition) and
times their evaluation.
"""

from __future__ import annotations

import pytest

from repro.datasets import books

CASES = [
    ("all-books", books.ALL_BOOKS,
     {("ISBN-100200",), ("ISBN-100201",), ("ISBN-300500",),
      ("ISBN-300501",), ("ISBN-914894",)}),
    ("self-citations", books.SELF_CITATIONS,
     {("ISBN-300500",), ("ISBN-914894",)}),
    ("self-citing-authors", books.SELF_CITING_AUTHORS,
     {("SARAH",), ("DAVE",)}),
    ("books-not-by-john", books.BOOKS_NOT_BY_JOHN,
     {("ISBN-300500",), ("ISBN-300501",), ("ISBN-914894",)}),
]


@pytest.mark.parametrize("name,text,expected",
                         CASES, ids=[c[0] for c in CASES])
def test_e4_query(benchmark, books_db, name, text, expected):
    books_db.closure()
    value = benchmark(books_db.query, text)
    assert value == expected
    print()
    print(f"{name}: {text}")
    print("  ->", sorted(value))


def test_e4_proposition(benchmark, books_db):
    """A closed formula is a proposition (§2.7)."""
    books_db.closure()
    text = "(ISBN-914894, CITES, ISBN-914894) and (ISBN-914894, in, BOOK)"
    value = benchmark(books_db.ask, text)
    assert value is True


def test_e4_open_template_is_whole_closure(benchmark, books_db):
    """(x, y, z) evaluates to the complete (stored+derived) closure."""
    books_db.closure()
    value = benchmark(books_db.query, "(x, y, z)")
    assert len(value) == len(books_db.closure().store)
