"""F3 — §1's trade-off principle: "investment in organization is
compensated by convenient and efficient retrieval."

Three systems answer the same point lookups over the same employee
data:

* **loose heap, no investment** — the ScanStore (every retrieval scans);
* **loose heap, indexed** — this library's FactStore (cheap, generic
  investment: no schema, just hash indexes);
* **organized** — the relational baseline (schema design + load +
  per-attribute index, and schema knowledge required to ask anything).

The bench prices build cost vs per-query cost and reports the
crossover query count at which organization pays for itself against
the zero-investment store — the paper's trade-off, quantified.
"""

from __future__ import annotations

import pytest

from repro.baselines.relational import RelationalDatabase
from repro.baselines.scan import ScanStore
from repro.benchio import Sweep, print_sweep, timed
from repro.core.facts import Template, var
from repro.core.store import FactStore
from repro.datasets.synthetic import employee_workload

N_EMPLOYEES = 3000
X = var("x")


def _build_scan(workload):
    return ScanStore(workload.facts)


def _build_indexed(workload):
    return FactStore(workload.facts)


def _build_relational(workload):
    db = RelationalDatabase()
    relation = db.create_relation(
        "EMPLOYEES", ("NAME", "DEPARTMENT", "SALARY"))
    for row in workload.rows:
        relation.insert(row)
    relation.create_index("NAME")
    return db


def test_f3_tradeoff_crossover(benchmark):
    """§1's opening example, quantified: "A simple example is a
    sequential file.  Keeping it sorted is an investment, which yields
    benefits when the file has to be searched."  Here the investment
    is indexing the heap (or going all the way to a schema'd relational
    store); the crossover is the number of retrievals after which the
    investment has paid for itself against the zero-investment scan."""
    workload = employee_workload(N_EMPLOYEES, 20, seed=1)
    probes = workload.employees[::97] or workload.employees[:1]

    build_scan = timed(lambda: _build_scan(workload), repeat=3)
    build_indexed = timed(lambda: _build_indexed(workload), repeat=3)
    build_rel = timed(lambda: _build_relational(workload), repeat=3)

    scan = _build_scan(workload)
    indexed = _build_indexed(workload)
    organized = _build_relational(workload)

    def scan_queries():
        for employee in probes:
            list(scan.match(Template(employee, "WORKS-FOR", X)))

    def indexed_queries():
        for employee in probes:
            list(indexed.match(Template(employee, "WORKS-FOR", X)))

    def relational_queries():
        for employee in probes:
            organized.lookup("EMPLOYEES", "NAME", employee)

    scan_q = timed(scan_queries, repeat=3) / len(probes)
    indexed_q = timed(indexed_queries, repeat=3) / len(probes)
    rel_q = timed(relational_queries, repeat=3) / len(probes)

    sweep = Sweep(name="F3: organization vs utility", parameter="system")
    sweep.add("scan-heap (no investment)", build_seconds=build_scan,
              per_query_seconds=scan_q)
    sweep.add("indexed-heap", build_seconds=build_indexed,
              per_query_seconds=indexed_q)
    sweep.add("relational (schema)", build_seconds=build_rel,
              per_query_seconds=rel_q)

    # The crossover: queries after which the indexed heap's extra
    # build cost has paid for itself against the zero-investment scan.
    assert scan_q > indexed_q, "indexed lookups must beat full scans"
    crossover = (max(0.0, build_indexed - build_scan)
                 / (scan_q - indexed_q))
    sweep.add("crossover", queries_to_amortize=round(crossover, 1))
    print_sweep(sweep)

    # Shape assertions: investment costs more up front, pays off per
    # query by a wide margin, and amortizes within a modest number of
    # retrievals at this scale.
    assert build_indexed > build_scan
    assert scan_q / indexed_q > 10
    assert scan_q / rel_q > 10
    assert crossover < 1000

    benchmark.pedantic(indexed_queries, rounds=3, iterations=1)


def test_f3_schemaless_lookup_without_schema_knowledge(benchmark):
    """The question the intro poses: find 'something interesting about
    John' with no idea where John lives.  The organized system must
    scan every relation; the loose heap answers from its indexes."""
    workload = employee_workload(N_EMPLOYEES, 20, seed=2)
    indexed = _build_indexed(workload)
    organized = _build_relational(workload)
    target = workload.employees[N_EMPLOYEES // 2]

    heap_seconds = timed(
        lambda: indexed.facts_mentioning(target), repeat=3)
    organized_seconds = timed(
        lambda: organized.find_mentions(target), repeat=3)

    sweep = Sweep(name="F3: 'something about John', no schema knowledge",
                  parameter="system")
    sweep.add("loose-heap-indexed", seconds=heap_seconds)
    sweep.add("relational-scan-all", seconds=organized_seconds)
    print_sweep(sweep)

    heap_facts = indexed.facts_mentioning(target)
    mentions = organized.find_mentions(target)
    assert heap_facts and mentions
    assert organized_seconds > heap_seconds * 5

    benchmark.pedantic(indexed.facts_mentioning, args=(target,),
                       rounds=5, iterations=1)


def test_f3_indexed_heap_build(benchmark):
    workload = employee_workload(N_EMPLOYEES, 20, seed=1)
    store = benchmark(_build_indexed, workload)
    assert len(store) == len(set(workload.facts))


def test_f3_relational_build(benchmark):
    workload = employee_workload(N_EMPLOYEES, 20, seed=1)
    db = benchmark(_build_relational, workload)
    assert len(db) == N_EMPLOYEES


def test_f3_scan_query(benchmark):
    workload = employee_workload(N_EMPLOYEES, 20, seed=1)
    scan = _build_scan(workload)
    target = workload.employees[-1]
    result = benchmark(
        lambda: list(scan.match(Template(target, "WORKS-FOR", X))))
    assert result


def test_f3_relational_query(benchmark):
    workload = employee_workload(N_EMPLOYEES, 20, seed=1)
    organized = _build_relational(workload)
    target = workload.employees[-1]
    result = benchmark(organized.lookup, "EMPLOYEES", "NAME", target)
    assert result
