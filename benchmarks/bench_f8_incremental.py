"""F8 — incremental closure maintenance vs full recomputation.

§6.2 lists "update of data" among the open issues; this bench measures
our answer (DESIGN.md §4): single-fact insertions extend the cached
closure semi-naively in place, instead of recomputing it.

Expected shape: a batch of insert-then-query steps runs far faster on
the incremental database than on one that recomputes per insert, and
the gap grows with closure size.
"""

from __future__ import annotations

import pytest

from repro.benchio import Sweep, print_sweep, timed
from repro.core.facts import Fact
from repro.datasets.synthetic import hierarchy_facts, membership_facts
from repro.db import Database

BATCH = 20


def _loaded(incremental: bool, depth: int) -> Database:
    tree, leaves = hierarchy_facts(depth, 2)
    db = Database(incremental=incremental)
    db.add_facts(tree)
    db.add_facts(membership_facts(leaves, 2))
    db.add("C0", "HAS-POLICY", "GENERAL")
    db.closure()
    return db


def _insert_batch(db: Database, tag: str) -> int:
    """BATCH unique inserts, each followed by a closure read."""
    total = 0
    for index in range(BATCH):
        db.add_fact(Fact(f"NEW-{tag}-{index}", "∈", "C1"))
        total = db.closure().total
    return total


def test_f8_incremental_vs_recompute_sweep(benchmark):
    sweep = Sweep(name="F8: insert+query batches (size %d)" % BATCH,
                  parameter="depth")
    ratios = []
    for depth in (4, 5, 6):
        runs = {}
        for mode, incremental in (("incremental", True),
                                  ("recompute", False)):
            best = float("inf")
            for attempt in range(3):
                db = _loaded(incremental, depth)
                seconds = timed(
                    lambda db=db, t=f"{mode}{attempt}":
                        _insert_batch(db, t),
                    repeat=1)
                best = min(best, seconds)
            runs[mode] = best
        ratio = runs["recompute"] / runs["incremental"]
        ratios.append(ratio)
        sweep.add(depth,
                  incremental_s=runs["incremental"],
                  recompute_s=runs["recompute"],
                  speedup=round(ratio, 1))
    print_sweep(sweep)

    # Shape: incremental maintenance wins decisively at every size.
    assert min(ratios) > 2

    db = _loaded(True, 5)
    counter = iter(range(10 ** 6))

    def one_insert():
        db.add_fact(Fact(f"PROBE{next(counter)}", "∈", "C1"))
        return db.closure().total

    benchmark.pedantic(one_insert, rounds=10, iterations=1)


def test_f8_deletion_dred_vs_recompute(benchmark):
    """The other half of "update of data": Delete/Rederive keeps the
    closure maintained under removals too."""
    sweep = Sweep(name="F8: delete+query batches (size %d)" % BATCH,
                  parameter="depth")
    ratios = []
    for depth in (4, 5, 6):
        runs = {}
        for mode, incremental in (("incremental", True),
                                  ("recompute", False)):
            best = float("inf")
            for attempt in range(3):
                db = _loaded(incremental, depth)
                victims = [Fact(f"DEL-{attempt}-{i}", "∈", "C1")
                           for i in range(BATCH)]
                db.add_facts(victims)
                db.closure()

                def delete_batch(db=db, victims=victims):
                    total = 0
                    for victim in victims:
                        db.remove_fact(victim)
                        total = db.closure().total
                    return total

                best = min(best, timed(delete_batch, repeat=1))
            runs[mode] = best
        ratio = runs["recompute"] / runs["incremental"]
        ratios.append(ratio)
        sweep.add(depth, incremental_s=runs["incremental"],
                  recompute_s=runs["recompute"],
                  speedup=round(ratio, 1))
    print_sweep(sweep)
    assert min(ratios) > 2

    db = _loaded(True, 5)
    counter = iter(range(10 ** 6))

    def one_delete():
        victim = Fact(f"VICTIM{next(counter)}", "∈", "C1")
        db.add_fact(victim)
        db.closure()
        db.remove_fact(victim)
        return db.closure().total

    benchmark.pedantic(one_delete, rounds=10, iterations=1)


def test_f8_results_identical(benchmark):
    """Both maintenance strategies answer identically."""
    incremental = _loaded(True, 4)
    recompute = _loaded(False, 4)
    for db in (incremental, recompute):
        db.add("NEWBIE", "∈", "C3")
    assert set(incremental.closure().store) == set(
        recompute.closure().store)
    benchmark(incremental.query, "(NEWBIE, x, y)")
