"""F15 — concurrent browsing sessions: navigation + probing end to end.

The paper's browsing loop alternates *navigation* (neighbourhood
steps) with *probing* (failed queries retracted wave by wave until
some retrieval succeeds, §5.2).  This harness prices the rebuilt probe
stack — interned generalization lattice, compiled executor + plan
cache, selectivity-ordered set-at-a-time waves, versioned menu cache —
as a user experiences it: whole sessions against
:class:`~repro.serve.DatabaseService` and the replica pool.

One **session** is three requests: a navigation star, a succeeding
probe (no retraction), and a deliberately overzoomed probe that climbs
a ``≺`` chain to a retraction menu.  Cells report sessions/s plus the
*menu latency* distribution — the time from issuing a failing probe to
holding its menu — under three regimes:

* **hot** — a small working set of sessions cycling; the lattice, plan
  cache, and menu cache are all warm.  The headline numbers.
* **cold-menus** — every failing probe is a distinct query text, so
  each menu is computed through the full wave process (warm lattice
  and plan cache, no menu reuse).
* **pool** — the hot mix fanned out over replica processes.

Every run also replays a sample of the probe workload through the
original stack (reference evaluator + networkx hierarchy + verbatim
candidate-at-a-time wave loop) and embeds the divergence count in the
summary — the committed document doubles as an equivalence witness
(``probe_divergence`` must be 0).

Run as a script to emit ``BENCH_probe_sessions.json``::

    PYTHONPATH=src python benchmarks/bench_f15_probe_sessions.py [--quick]
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.benchio.harness import write_bench_json
from repro.browse.retraction import PROBE_COUNTERS
from repro.datasets.synthetic import deep_retraction_workload, \
    employee_workload
from repro.db import Database
from repro.serve import DatabaseService
from repro.serve.pool import ReplicaPool


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------
def build_database(n_employees: int, n_departments: int,
                   n_chains: int, chain_depth: int) -> Database:
    """The employee world plus ``n_chains`` disjoint generalization
    chains of relationship entities — each the seed of a probe that
    must climb exactly ``chain_depth`` waves to its menu."""
    db = Database()
    db.add_facts(employee_workload(n_employees, n_departments,
                                   seed=11).facts)
    for chain in range(n_chains):
        facts, _query = deep_retraction_workload(
            chain_depth, prefix=f"R{chain}C")
        db.add_facts(facts)
    db.compact_store()
    return db


def session_plan(index: int, n_employees: int, n_chains: int
                 ) -> List[Tuple[str, str]]:
    """The ``(verb, text)`` requests of one browsing session."""
    emp = f"EMP{index % max(n_employees, 1)}"
    chain = index % max(n_chains, 1)
    return [
        ("navigate", f"({emp}, *, *)"),
        ("probe", f"({emp}, EARNS, s)"),            # succeeds, no waves
        ("probe", f"(SOMEONE, R{chain}C0, THING)"),  # climbs to a menu
    ]


def cold_menu_plan(slot: int, index: int, n_employees: int
                   ) -> List[Tuple[str, str]]:
    """A session whose failing probe is a never-seen text: the menu
    must be computed, not served from the cache.  ``NOBODY…`` is an
    unknown entity, so the wave process terminates on the "no such
    database entities" diagnosis — the cheapest *complete* cold probe,
    isolating menu construction from chain depth."""
    emp = f"EMP{index % max(n_employees, 1)}"
    return [
        ("navigate", f"({emp}, *, *)"),
        ("probe", f"({emp}, EARNS, s)"),
        ("probe", f"(NOBODY{slot}X{index}, EARNS, s)"),
    ]


def percentile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


# ----------------------------------------------------------------------
# One cell
# ----------------------------------------------------------------------
def run_cell(target, mode: str, threads: int, sessions_per_thread: int,
             n_employees: int, n_chains: int,
             cold: bool = False) -> Dict[str, object]:
    """Drive ``threads`` browsers, each walking ``sessions_per_thread``
    sessions against ``target`` (a service or a replica pool).  Menu
    latency is recorded per *probe* request; sessions/s over the wall
    clock."""
    if not cold:   # warm pass: lattice, plans, menus
        for verb, text in session_plan(0, n_employees, n_chains):
            getattr(target, verb)(text)
    counters_before = dict(PROBE_COUNTERS)
    menu_latencies: List[List[float]] = [[] for _ in range(threads)]
    errors: List[BaseException] = []
    barrier = threading.Barrier(threads + 1)

    def browser(slot: int) -> None:
        try:
            barrier.wait()
            mine = menu_latencies[slot]
            for index in range(sessions_per_thread):
                session = slot * sessions_per_thread + index
                if cold:
                    plan = cold_menu_plan(slot, index, n_employees)
                else:
                    plan = session_plan(session, n_employees, n_chains)
                for verb, text in plan:
                    call = getattr(target, verb)
                    if verb == "probe":
                        started = time.perf_counter()
                        call(text)
                        mine.append(time.perf_counter() - started)
                    else:
                        call(text)
        except BaseException as error:  # noqa: BLE001 - recorded
            errors.append(error)

    workers = [threading.Thread(target=browser, args=(slot,))
               for slot in range(threads)]
    for worker in workers:
        worker.start()
    barrier.wait()
    started = time.perf_counter()
    for worker in workers:
        worker.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    flat = [sample for series in menu_latencies for sample in series]
    total_sessions = threads * sessions_per_thread
    row = {
        "mode": mode,
        "threads": threads,
        "sessions": total_sessions,
        "probes": len(flat),
        "wall_seconds": round(wall, 6),
        "sessions_per_second": round(total_sessions / wall, 1),
        "menu_p50_us": round(percentile(flat, 0.50) * 1e6, 1),
        "menu_p95_us": round(percentile(flat, 0.95) * 1e6, 1),
        "menu_p99_us": round(percentile(flat, 0.99) * 1e6, 1),
        "p99_us": round(percentile(flat, 0.99) * 1e6, 1),
    }
    # Menu-cache window (in-process modes only: replica processes keep
    # their own counters).
    window_probes = PROBE_COUNTERS["probes"] - counters_before["probes"]
    if window_probes:
        hits = PROBE_COUNTERS["menu_hits"] - counters_before["menu_hits"]
        misses = (PROBE_COUNTERS["menu_misses"]
                  - counters_before["menu_misses"])
        lookups = hits + misses
        row["menu_cache_hit_rate"] = \
            round(hits / lookups, 4) if lookups else 0.0
    return row


# ----------------------------------------------------------------------
# Equivalence witness
# ----------------------------------------------------------------------
def probe_divergence(db: Database, n_employees: int, n_chains: int,
                     samples: int) -> Optional[int]:
    """Replay a sample of the session probes through the original
    stack (reference evaluator, networkx hierarchy, verbatim wave
    loop) and count outcome mismatches.  ``None`` when networkx is not
    installed (the reference is an optional test dependency)."""
    try:
        from repro.browse.probe import GeneralizationHierarchy
    except ImportError:
        return None
    try:
        GeneralizationHierarchy([], [])
    except ImportError:
        return None
    from repro.browse.retraction import reference_probe
    from repro.query.evaluate import Evaluator

    hierarchy = GeneralizationHierarchy.from_store(db.closure().store)
    evaluator = Evaluator(db.view())
    texts = []
    for session in range(samples):
        texts += [text for verb, text in
                  session_plan(session, n_employees, n_chains)
                  if verb == "probe"]
    texts.append("(NOBODYX, EARNS, s)")
    divergences = 0
    for text in sorted(set(texts)):
        expected = reference_probe(evaluator, text, hierarchy)
        actual = db.probe(text)
        same = (
            actual.succeeded == expected.succeeded
            and actual.value == expected.value
            and len(actual.waves) == len(expected.waves)
            and actual.exhausted == expected.exhausted
            and actual.unknown_entities == expected.unknown_entities
            and actual.menu() == expected.menu()
            and all(
                [c.describe() for c in a.attempted]
                == [c.describe() for c in e.attempted]
                and [(s.describe(), s.value) for s in a.successes]
                == [(s.describe(), s.value) for s in e.successes]
                for a, e in zip(actual.waves, expected.waves))
        )
        if not same:
            divergences += 1
    return divergences


# ----------------------------------------------------------------------
# Matrix
# ----------------------------------------------------------------------
def run_matrix(quick: bool = False):
    if quick:
        n_employees, n_departments = 200, 8
        n_chains, chain_depth = 2, 3
        sessions_per_thread, thread_counts = 150, [1]
        cold_sessions = 50
        pool_workers, pool_threads, pool_sessions = 0, 0, 0
        divergence_samples = 20
    else:
        n_employees, n_departments = 1000, 20
        n_chains, chain_depth = 4, 4
        sessions_per_thread, thread_counts = 1000, [1, 4]
        cold_sessions = 300
        pool_workers, pool_threads, pool_sessions = 4, 8, 250
        divergence_samples = 60

    rows: List[Dict[str, object]] = []
    db = build_database(n_employees, n_departments, n_chains,
                        chain_depth)
    service = DatabaseService(db)
    try:
        for threads in thread_counts:
            rows.append(run_cell(service, "hot", threads,
                                 sessions_per_thread, n_employees,
                                 n_chains))
            print("  {mode} threads={threads}: {sessions_per_second}"
                  " sessions/s menu p50={menu_p50_us}us"
                  " p99={menu_p99_us}us".format(**rows[-1]))
        rows.append(run_cell(service, "cold-menus", 1, cold_sessions,
                             n_employees, n_chains, cold=True))
        print("  {mode} threads={threads}: {sessions_per_second}"
              " sessions/s menu p50={menu_p50_us}us"
              " p99={menu_p99_us}us".format(**rows[-1]))
        if pool_workers:
            pool = ReplicaPool(service, workers=pool_workers)
            try:
                rows.append(run_cell(pool, "pool", pool_threads,
                                     pool_sessions, n_employees,
                                     n_chains))
                print("  {mode} threads={threads}:"
                      " {sessions_per_second} sessions/s menu"
                      " p50={menu_p50_us}us p99={menu_p99_us}us"
                      .format(**rows[-1]))
            finally:
                pool.close()
        hierarchy = service.read_view().stats()["hierarchy"]
    finally:
        service.close()

    divergences = probe_divergence(db, n_employees, n_chains,
                                   divergence_samples)
    hot_single = next(row for row in rows
                      if row["mode"] == "hot" and row["threads"] == 1)
    cold_row = next(row for row in rows if row["mode"] == "cold-menus")
    summary = {
        "hot_sessions_per_second": hot_single["sessions_per_second"],
        "hot_menu_p99_us": hot_single["menu_p99_us"],
        "cold_menu_p99_us": cold_row["menu_p99_us"],
        "probe_divergence": divergences,
        "lattice": hierarchy,
    }
    return rows, summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="F15 browsing-session benchmark: navigation +"
                    " probe sessions through DatabaseService and the"
                    " replica pool → BENCH_probe_sessions.json")
    parser.add_argument("--quick", action="store_true",
                        help="small world and session counts (the CI"
                             " smoke configuration)")
    parser.add_argument("--fail-below", type=float, default=None,
                        metavar="SESSIONS",
                        help="exit non-zero unless the hot"
                             " single-thread cell sustains at least"
                             " SESSIONS sessions/s")
    parser.add_argument("--output", default="BENCH_probe_sessions.json",
                        help="where to write the JSON document")
    options = parser.parse_args(argv)
    print(f"F15 probe sessions ({'quick' if options.quick else 'full'})")
    rows, summary = run_matrix(quick=options.quick)
    write_bench_json(options.output, "F15-probe-sessions", rows,
                     summary=summary, config={"quick": options.quick})
    print(f"wrote {options.output}: {len(rows)} cells;"
          f" hot {summary['hot_sessions_per_second']} sessions/s"
          f" (menu p99 {summary['hot_menu_p99_us']}us),"
          f" divergence {summary['probe_divergence']}")
    if summary["probe_divergence"] not in (0, None):
        print(f"FAIL: {summary['probe_divergence']} probe outcomes"
              f" diverge from the reference wave process")
        return 1
    if (options.fail_below is not None
            and summary["hot_sessions_per_second"] < options.fail_below):
        print(f"FAIL: hot sessions/s"
              f" {summary['hot_sessions_per_second']}"
              f" < floor {options.fail_below}")
        return 1
    return 0


# ----------------------------------------------------------------------
# pytest entries: sessions stay correct and observable end to end
# ----------------------------------------------------------------------
def test_f15_probe_sessions_agree_with_reference():
    db = build_database(50, 4, n_chains=2, chain_depth=3)
    service = DatabaseService(db)
    try:
        row = run_cell(service, "hot", 1, 100, 50, 2)
    finally:
        service.close()
    assert row["probes"] == 200
    assert row["sessions_per_second"] > 10    # sanity floor
    divergences = probe_divergence(db, 50, 2, samples=10)
    assert divergences in (0, None)


def test_f15_slow_probe_autopsy():
    """A slow probe's slowlog record carries the probe autopsy: wave
    and candidate counts plus the menu-cache outcome."""
    from repro.browse import retraction as _retraction
    from repro.query import exec as _qexec

    keep_run = _qexec.KEEP_LAST_RUN
    keep_probe = _retraction.KEEP_LAST_PROBE
    db = build_database(20, 3, n_chains=1, chain_depth=3)
    service = DatabaseService(db, slow_query_seconds=0.0)
    try:
        service.probe("(SOMEONE, R0C0, THING)")
        records = [record for record in service.slow_log.records()
                   if record["op"] == "probe"]
        assert records and "probe" in records[-1]
        autopsy = records[-1]["probe"]
        assert autopsy["waves"] == 3
        assert autopsy["attempted"] >= 3
        assert autopsy["cached"] is False
    finally:
        service.close()
        _qexec.KEEP_LAST_RUN = keep_run
        _retraction.KEEP_LAST_PROBE = keep_probe


if __name__ == "__main__":
    sys.exit(main())
