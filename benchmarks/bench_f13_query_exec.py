"""F13 — query execution: compiled set-at-a-time vs reference engine.

The compiled executor (:mod:`repro.query.compile` +
:mod:`repro.query.exec`) replaces the reference engine's per-binding
dict allocations with batch operators over binding tables.  This bench
runs both engines — same view, no result cache, each with its own
:class:`~repro.query.plancache.PlanCache` — over the E4 paper queries
on the book world, multi-conjunct joins on the employee workload,
navigation-star shapes, and a probe (``succeeds``) workload, verifying
answer-for-answer agreement while timing the difference.

Methodology: queries are passed as *text*, the production entry point.
Parse + plan costs are paid once into the warm plan cache (every cell
is preceded by a correctness check, which warms it), so the timed path
is exactly what a browsing loop pays per repeated query — for
single-atom shapes that is the pre-bound point-read fast path.

Run as a script to emit ``BENCH_queries.json`` (the engine × workload
× shape matrix, with the compiled engine's per-operator plan stats —
estimated vs actual rows — embedded per cell)::

    PYTHONPATH=src python benchmarks/bench_f13_query_exec.py [--quick]
"""

from __future__ import annotations

import argparse
import sys

from repro.benchio import Sweep, print_sweep, timed
from repro.benchio.harness import plan_stats, write_bench_json
from repro.datasets import books
from repro.datasets.synthetic import employee_workload
from repro.db import Database
from repro.query import CompiledEvaluator, Evaluator, PlanCache, parse_query


def _employee_db(n_employees: int, n_departments: int,
                 seed: int = 3) -> Database:
    workload = employee_workload(n_employees, n_departments, seed=seed)
    database = Database()
    database.add_facts(workload.facts)
    return database


def _employee_view(n_employees: int, n_departments: int, seed: int = 3):
    return _employee_db(n_employees, n_departments, seed=seed).view()


#: Workload name → (database factory, {shape name: query text}).  The
#: same-department pairs join runs on a smaller population because the
#: reference engine allocates one binding dict per output row and the
#: output is quadratic in department size.
_WORKLOADS = {
    "books-e4": (
        books.load,
        {
            "all-books": books.ALL_BOOKS,
            "self-citations": books.SELF_CITATIONS,
            "self-citing-authors": books.SELF_CITING_AUTHORS,
            "books-not-by-john": books.BOOKS_NOT_BY_JOHN,
        },
    ),
    "employees-1000": (
        lambda: _employee_db(1000, 20),
        {
            "join3": "(x, ∈, EMPLOYEE) and (x, WORKS-FOR, d)"
                     " and (x, EARNS, s)",
            "join2-selective": "(x, WORKS-FOR, DEPT0) and (x, EARNS, s)",
            "navigation-star": "(EMP0, r, t)",
        },
    ),
    "employees-400": (
        lambda: _employee_db(400, 10, seed=5),
        {
            "same-dept-pairs": "(x, ∈, EMPLOYEE) and (x, WORKS-FOR, d)"
                               " and (y, ∈, EMPLOYEE)"
                               " and (y, WORKS-FOR, d)",
        },
    ),
}
#: Quick mode (the CI smoke configuration): one small employee world.
_QUICK_WORKLOADS = {
    "books-e4": _WORKLOADS["books-e4"],
    "employees-200": (
        lambda: _employee_db(200, 8),
        {
            "join3": "(x, ∈, EMPLOYEE) and (x, WORKS-FOR, d)"
                     " and (x, EARNS, s)",
            "navigation-star": "(EMP0, r, t)",
        },
    ),
}

#: The headline shape: the ISSUE target is ≥3× on multi-conjunct joins.
_HEADLINE = ("employees-1000", "join3")
_QUICK_HEADLINE = ("employees-200", "join3")


def _probe_queries(view, count: int = 60):
    """A browsing-probe workload: half succeeding, half failing.

    Query *text*, as the browsing layer issues it — the plan cache
    (not the caller) is responsible for parsing each at most once.
    """
    queries = []
    for index in range(count // 2):
        queries.append(f"(EMP{index}, EARNS, s)")
        queries.append(f"(EMP{index}, MANAGES, y)")
    return queries


def _run_probes(evaluator, queries):
    return [evaluator.succeeds(query) for query in queries]


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_f13_engines_agree_and_compiled_wins(benchmark):
    sweep = Sweep(name="F13: compiled vs reference query engine",
                  parameter="shape")
    view = _employee_view(400, 10, seed=5)
    reference = Evaluator(view, plans=PlanCache())
    compiled = CompiledEvaluator(view, plans=PlanCache())
    speedups = {}
    shapes = {
        "join3": "(x, ∈, EMPLOYEE) and (x, WORKS-FOR, d)"
                 " and (x, EARNS, s)",
        "navigation-star": "(EMP0, r, t)",
    }
    for shape, text in shapes.items():
        assert compiled.evaluate(text) == reference.evaluate(text)
        reference_s = timed(lambda: reference.evaluate(text), repeat=3)
        compiled_s = timed(lambda: compiled.evaluate(text), repeat=3)
        speedups[shape] = reference_s / compiled_s
        sweep.add(shape, reference_s=reference_s, compiled_s=compiled_s,
                  speedup=round(speedups[shape], 2))
    print_sweep(sweep)
    # Shape, not a tight bound: the committed matrix carries the real
    # numbers; here we only require the batch engine to actually win.
    assert speedups["join3"] > 1.5
    benchmark(compiled.evaluate, shapes["join3"])


def test_f13_probe_workload(benchmark):
    view = _employee_view(200, 8)
    queries = _probe_queries(view, count=40)
    reference = Evaluator(view, plans=PlanCache())
    compiled = CompiledEvaluator(view, plans=PlanCache())
    assert _run_probes(compiled, queries) == _run_probes(reference,
                                                         queries)
    benchmark(_run_probes, compiled, queries)


# ----------------------------------------------------------------------
# Script mode: the engine × workload × shape matrix → BENCH_queries.json
# ----------------------------------------------------------------------
def run_matrix(quick: bool = False, repeat: int = 3):
    """Measure every (workload, shape) cell under both engines.

    Returns ``(rows, summary)``: per-cell wall seconds and result
    sizes (the compiled cells embed per-operator plan stats), and the
    headline multi-conjunct-join comparison.
    """
    if quick:
        repeat = 1
    workloads = _QUICK_WORKLOADS if quick else _WORKLOADS
    headline = _QUICK_HEADLINE if quick else _HEADLINE
    rows = []
    seconds = {}
    for workload_name, (factory, shapes) in workloads.items():
        db = factory()
        view = db.view()
        reference = Evaluator(view, plans=PlanCache())
        compiled = CompiledEvaluator(view, plans=PlanCache())
        for shape, text in shapes.items():
            reference_value = reference.evaluate(text)
            compiled_value, run = compiled.evaluate_with_stats(text)
            compiled.evaluate(text)       # warm the plan-cache entry
            if compiled_value != reference_value:
                raise AssertionError(
                    f"engines disagree on {workload_name}/{shape}")
            for engine, evaluator in (("reference", reference),
                                      ("compiled", compiled)):
                cell_seconds = timed(lambda: evaluator.evaluate(text),
                                     repeat=repeat)
                seconds[engine, workload_name, shape] = cell_seconds
                row = {
                    "engine": engine,
                    "workload": workload_name,
                    "shape": shape,
                    "query": text,
                    "rows": len(compiled_value),
                    "seconds": round(cell_seconds, 6),
                    "ops_per_second": round(1.0 / cell_seconds, 1),
                }
                if engine == "compiled":
                    row["plan"] = plan_stats(run)
                rows.append(row)
                print(f"  {engine:9s} {workload_name}/{shape:20s}"
                      f" {cell_seconds:8.4f}s"
                      f"  rows={len(compiled_value)}")
        # The probe workload times succeeds() over many small queries
        # rather than one evaluate(), so it gets its own cells.
        probe_queries = _probe_queries(view) \
            if workload_name.startswith("employees") else None
        if probe_queries:
            for engine, evaluator in (("reference", reference),
                                      ("compiled", compiled)):
                _run_probes(evaluator, probe_queries)  # warm plan cache
                cell_seconds = timed(
                    lambda: _run_probes(evaluator, probe_queries),
                    repeat=repeat)
                seconds[engine, workload_name, "probe"] = cell_seconds
                rows.append({
                    "engine": engine,
                    "workload": workload_name,
                    "shape": "probe",
                    "query": f"succeeds × {len(probe_queries)}",
                    "rows": len(probe_queries),
                    "seconds": round(cell_seconds, 6),
                    "ops_per_second": round(
                        len(probe_queries) / cell_seconds, 1),
                })
                print(f"  {engine:9s} {workload_name}/probe"
                      f"                {cell_seconds:8.4f}s")
        # The same workload on the interned columnar store
        # (Database.compact_store()): compiled engine only — the
        # store swap is invisible to engine semantics, so one engine
        # suffices to price the representation.
        db.compact_store()
        interned = CompiledEvaluator(db.view(), plans=PlanCache())
        for shape, text in shapes.items():
            value, run = interned.evaluate_with_stats(text)
            if value != compiled.evaluate(text):
                raise AssertionError(
                    f"interned store disagrees on"
                    f" {workload_name}/{shape}")
            interned.evaluate(text)       # warm the plan-cache entry
            cell_seconds = timed(lambda: interned.evaluate(text),
                                 repeat=repeat)
            seconds["compiled-interned", workload_name, shape] = \
                cell_seconds
            rows.append({
                "engine": "compiled-interned",
                "workload": workload_name,
                "shape": shape,
                "query": text,
                "rows": len(value),
                "seconds": round(cell_seconds, 6),
                "ops_per_second": round(1.0 / cell_seconds, 1),
                "plan": plan_stats(run),
            })
            print(f"  {'interned':9s} {workload_name}/{shape:20s}"
                  f" {cell_seconds:8.4f}s  rows={len(value)}")
        if probe_queries:
            _run_probes(interned, probe_queries)  # warm plan cache
            cell_seconds = timed(
                lambda: _run_probes(interned, probe_queries),
                repeat=repeat)
            seconds["compiled-interned", workload_name, "probe"] = \
                cell_seconds
            rows.append({
                "engine": "compiled-interned",
                "workload": workload_name,
                "shape": "probe",
                "query": f"succeeds × {len(probe_queries)}",
                "rows": len(probe_queries),
                "seconds": round(cell_seconds, 6),
                "ops_per_second": round(
                    len(probe_queries) / cell_seconds, 1),
            })
            print(f"  {'interned':9s} {workload_name}/probe"
                  f"                {cell_seconds:8.4f}s")
    workload_name, shape = headline
    before = seconds["reference", workload_name, shape]
    after = seconds["compiled", workload_name, shape]
    speedups = {
        (w, s): round(seconds["reference", w, s]
                      / seconds["compiled", w, s], 2)
        for (engine, w, s) in seconds if engine == "compiled"
    }
    summary = {
        "headline_shape": f"{workload_name}/{shape}",
        "reference_seconds": round(before, 6),
        "compiled_seconds": round(after, 6),
        "speedup": round(before / after, 2),
        "speedups": {f"{w}/{s}": value
                     for (w, s), value in sorted(speedups.items())},
        # reference ÷ compiled-on-interned-store: how the columnar
        # representation prices each shape relative to the same
        # baseline the hash-store speedups use.
        "interned_speedups": {
            f"{w}/{s}": round(seconds["reference", w, s]
                              / seconds["compiled-interned", w, s], 2)
            for (engine, w, s) in sorted(seconds)
            if engine == "compiled-interned"
        },
    }
    return rows, summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="F13 query-execution benchmark: engine × workload"
                    " × shape matrix → BENCH_queries.json")
    parser.add_argument("--quick", action="store_true",
                        help="small workloads, single repetition (the"
                             " CI smoke configuration)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing repetitions per cell (best-of)")
    parser.add_argument("--output", default="BENCH_queries.json",
                        help="where to write the JSON document")
    options = parser.parse_args(argv)
    print(f"F13 query-engine matrix ({'quick' if options.quick else 'full'})")
    rows, summary = run_matrix(quick=options.quick, repeat=options.repeat)
    document = write_bench_json(
        options.output, "F13-query-exec", rows, summary=summary,
        config={"quick": options.quick,
                "repeat": 1 if options.quick else options.repeat})
    print(f"wrote {options.output}: {len(rows)} cells;"
          f" {summary['headline_shape']} reference"
          f" {summary['reference_seconds']}s → compiled"
          f" {summary['compiled_seconds']}s"
          f" ({summary['speedup']}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
