"""F12 — the replica pool: multi-process read scaling past the GIL.

Measures what :class:`repro.serve.ReplicaPool` buys over the
thread-based service that F11 characterized:

* **read scaling** — aggregate throughput as replica worker processes
  grow (1 → 4), next to the thread-only service baseline at the same
  client concurrency.  Replica reads evaluate in worker processes, so
  aggregate throughput is no longer bound by the primary's GIL —
  *given cores to run on*.  Interpret the curve against the ``host``
  block ``write_bench_json`` stamps: on a 1-core container every
  configuration shares one core and the curve is flat by construction.
* **replication lag** — the distribution of seconds from delta
  emission on the writer thread to a worker's applied ack, under a
  steady write stream.  This is the staleness window a non-RYW read
  can observe.
* **failover** — hard-kill a worker mid-stream and measure the time
  until the pool is back at full strength with every replica caught
  up to the primary (reads never fail during the window — they fall
  back to the primary).
* **bootstrap at scale** — on a bulk heap (1M+ facts full, smaller
  with ``--quick``), pool construction wall clock and per-worker
  memory for the two bootstrap modes: ``generation`` (workers attach
  a shared-memory columnar generation) against ``state`` (the PR-4
  baseline: every worker unpickles and re-indexes the full heap and
  recomputes the closure).  Memory is attributed per worker from
  ``/proc``: ``RssAnon`` is each worker's *private* pages — a copied
  heap lands there once per worker, an attached generation does not.

Run as a script to emit ``BENCH_replication.json``::

    PYTHONPATH=src python benchmarks/bench_f12_replication.py [--quick]
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from typing import Dict, List, Optional

from bench_f11_serving import build_database, percentile, query_mix

from repro.benchio.harness import rss_anon_mb, rss_mb
from repro.core.facts import Fact
from repro.datasets.synthetic import hierarchy_facts, membership_facts
from repro.db import Database
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.serve import DatabaseService, ReplicaPool


# ----------------------------------------------------------------------
# Read scaling
# ----------------------------------------------------------------------
def run_pool_readers(pool: ReplicaPool, queries: List[str],
                     client_threads: int,
                     ops_per_thread: int) -> Dict[str, object]:
    """``client_threads`` parent threads issuing reads through the
    pool; evaluation happens in the replica processes."""
    latencies: List[List[float]] = [[] for _ in range(client_threads)]
    errors: List[BaseException] = []
    barrier = threading.Barrier(client_threads + 1)

    def reader(slot: int) -> None:
        try:
            barrier.wait()
            mine = latencies[slot]
            for index in range(ops_per_thread):
                text = queries[(slot * ops_per_thread + index)
                               % len(queries)]
                started = time.perf_counter()
                pool.query(text)
                mine.append(time.perf_counter() - started)
        except BaseException as error:  # noqa: BLE001 - recorded
            errors.append(error)

    workers = [threading.Thread(target=reader, args=(slot,))
               for slot in range(client_threads)]
    for worker in workers:
        worker.start()
    barrier.wait()
    started = time.perf_counter()
    for worker in workers:
        worker.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    flat = [sample for series in latencies for sample in series]
    total = client_threads * ops_per_thread
    stats = pool.stats()
    return {
        "mode": "pool-read",
        "workers": stats["workers"],
        "client_threads": client_threads,
        "total_ops": total,
        "fallback_reads": stats["fallback_reads"],
        "wall_seconds": round(wall, 6),
        "ops_per_second": round(total / wall, 1),
        "p50_us": round(percentile(flat, 0.50) * 1e6, 1),
        "p95_us": round(percentile(flat, 0.95) * 1e6, 1),
        "p99_us": round(percentile(flat, 0.99) * 1e6, 1),
    }


def run_thread_baseline(service: DatabaseService, queries: List[str],
                        client_threads: int,
                        ops_per_thread: int) -> Dict[str, object]:
    """The same client concurrency served by the primary's threads —
    the F11 configuration the pool is being compared against."""
    latencies: List[List[float]] = [[] for _ in range(client_threads)]
    errors: List[BaseException] = []
    barrier = threading.Barrier(client_threads + 1)

    def reader(slot: int) -> None:
        try:
            barrier.wait()
            mine = latencies[slot]
            for index in range(ops_per_thread):
                text = queries[(slot * ops_per_thread + index)
                               % len(queries)]
                started = time.perf_counter()
                service.query(text)
                mine.append(time.perf_counter() - started)
        except BaseException as error:  # noqa: BLE001 - recorded
            errors.append(error)

    workers = [threading.Thread(target=reader, args=(slot,))
               for slot in range(client_threads)]
    for worker in workers:
        worker.start()
    barrier.wait()
    started = time.perf_counter()
    for worker in workers:
        worker.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    flat = [sample for series in latencies for sample in series]
    total = client_threads * ops_per_thread
    return {
        "mode": "thread-baseline",
        "workers": 0,
        "client_threads": client_threads,
        "total_ops": total,
        "wall_seconds": round(wall, 6),
        "ops_per_second": round(total / wall, 1),
        "p50_us": round(percentile(flat, 0.50) * 1e6, 1),
        "p95_us": round(percentile(flat, 0.95) * 1e6, 1),
        "p99_us": round(percentile(flat, 0.99) * 1e6, 1),
    }


# ----------------------------------------------------------------------
# Replication lag
# ----------------------------------------------------------------------
def run_lag(service: DatabaseService, pool: ReplicaPool,
            writes: int) -> Dict[str, object]:
    """A steady write stream; report the emit→applied distribution."""
    tickets = []
    for index in range(writes):
        tickets.append(service.add_async((f"LAG{index}", "∈", "C1")))
        if (index + 1) % 5 == 0:
            time.sleep(0.002)   # pacing: batches form, acks drain
    for ticket in tickets:
        ticket.result(120.0)
    last = max(t.version for t in tickets if t.version is not None)
    pool.wait_for_version(last, all_workers=True, timeout=60.0)
    lag = pool.lag_stats()
    return {
        "mode": "replication-lag",
        "workers": pool.workers,
        "writes": writes,
        "deltas": pool.stats()["deltas_shipped"],
        "lag_samples": lag.get("samples", 0),
        "lag_p50_us": round(lag.get("p50_s", 0.0) * 1e6, 1),
        "lag_p95_us": round(lag.get("p95_s", 0.0) * 1e6, 1),
        "lag_p99_us": round(lag.get("p99_s", 0.0) * 1e6, 1),
        "lag_max_us": round(lag.get("max_s", 0.0) * 1e6, 1),
    }


# ----------------------------------------------------------------------
# Failover
# ----------------------------------------------------------------------
def run_failover(service: DatabaseService,
                 pool: ReplicaPool) -> Dict[str, object]:
    """Kill one worker; time until the pool is whole and caught up."""
    ticket = service.add_async(("FAILOVER", "∈", "C2"))
    ticket.result(60.0)
    pool.wait_for_version(ticket.version, all_workers=True, timeout=60.0)
    before = pool.stats()
    started = time.perf_counter()
    pool.crash_worker(0)
    deadline_at = started + 120.0
    while time.perf_counter() < deadline_at:
        stats = pool.stats()
        if (stats["alive"] == stats["workers"]
                and stats["respawns"] > before["respawns"]
                and stats["max_lag"] == 0):
            break
        # Reads keep working throughout (primary fallback).
        pool.ask("(FAILOVER, ∈, C2)")
        time.sleep(0.01)
    recovery = time.perf_counter() - started
    after = pool.stats()
    return {
        "mode": "failover",
        "workers": after["workers"],
        "recovered": bool(after["alive"] == after["workers"]
                          and after["max_lag"] == 0),
        "recovery_seconds": round(recovery, 6),
        "fallback_reads": after["fallback_reads"],
        "worker_deaths": after["worker_deaths"],
        "respawns": after["respawns"],
    }


# ----------------------------------------------------------------------
# Bootstrap at scale: attach vs copy
# ----------------------------------------------------------------------
def build_bulk_database(n_facts: int) -> Database:
    """A heap dominated by flat attribute facts over a small rule-firing
    hierarchy — closure work stays bounded while the heap (the thing
    being shipped to or shared with workers) reaches ``n_facts``."""
    tree, leaves = hierarchy_facts(3, 3)
    db = Database()
    db.add_facts(tree)
    db.add_facts(membership_facts(leaves, 3))
    remaining = max(0, n_facts - len(db))
    entities = 1 + remaining // 20      # ~20 facts per source entity
    db.add_facts(Fact(f"E{index % entities}", f"ATTR{index % 40}",
                      f"V{index}")
                 for index in range(remaining))
    return db


def run_bootstrap(db: Database, queries: List[str], bootstrap: str,
                  workers: int, start_method: Optional[str],
                  read_ops: int) -> Dict[str, object]:
    """Build one pool in ``bootstrap`` mode and measure construction
    wall clock, per-worker memory, and a short read burst."""
    service = DatabaseService(db)
    try:
        parent_before = rss_mb()
        started = time.perf_counter()
        pool = ReplicaPool(service, workers=workers,
                           bootstrap=bootstrap,
                           start_method=start_method,
                           ready_timeout=1800.0, read_timeout=300.0)
        bootstrap_wall = time.perf_counter() - started
        try:
            pids = [w.process.pid for w in pool._workers]
            worker_rss = [rss_mb(pid) for pid in pids]
            worker_anon = [rss_anon_mb(pid) for pid in pids]
            read_started = time.perf_counter()
            for index in range(read_ops):
                pool.query(queries[index % len(queries)])
            read_wall = time.perf_counter() - read_started
            stats = pool.stats()
            row: Dict[str, object] = {
                "mode": f"bootstrap-{bootstrap}",
                "bootstrap": bootstrap,
                "facts": len(db),
                "workers": workers,
                "bootstrap_seconds": round(bootstrap_wall, 3),
                "bootstrap_seconds_per_worker": round(
                    bootstrap_wall / workers, 3),
                "read_ops": read_ops,
                "ops_per_second": round(read_ops / read_wall, 1),
                "fallback_reads": stats["fallback_reads"],
                "parent_rss_mb": rss_mb(),
                "parent_rss_before_mb": parent_before,
            }
            if all(v is not None for v in worker_rss):
                row["worker_rss_mb"] = round(
                    sum(worker_rss) / workers, 2)
            if all(v is not None for v in worker_anon):
                # Private pages per worker: the copy-vs-attach column.
                row["worker_rss_anon_mb"] = round(
                    sum(worker_anon) / workers, 2)
            return row
        finally:
            pool.close()
    finally:
        service.close()


def run_bootstrap_matrix(n_facts: int, worker_counts: List[int],
                         start_method: Optional[str],
                         read_ops: int) -> List[Dict[str, object]]:
    """The attach-vs-copy sweep: one shared bulk primary, then a fresh
    pool per (bootstrap mode × worker count) cell.

    Defaults to the ``spawn`` start method: forked workers inherit the
    parent's whole heap as copy-on-write anonymous pages, which would
    drown the per-worker memory columns in shared baseline; spawned
    workers start from a clean interpreter, so ``RssAnon`` is exactly
    what bootstrapping this worker allocated.
    """
    if start_method is None:
        start_method = "spawn"
    build_started = time.perf_counter()
    db = build_bulk_database(n_facts)
    queries = query_mix(db, 48)
    db.view()       # warm the closure once, outside every timed cell
    print(f"  bulk heap: {len(db)} facts, closure warmed in"
          f" {time.perf_counter() - build_started:.1f}s")
    rows = []
    for bootstrap in ("generation", "state"):
        for workers in worker_counts:
            row = run_bootstrap(db, queries, bootstrap, workers,
                                start_method, read_ops)
            rows.append(row)
            print("  {mode} workers={workers}:"
                  " bootstrap={bootstrap_seconds}s"
                  " worker_anon={anon}MB {ops_per_second} ops/s".format(
                      anon=row.get("worker_rss_anon_mb", "?"), **row))
    return rows


# ----------------------------------------------------------------------
# Observed pass (metrics snapshot for the JSON artifact)
# ----------------------------------------------------------------------
def run_observed_pass(depth: int, fanout: int, instances: int,
                      workers: int, reads: int,
                      writes: int) -> Dict[str, object]:
    """A short metrics-enabled pass through a real pool; the merged
    primary + worker snapshot is stamped into the JSON document."""
    with use_metrics(MetricsRegistry()):
        db = build_database(depth, fanout, instances)
        queries = query_mix(db, 48)
        service = DatabaseService(db, batch_window=0.002)
        pool = ReplicaPool(service, workers=workers)
        try:
            tickets = [service.add_async((f"OBS{i}", "∈", "C3"))
                       for i in range(writes)]
            for ticket in tickets:
                ticket.result(60.0)
            for index in range(reads):
                pool.query(queries[index % len(queries)])
            snapshot = pool.metrics(refresh=True)
        finally:
            pool.close()
            service.close()
    return snapshot


# ----------------------------------------------------------------------
# Matrix
# ----------------------------------------------------------------------
def run_matrix(quick: bool = False,
               start_method: Optional[str] = None,
               bootstrap_facts: Optional[int] = None):
    if quick:
        depth, fanout, instances = 3, 2, 2
        worker_counts = [1, 2]
        client_threads, ops_per_thread = 4, 40
        lag_writes = 20
        scale_facts = bootstrap_facts or 60_000
        scale_workers, scale_reads = [2], 60
    else:
        depth, fanout, instances = 4, 3, 3
        worker_counts = [1, 2, 4]
        client_threads, ops_per_thread = 8, 200
        lag_writes = 100
        scale_facts = bootstrap_facts or 1_000_000
        scale_workers, scale_reads = [1, 2], 200

    rows: List[Dict[str, object]] = []

    # Thread baseline at the same client concurrency.
    db = build_database(depth, fanout, instances)
    queries = query_mix(db, 48)
    service = DatabaseService(db)
    try:
        rows.append(run_thread_baseline(service, queries,
                                        client_threads, ops_per_thread))
    finally:
        service.close()
    print("  {mode}: {ops_per_second} ops/s"
          " p50={p50_us}us p99={p99_us}us".format(**rows[-1]))

    # Pool scaling sweep (fresh primary + pool per cell).
    for workers in worker_counts:
        db = build_database(depth, fanout, instances)
        queries = query_mix(db, 48)
        service = DatabaseService(db)
        pool = ReplicaPool(service, workers=workers)
        try:
            rows.append(run_pool_readers(pool, queries,
                                         client_threads, ops_per_thread))
        finally:
            pool.close()
            service.close()
        print("  {mode} workers={workers}: {ops_per_second} ops/s"
              " p50={p50_us}us p99={p99_us}us".format(**rows[-1]))

    # Lag distribution + failover on one shared pool.
    db = build_database(depth, fanout, instances)
    service = DatabaseService(db, batch_window=0.002)
    pool = ReplicaPool(service, workers=max(worker_counts))
    try:
        rows.append(run_lag(service, pool, lag_writes))
        print("  {mode}: p50={lag_p50_us}us p99={lag_p99_us}us"
              " max={lag_max_us}us over {lag_samples} acks".format(
                  **rows[-1]))
        rows.append(run_failover(service, pool))
        print("  {mode}: recovered={recovered} in"
              " {recovery_seconds}s ({fallback_reads} primary"
              " fallbacks)".format(**rows[-1]))
    finally:
        pool.close()
        service.close()

    # Attach-vs-copy bootstrap at scale.
    rows.extend(run_bootstrap_matrix(scale_facts, scale_workers,
                                     start_method, scale_reads))

    baseline = next(r for r in rows if r["mode"] == "thread-baseline")
    pool_rows = [r for r in rows if r["mode"] == "pool-read"]
    one = next((r for r in pool_rows if r["workers"] == 1), None)
    best = max(pool_rows, key=lambda r: r["ops_per_second"])
    lag_row = next(r for r in rows if r["mode"] == "replication-lag")
    failover_row = next(r for r in rows if r["mode"] == "failover")
    summary = {
        "worker_counts": [r["workers"] for r in pool_rows],
        "thread_baseline_ops_per_second": baseline["ops_per_second"],
        "pool_ops_per_second": {str(r["workers"]): r["ops_per_second"]
                                for r in pool_rows},
        "scaling_vs_one_worker": (
            round(best["ops_per_second"] / one["ops_per_second"], 2)
            if one else None),
        "best_workers": best["workers"],
        "lag_p99_us": lag_row["lag_p99_us"],
        "failover_recovery_seconds": failover_row["recovery_seconds"],
        "failover_recovered": failover_row["recovered"],
    }

    # Bootstrap headline: attach vs copy at the largest worker count.
    boot_rows = [r for r in rows if str(r["mode"]).startswith("bootstrap-")]
    if boot_rows:
        top = max(r["workers"] for r in boot_rows)
        gen = next(r for r in boot_rows
                   if r["bootstrap"] == "generation"
                   and r["workers"] == top)
        copy = next(r for r in boot_rows
                    if r["bootstrap"] == "state" and r["workers"] == top)
        summary.update({
            "bootstrap_facts": gen["facts"],
            "bootstrap_workers": top,
            "bootstrap_generation_seconds": gen["bootstrap_seconds"],
            "bootstrap_state_seconds": copy["bootstrap_seconds"],
            "bootstrap_speedup": round(
                copy["bootstrap_seconds"]
                / max(gen["bootstrap_seconds"], 1e-9), 2),
        })
        if ("worker_rss_anon_mb" in gen
                and "worker_rss_anon_mb" in copy):
            summary.update({
                "worker_rss_anon_generation_mb":
                    gen["worker_rss_anon_mb"],
                "worker_rss_anon_state_mb": copy["worker_rss_anon_mb"],
                "worker_rss_anon_ratio": round(
                    copy["worker_rss_anon_mb"]
                    / max(gen["worker_rss_anon_mb"], 1e-9), 2),
            })

    # Observed pass: short, metrics-enabled, merged across processes.
    snapshot = run_observed_pass(
        depth, fanout, instances, workers=min(2, max(worker_counts)),
        reads=40 if quick else 120, writes=10 if quick else 30)
    merged_from = len(snapshot.get("counters", {}))
    print(f"  observed pass: {merged_from} merged counter series")
    return rows, summary, snapshot


def main(argv=None) -> int:
    from repro.benchio.harness import write_bench_json

    parser = argparse.ArgumentParser(
        description="F12 replication benchmark: pool read scaling,"
                    " replication lag, failover →"
                    " BENCH_replication.json")
    parser.add_argument("--quick", action="store_true",
                        help="small dataset and op counts (the CI"
                             " smoke configuration)")
    parser.add_argument("--start-method", default=None,
                        choices=("fork", "spawn", "forkserver"),
                        help="multiprocessing start method for the"
                             " bootstrap-at-scale cells (CI exercises"
                             " spawn; default: platform default)")
    parser.add_argument("--bootstrap-facts", type=int, default=None,
                        help="bulk heap size for the attach-vs-copy"
                             " cells (default: 1M full, 60k quick)")
    parser.add_argument("--output", default="BENCH_replication.json",
                        help="where to write the JSON document")
    options = parser.parse_args(argv)
    print(f"F12 replication matrix"
          f" ({'quick' if options.quick else 'full'})")
    rows, summary, snapshot = run_matrix(
        quick=options.quick, start_method=options.start_method,
        bootstrap_facts=options.bootstrap_facts)
    write_bench_json(
        options.output, "F12-replication", rows, summary=summary,
        config={"quick": options.quick,
                "start_method": options.start_method},
        metrics=snapshot)
    print(f"wrote {options.output}: {len(rows)} cells;"
          f" scaling {summary['scaling_vs_one_worker']}x"
          f" at {summary['best_workers']} workers,"
          f" failover {summary['failover_recovery_seconds']}s,"
          f" bootstrap speedup {summary.get('bootstrap_speedup')}x,"
          f" worker-anon ratio"
          f" {summary.get('worker_rss_anon_ratio')}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
