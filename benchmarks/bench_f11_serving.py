"""F11 — the serving layer: snapshot reads under concurrency.

Measures what :class:`repro.serve.DatabaseService` actually buys:

* **read-only scaling** — aggregate throughput and latency percentiles
  as reader threads grow (1 → 8) against a published snapshot, next to
  the single-threaded direct-``Database`` baseline.  Readers are pure
  Python, so the GIL bounds aggregate speedup near 1×; the point of
  this sweep is that added readers *don't collapse* throughput (no
  lock convoys — reads never contend) and tail latency stays bounded.
* **mixed read/write** — 8 readers racing a writer.  Here the service
  genuinely wins: writes coalesce into batches, so the closure is
  recomputed once per *batch* (``snapshot_publishes``), while the
  baseline recomputes per *write* and its readers see every
  intermediate state.  The coalescing ratio (writes / publishes) is
  the headline.

Run as a script to emit ``BENCH_serving.json``::

    PYTHONPATH=src python benchmarks/bench_f11_serving.py [--quick]
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from typing import Dict, List

from repro.benchio.harness import write_bench_json
from repro.core.facts import Fact
from repro.datasets.synthetic import hierarchy_facts, membership_facts
from repro.db import Database
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.serve import DatabaseService


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------
def build_database(depth: int, fanout: int, instances: int) -> Database:
    """A hierarchy with memberships and inheritable class facts —
    queries exercise derivation, not just base lookup."""
    tree, leaves = hierarchy_facts(depth, fanout)
    db = Database()
    db.add_facts(tree)
    db.add_facts(membership_facts(leaves, instances))
    for index in range(8):
        db.add(f"C{index}", f"ATTR{index}", f"VALUE{index}")
    return db


def query_mix(db: Database, count: int) -> List[str]:
    """A deterministic rotation of queries over real entities:
    inherited attributes, class extents, and instance memberships."""
    instances = sorted({f.source for f in db.facts
                        if f.relationship == "∈"})
    queries = []
    for index in range(count):
        instance = instances[index % len(instances)]
        kind = index % 3
        if kind == 0:
            # Inherited through membership + the ≺ chain to the root.
            queries.append(f"({instance}, ATTR0, y)")
        elif kind == 1:
            queries.append(f"(x, ∈, C{index % 8})")
        else:
            queries.append(f"({instance}, ∈, y)")
    return queries


def percentile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


# ----------------------------------------------------------------------
# Read-only scaling
# ----------------------------------------------------------------------
def run_readers(service: DatabaseService, queries: List[str],
                threads: int, ops_per_thread: int) -> Dict[str, object]:
    latencies: List[List[float]] = [[] for _ in range(threads)]
    errors: List[BaseException] = []
    barrier = threading.Barrier(threads + 1)

    def reader(slot: int) -> None:
        try:
            barrier.wait()
            mine = latencies[slot]
            for index in range(ops_per_thread):
                text = queries[(slot * ops_per_thread + index)
                               % len(queries)]
                started = time.perf_counter()
                service.query(text)
                mine.append(time.perf_counter() - started)
        except BaseException as error:  # noqa: BLE001 - recorded
            errors.append(error)

    workers = [threading.Thread(target=reader, args=(slot,))
               for slot in range(threads)]
    for worker in workers:
        worker.start()
    barrier.wait()
    started = time.perf_counter()
    for worker in workers:
        worker.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    flat = [sample for series in latencies for sample in series]
    total = threads * ops_per_thread
    return {
        "mode": "read-only",
        "threads": threads,
        "total_ops": total,
        "wall_seconds": round(wall, 6),
        "ops_per_second": round(total / wall, 1),
        "p50_us": round(percentile(flat, 0.50) * 1e6, 1),
        "p95_us": round(percentile(flat, 0.95) * 1e6, 1),
        "p99_us": round(percentile(flat, 0.99) * 1e6, 1),
    }


def run_single_threaded_baseline(db: Database, queries: List[str],
                                 total_ops: int) -> Dict[str, object]:
    """The same op count against the bare Database, no service."""
    latencies: List[float] = []
    started = time.perf_counter()
    for index in range(total_ops):
        text = queries[index % len(queries)]
        before = time.perf_counter()
        db.query(text)
        latencies.append(time.perf_counter() - before)
    wall = time.perf_counter() - started
    return {
        "mode": "baseline-direct",
        "threads": 1,
        "total_ops": total_ops,
        "wall_seconds": round(wall, 6),
        "ops_per_second": round(total_ops / wall, 1),
        "p50_us": round(percentile(latencies, 0.50) * 1e6, 1),
        "p95_us": round(percentile(latencies, 0.95) * 1e6, 1),
        "p99_us": round(percentile(latencies, 0.99) * 1e6, 1),
    }


# ----------------------------------------------------------------------
# Mixed read/write
# ----------------------------------------------------------------------
def run_mixed(service: DatabaseService, queries: List[str],
              readers: int, ops_per_reader: int,
              writes: int) -> Dict[str, object]:
    """Readers race a writer pushing ``writes`` inserts through the
    coalescing queue; reports throughput plus the coalescing ratio."""
    publishes_before = service.stats()["snapshot_publishes"]
    latencies: List[List[float]] = [[] for _ in range(readers)]
    errors: List[BaseException] = []
    barrier = threading.Barrier(readers + 2)

    def reader(slot: int) -> None:
        try:
            barrier.wait()
            mine = latencies[slot]
            for index in range(ops_per_reader):
                text = queries[(slot * ops_per_reader + index)
                               % len(queries)]
                started = time.perf_counter()
                service.query(text)
                mine.append(time.perf_counter() - started)
        except BaseException as error:  # noqa: BLE001 - recorded
            errors.append(error)

    def writer() -> None:
        try:
            barrier.wait()
            tickets = []
            for index in range(writes):
                tickets.append(
                    service.add_async((f"NEW{index}", "∈", "C0")))
                # Bursts of 10 with a gap: enough pacing that batches
                # form from arrival timing, not from one giant burst.
                if (index + 1) % 10 == 0:
                    time.sleep(0.003)
            for ticket in tickets:
                ticket.result(120.0)
        except BaseException as error:  # noqa: BLE001 - recorded
            errors.append(error)

    workers = [threading.Thread(target=reader, args=(slot,))
               for slot in range(readers)]
    workers.append(threading.Thread(target=writer))
    for worker in workers:
        worker.start()
    barrier.wait()
    started = time.perf_counter()
    for worker in workers:
        worker.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    publishes = service.stats()["snapshot_publishes"] - publishes_before
    flat = [sample for series in latencies for sample in series]
    total_reads = readers * ops_per_reader
    return {
        "mode": "mixed",
        "threads": readers,
        "writes": writes,
        "snapshot_publishes": publishes,
        "coalescing_ratio": round(writes / max(1, publishes), 2),
        "total_ops": total_reads,
        "wall_seconds": round(wall, 6),
        "ops_per_second": round(total_reads / wall, 1),
        "p50_us": round(percentile(flat, 0.50) * 1e6, 1),
        "p95_us": round(percentile(flat, 0.95) * 1e6, 1),
        "p99_us": round(percentile(flat, 0.99) * 1e6, 1),
    }


def run_mixed_baseline(db: Database, queries: List[str],
                       reads: int, writes: int) -> Dict[str, object]:
    """Single thread interleaving the same reads and writes directly:
    every write lands individually (no batching), and reads between
    writes pay whatever recomputation the mutation caused."""
    interval = max(1, reads // max(1, writes))
    latencies: List[float] = []
    write_index = 0
    started = time.perf_counter()
    for index in range(reads):
        if write_index < writes and index % interval == 0:
            db.add_fact(Fact(f"NEW{write_index}", "∈", "C0"))
            write_index += 1
        text = queries[index % len(queries)]
        before = time.perf_counter()
        db.query(text)
        latencies.append(time.perf_counter() - before)
    while write_index < writes:
        db.add_fact(Fact(f"NEW{write_index}", "∈", "C0"))
        write_index += 1
    wall = time.perf_counter() - started
    return {
        "mode": "mixed-baseline",
        "threads": 1,
        "writes": writes,
        "snapshot_publishes": writes,   # one visible state per write
        "coalescing_ratio": 1.0,
        "total_ops": reads,
        "wall_seconds": round(wall, 6),
        "ops_per_second": round(reads / wall, 1),
        "p50_us": round(percentile(latencies, 0.50) * 1e6, 1),
        "p95_us": round(percentile(latencies, 0.95) * 1e6, 1),
        "p99_us": round(percentile(latencies, 0.99) * 1e6, 1),
    }


# ----------------------------------------------------------------------
# Telemetry overhead
# ----------------------------------------------------------------------
def run_telemetry_passes(depth: int, fanout: int, instances: int,
                         readers: int, ops_per_reader: int, writes: int,
                         repeat: int = 3):
    """The mixed workload with telemetry off and with metrics on, so
    the committed JSON carries the instrumentation overhead next to
    the numbers, plus the metrics snapshot from an observed pass.

    The threaded mixed workload is noisy (scheduler placement moves
    run-to-run throughput far more than a few counter increments do),
    so each mode runs ``repeat`` times interleaved — off, on, off, on,
    … — and the best run per mode is compared: interleaving cancels
    machine drift, best-of cancels unlucky placements."""
    def one_pass(telemetry: bool) -> Dict[str, object]:
        db = build_database(depth, fanout, instances)
        queries = query_mix(db, 48)
        if telemetry:
            with use_metrics(MetricsRegistry()) as registry:
                service = DatabaseService(db, batch_window=0.002)
                try:
                    row = run_mixed(service, queries, readers,
                                    ops_per_reader, writes)
                finally:
                    service.close()
                row["snapshot"] = registry.snapshot()
        else:
            service = DatabaseService(db, batch_window=0.002)
            try:
                row = run_mixed(service, queries, readers,
                                ops_per_reader, writes)
            finally:
                service.close()
        return row

    best: Dict[bool, Dict[str, object]] = {}
    for _ in range(repeat):
        for telemetry in (False, True):
            row = one_pass(telemetry)
            if (telemetry not in best
                    or row["ops_per_second"]
                    > best[telemetry]["ops_per_second"]):
                best[telemetry] = row

    snapshot = best[True].pop("snapshot")
    best[False]["mode"] = "mixed-telemetry-off"
    best[True]["mode"] = "mixed-telemetry-on"
    rows = [best[False], best[True]]
    off_rate = rows[0]["ops_per_second"]
    on_rate = rows[1]["ops_per_second"]
    overhead_pct = round(100.0 * (off_rate - on_rate) / max(off_rate, 1e-9),
                         2)
    return rows, overhead_pct, snapshot


# ----------------------------------------------------------------------
# Matrix
# ----------------------------------------------------------------------
def run_matrix(quick: bool = False):
    if quick:
        depth, fanout, instances = 3, 2, 2
        ops_per_thread, thread_counts = 60, [1, 4]
        mixed_readers, mixed_ops, writes = 4, 60, 20
    else:
        depth, fanout, instances = 4, 3, 3
        ops_per_thread, thread_counts = 400, [1, 2, 4, 8]
        mixed_readers, mixed_ops, writes = 8, 300, 100

    rows: List[Dict[str, object]] = []

    # Read-only sweep (fresh service per cell: cold shared cache would
    # otherwise make later cells unfairly fast).
    for threads in thread_counts:
        db = build_database(depth, fanout, instances)
        queries = query_mix(db, 48)
        service = DatabaseService(db)
        try:
            rows.append(run_readers(service, queries, threads,
                                    ops_per_thread))
        finally:
            service.close()
        print("  {mode} threads={threads}: {ops_per_second} ops/s"
              " p50={p50_us}us p99={p99_us}us".format(**rows[-1]))

    baseline_db = build_database(depth, fanout, instances)
    baseline_queries = query_mix(baseline_db, 48)
    rows.append(run_single_threaded_baseline(
        baseline_db, baseline_queries,
        ops_per_thread * max(thread_counts)))
    print("  {mode}: {ops_per_second} ops/s p50={p50_us}us".format(
        **rows[-1]))

    # Mixed read/write: service vs direct interleaving.
    db = build_database(depth, fanout, instances)
    queries = query_mix(db, 48)
    service = DatabaseService(db, batch_window=0.002)
    try:
        rows.append(run_mixed(service, queries, mixed_readers,
                              mixed_ops, writes))
    finally:
        service.close()
    print("  {mode}: {ops_per_second} ops/s, {writes} writes in"
          " {snapshot_publishes} publishes"
          " ({coalescing_ratio}x coalescing)".format(**rows[-1]))

    db = build_database(depth, fanout, instances)
    queries = query_mix(db, 48)
    rows.append(run_mixed_baseline(db, queries,
                                   mixed_readers * mixed_ops, writes))
    print("  {mode}: {ops_per_second} ops/s".format(**rows[-1]))

    service_mixed = rows[-2]
    baseline_mixed = rows[-1]

    # Telemetry overhead: the same mixed workload with metrics off and
    # on; the observed pass also yields the snapshot stamped into the
    # JSON document.
    telemetry_rows, overhead_pct, snapshot = run_telemetry_passes(
        depth, fanout, instances, mixed_readers, mixed_ops, writes,
        repeat=1 if quick else 3)
    rows.extend(telemetry_rows)
    print(f"  telemetry overhead: {overhead_pct}% "
          f"({telemetry_rows[0]['ops_per_second']} ops/s off,"
          f" {telemetry_rows[1]['ops_per_second']} ops/s on)")

    summary = {
        "max_reader_threads": max(thread_counts),
        "read_only_ops_per_second": max(
            row["ops_per_second"] for row in rows
            if row["mode"] == "read-only"),
        "baseline_ops_per_second": next(
            row["ops_per_second"] for row in rows
            if row["mode"] == "baseline-direct"),
        "mixed_coalescing_ratio": service_mixed["coalescing_ratio"],
        "mixed_service_p99_us": service_mixed["p99_us"],
        "mixed_baseline_p99_us": baseline_mixed["p99_us"],
        "telemetry_overhead_pct": overhead_pct,
    }
    return rows, summary, snapshot


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="F11 serving benchmark: reader scaling, latency"
                    " percentiles, write coalescing →"
                    " BENCH_serving.json")
    parser.add_argument("--quick", action="store_true",
                        help="small dataset and op counts (the CI"
                             " smoke configuration)")
    parser.add_argument("--output", default="BENCH_serving.json",
                        help="where to write the JSON document")
    options = parser.parse_args(argv)
    print(f"F11 serving matrix ({'quick' if options.quick else 'full'})")
    rows, summary, snapshot = run_matrix(quick=options.quick)
    write_bench_json(
        options.output, "F11-serving", rows, summary=summary,
        config={"quick": options.quick}, metrics=snapshot)
    print(f"wrote {options.output}: {len(rows)} cells;"
          f" coalescing {summary['mixed_coalescing_ratio']}x,"
          f" service p99 {summary['mixed_service_p99_us']}us vs"
          f" baseline p99 {summary['mixed_baseline_p99_us']}us")
    return 0


if __name__ == "__main__":
    sys.exit(main())
