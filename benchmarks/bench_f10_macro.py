"""F10 — macro benchmark: a mixed browsing session at scale.

No single paper claim — the end-to-end check that the architecture
holds together: load a heap, compute the closure once, then run the
§4–§5 workload (navigations, standard queries, probes, updates) and
report per-operation latencies as the heap grows.

Expected shape: the one-off closure cost grows with the heap; the
per-operation costs stay interactive (sub-10 ms at these scales).
"""

from __future__ import annotations

import pytest

from repro.benchio import Sweep, print_sweep, timed
from repro.core.facts import Fact
from repro.datasets.synthetic import (
    hierarchy_facts,
    membership_facts,
    random_heap,
)
from repro.db import Database

SCALES = [2000, 8000]


def _loaded(scale: int) -> Database:
    db = Database()
    tree, leaves = hierarchy_facts(4, 3)
    db.add_facts(tree)
    db.add_facts(membership_facts(leaves[:20], 3))
    db.add_facts(random_heap(scale, n_entities=scale // 5,
                             n_relationships=25, seed=13))
    db.add("JOHN", "LIKES", "E1")
    db.add("JOHN", "∈", "C1")
    return db


def test_f10_mixed_session_scales(benchmark):
    sweep = Sweep(name="F10: mixed browsing session vs heap size",
                  parameter="heap_facts")
    for scale in SCALES:
        db = _loaded(scale)
        closure_seconds = timed(
            lambda db=db: (db._invalidate(), db.closure()), repeat=1)
        db.closure()
        navigate_seconds = timed(
            lambda db=db: db.navigate("(JOHN, *, *)"), repeat=5)
        query_seconds = timed(
            lambda db=db: db.query(
                "(JOHN, LIKES, y) and (y, R0, z)"), repeat=5)
        probe_seconds = timed(
            lambda db=db: db.probe("(JOHN, R99, z)", max_waves=3),
            repeat=3)
        def update(db=db):
            db.add("PROBE-ENTITY", "∈", "C1")
            db.closure()
            db.remove_fact(Fact("PROBE-ENTITY", "∈", "C1"))
            db.closure()
        update_seconds = timed(update, repeat=3)
        sweep.add(scale,
                  closure_s=closure_seconds,
                  navigate_s=navigate_seconds,
                  query_s=query_seconds,
                  probe_s=probe_seconds,
                  update_s=update_seconds)
        # Interactivity: every per-operation latency stays well under
        # a second at these scales.
        for label, seconds in (("navigate", navigate_seconds),
                               ("query", query_seconds),
                               ("probe", probe_seconds),
                               ("update", update_seconds)):
            assert seconds < 1.0, (scale, label, seconds)
    print_sweep(sweep)

    db = _loaded(SCALES[0])
    db.closure()
    benchmark.pedantic(lambda: db.navigate("(JOHN, *, *)"),
                       rounds=5, iterations=2)


def test_f10_navigation_op(benchmark):
    db = _loaded(SCALES[-1])
    db.closure()
    result = benchmark(db.navigate, "(JOHN, *, *)")
    assert not result.is_empty()


def test_f10_update_op(benchmark):
    db = _loaded(SCALES[0])
    db.closure()
    counter = iter(range(10 ** 6))

    def update():
        db.add(f"NEW{next(counter)}", "∈", "C1")
        return db.closure().total

    benchmark.pedantic(update, rounds=10, iterations=1)
