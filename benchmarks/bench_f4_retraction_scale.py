"""F4 — §5.2's wave process at scale.

Sweeps generalization-chain depth and hierarchy fanout, reporting the
number of waves, the queries attempted, and the probe latency.
Expected shape: waves grow linearly with the distance to the nearest
succeeding generalization; attempted queries grow with hierarchy
connectivity; the misspelled worst case terminates with the §5.2
diagnosis.
"""

from __future__ import annotations

import pytest

from repro.benchio import Sweep, print_sweep, timed
from repro.core.entities import ISA
from repro.core.facts import Fact
from repro.datasets.synthetic import deep_retraction_workload, hierarchy_facts
from repro.db import Database


def _database(facts) -> Database:
    db = Database()
    db.add_facts(facts)
    db.closure()
    db.hierarchy()
    return db


def test_f4_waves_grow_with_depth(benchmark):
    sweep = Sweep(name="F4: retraction waves vs chain depth",
                  parameter="depth")
    for depth in (2, 4, 8, 16):
        facts, query = deep_retraction_workload(depth)
        db = _database(facts)
        seconds = timed(lambda db=db, q=query: db.probe(q), repeat=3)
        result = db.probe(query)
        attempted = sum(len(w.attempted) for w in result.waves)
        sweep.add(depth, waves=len(result.waves), attempted=attempted,
                  probe_seconds=seconds)
        assert len(result.waves) == depth
        assert result.waves[-1].successes
    print_sweep(sweep)

    facts, query = deep_retraction_workload(4)
    db = _database(facts)
    benchmark.pedantic(db.probe, args=(query,), rounds=3, iterations=1)


def test_f4_attempted_grows_with_fanout(benchmark):
    """Wider hierarchies mean more minimal generalizations per entity,
    hence wider waves."""
    sweep = Sweep(name="F4: first-wave width vs target fanout",
                  parameter="parents")
    widths = []
    for parents in (1, 3, 6):
        db = Database()
        for index in range(parents):
            db.add("THING", ISA, f"PARENT{index}")
        db.add("SOMEONE", "MADE", "OTHER")  # LIKES stays unanswerable
        result = db.probe("(SOMEONE, MADE, THING)", max_waves=1)
        width = len(result.waves[0].attempted) if result.waves else 0
        widths.append(width)
        sweep.add(parents, first_wave_queries=width)
    print_sweep(sweep)
    assert widths[0] < widths[1] < widths[2]

    benchmark.pedantic(
        db.probe, args=("(SOMEONE, MADE, THING)",),
        kwargs={"max_waves": 1}, rounds=3, iterations=1)


def test_f4_misspelling_terminates(benchmark):
    """The worst case — an unknown relationship — must exhaust, not
    wander: source climbs to ∇, then 'no such database entities'."""
    tree, leaves = hierarchy_facts(4, 2)
    db = Database()
    db.add_facts(tree)
    db.add(leaves[0], "LIKES", leaves[-1])
    db.closure()
    db.hierarchy()
    query = f"({leaves[0]}, MISSPELLED-REL, z)"
    result = benchmark(db.probe, query)
    assert result.exhausted
    assert result.unknown_entities == ("MISSPELLED-REL",)


def test_f4_probe_depth_8(benchmark):
    facts, query = deep_retraction_workload(8)
    db = _database(facts)
    result = benchmark(db.probe, query)
    assert len(result.waves) == 8
