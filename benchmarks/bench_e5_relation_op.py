"""E5 — §6.1 relation() operator: the employee table.

Regenerates the paper's table (same rows) and times the operator,
including a non-1NF case.
"""

from __future__ import annotations

from repro.datasets.synthetic import employee_workload
from repro.db import Database

#: The paper's printed rows.
EXPECTED = {
    "JOHN": (("SHIPPING",), ("$26000",)),
    "TOM": (("ACCOUNTING",), ("$27000",)),
    "MARY": (("RECEIVING",), ("$25000",)),
}


def test_e5_relation_table(benchmark, paper_db):
    paper_db.closure()
    table = benchmark(paper_db.relation, "EMPLOYEE",
                      ("WORKS-FOR", "DEPARTMENT"), ("EARNS", "SALARY"))
    assert {row.instance: row.cells for row in table.rows} == EXPECTED
    print()
    print(table.render())


def test_e5_relation_scales(benchmark):
    """The operator over a synthetic organization (600 instances)."""
    workload = employee_workload(600, 12, seed=3)
    db = Database(with_axioms=False)
    db.add_facts(workload.facts)
    for department in workload.departments:
        db.add(department, "∈", "DEPARTMENT")
    db.closure()
    table = benchmark(db.relation, "EMPLOYEE",
                      ("WORKS-FOR", "DEPARTMENT"))
    assert len(table) == 600
    assert all(row.cells[0] for row in table.rows)
