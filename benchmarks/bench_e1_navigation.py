"""E1 — §4.1 navigation session (paper tables 1–3) and E6 — try(e).

Regenerates the paper's three navigation tables exactly and times the
neighborhood queries behind them.
"""

from __future__ import annotations

from repro.core.entities import MEMBER

#: The paper's table 1 — (JOHN, *, *).
TABLE_1 = {
    MEMBER: ["EMPLOYEE", "MUSIC-LOVER", "PERSON", "PET-OWNER"],
    "LIKES": ["CAT", "FELIX", "HEALTHCLIFF", "MARY", "MOZART"],
    "WORKS-FOR": ["DEPARTMENT", "SHIPPING"],
    "BOSS": ["PETER"],
    "FAVORITE-MUSIC": ["PC#2-PIT", "PC#9-WAM", "S#5-LVB"],
}

#: The paper's table 2 — (PC#9-WAM, *, *).
TABLE_2 = {
    MEMBER: ["CLASSICAL-COMPOSITION", "CONCERTO"],
    "COMPOSED-BY": ["MOZART"],
    "PERFORMED-BY": ["BARENBOIM", "LEOPOLD", "SIRKIN"],
    "FAVORITE-OF": ["JOHN"],
}

#: The paper's table 3 — (LEOPOLD, *, MOZART) with composition on.
TABLE_3 = ["FATHER-OF", "PERFORMED.PC#9-WAM.COMPOSED-BY"]


def _groups(result):
    return {rel: sorted(values) for rel, values in result.groups.items()}


def test_e1_table_1_john(benchmark, music_db):
    music_db.closure()  # charge the one-off closure outside the timing
    result = benchmark(music_db.navigate, "(JOHN, *, *)")
    assert _groups(result) == TABLE_1
    print()
    print(result.render())


def test_e1_table_2_concerto(benchmark, music_db):
    music_db.closure()
    result = benchmark(music_db.navigate, "(PC#9-WAM, *, *)")
    assert _groups(result) == TABLE_2
    print()
    print(result.render())


def test_e1_table_3_composed(benchmark, music_db):
    music_db.limit(2)
    music_db.closure()
    result = benchmark(music_db.navigate, "(LEOPOLD, *, MOZART)")
    assert sorted(result.groups) == TABLE_3
    print()
    print(result.render())


def test_e1_closure_cost_with_composition(benchmark, music_db):
    """The one-off cost navigation amortizes: closure + composition."""
    music_db.limit(2)

    def rebuild():
        music_db._invalidate()
        return music_db.closure()

    result = benchmark(rebuild)
    assert result.total > len(music_db.facts)


def test_e6_try_operator(benchmark, music_db):
    music_db.closure()
    facts = benchmark(music_db.try_, "MOZART")
    mentioned = {f for f in facts if "MOZART" in f}
    assert mentioned == set(facts) and facts
    print()
    for fact in facts:
        print("  ", fact)
