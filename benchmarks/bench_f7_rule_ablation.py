"""F7 — per-rule ablation via include/exclude (§6.1).

On a workload exercising every standard rule, excludes one rule at a
time and reports the closure size and time without it — the measured
contribution of each §3 mechanism.
"""

from __future__ import annotations

import pytest

from repro.benchio import Sweep, print_sweep, timed
from repro.datasets import books, music, paper, university
from repro.db import Database
from repro.rules.builtin import STANDARD_RULES


def _mixed_database() -> Database:
    """All paper datasets in one heap (§1: unified access to multiple
    databases), plus synonyms to exercise the ≈ rules."""
    db = Database()
    music.load(db)
    paper.load(db)
    university.load(db)
    books.load(db)
    db.add("JOHN", "≈", "JOHNNY")
    db.add("EARNS", "≈", "IS-COMPENSATED")
    return db


def test_f7_rule_ablation_sweep(benchmark):
    db = _mixed_database()
    full = db.closure().total
    full_seconds = timed(lambda: (db._invalidate(), db.closure()),
                         repeat=3)

    sweep = Sweep(name="F7: closure without each standard rule",
                  parameter="excluded_rule")
    sweep.add("(none)", closure_facts=full, delta_vs_full=0,
              closure_seconds=full_seconds)
    contributions = {}
    for rule in STANDARD_RULES:
        db.exclude(rule.name)
        seconds = timed(lambda: (db._invalidate(), db.closure()),
                        repeat=3)
        size = db.closure().total
        contributions[rule.name] = full - size
        sweep.add(rule.name, closure_facts=size,
                  delta_vs_full=size - full, closure_seconds=seconds)
        db.include(rule.name)
    print_sweep(sweep)

    # Shape: no ablation grows the closure, and each inference family
    # the datasets exercise contributes derived facts.
    assert all(delta >= 0 for delta in contributions.values())
    for load_bearing in ("gen-transitive", "gen-source", "gen-target",
                         "mem-upward", "mem-source", "mem-target",
                         "syn-source", "inversion"):
        assert contributions[load_bearing] > 0, load_bearing

    def rebuild():
        db._invalidate()
        return db.closure()

    benchmark.pedantic(rebuild, rounds=3, iterations=1)


def test_f7_full_closure(benchmark):
    db = _mixed_database()

    def rebuild():
        db._invalidate()
        return db.closure()

    result = benchmark(rebuild)
    assert result.derived_count > 0


def test_f7_minimal_ruleset(benchmark):
    """The other end of the ablation: no rules at all — the closure is
    the heap itself."""
    db = _mixed_database()
    for rule in STANDARD_RULES:
        db.exclude(rule.name)

    def rebuild():
        db._invalidate()
        return db.closure()

    result = benchmark(rebuild)
    assert result.derived_count == 0
