"""An interactive browser for loosely structured databases.

The paper's user sits at a terminal, types templates, picks entities
out of the answers, and lets failed queries retract (§4–§5).  This
module is that terminal: a line-oriented shell over a
:class:`~repro.db.Database`, usable programmatically
(:meth:`BrowserShell.execute` returns the printed text, which the test
suite asserts on) or interactively::

    python -m repro.shell music        # any dataset in repro.datasets
    python -m repro.shell /path/to/db  # a durable database directory

Three extra modes expose the concurrent serving layer
(:mod:`repro.serve`)::

    python -m repro.shell serve music --port 7474   # host over TCP
    python -m repro.shell connect localhost:7474    # remote shell
    python -m repro.shell monitor localhost:7474    # live dashboard

Commands::

    (JOHN, *, *)              navigate a template (stars are wildcards)
    go ENTITY                 visit an entity's outgoing neighborhood
    incoming ENTITY           ... its incoming neighborhood
    between SOURCE TARGET     all associations between two entities
    paths SOURCE TARGET [N]   association paths up to length N (def. 3)
    back                      forget the latest navigation step
    try ENTITY                every fact mentioning the entity (§6.1)
    query FORMULA             evaluate a standard query (§2.7)
    ask FORMULA               truth value of a proposition
    explain FORMULA           show the evaluation plan and safety
    explain analyze FORMULA   run it and show plan vs actual rows/time
    why S R T                 derivation tree of a closure fact
                              (needs a trace-enabled database)
    probe QUERY               evaluate with automatic retraction (§5.2)
    select N                  value of entry N of the last probe menu
    relation CLASS R:T ...    the §6.1 relation() table
    function REL [ENTITY]     view a relationship as a function
    add S R T                 insert a fact       (quote multi-word)
    remove S R T              delete a fact
    limit N | limit off       composition chain limit (§6.1)
    include RULE              enable an inference rule
    exclude RULE              disable an inference rule
    rule NAME BODY => HEAD    define a rule from text
    rules                     list rules and their state
    diagnose                  trace contradictions to stored facts
    export FILE               write the stored facts as text
    import FILE               add facts from a text file
    stats                     database statistics (+ live trace counters)
    trace on|off              toggle obs tracing (spans and counters)
    profile COMMAND           run any command, print its trace summary
    help                      this text
    quit                      leave
"""

from __future__ import annotations

import shlex
import sys
from typing import Callable, Dict, List, Optional

from .browse.retraction import ProbeResult
from .core.errors import ReproError
from .db import Database
from .query.parser import parse_query

PROMPT = "browse> "


class BrowserShell:
    """A stateful command interpreter over one database."""

    def __init__(self, db: Database):
        self.db = db
        self.session = db.session()
        self.last_probe: Optional[ProbeResult] = None
        self.done = False
        self._commands: Dict[str, Callable[[List[str]], str]] = {
            "go": self._go,
            "visit": self._go,
            "incoming": self._incoming,
            "between": self._between,
            "paths": self._paths,
            "back": self._back,
            "try": self._try,
            "query": self._query,
            "ask": self._ask,
            "explain": self._explain,
            "why": self._why,
            "probe": self._probe,
            "select": self._select,
            "relation": self._relation,
            "function": self._function,
            "add": self._add,
            "remove": self._remove,
            "limit": self._limit,
            "include": self._include,
            "rule": self._rule,
            "exclude": self._exclude,
            "rules": self._rules,
            "diagnose": self._diagnose,
            "export": self._export,
            "import": self._import,
            "stats": self._stats,
            "trace": self._trace,
            "help": self._help,
            "quit": self._quit,
            "exit": self._quit,
        }

    # ------------------------------------------------------------------
    def execute(self, line: str) -> str:
        """Run one command line; returns the text a terminal would show."""
        line = line.strip()
        if not line:
            return ""
        try:
            if line.startswith("("):
                return self._navigate(line)
            first, _, rest = line.partition(" ")
            if first.lower() == "profile":
                # The profiled command keeps its raw text (templates
                # contain commas and parentheses shlex would mangle).
                return self._profile(rest.strip())
            try:
                words = shlex.split(line)
            except ValueError as error:
                return f"error: {error}"
            command, arguments = words[0].lower(), words[1:]
            handler = self._commands.get(command)
            if handler is None:
                return (f"unknown command: {command!r}"
                        " — type 'help' for the command list")
            return handler(arguments)
        except ReproError as error:
            return f"error: {error}"

    # ------------------------------------------------------------------
    # Navigation (§4.1)
    # ------------------------------------------------------------------
    def _refresh_session(self) -> None:
        # Mutations and limit changes may swap the underlying view;
        # keep the session's history but point it at the fresh view.
        self.session.view = self.db.view()

    def _navigate(self, template_text: str) -> str:
        self._refresh_session()
        return self.session.query(template_text).render()

    def _go(self, arguments: List[str]) -> str:
        if len(arguments) != 1:
            return "usage: go ENTITY"
        self._refresh_session()
        return self.session.visit(arguments[0]).render()

    def _incoming(self, arguments: List[str]) -> str:
        if len(arguments) != 1:
            return "usage: incoming ENTITY"
        self._refresh_session()
        return self.session.incoming(arguments[0]).render()

    def _between(self, arguments: List[str]) -> str:
        if len(arguments) != 2:
            return "usage: between SOURCE TARGET"
        self._refresh_session()
        return self.session.between(arguments[0], arguments[1]).render()

    def _paths(self, arguments: List[str]) -> str:
        from .browse.paths import association_paths

        if len(arguments) not in (2, 3):
            return "usage: paths SOURCE TARGET [MAX_LENGTH]"
        max_length = 3
        if len(arguments) == 3:
            if not arguments[2].isdigit() or int(arguments[2]) < 1:
                return "usage: paths SOURCE TARGET [MAX_LENGTH]"
            max_length = int(arguments[2])
        found = association_paths(self.db.view(), arguments[0],
                                  arguments[1], max_length=max_length)
        if not found:
            return "(no association paths)"
        return "\n".join(path.render() for path in found)

    def _back(self, arguments: List[str]) -> str:
        previous = self.session.back()
        if previous is None:
            return "(no earlier step)"
        return previous.render()

    # ------------------------------------------------------------------
    # Queries and probing (§2.7, §5)
    # ------------------------------------------------------------------
    def _try(self, arguments: List[str]) -> str:
        if len(arguments) != 1:
            return "usage: try ENTITY"
        facts = self.db.try_(arguments[0])
        if not facts:
            return "(no facts mention it)"
        return "\n".join(str(fact) for fact in facts)

    def _query(self, arguments: List[str]) -> str:
        text = " ".join(arguments)
        if not text:
            return "usage: query FORMULA"
        query = parse_query(text)          # for the variables header
        value = self.db.query(text)        # text path: plan-cached
        if not value:
            return "(empty)"
        header = ", ".join(v.name for v in query.variables) or "(true)"
        rows = "\n".join("  " + ", ".join(row) for row in sorted(value))
        return f"{header}\n{rows}" if rows else header

    def _ask(self, arguments: List[str]) -> str:
        text = " ".join(arguments)
        if not text:
            return "usage: ask PROPOSITION"
        return "true" if self.db.ask(text) else "false"

    def _explain(self, arguments: List[str]) -> str:
        if arguments and arguments[0].lower() == "analyze":
            text = " ".join(arguments[1:])
            if not text:
                return "usage: explain analyze FORMULA"
            return self.db.explain_analyze(text).render()
        text = " ".join(arguments)
        if not text:
            return "usage: explain FORMULA"
        return self.db.explain(text).render()

    def _why(self, arguments: List[str]) -> str:
        from .core.facts import Fact

        if len(arguments) != 3:
            return "usage: why SOURCE RELATIONSHIP TARGET"
        return self.db.why(Fact(*arguments)).render()

    def _function(self, arguments: List[str]) -> str:
        if not 1 <= len(arguments) <= 2:
            return "usage: function RELATIONSHIP [ENTITY]"
        function = self.db.function(arguments[0])
        if len(arguments) == 2:
            images = function(arguments[1])
            return ", ".join(images) if images else "(no images)"
        lines = [
            f"  {entity} -> {', '.join(images)}"
            for entity, images in function.items()
        ]
        if not lines:
            return "(empty function)"
        kind = ("single-valued" if function.is_single_valued()
                else "multi-valued")
        return "\n".join([f"{arguments[0]} ({kind}):"] + lines)

    def _probe(self, arguments: List[str]) -> str:
        text = " ".join(arguments)
        if not text:
            return "usage: probe QUERY"
        self.last_probe = self.db.probe(text)
        if self.last_probe.succeeded:
            rows = "\n".join(
                "  " + ", ".join(row)
                for row in sorted(self.last_probe.value))
            return "Query succeeded.\n" + rows if rows.strip() \
                else "Query succeeded."
        return self.last_probe.menu()

    def _select(self, arguments: List[str]) -> str:
        if self.last_probe is None:
            return "no probe to select from"
        if len(arguments) != 1 or not arguments[0].isdigit():
            return "usage: select N"
        choice = int(arguments[0])
        if not 1 <= choice <= len(self.last_probe.successes):
            return (f"choose between 1 and"
                    f" {len(self.last_probe.successes)}")
        value = self.last_probe.select(choice)
        return "\n".join("  " + ", ".join(row) for row in sorted(value))

    def _relation(self, arguments: List[str]) -> str:
        if not arguments:
            return "usage: relation CLASS REL:TARGETCLASS ..."
        class_entity, columns = arguments[0], []
        for spec in arguments[1:]:
            relationship, separator, target = spec.partition(":")
            if not separator or not relationship or not target:
                return f"bad column spec {spec!r}; use REL:TARGETCLASS"
            columns.append((relationship, target))
        return self.db.relation(class_entity, *columns).render()

    # ------------------------------------------------------------------
    # Updates and rule control (§6.1)
    # ------------------------------------------------------------------
    def _add(self, arguments: List[str]) -> str:
        if len(arguments) != 3:
            return "usage: add SOURCE RELATIONSHIP TARGET"
        if self.db.add(*arguments):
            return f"added ({arguments[0]}, {arguments[1]}, {arguments[2]})"
        return "already present"

    def _remove(self, arguments: List[str]) -> str:
        from .core.facts import Fact

        if len(arguments) != 3:
            return "usage: remove SOURCE RELATIONSHIP TARGET"
        if self.db.remove_fact(Fact(*arguments)):
            return "removed"
        return "no such stored fact"

    def _limit(self, arguments: List[str]) -> str:
        if len(arguments) != 1:
            return "usage: limit N  (1 disables; 'off' = unlimited)"
        word = arguments[0].lower()
        if word in ("off", "none", "unlimited"):
            self.db.limit(None)
            return "composition unlimited"
        if not word.isdigit() or int(word) < 1:
            return "usage: limit N  (1 disables; 'off' = unlimited)"
        self.db.limit(int(word))
        return f"composition limit set to {word}"

    def _rule(self, arguments: List[str]) -> str:
        if len(arguments) < 2:
            return "usage: rule NAME BODY => HEAD [where GUARDS]"
        name, text = arguments[0], " ".join(arguments[1:])
        rule = self.db.define_rule(name, text)
        return f"defined and enabled: {rule}"

    def _include(self, arguments: List[str]) -> str:
        if len(arguments) != 1:
            return "usage: include RULE"
        self.db.include(arguments[0])
        return f"rule {arguments[0]} enabled"

    def _exclude(self, arguments: List[str]) -> str:
        if len(arguments) != 1:
            return "usage: exclude RULE"
        self.db.exclude(arguments[0])
        return f"rule {arguments[0]} disabled"

    def _rules(self, arguments: List[str]) -> str:
        lines = []
        for rule in self.db.rules.all_rules():
            state = "on " if self.db.rules.is_enabled(rule.name) else "off"
            lines.append(f"  [{state}] {rule.name}")
        return "\n".join(lines)

    def _diagnose(self, arguments: List[str]) -> str:
        violations = self.db.check_integrity()
        if not violations:
            return "consistent: the closure is free of contradictions"
        try:
            diagnoses = self.db.diagnose()
        except ReproError as error:
            lines = [str(v) for v in violations]
            lines.append(f"({error})")
            return "\n".join(lines)
        return "\n".join(d.render() for d in diagnoses)

    def _export(self, arguments: List[str]) -> str:
        from .storage.interchange import write_facts

        if len(arguments) != 1:
            return "usage: export FILE"
        count = write_facts(arguments[0], self.db.facts,
                            header="exported loose heap")
        return f"wrote {count} facts to {arguments[0]}"

    def _import(self, arguments: List[str]) -> str:
        from .storage.interchange import read_facts

        if len(arguments) != 1:
            return "usage: import FILE"
        added = self.db.add_facts(read_facts(arguments[0]))
        return f"added {added} new facts"

    def _stats(self, arguments: List[str]) -> str:
        from .obs import active_tracer, tracing_enabled

        stats = self.db.stats()
        hidden = ("enabled_rules", "rule_firings", "rule_times")
        lines = [f"  {key}: {value}" for key, value in stats.items()
                 if key not in hidden]
        firings = stats.get("rule_firings") or {}
        if any(firings.values()):
            lines.append("  rule_firings:")
            lines.extend(f"    {name}: {count}"
                         for name, count in sorted(firings.items())
                         if count)
        times = stats.get("rule_times") or {}
        if times:
            lines.append("  rule_times:")
            lines.extend(f"    {name}: {seconds * 1000:.3f} ms"
                         for name, seconds in sorted(times.items()))
        counters = active_tracer().counters
        if counters:
            state = "live" if tracing_enabled() else "frozen"
            lines.append(f"  trace counters ({state}):")
            lines.extend(f"    {name}: {value}"
                         for name, value in sorted(counters.items()))
        return "\n".join(lines)

    def _trace(self, arguments: List[str]) -> str:
        from .obs import (active_tracer, disable_tracing, enable_tracing,
                          tracing_enabled)

        if not arguments:
            state = "on" if tracing_enabled() else "off"
            return f"tracing is {state}"
        word = arguments[0].lower()
        if word == "on":
            enable_tracing()
            return "tracing on — counters appear in 'stats'"
        if word == "off":
            disable_tracing()
            tracer = active_tracer()
            collected = len(tracer.counters) + len(tracer.roots)
            return (f"tracing off ({collected} counters/spans collected;"
                    " still visible in 'stats' until re-enabled)")
        return "usage: trace [on|off]"

    def _profile(self, command: str) -> str:
        from .obs import Tracer, summary, use_tracer

        if not command:
            return "usage: profile COMMAND [ARGS...]"
        with use_tracer(Tracer()) as tracer:
            output = self.execute(command)
        report = summary(tracer, title=f"profile: {command}")
        return f"{output}\n\n{report}" if output else report

    def _help(self, arguments: List[str]) -> str:
        return __doc__.split("Commands::", 1)[1].strip("\n")

    def _quit(self, arguments: List[str]) -> str:
        self.done = True
        return "bye"

    # ------------------------------------------------------------------
    def run(self, stdin=None, stdout=None) -> None:
        """The interactive loop."""
        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        stdout.write("Loosely structured database browser —"
                     " type 'help' for commands.\n")
        while not self.done:
            stdout.write(PROMPT)
            stdout.flush()
            line = stdin.readline()
            if not line:
                break
            output = self.execute(line)
            if output:
                stdout.write(output + "\n")


def _resolve(target: str):
    """Resolve a shell target to ``(database, session-or-None)``."""
    from . import datasets

    dataset = getattr(datasets, target, None)
    if dataset is not None and hasattr(dataset, "load"):
        return dataset.load(), None
    from .storage.session import open_database

    return open_database(target)


def _load(target: str) -> Database:
    """Resolve a shell target: a dataset name or a durable directory."""
    db, _session = _resolve(target)
    return db


def _serve_main(arguments: List[str]) -> int:
    """``serve`` mode: host a database behind the JSON-lines server."""
    import argparse

    from .serve import DatabaseService
    from .serve.net import ServiceServer

    parser = argparse.ArgumentParser(
        prog="python -m repro.shell serve",
        description="Serve a dataset or durable directory over TCP.")
    parser.add_argument("target", nargs="?", default=None,
                        help="dataset name or durable directory"
                             " (default: empty in-memory database)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7474)
    parser.add_argument("--batch-window", type=float, default=0.002,
                        help="writer coalescing window in seconds")
    parser.add_argument("--max-pending", type=int, default=1024,
                        help="admission queue bound")
    parser.add_argument("--deadline", type=float, default=None,
                        help="default per-request deadline in seconds")
    parser.add_argument("--max-batch", type=int, default=256,
                        help="max queued writes applied per batch"
                             " (bounds the publish pause; 0 = unbounded)")
    parser.add_argument("--workers", type=int, default=0,
                        help="replica worker processes for reads"
                             " (0 = serve reads from the primary)")
    parser.add_argument("--metrics", action="store_true",
                        help="collect cross-process metrics (scrape with"
                             " the 'metrics' verb or tools/prom_exporter)")
    parser.add_argument("--slow-query", type=float, default=None,
                        metavar="SECONDS",
                        help="log reads slower than this many seconds")
    options = parser.parse_args(arguments)

    if options.metrics:
        from .obs import metrics as _metrics

        _metrics.enable_metrics(fresh=True)
    if options.target is not None:
        db, session = _resolve(options.target)
    else:
        db, session = Database(), None
    service = DatabaseService(db, session=session,
                              max_pending=options.max_pending,
                              batch_window=options.batch_window,
                              default_deadline=options.deadline,
                              max_batch=options.max_batch or None,
                              slow_query_seconds=options.slow_query)
    pool = None
    if options.workers > 0:
        from .serve.pool import ReplicaPool

        directory = (options.target
                     if session is not None else None)
        pool = ReplicaPool(service, workers=options.workers,
                           bootstrap_directory=directory)
    server = ServiceServer(service, host=options.host, port=options.port,
                           pool=pool)
    host, port = server.address
    workers_note = (f" with {options.workers} replica worker(s)"
                    if pool is not None else "")
    print(f"serving {options.target or 'an empty database'}"
          f" on {host}:{port}{workers_note} (ctrl-c stops)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        if pool is not None:
            pool.close()
        service.close()
    return 0


def _connect_main(arguments: List[str]) -> int:
    """``connect`` mode: a remote shell over an existing server."""
    from .serve.net import RemoteShell, ServiceClient

    if len(arguments) != 1:
        print("usage: python -m repro.shell connect HOST[:PORT]")
        return 2
    host, _, port_text = arguments[0].partition(":")
    port = int(port_text) if port_text else 7474
    with ServiceClient(host or "127.0.0.1", port) as client:
        RemoteShell(client).run()
    return 0


def _monitor_main(arguments: List[str]) -> int:
    """``monitor`` mode: live dashboard over a running server."""
    import argparse
    import time

    from .obs.monitor import render_dashboard
    from .serve.net import ServiceClient

    parser = argparse.ArgumentParser(
        prog="python -m repro.shell monitor",
        description="Render a live telemetry dashboard for a server"
                    " started with --metrics.")
    parser.add_argument("address", help="HOST[:PORT] of a running server")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="seconds between refreshes")
    parser.add_argument("--count", type=int, default=0,
                        help="stop after this many frames (0 = forever)")
    parser.add_argument("--no-clear", action="store_true",
                        help="append frames instead of clearing the screen")
    options = parser.parse_args(arguments)
    host, _, port_text = options.address.partition(":")
    port = int(port_text) if port_text else 7474

    previous = None
    frames = 0
    with ServiceClient(host or "127.0.0.1", port) as client:
        try:
            while True:
                sample = client.metrics(refresh=True)
                title = (f"repro monitor — {host or '127.0.0.1'}:{port}"
                         f" — frame {frames + 1}")
                frame = render_dashboard(
                    sample, previous,
                    options.interval if previous is not None else 1.0,
                    title=title)
                if not options.no_clear:
                    print("\033[2J\033[H", end="")
                print(frame, flush=True)
                previous = sample
                frames += 1
                if options.count and frames >= options.count:
                    break
                time.sleep(options.interval)
        except KeyboardInterrupt:
            pass
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    arguments = sys.argv[1:] if argv is None else argv
    if arguments and arguments[0] == "serve":
        return _serve_main(arguments[1:])
    if arguments and arguments[0] == "connect":
        return _connect_main(arguments[1:])
    if arguments and arguments[0] == "monitor":
        return _monitor_main(arguments[1:])
    if len(arguments) > 1:
        print("usage: python -m repro.shell"
              " [dataset-or-directory | serve ... | connect HOST[:PORT]"
              " | monitor HOST[:PORT]]")
        return 2
    db = _load(arguments[0]) if arguments else Database()
    BrowserShell(db).run()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
