"""Multi-database merging aids (paper §1).

"Unified access to multiple databases is much simpler with databases
whose architecture does not emphasize structure."  Mechanically the
merge *is* simple — a union of fact heaps — so the real work is what
this module provides around it:

* :func:`merge` — pour one heap into another, reporting what was new,
  what was duplicate, and which *contradictions the merge introduced*
  (the §2.6 invariant, checked before/after);
* :func:`suggest_entity_bridges` / :func:`suggest_relationship_bridges`
  — candidate ``≈`` facts: entities (or relationships) from the two
  vocabularies whose neighborhoods overlap, ranked by Jaccard
  similarity.  The §3.3 synonym mechanism does the actual unification;
  these functions find where to apply it.

Example::

    from repro import Database
    from repro.core import Fact
    from repro.merge import merge

    db = Database()
    db.add("A", "R", "B")
    report = merge(db, [Fact("A", "R", "B"), Fact("C", "R", "D")])
    assert report.added == 1 and report.duplicates == 1 and report.clean
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .core.entities import SYN, is_special_relationship
from .core.facts import Fact
from .db import Database
from .rules.integrity import Violation


@dataclass
class MergeReport:
    """What happened when one heap was poured into another."""

    added: int
    duplicates: int
    #: contradictions present after the merge that were not before.
    new_violations: Tuple[Violation, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.new_violations

    def render(self) -> str:
        lines = [f"merged: {self.added} new facts"
                 f" ({self.duplicates} duplicates)"]
        if self.new_violations:
            lines.append("contradictions introduced by the merge:")
            lines.extend(f"  {violation}"
                         for violation in self.new_violations)
        else:
            lines.append("no contradictions introduced")
        return "\n".join(lines)


def merge(target: Database, source: Iterable[Fact],
          check: bool = True) -> MergeReport:
    """Add every fact of ``source`` to ``target``.

    Args:
        target: the database merged into (mutated).
        source: facts (or another database's ``.facts``) to pour in.
        check: compare integrity before and after, reporting only the
            violations the merge *introduced*.
    """
    source_facts = list(source)
    before: Set[Tuple] = set()
    if check:
        before = {(v.fact, v.conflicting, v.reason)
                  for v in target.check_integrity()}
    duplicates = 0
    added = 0
    for fact in source_facts:
        if target.add_fact(fact):
            added += 1
        else:
            duplicates += 1
    new_violations: Tuple[Violation, ...] = ()
    if check:
        after = target.check_integrity()
        new_violations = tuple(
            v for v in after
            if (v.fact, v.conflicting, v.reason) not in before)
    return MergeReport(added=added, duplicates=duplicates,
                       new_violations=new_violations)


# ----------------------------------------------------------------------
# Bridge suggestion
# ----------------------------------------------------------------------
def _entity_contexts(facts: Iterable[Fact]) -> Dict[str, Set[Tuple]]:
    """Each entity's neighborhood signature: the (direction,
    relationship, neighbor) triples it participates in."""
    contexts: Dict[str, Set[Tuple]] = {}
    for fact in facts:
        if is_special_relationship(fact.relationship):
            continue
        contexts.setdefault(fact.source, set()).add(
            ("out", fact.relationship, fact.target))
        contexts.setdefault(fact.target, set()).add(
            ("in", fact.relationship, fact.source))
    return contexts


def _relationship_contexts(facts: Iterable[Fact]) -> Dict[str, Set[Tuple]]:
    """Each relationship's usage signature: its (source, target) pairs."""
    contexts: Dict[str, Set[Tuple]] = {}
    for fact in facts:
        if is_special_relationship(fact.relationship):
            continue
        contexts.setdefault(fact.relationship, set()).add(
            (fact.source, fact.target))
    return contexts


def _jaccard(left: Set, right: Set) -> float:
    if not left or not right:
        return 0.0
    union = left | right
    return len(left & right) / len(union)


@dataclass(frozen=True)
class BridgeSuggestion:
    """A candidate synonym fact with its evidence."""

    left: str
    right: str
    similarity: float
    shared: int

    def as_fact(self) -> Fact:
        return Fact(self.left, SYN, self.right)

    def render(self) -> str:
        return (f"({self.left}, ≈, {self.right})"
                f"   similarity {self.similarity:.2f},"
                f" {self.shared} shared contexts")


def _suggest(contexts: Dict[str, Set[Tuple]],
             left_universe: Optional[Set[str]],
             right_universe: Optional[Set[str]],
             min_similarity: float,
             limit: int) -> List[BridgeSuggestion]:
    names = sorted(contexts)
    suggestions: List[BridgeSuggestion] = []
    for i, left in enumerate(names):
        if left_universe is not None and left not in left_universe:
            continue
        for right in names[i + 1:]:
            if right_universe is not None and right not in right_universe:
                continue
            if left == right:
                continue
            similarity = _jaccard(contexts[left], contexts[right])
            if similarity >= min_similarity:
                suggestions.append(BridgeSuggestion(
                    left=left, right=right, similarity=similarity,
                    shared=len(contexts[left] & contexts[right])))
    suggestions.sort(key=lambda s: (-s.similarity, -s.shared,
                                    s.left, s.right))
    return suggestions[:limit]


def suggest_entity_bridges(db: Database,
                           left_universe: Optional[Iterable[str]] = None,
                           right_universe: Optional[Iterable[str]] = None,
                           min_similarity: float = 0.5,
                           limit: int = 10) -> List[BridgeSuggestion]:
    """Candidate entity synonyms, by neighborhood overlap.

    Restrict ``left_universe``/``right_universe`` to the entities that
    came from each source database to only propose cross-vocabulary
    bridges; leave them None to scan everything.
    """
    contexts = _entity_contexts(db.facts)
    return _suggest(contexts,
                    set(left_universe) if left_universe else None,
                    set(right_universe) if right_universe else None,
                    min_similarity, limit)


def suggest_relationship_bridges(
        db: Database,
        min_similarity: float = 0.5,
        limit: int = 10) -> List[BridgeSuggestion]:
    """Candidate relationship synonyms, by usage overlap — two
    relationship names repeatedly connecting the same entity pairs are
    probably the same relationship in two vocabularies (§3.3's
    SALARY/WAGE/PAY)."""
    contexts = _relationship_contexts(db.facts)
    return _suggest(contexts, None, None, min_similarity, limit)
