"""Canonical forms for conjunctive queries and query text.

Probing (§5.2) explores a lattice of generalized queries wave by wave;
two different generalization paths frequently produce the *same* query
(generalize A then B ≡ generalize B then A).  To avoid evaluating
duplicates, queries are keyed by a canonical form: templates sorted,
variables renamed by order of appearance in the sorted form, with free
(output) variables kept distinct from existential ones.

The second surface, :func:`canonical_text`, serves the plan cache
(:mod:`repro.query.plancache`): two spellings of the same query text
that differ only in insignificant whitespace normalize to one cache
key, so neither pays for a second parse or compile.  Normalization is
deliberately cheaper than parsing — it must run on every request —
and deliberately conservative: alias spellings (``in`` vs ``∈``) are
*not* folded (they occupy separate, individually correct entries), and
text containing a quote character is left untouched because whitespace
inside a quoted entity is significant.

Example::

    from repro.query.canonical import canonical_text

    assert canonical_text("(x, ∈,  BOOK)") == "(x, ∈, BOOK)"
    assert canonical_text("  (x, ∈, BOOK)\\n") == "(x, ∈, BOOK)"
    # Quoted entities may contain significant whitespace: no collapse.
    assert canonical_text('(x, ∈, "A  B")') == '(x, ∈, "A  B")'
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..core.facts import Component, Template, Variable

CanonicalForm = Tuple[Tuple[Tuple[str, str], ...], ...]


def canonical_text(text: str) -> str:
    """The plan-cache key for raw query text.

    Collapses runs of whitespace to single spaces and strips the ends —
    the only transformations guaranteed not to change what
    :func:`~repro.query.parser.parse_query` produces.  Text containing
    a quote character (where inner whitespace can be entity content) is
    only stripped.
    """
    if '"' in text or "'" in text:
        return text.strip()
    return " ".join(text.split())


def _component_key(component: Component) -> Tuple[str, str]:
    if isinstance(component, Variable):
        return ("var", component.name)
    return ("ent", component)


def canonical_form(templates: Sequence[Template],
                   free: Sequence[Variable]) -> CanonicalForm:
    """A hashable key identifying a conjunctive query up to variable
    renaming and template order."""
    free_set = set(free)
    # First sort templates by their entity skeleton so renaming is
    # order-independent, then rename variables by first appearance.
    def skeleton(template: Template):
        return tuple(
            ("var-free",) if (isinstance(c, Variable) and c in free_set)
            else ("var",) if isinstance(c, Variable)
            else ("ent", c)
            for c in template)

    ordered = sorted(templates, key=lambda t: (skeleton(t),
                                               _raw_key(t)))
    names: Dict[Variable, str] = {}
    # Free variables canonicalize by their *position in the free list*
    # (output columns are ordered), existential ones by appearance.
    for index, variable in enumerate(free):
        names[variable] = f"F{index}"
    counter = 0
    rows = []
    for template in ordered:
        row = []
        for component in template:
            if isinstance(component, Variable):
                if component not in names:
                    names[component] = f"E{counter}"
                    counter += 1
                row.append(("var", names[component]))
            else:
                row.append(("ent", component))
        rows.append(tuple(row))
    return tuple(rows)


def _raw_key(template: Template):
    return tuple(_component_key(c) for c in template)
