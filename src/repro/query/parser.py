"""Surface syntax for queries.

The paper writes queries in plain predicate notation; this parser
accepts the same shape as text::

    (JOHN, *, *)
    exists x: (x, in, BOOK) and (x, CITES, x) and (x, AUTHOR, y)
    (JOHN, LIKES, FELIX) and (FELIX, LIKES, JOHN)

Lexical rules:

* ``(c1, c2, c3)`` is a template; components are entities, variables,
  or ``*`` (a fresh anonymous variable per star, §4.1).
* identifiers starting with a lowercase letter are variables;
  everything else is an entity.  ``and`` / ``or`` / ``exists`` /
  ``forall`` are reserved (case-insensitive).
* the special entities may be written by glyph (``≺ ∈ ≈ ↔ ⊥ Δ ∇``) or
  by ASCII alias: ``ISA IN SYN INV CONTRA TOP BOTTOM``, and ``!= <= >=``
  for ``≠ ≤ ≥``.
* entities containing spaces, commas, or parentheses must be quoted:
  ``"$25,000"``.

Free variables are reported in first-appearance order, which fixes the
column order of the query's value.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.entities import (
    BOTTOM, CONTRA, GE, INV, ISA, LE, MEMBER, NE, SYN, TOP, validate_entity,
)
from ..core.errors import ParseError
from ..core.facts import Template, Variable
from .ast import And, Atom, Exists, ForAll, Formula, Or, Query

#: ASCII spellings accepted for the special entities.
ALIASES = {
    "ISA": ISA,
    "IN": MEMBER,
    "MEMBER": MEMBER,
    "SYN": SYN,
    "INV": INV,
    "CONTRA": CONTRA,
    "TOP": TOP,
    "BOTTOM": BOTTOM,
    "!=": NE,
    "<=": LE,
    ">=": GE,
}

_KEYWORDS = {"and", "or", "exists", "forall"}
_VARIABLE_RE = re.compile(r"[a-z][a-zA-Z0-9_]*\Z")
_TOKEN_RE = re.compile(
    r"""
    \s*(
        "(?:[^"\\]|\\.)*"      # double-quoted entity
      | '(?:[^'\\]|\\.)*'      # single-quoted entity
      | [(),:]                 # punctuation
      | [^\s(),:'"]+           # bare word
    )
    """, re.VERBOSE)


@dataclass(frozen=True)
class _Token:
    text: str
    position: int
    quoted: bool = False


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise ParseError(
                f"cannot tokenize at position {position}: {remainder[:20]!r}",
                position)
        raw = match.group(1)
        start = match.start(1)
        if raw and raw[0] in "\"'":
            body = raw[1:-1]
            unescaped = re.sub(r"\\(.)", r"\1", body)
            tokens.append(_Token(unescaped, start, quoted=True))
        else:
            tokens.append(_Token(raw, start))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token], text: str):
        self.tokens = tokens
        self.text = text
        self.index = 0
        self.star_count = 0
        self.appearance_order: List[Variable] = []

    # ----------------------------------------------------------------
    # Token helpers
    # ----------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Optional[_Token]:
        target = self.index + offset
        if target < len(self.tokens):
            return self.tokens[target]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of query", len(self.text))
        self.index += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._next()
        if token.quoted or token.text != text:
            raise ParseError(
                f"expected {text!r}, found {token.text!r}"
                f" at position {token.position}", token.position)
        return token

    def _is_keyword(self, token: Optional[_Token], keyword: str) -> bool:
        return (token is not None and not token.quoted
                and token.text.lower() == keyword)

    # ----------------------------------------------------------------
    # Grammar
    # ----------------------------------------------------------------
    def parse_formula(self) -> Formula:
        return self._disjunction()

    def _disjunction(self) -> Formula:
        parts = [self._conjunction()]
        while self._is_keyword(self._peek(), "or"):
            self._next()
            parts.append(self._conjunction())
        if len(parts) == 1:
            return parts[0]
        return Or(tuple(parts))

    def _conjunction(self) -> Formula:
        parts = [self._unit()]
        while self._is_keyword(self._peek(), "and"):
            self._next()
            parts.append(self._unit())
        if len(parts) == 1:
            return parts[0]
        return And(tuple(parts))

    def _unit(self) -> Formula:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of query", len(self.text))
        if self._is_keyword(token, "exists") or self._is_keyword(
                token, "forall"):
            quantifier = self._next().text.lower()
            variables = self._variable_list()
            self._expect(":")
            # Quantifier scope extends as far right as possible, so
            # "exists x: A and B" quantifies over the conjunction.
            body = self.parse_formula()
            wrapper = Exists if quantifier == "exists" else ForAll
            for variable in reversed(variables):
                body = wrapper(variable, body)
            return body
        if not token.quoted and token.text == "(":
            if self._looks_like_template():
                return Atom(self._template())
            self._next()
            inner = self.parse_formula()
            self._expect(")")
            return inner
        raise ParseError(
            f"expected a template, '(', or a quantifier; found"
            f" {token.text!r} at position {token.position}", token.position)

    def _variable_list(self) -> List[Variable]:
        variables = [self._variable()]
        while True:
            token = self._peek()
            if token is not None and not token.quoted and token.text == ",":
                self._next()
                variables.append(self._variable())
            else:
                return variables

    def _variable(self) -> Variable:
        token = self._next()
        if token.quoted or not _VARIABLE_RE.match(token.text):
            raise ParseError(
                f"expected a variable (lowercase identifier), found"
                f" {token.text!r} at position {token.position}",
                token.position)
        if token.text in _KEYWORDS:
            raise ParseError(
                f"{token.text!r} is a reserved word at position"
                f" {token.position}", token.position)
        return Variable(token.text)

    def _looks_like_template(self) -> bool:
        """A '(' opens a template iff the next tokens have the shape
        ``( c , c , c )`` with single-token components."""
        def is_component(token: Optional[_Token]) -> bool:
            return token is not None and (
                token.quoted or token.text not in "(),:")

        def is_punct(token: Optional[_Token], text: str) -> bool:
            return (token is not None and not token.quoted
                    and token.text == text)

        return (is_component(self._peek(1)) and is_punct(self._peek(2), ",")
                and is_component(self._peek(3))
                and is_punct(self._peek(4), ",")
                and is_component(self._peek(5))
                and is_punct(self._peek(6), ")"))

    def _template(self) -> Template:
        self._expect("(")
        source = self._component()
        self._expect(",")
        relationship = self._component()
        self._expect(",")
        target = self._component()
        self._expect(")")
        return Template(source, relationship, target)

    def _component(self):
        token = self._next()
        if token.quoted:
            return validate_entity(token.text)
        text = token.text
        if text == "*":
            self.star_count += 1
            return Variable(f"_star{self.star_count}")
        if text.lower() in _KEYWORDS:
            raise ParseError(
                f"{text!r} is a reserved word at position {token.position}",
                token.position)
        # The ASCII aliases win over variable syntax in any case
        # (``in`` means ``∈``); quote an entity to escape them.
        if text.upper() in ALIASES:
            return ALIASES[text.upper()]
        if _VARIABLE_RE.match(text):
            variable = Variable(text)
            if variable not in self.appearance_order:
                self.appearance_order.append(variable)
            return variable
        entity = ALIASES.get(text, text)
        try:
            return validate_entity(entity)
        except Exception as error:
            raise ParseError(
                f"invalid entity {text!r} at position {token.position}:"
                f" {error}", token.position)


def parse_formula(text: str) -> Formula:
    """Parse a formula; raises :class:`ParseError` on bad syntax."""
    parser = _Parser(_tokenize(text), text)
    formula = parser.parse_formula()
    trailing = parser._peek()
    if trailing is not None:
        raise ParseError(
            f"unexpected trailing input {trailing.text!r} at position"
            f" {trailing.position}", trailing.position)
    return formula


def parse_query(text: str) -> Query:
    """Parse a query; free variables keep first-appearance order.

    Anonymous ``*`` variables are treated as existential: they do not
    become output columns (the paper's navigation tables key on the
    named structure of the template, not on star positions — see
    :mod:`repro.browse.navigation` for how stars are displayed).
    """
    parser = _Parser(_tokenize(text), text)
    formula = parser.parse_formula()
    trailing = parser._peek()
    if trailing is not None:
        raise ParseError(
            f"unexpected trailing input {trailing.text!r} at position"
            f" {trailing.position}", trailing.position)
    free = formula.free_variables()
    named = [v for v in parser.appearance_order if v in free]
    stars = sorted(
        (v for v in free if v.name.startswith("_star")),
        key=lambda v: v.name)
    return Query.of(formula, tuple(named) + tuple(stars))


def parse_template(text: str) -> Template:
    """Parse a single template such as ``(JOHN, *, *)``."""
    parser = _Parser(_tokenize(text), text)
    parsed = parser._template()
    trailing = parser._peek()
    if trailing is not None:
        raise ParseError(
            f"unexpected trailing input {trailing.text!r} at position"
            f" {trailing.position}", trailing.position)
    return parsed
