"""Shape-classified plan cache and the point-read fast path.

The paper's browsing loop (navigate, probe, retract) is dominated by
µs-scale single-atom queries, where the set-at-a-time executor's fixed
costs — parse, safety check, plan lowering, binding-table setup —
outweigh the actual probe.  This module removes all of them from the
hot path:

* **Parse memo** — query text is normalized by
  :func:`~repro.query.canonical.canonical_text` and parsed at most once
  per canonical spelling.
* **Plan cache** — parse + safety + compile results are cached per
  ``(canonical form, schema epoch)``.  The epoch is the database's
  configuration epoch (rule/view/limit changes bump it), so a
  redefinition can never serve a stale plan.  A cached plan also
  records the store *version* it was lowered against: when the version
  moves, the plan is recompiled (fresh planner estimates, fresh
  provably-empty hints) and the ``plancache.recompiles`` counter ticks.
* **Shape classifier + fast path** — single-atom plans (the classifier
  shapes ``point``/``star``/``scan``) are routed to a
  :class:`FastProbe`: a pre-bound probe that calls the interned store's
  bisect indexes (or the hash store's positional index) directly, with
  no binding-table setup and no per-row allocation beyond the output
  tuples.  The binding — generation, interned constant ids, index
  handle — is resolved once at cache-insert time and revalidated
  against store identity and version on every call; a store mutation or
  an interned-store compaction forces a rebind (``plancache.rebinds``).

Hit/miss totals are exposed as attributes, as the ``plancache.hits`` /
``plancache.misses`` obs counters, and as the same-named cross-process
metrics counters — mirroring :mod:`repro.core.cache`.

Example::

    from repro import Database

    db = Database()
    db.add("JOHN", "∈", "EMPLOYEE")
    db.query("(x, ∈, EMPLOYEE)")       # parse + compile: a miss
    db.query("(x,  ∈,  EMPLOYEE)")     # same canonical form: a hit
    db.ask("(JOHN, ∈, EMPLOYEE)")      # shares the same cache
    stats = db.stats()["plan_cache"]
    assert stats["hits"] >= 1 and stats["misses"] >= 1
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterable, List, Optional, Set, Tuple, Union

from ..core import deadline as _deadline
from ..core.errors import QueryError
from ..core.facts import Fact, Template, Variable
from ..obs import metrics as _metrics
from ..obs import tracer as _obs
from .ast import Query
from .canonical import canonical_text
from .compile import (AtomJoin, CompiledPlan, annotate_plan_ids,
                      compile_query)
from .evaluate import check_safety
from .parser import parse_query

#: Process-wide switch for the single-atom fast path.  The equivalence
#: suite flips this off to assert the routed and unrouted paths return
#: identical answers and errors; plans stay cached either way.
FAST_PATH = True


def classify(plan: CompiledPlan) -> str:
    """The plan's shape label, used for routing and observability.

    ``point``
        one atom, every position ground (a membership probe);
    ``star``
        one atom with at least one ground position (a navigation /
        point-read probe — one positional index serves it);
    ``scan``
        one fully open atom;
    ``join``
        a conjunction of atoms only;
    ``complex``
        anything with quantifiers or disjunction.

    Single-atom shapes (``point``/``star``/``scan``) are eligible for
    the :class:`FastProbe` routing; the rest run the compiled plan.
    """
    root = plan.root
    if isinstance(root, AtomJoin):
        pattern = root.formula.pattern
        ground = sum(1 for c in pattern if not isinstance(c, Variable))
        if ground == 3:
            return "point"
        return "star" if ground else "scan"
    ops = {node.op for node, _ in plan.walk()}
    if ops <= {"pipeline", "atom-join"}:
        return "join"
    return "complex"


class FastProbe:
    """A pre-bound single-atom probe: the zero-allocation fast path.

    Built once at plan-cache insert time from the plan's only
    :class:`~repro.query.compile.AtomJoin`.  The immutable parts —
    ground components, position spec, output extraction positions,
    repeated-variable equality checks, contributing virtual relations —
    are resolved here; the store-dependent parts (the interned
    generation and constant ids, or the hash store's candidate set) are
    bound lazily and revalidated against ``(store identity, store
    version)`` on every call, so mutations and compactions can never
    serve a stale index.
    """

    __slots__ = ("pattern", "shape", "s", "r", "t", "spec",
                 "out_positions", "checks", "handlers", "_bound", "_lock")

    def __init__(self, pattern: Template, shape: str,
                 out_positions: List[int],
                 checks: List[Tuple[int, int]], handlers: list):
        self.pattern = pattern
        self.shape = shape
        components = tuple(pattern)
        self.s = components[0] \
            if not isinstance(components[0], Variable) else None
        self.r = components[1] \
            if not isinstance(components[1], Variable) else None
        self.t = components[2] \
            if not isinstance(components[2], Variable) else None
        self.spec = "".join(
            letter for letter, value in (("s", self.s), ("r", self.r),
                                         ("t", self.t))
            if value is not None)
        self.out_positions = out_positions
        self.checks = checks
        self.handlers = handlers
        self._bound = None
        self._lock = threading.Lock()

    @classmethod
    def build(cls, plan: CompiledPlan, view) -> Optional["FastProbe"]:
        """A probe for a single-atom plan, or ``None`` for any other
        shape.  Requires a safety-checked query (the caller's plan
        cache only builds probes for entries without a cached error)."""
        root = plan.root
        if not isinstance(root, AtomJoin):
            return None
        pattern = root.formula.pattern
        components = tuple(pattern)
        first_occurrence = {}
        checks: List[Tuple[int, int]] = []
        for index, component in enumerate(components):
            if isinstance(component, Variable):
                if component in first_occurrence:
                    checks.append((first_occurrence[component], index))
                else:
                    first_occurrence[component] = index
        out_positions = [first_occurrence[v] for v in plan.query.variables]
        handlers = [relation for relation in view.virtual
                    if relation.handles(pattern)]
        return cls(pattern, classify(plan), out_positions, checks,
                   handlers)

    # ------------------------------------------------------------------
    # Binding (resolved at insert / first use, revalidated per call)
    # ------------------------------------------------------------------
    def bind(self, store) -> tuple:
        """Resolve the probe's candidate set for ``store``.

        For an interned store the generation's bisect index is walked
        *now* — constants interned, positions resolved, facts decoded,
        tombstones filtered, overlay merged — so later calls only
        iterate the memoized list.  Hash stores hand out their live
        indexed candidate set directly.  Both are safe to memoize
        because every mutation moves ``store.version``, and
        :meth:`_binding` revalidates ``(store identity, version)`` on
        each call — a mutation or an interned-store compaction forces
        a rebind (``plancache.rebinds``).
        """
        if getattr(store, "interned", False):
            facts: List[Fact] = []
            generation = store.generation
            if generation is not None:
                resolved = store._spec_ids(self.s, self.r, self.t)
                if resolved is not None:
                    fact_at = generation.fact_at
                    removed = store._removed
                    positions = generation.positions(*resolved)
                    if removed:
                        facts = [fact for fact in map(fact_at, positions)
                                 if fact not in removed]
                    else:
                        facts = [fact_at(p) for p in positions]
            if len(store._overlay):
                facts += store._overlay.lookup(self.s, self.r, self.t)
            bound = (store, store.version, facts)
        else:
            bound = (store, store.version,
                     store.lookup(self.s, self.r, self.t))
        with self._lock:
            self._bound = bound
        return bound

    def _binding(self, store) -> tuple:
        bound = self._bound
        if bound is None or bound[0] is not store \
                or bound[1] != store.version:
            bound = self.bind(store)
            if _obs.ENABLED:
                _obs.TRACER.count("plancache.rebinds")
            if _metrics.ENABLED:
                _metrics.METRICS.count("plancache.rebinds")
        return bound

    def _stored_facts(self, store) -> Iterable[Fact]:
        """Stored candidates for the pattern's ground positions, via
        the pre-bound handle (exact up to repeated-variable checks)."""
        return self._binding(store)[2]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, view) -> Set[Tuple[str, ...]]:
        """The projected answer set — identical to executing the
        compiled plan and projecting onto the query variables."""
        if _deadline.ACTIVE:
            _deadline.check()
        out_positions = self.out_positions
        checks = self.checks
        results: Set[Tuple[str, ...]] = set()
        add = results.add
        if checks:
            for fact in self._stored_facts(view.store):
                if all(fact[i] == fact[j] for i, j in checks):
                    add(tuple(fact[p] for p in out_positions))
        else:
            for fact in self._stored_facts(view.store):
                add(tuple(fact[p] for p in out_positions))
        if self.handlers:
            self._merge_virtual(view, add)
        return results

    def any(self, view) -> bool:
        """True when the answer set is non-empty (``ask`` /
        ``succeeds``), stopping at the first witness."""
        if _deadline.ACTIVE:
            _deadline.check()
        checks = self.checks
        for fact in self._stored_facts(view.store):
            if not checks or all(fact[i] == fact[j] for i, j in checks):
                return True
        if self.handlers:
            witness: List[bool] = []
            self._merge_virtual(view, lambda _value: witness.append(True),
                                stop_early=True)
            return bool(witness)
        return False

    def _merge_virtual(self, view, add, stop_early: bool = False) -> None:
        """Fold in virtual contributions, re-checked against the
        pattern exactly as the compiled executor's batch probe does."""
        pattern = self.pattern
        out_positions = self.out_positions
        store = view.store
        for relation in self.handlers:
            for fact in relation.facts(pattern, store):
                if pattern.match(fact) is not None:
                    add(tuple(fact[p] for p in out_positions))
                    if stop_early:
                        return


class PlanEntry:
    """One cached query: the parsed form, the compiled plan (or the
    cached static :class:`~repro.core.errors.QueryError` message), the
    shape label, and — for single-atom shapes — the pre-bound
    :class:`FastProbe`.

    ``token`` is the answer-version token the plan was lowered under
    (the database's ``(base version, epoch, limit)`` cache token): any
    base mutation moves it, which is what lets :meth:`PlanCache.plan_for`
    trust planner estimates and provably-empty hints while it matches.
    """

    __slots__ = ("key", "query", "error", "plan", "token", "shape",
                 "fast")

    def __init__(self, key: str, query: Query, error: Optional[str],
                 plan: Optional[CompiledPlan], token,
                 shape: str, fast: Optional[FastProbe]):
        self.key = key
        self.query = query
        self.error = error
        self.plan = plan
        self.token = token
        self.shape = shape
        self.fast = fast

    def __repr__(self) -> str:
        return (f"PlanEntry({self.key!r}, shape={self.shape},"
                f" fast={self.fast is not None},"
                f" error={self.error is not None})")


class PlanCache:
    """Canonical-form keyed LRU cache of parsed + compiled queries.

    One instance per :class:`~repro.db.Database`, **shared** with every
    snapshot it publishes (like the versioned result cache), so the
    serving layer's readers reuse plans across snapshot publications
    and a replica process keeps its plans warm across requests.
    Thread-safe: one lock guards each ordered map; entry revalidation
    publishes complete plans before bumping the entry version, so a
    concurrent reader either sees a matching (plan, version) pair or
    recompiles for its own view.
    """

    def __init__(self, maxsize: int = 1024):
        if maxsize < 1:
            raise ValueError("plan cache maxsize must be >= 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.recompiles = 0
        self.verdict_hits = 0
        self.verdict_misses = 0
        self._parses: "OrderedDict[str, Query]" = OrderedDict()
        self._entries: "OrderedDict[tuple, PlanEntry]" = OrderedDict()
        self._verdicts: dict = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Parse memo (both engines)
    # ------------------------------------------------------------------
    def parsed(self, text: str) -> Tuple[str, Query]:
        """``(canonical key, parsed query)`` — parsing at most once per
        canonical spelling.  Used directly by the reference engine,
        and by :meth:`entry` on a plan miss."""
        key = canonical_text(text)
        with self._lock:
            query = self._parses.get(key)
            if query is not None:
                self._parses.move_to_end(key)
                self.hits += 1
                hit = True
            else:
                self.misses += 1
                hit = False
        self._count(hit)
        if query is None:
            query = parse_query(key)
            with self._lock:
                self._parses[key] = query
                while len(self._parses) > self.maxsize:
                    self._parses.popitem(last=False)
        return key, query

    def _parse_uncounted(self, key: str) -> Query:
        with self._lock:
            query = self._parses.get(key)
        if query is None:
            query = parse_query(key)
            with self._lock:
                self._parses[key] = query
                while len(self._parses) > self.maxsize:
                    self._parses.popitem(last=False)
        return query

    # ------------------------------------------------------------------
    # Plan entries (compiled engine)
    # ------------------------------------------------------------------
    def entry(self, query: Union[str, Query], view, epoch,
              token) -> PlanEntry:
        """The cached entry for ``query`` under configuration ``epoch``,
        building parse + safety + plan + fast probe on a miss.

        ``token`` is the caller's answer-version token (see
        :class:`PlanEntry`); it does *not* participate in the cache key
        — a moved token revalidates the existing entry's plan in
        :meth:`plan_for` instead of inserting a duplicate."""
        if isinstance(query, str):
            key = canonical_text(query)
            parsed = None
        else:
            key = str(query)
            parsed = query
        cache_key = (key, epoch)
        with self._lock:
            entry = self._entries.get(cache_key)
            if entry is not None:
                self._entries.move_to_end(cache_key)
                self.hits += 1
            else:
                self.misses += 1
        self._count(entry is not None)
        if entry is not None:
            return entry
        if parsed is None:
            parsed = self._parse_uncounted(key)
        error: Optional[str] = None
        plan: Optional[CompiledPlan] = None
        shape = "error"
        fast: Optional[FastProbe] = None
        try:
            check_safety(parsed.formula)
        except QueryError as exc:
            error = str(exc)
        if error is None:
            plan = compile_query(parsed, view)
            shape = classify(plan)
            fast = FastProbe.build(plan, view)
            if fast is not None:
                fast.bind(view.store)
            if getattr(view.store, "interned", False):
                annotate_plan_ids(plan, view.store)
        entry = PlanEntry(key, parsed, error, plan, token, shape, fast)
        with self._lock:
            self._entries[cache_key] = entry
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return entry

    def plan_for(self, entry: PlanEntry, view, token) -> CompiledPlan:
        """The entry's plan, revalidated against the caller's answer
        token.

        A moved token means the planner's estimates — and any
        provably-empty hints lowered into the plan — may no longer
        hold, so the query is recompiled against the caller's own view
        and the refreshed plan is published back to the entry (plan
        first, token second, so a concurrent reader at a different
        version can never pair a fresh plan with a stale check).
        """
        if entry.token == token:
            return entry.plan
        plan = compile_query(entry.query, view)
        if getattr(view.store, "interned", False):
            annotate_plan_ids(plan, view.store)
        self.recompiles += 1
        if _obs.ENABLED:
            _obs.TRACER.count("plancache.recompiles")
        if _metrics.ENABLED:
            _metrics.METRICS.count("plancache.recompiles")
        entry.plan = plan
        entry.token = token
        return plan

    # ------------------------------------------------------------------
    # Verdict memo (ask / succeeds)
    # ------------------------------------------------------------------
    def cached_verdict(self, kind: str, text: str, epoch, token):
        """The memoized boolean for ``ask``/``succeeds`` on ``text``,
        or ``None`` on a miss.

        Verdicts skip even the plan-entry lookup and canonicalization —
        the dominant fixed costs of a warm truth query — keyed on the
        raw query text.  Reads are lock-free (a GIL-atomic dict get);
        staleness is impossible because the stored value carries the
        epoch and answer-version token it was computed under, and both
        must match exactly.  Disabled while :data:`FAST_PATH` is off so
        the equivalence suite always exercises the real paths.
        """
        if not FAST_PATH:
            return None
        stored = self._verdicts.get((kind, text))
        if stored is not None and stored[0] == epoch \
                and stored[1] == token:
            self.verdict_hits += 1
            return stored[2]
        self.verdict_misses += 1
        return None

    def store_verdict(self, kind: str, text: str, epoch, token,
                      verdict: bool) -> None:
        """Memoize a computed truth value under its epoch + token."""
        verdicts = self._verdicts
        if len(verdicts) >= 4 * self.maxsize:
            verdicts.clear()  # crude, rare: tokens churn entries anyway
        verdicts[(kind, text)] = (epoch, token, verdict)

    # ------------------------------------------------------------------
    @staticmethod
    def _count(hit: bool) -> None:
        if _obs.ENABLED:
            _obs.TRACER.count(
                "plancache.hits" if hit else "plancache.misses")
        if _metrics.ENABLED:
            _metrics.METRICS.count(
                "plancache.hits" if hit else "plancache.misses")

    def clear(self) -> None:
        """Drop every parse, plan, and verdict entry (statistics are
        kept)."""
        with self._lock:
            self._parses.clear()
            self._entries.clear()
            self._verdicts.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        """Hit/miss/recompile totals plus current sizes."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "recompiles": self.recompiles,
                "verdict_hits": self.verdict_hits,
                "verdict_misses": self.verdict_misses,
                "entries": len(self._entries),
                "parses": len(self._parses),
                "verdicts": len(self._verdicts),
                "maxsize": self.maxsize,
            }

    def __repr__(self) -> str:
        return (f"PlanCache({len(self._entries)}/{self.maxsize},"
                f" {self.hits} hits, {self.misses} misses)")
