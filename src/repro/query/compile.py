"""Lowering formulas to set-at-a-time plans.

The reference evaluator (:mod:`repro.query.evaluate`) is
tuple-at-a-time: it re-ranks the remaining conjuncts and allocates a
binding dict for *every partial binding*.  This module performs the
planning work **once**: a :class:`~repro.query.ast.Query` is lowered
into a tree of plan operators —

* :class:`AtomJoin` — index-backed scan / hash join for one template,
* :class:`Pipeline` — a conjunction, children in greedy selectivity
  order (with a cheap adaptive re-order at run time),
* :class:`Union` — a disjunction with per-input-row deduplication,
* :class:`SemiJoin` — ``∃`` as a semi-join on the distinct projection
  of the input,
* :class:`ForAllProbe` — ``∀`` as an anti-probe of the active domain,
  chunked so failed rows drop out early —

which :mod:`repro.query.exec` then runs over *binding tables* (columnar
tuples of entity ids) instead of per-row dicts.

The join order inside each :class:`Pipeline` is chosen here from
:func:`~repro.query.planner.conjunct_rank` — the same estimator the
reference engine consults per binding — so both engines attack a
conjunction the same way; the compiled engine just decides once.
Quantifier deferral (satellite of the same planner) applies identically:
a part whose free variables are not yet generated sorts after every
generator.

Compilation itself runs at most once per query text per schema epoch:
:class:`~repro.query.plancache.PlanCache` memoizes parse + safety +
lowering, and single-atom plans additionally get a pre-bound
:class:`~repro.query.plancache.FastProbe` that answers repeats
straight from the store's indexes without executing the plan.

Example::

    from repro import Database
    from repro.query.compile import compile_query
    from repro.query.parser import parse_query

    db = Database()
    db.add("JOHN", "∈", "EMPLOYEE")
    plan = compile_query(parse_query("(x, ∈, EMPLOYEE)"), db.view())
    assert "atom-join" in plan.describe()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Set, Tuple, Union as TUnion

from ..core.entities import BOTTOM, ISA, TOP
from ..core.errors import QueryError
from ..core.facts import Variable
from ..virtual.computed import FactView
from ..virtual.math_facts import MathRelation
from .ast import And, Atom, Exists, ForAll, Formula, Or, Query
from .planner import conjunct_rank, estimate_cost

#: Relationship constants that make one of the three standard virtual
#: relations handle a template: the comparators (math facts), ``≺``
#: (reflexive generalization), and ``Δ`` in relationship position
#: (endpoint witnessing).  ``∇`` as source / ``Δ`` as target are the
#: other two endpoint triggers, tested separately.
_TRIGGER_RELS = frozenset(MathRelation.HANDLED) | {ISA, TOP}


class PlanNode:
    """Base class of plan operators.

    Every node carries its source ``formula``, the compile-time row
    estimate ``est`` (the planner's :func:`estimate_cost` at lowering
    time — per *input row*, like the reference engine's per-binding
    estimate), and an ``op`` name for rendering and stats keys.
    """

    op = "plan"
    formula: Formula
    est: float

    def children(self) -> Tuple["PlanNode", ...]:
        return ()

    @property
    def label(self) -> str:
        return f"{self.op} {self.formula}"

    def walk(self, depth: int = 0) -> Iterator[Tuple["PlanNode", int]]:
        """This node and all descendants, preorder with depths."""
        yield self, depth
        for child in self.children():
            yield from child.walk(depth + 1)


@dataclass
class AtomJoin(PlanNode):
    """Join the input table with one template's matches.

    At run time the executor groups input rows by their values for the
    template's bound variables, resolves the right positional index
    handle once, and probes it once per *distinct* key — the batch
    analogue of the reference engine's per-binding
    ``view.solutions(pattern, binding)``.
    """

    formula: Atom
    est: float
    #: Set at lowering time when the view has exact counts and this
    #: template provably matches nothing — zero stored facts and no
    #: virtual relation handles it.  Substitution only restricts a
    #: match set, so the hint holds for every runtime key and the
    #: executor emits the empty table without probing.
    empty_hint: bool = False
    #: Per-generation interned ground constants
    #: (:class:`AtomIdAnnotation`), installed by
    #: :func:`annotate_plan_ids` at plan-bind time and validated by
    #: generation identity in the executor, which rebuilds lazily on a
    #: mismatch — a cache, never a correctness requirement.
    id_ann: object = field(default=None, repr=False, compare=False)
    op = "atom-join"

    @property
    def label(self) -> str:
        suffix = "   [provably empty]" if self.empty_hint else ""
        return f"{self.op} {self.formula}{suffix}"


@dataclass
class Pipeline(PlanNode):
    """A conjunction: children run left to right over the growing
    binding table.  The order is fixed here (greedy, cheapest first,
    deferred quantifiers last); the executor re-ranks the remaining
    children only when a child's actual fanout diverges more than 10×
    from its estimate."""

    formula: And
    parts: Tuple[PlanNode, ...]
    est: float
    op = "pipeline"

    def children(self) -> Tuple[PlanNode, ...]:
        return self.parts

    @property
    def label(self) -> str:
        return f"{self.op} (∧, {len(self.parts)} parts)"


@dataclass
class Union(PlanNode):
    """A disjunction: each branch runs over the full input table and
    the outputs are merged with per-input-row deduplication on the
    disjunction's free variables (the reference engine's ``seen`` set,
    batched)."""

    formula: Or
    branches: Tuple[PlanNode, ...]
    est: float
    op = "union"

    def children(self) -> Tuple[PlanNode, ...]:
        return self.branches

    @property
    def label(self) -> str:
        return f"{self.op} (∨, {len(self.branches)} branches)"


@dataclass
class SemiJoin(PlanNode):
    """``(∃x) A`` — run the body over the *distinct projection* of the
    input onto the body's outer variables, then join the witnesses
    back.  An outer binding of the quantified variable is shadowed
    inside and restored in the output, exactly as in the reference
    engine."""

    formula: Exists
    body: PlanNode
    est: float
    op = "semi-join"

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.body,)

    @property
    def label(self) -> str:
        return f"{self.op} (∃{self.formula.variable.name})"


@dataclass
class ForAllProbe(PlanNode):
    """``(∀x) A`` — an anti-probe: for each surviving distinct input
    projection, the body must succeed for *every* entity of the active
    domain.  The domain is probed in chunks so rows that already failed
    stop paying for the rest of the scan."""

    formula: ForAll
    body: PlanNode
    est: float
    op = "forall-probe"

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.body,)

    @property
    def label(self) -> str:
        return f"{self.op} (∀{self.formula.variable.name})"


@dataclass
class CompiledPlan:
    """A lowered query: the operator tree plus the output tuple order."""

    query: Query
    root: PlanNode

    def walk(self) -> Iterator[Tuple[PlanNode, int]]:
        return self.root.walk()

    def describe(self) -> str:
        """Human-readable plan tree with compile-time estimates."""
        lines = [f"compiled plan: {self.query}"]
        for node, depth in self.walk():
            lines.append("  " * (depth + 1)
                         + f"{node.label}   [est {node.est:.1f}]")
        return "\n".join(lines)


class AtomIdAnnotation:
    """One AtomJoin's ground constants interned against one generation.

    ``ground[p]`` is ``None`` for variable positions, else
    ``(name, base id or None)`` — ``None`` id meaning the generation
    never saw the constant, so it can only match through the overlay or
    a virtual relation.  The trigger flags record whether the *ground*
    components alone make a standard virtual relation handle every
    substituted template (bound-variable positions are tested per key
    in id space by the executor).  Codec-independent — no scratch ids —
    so one annotation is safely shared across threads and executions of
    the same generation.
    """

    __slots__ = ("generation", "ground", "rel_trigger", "src_trigger",
                 "tgt_trigger")


def bind_atom_ids(pattern, generation) -> AtomIdAnnotation:
    """Intern one template's ground constants against ``generation``."""
    id_of = generation.interner.id_of
    ground: List = [None, None, None]
    for p, component in enumerate(pattern):
        if not isinstance(component, Variable):
            ground[p] = (component, id_of(component))
    ann = AtomIdAnnotation()
    ann.generation = generation
    ann.ground = tuple(ground)
    source, relationship, target = pattern
    ann.rel_trigger = (not isinstance(relationship, Variable)
                       and relationship in _TRIGGER_RELS)
    ann.src_trigger = source == BOTTOM
    ann.tgt_trigger = target == TOP
    return ann


def annotate_plan_ids(plan: CompiledPlan, store) -> None:
    """Intern every AtomJoin's ground constants once per plan bind.

    Called from the plan cache when it (re)binds a plan to an interned
    store, so repeated executions skip the per-constant ``id_of``
    resolutions.  Keyed on generation *identity* — a compaction keeps
    the store version but re-interns every id, and the executor's
    identity check catches exactly that.
    """
    generation = getattr(store, "generation", None)
    if generation is None:
        return
    for node, _depth in plan.walk():
        if isinstance(node, AtomJoin):
            ann = node.id_ann
            if ann is None or ann.generation is not generation:
                node.id_ann = bind_atom_ids(node.formula.pattern,
                                            generation)


def compile_query(query: TUnion[str, Query],
                  view: FactView) -> CompiledPlan:
    """Lower a query to a :class:`CompiledPlan` against ``view``.

    Lowering never touches the data (beyond the planner's index-size
    estimates) and never raises on unsafe formulas — safety is the
    evaluator's check, and runtime range-restriction errors must only
    surface when an offending operator actually receives rows, to match
    the reference engine's behavior.
    """
    if isinstance(query, str):
        from .parser import parse_query
        query = parse_query(query)
    root = _lower(query.formula, set(), view)
    return CompiledPlan(query=query, root=root)


def _lower(formula: Formula, bound: Set[Variable],
           view: FactView) -> PlanNode:
    """Recursively lower one formula, given the variables the enclosing
    context will have bound when this node runs."""
    if isinstance(formula, Atom):
        hint = bool(getattr(view, "exact_counts", False)) \
            and view.count_estimate(formula.pattern) == 0
        return AtomJoin(formula, est=estimate_cost(formula, bound, view),
                        empty_hint=hint)
    if isinstance(formula, And):
        remaining = list(formula.parts)
        b = set(bound)
        parts: List[PlanNode] = []
        while remaining:
            best_index, best_rank = 0, None
            for index, part in enumerate(remaining):
                rank, _cost = conjunct_rank(part, b, view)
                if best_rank is None or rank < best_rank:
                    best_rank, best_index = rank, index
            part = remaining.pop(best_index)
            parts.append(_lower(part, b, view))
            b |= part.free_variables()
        return Pipeline(formula, tuple(parts),
                        est=estimate_cost(formula, bound, view))
    if isinstance(formula, Or):
        branches = tuple(_lower(p, set(bound), view) for p in formula.parts)
        return Union(formula, branches,
                     est=sum(b.est for b in branches))
    if isinstance(formula, Exists):
        body = _lower(formula.body, bound - {formula.variable}, view)
        return SemiJoin(formula, body, est=body.est)
    if isinstance(formula, ForAll):
        body = _lower(
            formula.body,
            bound | formula.free_variables() | {formula.variable}, view)
        return ForAllProbe(formula, body, est=body.est)
    raise QueryError(f"unknown formula type: {type(formula).__name__}")
