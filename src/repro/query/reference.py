"""A brute-force reference evaluator, for differential testing.

Evaluates formulas by enumerating *every* assignment of the free
variables over the active domain and checking satisfaction
recursively — exponential, obviously correct, and entirely independent
of the production evaluator's join machinery, planner, and binding
plumbing.  The property tests assert the two agree on random heaps and
random queries.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Sequence, Set, Tuple

from ..core.facts import Binding, Template, Variable
from ..virtual.computed import FactView
from .ast import And, Atom, Exists, ForAll, Formula, Or, Query


def _satisfied(formula: Formula, binding: Binding, view: FactView,
               domain: Sequence[str]) -> bool:
    """Truth of a formula under a *total* binding of its free vars."""
    if isinstance(formula, Atom):
        ground = formula.pattern.substitute(binding)
        if not ground.is_ground():
            raise ValueError(f"binding does not cover {formula}")
        return any(True for _ in view.match(ground))
    if isinstance(formula, And):
        return all(
            _satisfied(part, binding, view, domain)
            for part in formula.parts)
    if isinstance(formula, Or):
        return any(
            _satisfied(part, binding, view, domain)
            for part in formula.parts)
    if isinstance(formula, Exists):
        for entity in domain:
            extended = dict(binding)
            extended[formula.variable] = entity
            if _satisfied(formula.body, extended, view, domain):
                return True
        return False
    if isinstance(formula, ForAll):
        for entity in domain:
            extended = dict(binding)
            extended[formula.variable] = entity
            if not _satisfied(formula.body, extended, view, domain):
                return False
        return True
    raise TypeError(f"unknown formula: {type(formula).__name__}")


def brute_force_evaluate(view: FactView,
                         query: Query) -> Set[Tuple[str, ...]]:
    """The value {Q} by exhaustive enumeration of the active domain.

    Note one deliberate difference from the production evaluator: free
    variables range over the *active domain only*, so queries whose
    templates match virtual facts outside it (e.g. ``(x, ≺, Δ)`` with
    ``x = ∇``) may differ.  The differential tests use domain-grounded
    queries, which is also the class the paper's examples live in.
    """
    domain = sorted(view.entities())
    variables = query.variables
    results: Set[Tuple[str, ...]] = set()
    for assignment in product(domain, repeat=len(variables)):
        binding: Binding = dict(zip(variables, assignment))
        if _satisfied(query.formula, binding, view, domain):
            results.add(tuple(assignment))
    return results
