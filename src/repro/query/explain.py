"""EXPLAIN: show how the evaluator will attack a query.

The planner re-ranks conjuncts dynamically per binding, so a full
static plan does not exist; what *can* be shown — and what this module
renders — is the greedy static order from the initial state, each
part's estimated cost, and the safety classification of the query's
variables.  Useful for understanding why a probe is slow and for
testing the planner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Union

from ..core.facts import Variable
from ..virtual.computed import FactView
from .ast import And, Atom, Exists, ForAll, Formula, Or, Query
from .evaluate import check_safety, limited_variables
from .parser import parse_query
from .planner import estimate_cost, order_conjuncts


@dataclass
class PlanStep:
    """One conjunct in the chosen static order."""

    order: int
    formula: Formula
    estimated_cost: float
    bound_before: Set[str]

    def describe(self) -> str:
        bound = ", ".join(sorted(self.bound_before)) or "-"
        return (f"{self.order}. {self.formula}"
                f"   [est {self.estimated_cost:.1f}; bound: {bound}]")


@dataclass
class Explanation:
    """The full explanation of a query."""

    query: Query
    steps: List[PlanStep]
    safe: bool
    safety_error: str = ""

    def render(self) -> str:
        lines = [f"query: {self.query}"]
        lines.append(
            "safety: ok" if self.safe else f"safety: {self.safety_error}")
        if self.steps:
            lines.append("initial conjunct order:")
            lines.extend("  " + step.describe() for step in self.steps)
        else:
            lines.append("single-part formula; no join ordering needed")
        return "\n".join(lines)


def explain(view: FactView, query: Union[str, Query]) -> Explanation:
    """Explain the evaluation of ``query`` against ``view``."""
    if isinstance(query, str):
        query = parse_query(query)
    safe, error = True, ""
    try:
        check_safety(query.formula)
    except Exception as exc:  # QueryError, reported not raised
        safe, error = False, str(exc)

    steps: List[PlanStep] = []
    formula = query.formula
    while isinstance(formula, Exists):
        formula = formula.body
    if isinstance(formula, And):
        bound: Set[Variable] = set()
        ordered = order_conjuncts(list(formula.parts), bound, view)
        for index, part in enumerate(ordered, start=1):
            steps.append(PlanStep(
                order=index,
                formula=part,
                estimated_cost=estimate_cost(part, bound, view),
                bound_before={v.name for v in bound},
            ))
            bound |= part.free_variables()
    return Explanation(query=query, steps=steps, safe=safe,
                       safety_error=error)
