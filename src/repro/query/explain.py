"""EXPLAIN: show how the evaluator will attack a query.

The planner re-ranks conjuncts dynamically per binding, so a full
static plan does not exist; what *can* be shown — and what this module
renders — is the greedy static order from the initial state, each
part's estimated cost, and the safety classification of the query's
variables.  Useful for understanding why a probe is slow and for
testing the planner.

:func:`explain_analyze` goes one step further: it *runs* the query
under a scoped tracer and renders the plan and the actual execution
side by side — per-conjunct estimated cost against rows actually
produced, plus wall/CPU time and the evaluator's counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Union

from ..core.facts import Variable
from ..obs.tracer import ConjunctStats, Tracer, use_tracer
from ..virtual.computed import FactView
from .ast import And, Atom, Exists, ForAll, Formula, Or, Query
from .evaluate import Evaluator, check_safety, limited_variables
from .parser import parse_query
from .planner import estimate_cost, order_conjuncts


@dataclass
class PlanStep:
    """One conjunct in the chosen static order."""

    order: int
    formula: Formula
    estimated_cost: float
    bound_before: Set[str]

    def describe(self) -> str:
        bound = ", ".join(sorted(self.bound_before)) or "-"
        return (f"{self.order}. {self.formula}"
                f"   [est {self.estimated_cost:.1f}; bound: {bound}]")


@dataclass
class Explanation:
    """The full explanation of a query."""

    query: Query
    steps: List[PlanStep]
    safe: bool
    safety_error: str = ""
    #: Rendered compiled operator tree (set when the compiled engine
    #: explains the query; empty under the reference engine).
    compiled_plan: str = ""

    def render(self) -> str:
        lines = [f"query: {self.query}"]
        lines.append(
            "safety: ok" if self.safe else f"safety: {self.safety_error}")
        if self.steps:
            lines.append("initial conjunct order:")
            lines.extend("  " + step.describe() for step in self.steps)
        else:
            lines.append("single-part formula; no join ordering needed")
        if self.compiled_plan:
            lines.append(self.compiled_plan)
        return "\n".join(lines)


def explain(view: FactView, query: Union[str, Query],
            engine: str = "reference") -> Explanation:
    """Explain the evaluation of ``query`` against ``view``.

    With ``engine="compiled"``, the rendered explanation additionally
    shows the compiled operator tree (:mod:`repro.query.compile`) with
    each operator's compile-time row estimate.
    """
    if isinstance(query, str):
        query = parse_query(query)
    safe, error = True, ""
    try:
        check_safety(query.formula)
    except Exception as exc:  # QueryError, reported not raised
        safe, error = False, str(exc)

    steps: List[PlanStep] = []
    formula = query.formula
    while isinstance(formula, Exists):
        formula = formula.body
    if isinstance(formula, And):
        bound: Set[Variable] = set()
        ordered = order_conjuncts(list(formula.parts), bound, view)
        for index, part in enumerate(ordered, start=1):
            steps.append(PlanStep(
                order=index,
                formula=part,
                estimated_cost=estimate_cost(part, bound, view),
                bound_before={v.name for v in bound},
            ))
            bound |= part.free_variables()
    compiled_plan = ""
    if engine == "compiled":
        from .compile import compile_query
        compiled_plan = compile_query(query, view).describe()
    return Explanation(query=query, steps=steps, safe=safe,
                       safety_error=error, compiled_plan=compiled_plan)


# ----------------------------------------------------------------------
# EXPLAIN ANALYZE
# ----------------------------------------------------------------------
@dataclass
class AnalyzedStep:
    """One conjunct with the planner's estimate beside what actually
    happened when the query ran."""

    order: int
    formula: str
    estimated_cost: float
    evals: int
    actual_rows: int


@dataclass
class AnalyzedExplanation:
    """Plan vs actual for one executed query."""

    explanation: Explanation
    value: Set[tuple] = field(default_factory=set)
    executed: bool = False
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    steps: List[AnalyzedStep] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def rows(self) -> int:
        return len(self.value)

    def render(self) -> str:
        from ..benchio.reporting import format_table

        lines = [self.explanation.render()]
        if not self.executed:
            lines.append("not executed (query is unsafe)")
            return "\n".join(lines)
        lines.append("")
        lines.append("plan vs actual:")
        if self.steps:
            rows = [[step.order, step.formula,
                     round(step.estimated_cost, 1), step.actual_rows,
                     step.evals]
                    for step in self.steps]
            table = format_table(
                ["#", "conjunct", "est cost", "actual rows", "evals"],
                rows)
            lines.extend("  " + line for line in table.splitlines())
        else:
            lines.append("  (single template; no conjunct breakdown)")
        lines.append(f"result rows: {self.rows}")
        lines.append(f"wall: {self.wall_seconds * 1000:.3f} ms"
                     f"   cpu: {self.cpu_seconds * 1000:.3f} ms")
        if self.counters:
            interesting = {
                name: value for name, value in sorted(self.counters.items())
                if not name.startswith("store.solutions.calls.")
            }
            lines.append("counters: " + ", ".join(
                f"{name}={value}" for name, value in interesting.items()))
        return "\n".join(lines)


def explain_analyze(view: FactView, query: Union[str, Query],
                    engine: str = "reference") -> AnalyzedExplanation:
    """Run ``query`` under a scoped tracer and report plan vs actual.

    The static plan (greedy initial conjunct order with estimated
    costs) is computed first, then the query executes for real — same
    evaluator, same view — inside a private tracer, and the per-conjunct
    actual row counts are joined back onto the plan steps.  Unsafe
    queries are explained but not executed.

    With ``engine="compiled"``, execution goes through the
    set-at-a-time executor and the analyzed steps are the compiled
    plan's *operators* — estimated vs actual rows per operator, in
    plan-tree preorder — instead of the reference engine's per-conjunct
    records.
    """
    if isinstance(query, str):
        query = parse_query(query)
    plan = explain(view, query, engine=engine)
    analyzed = AnalyzedExplanation(explanation=plan)
    if not plan.safe:
        return analyzed

    if engine == "compiled":
        from .exec import CompiledEvaluator

        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("explain_analyze", query=str(query)) as root:
                analyzed.value, run = CompiledEvaluator(
                    view).evaluate_with_stats(query)
        analyzed.executed = True
        analyzed.wall_seconds = root.wall
        analyzed.cpu_seconds = root.cpu
        analyzed.counters = dict(tracer.counters)
        for index, stats in enumerate(run.operators, start=1):
            analyzed.steps.append(AnalyzedStep(
                order=index, formula=stats.label,
                estimated_cost=stats.est,
                evals=stats.calls, actual_rows=stats.out_rows))
        return analyzed

    tracer = Tracer()
    with use_tracer(tracer):
        with tracer.span("explain_analyze", query=str(query)) as root:
            analyzed.value = Evaluator(view).evaluate(query)
    analyzed.executed = True
    analyzed.wall_seconds = root.wall
    analyzed.cpu_seconds = root.cpu
    analyzed.counters = dict(tracer.counters)

    recorded = dict(tracer.conjuncts)
    for step in plan.steps:
        key = str(step.formula)
        stats: Optional[ConjunctStats] = recorded.pop(key, None)
        analyzed.steps.append(AnalyzedStep(
            order=step.order, formula=key,
            estimated_cost=step.estimated_cost,
            evals=stats.evals if stats else 0,
            actual_rows=stats.rows if stats else 0))
    # Conjuncts evaluated inside quantified sub-formulas do not appear
    # in the static plan; list them after the planned steps so nothing
    # the evaluator did is hidden.
    for key, stats in sorted(recorded.items()):
        analyzed.steps.append(AnalyzedStep(
            order=len(analyzed.steps) + 1, formula=key,
            estimated_cost=stats.estimate_mean,
            evals=stats.evals, actual_rows=stats.rows))
    return analyzed
