"""The standard query language: predicate-logic formulas over templates.

§2.7's retrieval language: template atoms combined with ∧, ∨, ∃, ∀
over the closure plus the virtual relations.  The package provides the
AST (:mod:`repro.query.ast`), the textual surface syntax
(:mod:`repro.query.parser`), a selectivity-based conjunct planner, the
backtracking evaluator, EXPLAIN / EXPLAIN ANALYZE, and a brute-force
reference evaluator used for differential testing.

Example::

    from repro import Database

    db = Database()
    db.add("JOHN", "∈", "EMPLOYEE")
    db.add("EMPLOYEE", "EARNS", "SALARY")
    assert db.query("(x, EARNS, SALARY)") == {("JOHN",), ("EMPLOYEE",)}
    assert db.ask("exists y: (JOHN, EARNS, y)")
"""

from .ast import (
    And,
    Atom,
    Exists,
    ForAll,
    Formula,
    Or,
    Query,
    atom,
    exists,
    forall,
)
from .canonical import canonical_form, canonical_text
from .compile import CompiledPlan, compile_query
from .evaluate import Evaluator, check_safety, limited_variables
from .plancache import FastProbe, PlanCache, PlanEntry, classify
from .exec import (
    BindingTable,
    CompiledEvaluator,
    OperatorStats,
    PlanRun,
    execute_plan,
)
from .explain import Explanation, PlanStep, explain
from .parser import ALIASES, parse_formula, parse_query, parse_template
from .planner import estimate_cost, next_conjunct, order_conjuncts
from .reference import brute_force_evaluate

__all__ = [
    "And", "Atom", "Exists", "ForAll", "Formula", "Or", "Query", "atom",
    "exists", "forall", "canonical_form", "canonical_text",
    "CompiledPlan", "compile_query",
    "FastProbe", "PlanCache", "PlanEntry", "classify",
    "Evaluator", "check_safety", "limited_variables", "BindingTable",
    "CompiledEvaluator", "OperatorStats", "PlanRun", "execute_plan",
    "Explanation", "PlanStep", "explain", "ALIASES",
    "parse_formula", "parse_query", "parse_template", "estimate_cost",
    "next_conjunct", "order_conjuncts", "brute_force_evaluate",
]
