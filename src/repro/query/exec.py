"""Set-at-a-time plan execution over binding tables.

The counterpart of :mod:`repro.query.compile`: runs a
:class:`~repro.query.compile.CompiledPlan` against a
:class:`~repro.virtual.computed.FactView`.  Intermediate results are
:class:`BindingTable`\\ s — a tuple of variable columns plus a list of
entity-id row tuples, kept duplicate-free as an invariant — so one
operator invocation does the work the reference engine spreads over
thousands of per-binding dict allocations.

Equivalence contract: :class:`CompiledEvaluator` produces *exactly* the
answer sets of the reference :class:`~repro.query.evaluate.Evaluator`,
and raises the same :class:`~repro.core.errors.QueryError`\\ s (same
messages) on unsafe or range-violating formulas — including the rule
that runtime range errors only surface when the offending operator
actually receives rows.  The randomized equivalence suite
(``tests/test_query_engine_equivalence.py``) holds both engines to this
across every dataset.

Batch-friendly cancellation: deadline checkpoints
(:mod:`repro.core.deadline`) fire at operator entry, every
:data:`CHECK_KEYS` distinct join keys, and every ``∀`` domain chunk —
per batch, not per row — so a compiled query is cancellable without
paying a flag test on the innermost loop.

Example::

    from repro import Database

    db = Database()                       # compiled engine by default
    db.add("JOHN", "∈", "EMPLOYEE")
    db.add("JOHN", "EARNS", "$25000")
    assert db.query("(x, ∈, EMPLOYEE) and (x, EARNS, y)") == {
        ("JOHN", "$25000")}
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..core import deadline as _deadline
from ..core.errors import QueryError
from ..core.facts import Fact, Template, Variable
from ..obs import metrics as _metrics
from ..obs import tracer as _obs
from ..virtual.computed import FactView
from ..virtual.math_facts import MathRelation
from ..virtual.special import EndpointWitness, ReflexiveGeneralization
from ..core.entities import BOTTOM, TOP
from .ast import Query
from .compile import (
    _TRIGGER_RELS,
    AtomJoin,
    CompiledPlan,
    ForAllProbe,
    Pipeline,
    PlanNode,
    SemiJoin,
    Union,
    bind_atom_ids,
    compile_query,
)
from .evaluate import Evaluator, check_safety
from . import plancache as _plancache
from .planner import conjunct_rank, estimate_cost

#: Process-wide switch for integer-domain execution over interned
#: stores.  The id-domain equivalence suite flips this off to prove the
#: id-native and string paths produce bit-identical answers, verdicts,
#: errors, and explain-analyze row counts.
ID_DOMAIN = True

#: Largest post-compaction overlay the id path accepts.  Overlay facts
#: are re-encoded into scratch-id triples once per execution, so a
#: store compacted *before* its closure was computed (thousands of
#: derived facts in the overlay) would pay that encode on every query;
#: past this bound the string path's indexed overlay lookups win.
_ID_OVERLAY_CAP = 128

#: The virtual relations whose ``handles`` triggers the executor can
#: test in id space.  A registry containing anything else routes the
#: whole execution through the string path (correct, and observable:
#: ``exec.id_domain`` stops ticking).
_STANDARD_RELATIONS = (MathRelation, ReflexiveGeneralization,
                       EndpointWitness)

#: Distinct-key interval between deadline checkpoints inside a join.
CHECK_KEYS = 1024

#: Domain chunk size for the ``∀`` anti-probe: small enough that rows
#: which fail early stop scanning, large enough to amortize the batch.
FORALL_CHUNK = 256

#: Fanout-vs-estimate divergence that triggers an adaptive re-order of
#: a pipeline's remaining children (ISSUE 5: ``>10×`` either way).
REPLAN_FACTOR = 10.0

_POSITION = {"s": 0, "r": 1, "t": 2}


class BindingTable:
    """A columnar set of bindings: variable columns + unique row tuples.

    The executor's unit of exchange.  ``rows`` holds tuples of entity
    ids aligned with ``columns``; uniqueness over the full row is an
    invariant every operator preserves (it is what makes "value of a
    query is a *set*" fall out for free at the end).
    """

    __slots__ = ("columns", "index", "rows", "codec")

    def __init__(self, columns: Sequence[Variable],
                 rows: List[Tuple[str, ...]]):
        self.columns: Tuple[Variable, ...] = tuple(columns)
        self.index: Dict[Variable, int] = {
            v: i for i, v in enumerate(self.columns)}
        self.rows = rows
        #: The :class:`~repro.core.interned.IdCodec` of an id-domain
        #: execution, set on the *final* table by :func:`execute_plan`
        #: — rows then hold interned ids, and projection decodes each
        #: distinct result tuple exactly once.  ``None`` on the string
        #: path.
        self.codec = None

    def __len__(self) -> int:
        return len(self.rows)

    def project_positions(self, variables: Sequence[Variable]) -> List[int]:
        return [self.index[v] for v in variables]

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.columns)
        return f"BindingTable([{names}], {len(self.rows)} rows)"


def unit_table() -> BindingTable:
    """The multiplicative identity: no columns, one empty row."""
    return BindingTable((), [()])


@dataclass
class OperatorStats:
    """Per-operator run accounting (est vs actual), the compiled
    engine's analogue of PR 1's plan-vs-actual conjunct records."""

    label: str
    op: str
    est: float
    depth: int = 0
    calls: int = 0
    in_rows: int = 0
    out_rows: int = 0

    def as_dict(self) -> dict:
        """JSON-able form for bench documents (``benchio``)."""
        return {"label": self.label, "op": self.op, "depth": self.depth,
                "est": round(self.est, 2), "calls": self.calls,
                "in_rows": self.in_rows, "out_rows": self.out_rows}


@dataclass
class PlanRun:
    """One executed plan: the per-operator stats in preorder, plus how
    often the adaptive re-order fired."""

    plan: CompiledPlan
    operators: List[OperatorStats] = field(default_factory=list)
    replans: int = 0
    #: True when this run executed in the integer domain (interned
    #: store, standard virtual registry) — surfaced in slow-query plan
    #: autopsies so operators can see which queries fell back to the
    #: string path.
    id_domain: bool = False

    def describe(self) -> str:
        lines = [f"executed plan: {self.plan.query}"]
        for stats in self.operators:
            lines.append(
                "  " * (stats.depth + 1)
                + f"{stats.label}   [est {stats.est:.1f};"
                f" in {stats.in_rows}; out {stats.out_rows};"
                f" calls {stats.calls}]")
        if self.replans:
            lines.append(f"adaptive re-orders: {self.replans}")
        return "\n".join(lines)


class _IdExec:
    """Per-execution integer-domain state over one interned store: the
    scratch codec, the base-id universe bound, the encoded trigger ids
    that decide per join key whether a standard virtual relation could
    contribute, and the overlay handle for the string-boundary merge.
    """

    __slots__ = ("store", "gen", "codec", "base", "overlay",
                 "rel_trigger_ids", "bottom_id", "top_id",
                 "_overlay_triples")

    def __init__(self, store):
        self.store = store
        self.gen = store.generation
        codec = store.id_codec()
        self.codec = codec
        self.base = codec.base
        self.overlay = store._overlay  # noqa: SLF001
        self._overlay_triples = None
        encode = codec.encode
        self.rel_trigger_ids = frozenset(
            encode(name) for name in _TRIGGER_RELS)
        self.bottom_id = encode(BOTTOM)
        self.top_id = encode(TOP)

    def overlay_triples(self) -> list:
        """The overlay encoded as id triples, once per execution (the
        store cannot mutate mid-execution — snapshots are immutable and
        a mutable store is single-threaded by contract)."""
        triples = self._overlay_triples
        if triples is None:
            encode = self.codec.encode
            triples = self._overlay_triples = [
                (encode(f[0]), encode(f[1]), encode(f[2]))
                for f in self.overlay]
        return triples


def _standard_registry(virtual) -> bool:
    """True when every registered computed relation is one of the
    standard three, so virtual triggering is decidable in id space."""
    return all(type(r) in _STANDARD_RELATIONS for r in virtual)


class _Context:
    """Per-execution state: the view, batch probe surfaces, stats.

    With ``collect`` off (the evaluator's hot path when telemetry is
    disabled) no :class:`OperatorStats` rows are built or updated —
    per-operator accounting only exists for a consumer.

    ``ids`` is the :class:`_IdExec` of an integer-domain execution
    (interned store with a generation and a standard virtual registry)
    or ``None``: the eligibility decision is made once per execution,
    so every operator sees one consistent value domain.
    """

    __slots__ = ("view", "store", "virtual", "run", "stats", "collect",
                 "ids")

    def __init__(self, view: FactView, run: PlanRun,
                 collect: bool = True):
        self.view = view
        self.store = view.store
        self.virtual = view.virtual
        self.run = run
        self.collect = collect
        self.ids: Optional[_IdExec] = None
        if ID_DOMAIN and getattr(self.store, "interned", False) \
                and self.store.generation is not None \
                and len(self.store._overlay) <= _ID_OVERLAY_CAP \
                and _standard_registry(self.virtual):
            self.ids = _IdExec(self.store)
            run.id_domain = True
        # Stats rows are created in plan preorder so PlanRun.operators
        # renders as the plan tree regardless of execution order.
        self.stats: Dict[int, OperatorStats] = {}
        if collect:
            for node, depth in run.plan.walk():
                stats = OperatorStats(label=node.label, op=node.op,
                                      est=node.est, depth=depth)
                self.stats[id(node)] = stats
                run.operators.append(stats)


# Last completed plan run on this thread, kept only while telemetry is
# on — how the serve path reaches est-vs-actual operator stats for the
# slow-query log without threading a PlanRun through every return value.
_LAST_RUN = threading.local()

#: Set by consumers of :func:`last_run` that are neither the tracer nor
#: the metrics registry (the service's slow-query log), so the hook
#: stays populated with both of those disabled.
KEEP_LAST_RUN = False


class _DecodeMemo(dict):
    """id → name map that decodes through the codec on first touch, so
    repeated ids across output rows hit the C dict fast path and the
    codec's ``decodes`` counter tallies *distinct* materializations."""

    __slots__ = ("_decode",)

    def __init__(self, codec) -> None:
        super().__init__()
        self._decode = codec.decode

    def __missing__(self, i: int) -> str:
        name = self._decode(i)
        self[i] = name
        return name


def _flush_decodes(codec) -> None:
    """Publish an execution's codec decode count to the telemetry
    surfaces (``interned.decodes``) and reset it.  No-op on the string
    path (``codec is None``) or when nothing observes."""
    if codec is None or not codec.decodes:
        return
    n = codec.decodes
    codec.decodes = 0
    if _obs.ENABLED:
        _obs.TRACER.count("interned.decodes", n)
    if _metrics.ENABLED:
        _metrics.METRICS.count("interned.decodes", n)


def last_run() -> Optional[PlanRun]:
    """The most recent :class:`PlanRun` completed on this thread while
    tracing or metrics were enabled (``None`` otherwise)."""
    return getattr(_LAST_RUN, "run", None)


def clear_last_run() -> None:
    _LAST_RUN.run = None


def execute_plan(plan: CompiledPlan, view: FactView,
                 collect: bool = True) -> Tuple[BindingTable, PlanRun]:
    """Run a compiled plan to completion; returns the final binding
    table and the per-operator run statistics.

    ``collect=False`` skips building and updating the per-operator
    stats (``run.operators`` stays empty) — the evaluator passes it
    when no telemetry consumer exists, removing the accounting from
    the hot path.  Direct callers (EXPLAIN ANALYZE, tests) keep the
    default and always get full stats.
    """
    run = PlanRun(plan=plan)
    ctx = _Context(view, run, collect)
    if _obs.ENABLED:
        _obs.TRACER.count("exec.plans")
        if ctx.ids is not None:
            _obs.TRACER.count("exec.id_domain")
    if _metrics.ENABLED:
        _metrics.METRICS.count("exec.plans")
        if ctx.ids is not None:
            _metrics.METRICS.count("exec.id_domain")
    table = _execute(plan.root, unit_table(), ctx)
    if ctx.ids is not None:
        table.codec = ctx.ids.codec
    if _obs.ENABLED or _metrics.ENABLED or KEEP_LAST_RUN:
        _LAST_RUN.run = run
    return table, run


# ----------------------------------------------------------------------
# Operator dispatch
# ----------------------------------------------------------------------
def _execute(node: PlanNode, table: BindingTable,
             ctx: _Context) -> BindingTable:
    if _deadline.ACTIVE:
        _deadline.check()
    if ctx.collect:
        stats = ctx.stats[id(node)]
        stats.calls += 1
        stats.in_rows += len(table.rows)
    if isinstance(node, AtomJoin):
        out = _exec_atom(node, table, ctx)
    elif isinstance(node, Pipeline):
        out = _exec_pipeline(node, table, ctx)
    elif isinstance(node, Union):
        out = _exec_union(node, table, ctx)
    elif isinstance(node, SemiJoin):
        out = _exec_semijoin(node, table, ctx)
    elif isinstance(node, ForAllProbe):
        out = _exec_forall(node, table, ctx)
    else:
        raise QueryError(f"unknown plan node: {type(node).__name__}")
    if ctx.collect:
        stats.out_rows += len(out.rows)
    return out


# ----------------------------------------------------------------------
# AtomJoin
# ----------------------------------------------------------------------
def _exec_atom(node: AtomJoin, table: BindingTable,
               ctx: _Context) -> BindingTable:
    if ctx.ids is not None:
        return _exec_atom_ids(node, table, ctx)
    pattern = node.formula.pattern
    pattern_vars = pattern.variables()
    pattern_var_set = pattern.variable_set()
    bound_vars = tuple(v for v in table.columns if v in pattern_var_set)
    bound_set = set(bound_vars)
    new_vars: List[Variable] = []
    for v in pattern_vars:
        if v not in bound_set and v not in new_vars:
            new_vars.append(v)
    if not table.rows or node.empty_hint:
        # empty_hint: compile time proved (exact counts, no virtual
        # handler) that this template matches nothing for any key.
        return BindingTable(table.columns + tuple(new_vars), [])

    # Extraction positions: first occurrence of each new variable.
    # Facts from the probe are guaranteed to match the template
    # (repeated variables included), so first-occurrence is enough.
    new_positions = [
        next(i for i, c in enumerate(pattern) if c == v) for v in new_vars
    ]
    key_positions = [table.index[v] for v in bound_vars]
    single_key = len(key_positions) == 1
    pure_filter = not new_positions

    # One probe per distinct key, not per row.  A pure filter (no new
    # variables) needs only the distinct keys — collected at C level —
    # while an extending join hash-groups the rows into buckets
    # aligned with ``keys``.  A single-variable key keys the dict on
    # the bare component (no tuple per row); wider keys use itemgetter.
    buckets: List[List[tuple]] = []
    if single_key:
        kp = key_positions[0]
        if pure_filter:
            keys = [(k,) for k in set(map(itemgetter(kp), table.rows))]
        else:
            groups: Dict = {}
            for row in table.rows:
                k = row[kp]
                bucket = groups.get(k)
                if bucket is None:
                    groups[k] = [row]
                else:
                    bucket.append(row)
            keys = [(k,) for k in groups]
            buckets = list(groups.values())
    elif key_positions:
        keyget = itemgetter(*key_positions)
        if pure_filter:
            keys = list(set(map(keyget, table.rows)))
        else:
            groups = {}
            for row in table.rows:
                k = keyget(row)
                bucket = groups.get(k)
                if bucket is None:
                    groups[k] = [row]
                else:
                    bucket.append(row)
            keys = list(groups)
            buckets = list(groups.values())
    else:
        keys = [()]
        buckets = [table.rows]

    templates = [
        pattern.substitute(dict(zip(bound_vars, key))) if key else pattern
        for key in keys
    ]
    if _obs.ENABLED:
        _obs.TRACER.count("exec.atom.keys", len(keys))
    facts_per_key = _probe_many(ctx, pattern, bound_set, templates)

    out_columns = table.columns + tuple(new_vars)
    if pure_filter:
        # Every bound variable is checked by the probe, so rows survive
        # iff their key matched — one C-level membership pass over the
        # input instead of regrouping buckets.
        if single_key:
            ok = {keys[n][0] for n in range(len(keys))
                  if facts_per_key[n]}
            out_rows = [row for row in table.rows if row[kp] in ok]
        elif key_positions:
            ok = {keys[n] for n in range(len(keys))
                  if facts_per_key[n]}
            out_rows = [row for row in table.rows if keyget(row) in ok]
        else:
            out_rows = list(table.rows) if facts_per_key[0] else []
        if _deadline.ACTIVE:
            _deadline.check()
        return BindingTable(out_columns, out_rows)

    out_rows: List[Tuple[str, ...]] = []
    for n, facts in enumerate(facts_per_key):
        if _deadline.ACTIVE and n % CHECK_KEYS == 0:
            _deadline.check()
        if not facts:
            continue
        extensions = [
            tuple(f[p] for p in new_positions) for f in facts
        ]
        bucket = buckets[n]
        if len(extensions) == 1:
            extension = extensions[0]
            out_rows += [row + extension for row in bucket]
        else:
            out_rows += [row + extension for row in bucket
                         for extension in extensions]
    return BindingTable(out_columns, out_rows)


def _exec_atom_ids(node: AtomJoin, table: BindingTable,
                   ctx: _Context) -> BindingTable:
    """AtomJoin in the integer domain: join keys, generation probes,
    and extensions are interned ids end-to-end.

    The generation is probed through the store's batched id surface
    (:meth:`~repro.core.interned.InternedFactStore.lookup_many_ids`) —
    no :class:`Fact` objects, no strings, repeated unbound variables
    checked natively (id equality is name equality).  The overlay and
    any *triggered* virtual relation are merged per key through the
    codec boundary; whether a standard virtual relation can contribute
    is decided from the plan's ground annotation plus the key's bound
    ids, so the common case (ground non-trigger relationship) pays
    nothing per key.
    """
    ids = ctx.ids
    pattern = node.formula.pattern
    pattern_vars = pattern.variables()
    pattern_var_set = pattern.variable_set()
    bound_vars = tuple(v for v in table.columns if v in pattern_var_set)
    bound_set = set(bound_vars)
    new_vars: List[Variable] = []
    for v in pattern_vars:
        if v not in bound_set and v not in new_vars:
            new_vars.append(v)
    if not table.rows or node.empty_hint:
        return BindingTable(table.columns + tuple(new_vars), [])

    # Extraction positions (first occurrence of each new variable) and
    # repeated-unbound equality checks, enforced natively in id space.
    first_occurrence: Dict[Variable, int] = {}
    checks: List[Tuple[int, int]] = []
    for p, component in enumerate(pattern):
        if isinstance(component, Variable) and component not in bound_set:
            if component in first_occurrence:
                checks.append((first_occurrence[component], p))
            else:
                first_occurrence[component] = p
    new_positions = [first_occurrence[v] for v in new_vars]
    key_positions = [table.index[v] for v in bound_vars]
    single_key = len(key_positions) == 1
    pure_filter = not new_positions

    # One probe per distinct key, not per row.  A pure filter (no new
    # variables) needs only the distinct keys — collected at C level —
    # while an extending join hash-groups the rows into buckets
    # aligned with ``keys``.  A single-variable key keys the dict on
    # the bare component (no tuple per row); wider keys use itemgetter.
    buckets: List[List[tuple]] = []
    if single_key:
        kp = key_positions[0]
        if pure_filter:
            keys = [(k,) for k in set(map(itemgetter(kp), table.rows))]
        else:
            groups: Dict = {}
            for row in table.rows:
                k = row[kp]
                bucket = groups.get(k)
                if bucket is None:
                    groups[k] = [row]
                else:
                    bucket.append(row)
            keys = [(k,) for k in groups]
            buckets = list(groups.values())
    elif key_positions:
        keyget = itemgetter(*key_positions)
        if pure_filter:
            keys = list(set(map(keyget, table.rows)))
        else:
            groups = {}
            for row in table.rows:
                k = keyget(row)
                bucket = groups.get(k)
                if bucket is None:
                    groups[k] = [row]
                else:
                    bucket.append(row)
            keys = list(groups)
            buckets = list(groups.values())
    else:
        keys = [()]
        buckets = [table.rows]
    if _obs.ENABLED:
        _obs.TRACER.count("exec.atom.keys", len(keys))
        _obs.TRACER.count("store.lookups", len(keys))

    gen = ids.gen
    ann = node.id_ann
    if ann is None or ann.generation is not gen:
        ann = bind_atom_ids(pattern, gen)
        node.id_ann = ann
    ground = ann.ground

    # Probe slots in srt spec order: a ground constant's interned id
    # (possibly None — never in the generation) or the key index of a
    # bound variable.  ``spec_positions`` maps each probe-key slot back
    # to its pattern position for the overlay's id-triple matching.
    spec = ""
    slots: List[Tuple[Optional[int], Optional[int]]] = []
    spec_positions: List[int] = []
    for p, letter in ((0, "s"), (1, "r"), (2, "t")):
        component = pattern[p]
        if not isinstance(component, Variable):
            spec += letter
            slots.append((ground[p][1], None))
            spec_positions.append(p)
        elif component in bound_set:
            spec += letter
            slots.append((None, bound_vars.index(component)))
            spec_positions.append(p)
    probe_keys = [
        tuple(g if k is None else key[k] for g, k in slots)
        for key in keys
    ]

    extensions_per_key = ids.store.lookup_many_ids(
        spec, probe_keys, positions=new_positions, checks=checks)

    # Virtual triggering: ground triggers hold for every key;
    # bound-variable positions are tested per key against the encoded
    # trigger ids; unbound positions never trigger (a variable in the
    # substituted template satisfies none of the standard handles).
    always_virtual = ann.rel_trigger or ann.src_trigger or ann.tgt_trigger
    rel_key = src_key = tgt_key = None
    if not always_virtual:
        component = pattern[1]
        if isinstance(component, Variable) and component in bound_set:
            rel_key = bound_vars.index(component)
        component = pattern[0]
        if isinstance(component, Variable) and component in bound_set:
            src_key = bound_vars.index(component)
        component = pattern[2]
        if isinstance(component, Variable) and component in bound_set:
            tgt_key = bound_vars.index(component)
    check_virtual = always_virtual or rel_key is not None \
        or src_key is not None or tgt_key is not None
    rel_triggers = ids.rel_trigger_ids
    bottom_id, top_id = ids.bottom_id, ids.top_id
    # The overlay (typically a handful of post-compaction facts) is
    # encoded into id triples once per execution and prefiltered here
    # against the pattern's *ground* positions (codec ids, so scratch
    # constants compare correctly) and repeated-variable checks — the
    # same for every key — leaving only the bound-variable slots to
    # test per key.  The common case (no overlay survivor for this
    # pattern) pays nothing inside the loop.  Overlay and generation
    # are disjoint by store invariant, so no dedup.
    overlay_matches = None
    if len(ids.overlay):
        encode = ids.codec.encode
        key_slots = [(slot, spec_positions[slot])
                     for slot, (g, k) in enumerate(slots)
                     if k is not None]
        candidates = []
        for triple in ids.overlay_triples():
            matched = True
            for slot, (g, k) in enumerate(slots):
                if k is None:
                    p = spec_positions[slot]
                    if g is None:
                        g = encode(ground[p][0])
                    if triple[p] != g:
                        matched = False
                        break
            if matched and checks:
                for i, j in checks:
                    if triple[i] != triple[j]:
                        matched = False
                        break
            if matched:
                candidates.append(triple)
        if candidates:
            index = None
            if key_slots and len(candidates) * len(keys) > 4096:
                # Enough survivors that a linear scan per key would
                # dominate: bucket them by their bound-slot projection
                # so each key probes a dict instead.
                index = {}
                for triple in candidates:
                    kproj = tuple(triple[p] for _slot, p in key_slots)
                    index.setdefault(kproj, []).append(triple)
            overlay_matches = (candidates, key_slots, index)

    # Fold the overlay survivors and any triggered virtual relation
    # into each key's extensions before building rows.
    if overlay_matches is not None or check_virtual:
        for n, key in enumerate(keys):
            if _deadline.ACTIVE and n % CHECK_KEYS == 0:
                _deadline.check()
            extensions = extensions_per_key[n]
            if overlay_matches is not None:
                candidates, key_slots, index = overlay_matches
                probe_key = probe_keys[n]
                if index is not None:
                    kproj = tuple(probe_key[slot]
                                  for slot, _p in key_slots)
                    for triple in index.get(kproj, ()):
                        extensions.append(
                            tuple(triple[p] for p in new_positions))
                else:
                    for triple in candidates:
                        matched = True
                        for slot, p in key_slots:
                            if triple[p] != probe_key[slot]:
                                matched = False
                                break
                        if matched:
                            extensions.append(
                                tuple(triple[p] for p in new_positions))
            if check_virtual and (
                    always_virtual
                    or (rel_key is not None and key[rel_key] in rel_triggers)
                    or (src_key is not None and key[src_key] == bottom_id)
                    or (tgt_key is not None and key[tgt_key] == top_id)):
                extensions_per_key[n] = _merge_id_boundary(
                    ctx, pattern, bound_vars, key, extensions,
                    new_positions, checks)

    out_columns = table.columns + tuple(new_vars)
    if pure_filter:
        # Every bound variable is checked by the probe, so rows survive
        # iff their key matched — one C-level membership pass over the
        # input instead of regrouping buckets.
        if single_key:
            ok = {keys[n][0] for n in range(len(keys))
                  if extensions_per_key[n]}
            out_rows = [row for row in table.rows if row[kp] in ok]
        elif key_positions:
            ok = {keys[n] for n in range(len(keys))
                  if extensions_per_key[n]}
            out_rows = [row for row in table.rows if keyget(row) in ok]
        else:
            out_rows = list(table.rows) if extensions_per_key[0] else []
        if _deadline.ACTIVE:
            _deadline.check()
        return BindingTable(out_columns, out_rows)

    out_rows: List[Tuple[int, ...]] = []
    for n, extensions in enumerate(extensions_per_key):
        if _deadline.ACTIVE and n % CHECK_KEYS == 0:
            _deadline.check()
        if not extensions:
            continue
        bucket = buckets[n]
        if len(extensions) == 1:
            extension = extensions[0]
            out_rows += [row + extension for row in bucket]
        else:
            out_rows += [row + extension for row in bucket
                         for extension in extensions]
    return BindingTable(out_columns, out_rows)


def _merge_id_boundary(ctx: _Context, pattern: Template,
                       bound_vars: Tuple[Variable, ...],
                       key: Tuple[int, ...], extensions: list,
                       new_positions: List[int],
                       checks: List[Tuple[int, int]]) -> list:
    """The virtual-relation boundary of the id path: decode one
    triggered key, match the registry on strings, and encode the
    results back into (scratch-)id extensions.

    Per key every non-new position is fixed, so extension tuples are in
    bijection with matching facts — deduplicating virtual facts against
    the merged extensions is exactly the string path's full-fact dedup
    (the stored layers having been merged into ``extensions`` already).
    """
    ids = ctx.ids
    codec = ids.codec
    decode = codec.decode
    encode = codec.encode
    if key:
        template = pattern.substitute(
            {v: decode(i) for v, i in zip(bound_vars, key)})
    else:
        template = pattern
    virtual_facts = ctx.virtual.match_many([template], ids.store)[0]
    if not virtual_facts:
        return extensions
    merged = list(extensions)
    seen = set(merged)
    for fact in virtual_facts:
        if template.match(fact) is None:
            continue
        extension = tuple(encode(fact[p]) for p in new_positions)
        if extension not in seen:
            seen.add(extension)
            merged.append(extension)
    return merged


def _probe_many(ctx: _Context, pattern: Template, bound_set: Set[Variable],
                templates: List[Template]) -> List[List[Fact]]:
    """Matches for each substituted template: stored facts from the
    best positional index (handle resolved once per operator), merged
    with virtual contributions.

    Virtual facts are re-checked against the template before merging —
    mirroring the reference engine, whose ``view.solutions`` re-matches
    every fact, so a computed relation that ever yielded a non-matching
    fact degrades identically under both engines.
    """
    store = ctx.store
    index_for = getattr(store, "index_for", None)
    repeated_unbound = [
        c for c in pattern
        if isinstance(c, Variable) and c not in bound_set
    ]
    exact = len(repeated_unbound) == len(set(repeated_unbound))

    if index_for is not None and exact:
        # Fast path: every substituted template's candidate set is
        # exactly its stored answer set, and the ground positions are
        # the same for every key — resolve the index handle once.
        spec = "".join(
            letter for letter, component in zip("srt", pattern)
            if not isinstance(component, Variable) or component in bound_set)
        if _obs.ENABLED:
            _obs.TRACER.count("store.lookups", len(templates))
        if spec and getattr(store, "interned", False):
            # Interned columnar store: one batched integer-domain call.
            # Constants are interned once per template, the CSR index
            # is picked once for the whole batch, and each key costs an
            # offset-range probe — facts decode only at emission.
            # (lookup_many does not count store.lookups itself; the
            # batch was counted above.)
            stored = store.lookup_many(spec, templates)
        elif spec == "srt":
            stored = [
                [f] if (f := Fact(t.source, t.relationship, t.target))
                in store else []
                for t in templates
            ]
        elif not spec:
            stored = [list(store.match(t)) for t in templates]
        elif len(spec) == 1:
            handle = index_for(spec)
            p = _POSITION[spec]
            stored = [list(handle.get(t[p], ())) for t in templates]
        else:
            handle = index_for(spec)
            p0, p1 = _POSITION[spec[0]], _POSITION[spec[1]]
            stored = [
                list(handle.get((t[p0], t[p1]), ())) for t in templates
            ]
    else:
        # General path: the store's own batched match handles repeated
        # variables; stores without one (the lazy engine) fall back to
        # per-template matching with a re-check.
        store_many = getattr(store, "match_many", None)
        if store_many is not None:
            stored = store_many(templates)
        else:
            stored = [
                [f for f in store.match(t) if t.match(f) is not None]
                for t in templates
            ]

    virtual_batches = ctx.virtual.match_many(templates, store)
    results: List[List[Fact]] = []
    for template, stored_facts, virtual_facts in zip(
            templates, stored, virtual_batches):
        if not virtual_facts:
            results.append(stored_facts)
            continue
        seen = set(stored_facts)
        merged = list(stored_facts)
        for virtual_fact in virtual_facts:
            if virtual_fact not in seen \
                    and template.match(virtual_fact) is not None:
                seen.add(virtual_fact)
                merged.append(virtual_fact)
        results.append(merged)
    return results


# ----------------------------------------------------------------------
# Pipeline (∧) with adaptive re-order
# ----------------------------------------------------------------------
def _exec_pipeline(node: Pipeline, table: BindingTable,
                   ctx: _Context) -> BindingTable:
    remaining = list(node.parts)
    bound = set(table.columns)
    view = ctx.view
    while remaining:
        child = remaining.pop(0)
        # Per-input-row estimate at this point in the pipeline — the
        # same quantity the reference planner computes per binding, so
        # PR 1's plan-vs-actual records stay comparable across engines.
        # The estimate only exists for a consumer: the conjunct trace,
        # or the adaptive re-order (which needs ≥2 conjuncts left).
        if _obs.ENABLED or len(remaining) >= 2:
            est = estimate_cost(child.formula, bound, view)
        else:
            est = 0.0
        in_rows = len(table.rows)
        table = _execute(child, table, ctx)
        out_rows = len(table.rows)
        if _obs.ENABLED:
            _obs.TRACER.record_conjunct(str(child.formula), est, out_rows)
        bound |= child.formula.free_variables()
        if not out_rows:
            # No bindings survive: the remaining conjuncts can neither
            # produce rows nor raise (the reference engine never
            # reaches them with zero bindings).  The column set of the
            # empty table is irrelevant downstream.
            break
        if len(remaining) >= 2:
            fanout = out_rows / max(1, in_rows)
            if fanout > est * REPLAN_FACTOR \
                    or (fanout + 0.1) * REPLAN_FACTOR < est:
                # The estimate was off by more than 10× either way:
                # re-rank what's left under what is *actually* bound.
                # Stable sort keeps the compiled order between ties, so
                # deferred-quantifier ordering (and therefore which
                # range error could surface) matches the reference.
                remaining.sort(key=lambda part: conjunct_rank(
                    part.formula, bound, view)[0])
                ctx.run.replans += 1
                if _obs.ENABLED:
                    _obs.TRACER.count("exec.replans")
                if _metrics.ENABLED:
                    _metrics.METRICS.count("exec.replans")
    return table


# ----------------------------------------------------------------------
# Union (∨)
# ----------------------------------------------------------------------
def _exec_union(node: Union, table: BindingTable,
                ctx: _Context) -> BindingTable:
    free = node.formula.free_variables()
    columns = set(table.columns)
    new_vars = tuple(sorted(free - columns, key=lambda v: v.name))
    out_columns = table.columns + new_vars
    seen: Set[Tuple[str, ...]] = set()
    out_rows: List[Tuple[str, ...]] = []
    for branch in node.branches:
        missing = free - branch.formula.free_variables() - columns
        result = _execute(branch, table, ctx)
        if not result.rows:
            continue
        if missing:
            # Same guard, message, and rows-required behavior as the
            # reference engine (safety checking rejects this statically
            # for evaluate/ask; direct formula solving can reach it).
            raise QueryError(
                f"disjunct {branch.formula} does not bind"
                f" {[v.name for v in missing]}")
        positions = result.project_positions(out_columns)
        for row in result.rows:
            projected = tuple(row[i] for i in positions)
            if projected not in seen:
                seen.add(projected)
                out_rows.append(projected)
    return BindingTable(out_columns, out_rows)


# ----------------------------------------------------------------------
# SemiJoin (∃)
# ----------------------------------------------------------------------
def _exec_semijoin(node: SemiJoin, table: BindingTable,
                   ctx: _Context) -> BindingTable:
    formula = node.formula
    outer = formula.free_variables()
    # The distinct projection the body actually depends on.  The
    # quantified variable is *not* projected even if bound outside:
    # the outer binding is shadowed inside and restored in the output.
    probe_vars = tuple(v for v in table.columns if v in outer)
    probe_positions = [table.index[v] for v in probe_vars]
    new_vars = tuple(sorted(outer - set(table.columns),
                            key=lambda v: v.name))

    distinct: List[Tuple[str, ...]] = []
    seen_keys: Set[Tuple[str, ...]] = set()
    for row in table.rows:
        key = tuple(row[i] for i in probe_positions)
        if key not in seen_keys:
            seen_keys.add(key)
            distinct.append(key)
    if _obs.ENABLED:
        _obs.TRACER.count("exec.exists.keys", len(distinct))

    result = _execute(node.body, BindingTable(probe_vars, distinct), ctx)

    if not new_vars:
        # Pure semi-join: keep input rows whose projection succeeded.
        if not result.rows:
            return BindingTable(table.columns, [])
        ok_positions = result.project_positions(probe_vars)
        ok = {tuple(row[i] for i in ok_positions) for row in result.rows}
        kept = [
            row for row in table.rows
            if tuple(row[i] for i in probe_positions) in ok
        ]
        return BindingTable(table.columns, kept)

    out_columns = table.columns + new_vars
    if not result.rows:
        return BindingTable(out_columns, [])
    key_positions = result.project_positions(probe_vars)
    value_positions = result.project_positions(new_vars)
    witnesses: Dict[Tuple[str, ...], List[Tuple[str, ...]]] = {}
    witness_seen: Dict[Tuple[str, ...], Set[Tuple[str, ...]]] = {}
    for row in result.rows:
        key = tuple(row[i] for i in key_positions)
        values = tuple(row[i] for i in value_positions)
        marker = witness_seen.get(key)
        if marker is None:
            marker = witness_seen[key] = set()
            witnesses[key] = []
        if values not in marker:
            marker.add(values)
            witnesses[key].append(values)
    out_rows: List[Tuple[str, ...]] = []
    append = out_rows.append
    empty: Tuple[Tuple[str, ...], ...] = ()
    for row in table.rows:
        key = tuple(row[i] for i in probe_positions)
        for values in witnesses.get(key, empty):
            append(row + values)
    return BindingTable(out_columns, out_rows)


# ----------------------------------------------------------------------
# ForAllProbe (∀)
# ----------------------------------------------------------------------
def _exec_forall(node: ForAllProbe, table: BindingTable,
                 ctx: _Context) -> BindingTable:
    if not table.rows:
        # The reference engine only reaches a ∀ per candidate binding;
        # with none, it neither filters nor raises.
        return table
    formula = node.formula
    free = formula.free_variables()
    unbound = free - set(table.columns)
    if unbound:
        raise QueryError(
            "∀ reached with unbound free variables"
            f" {sorted(v.name for v in unbound)}; conjoin a"
            " generating template for them (range restriction)")
    probe_vars = tuple(v for v in table.columns if v in free)
    probe_positions = [table.index[v] for v in probe_vars]
    alive: Set[Tuple[str, ...]] = {
        tuple(row[i] for i in probe_positions) for row in table.rows
    }
    if ctx.ids is not None:
        # Same entity *set* as view.entities(), in id space (order may
        # differ, which only affects chunk boundaries, not results).
        domain = ctx.ids.store.entity_id_domain(ctx.ids.codec.encode)
    else:
        domain = list(ctx.view.entities())
    if _obs.ENABLED:
        _obs.TRACER.count("exec.forall.keys", len(alive))
        _obs.TRACER.gauge("query.forall.domain_size", len(domain))
    body_columns = probe_vars + (formula.variable,)
    for start in range(0, len(domain), FORALL_CHUNK):
        if not alive:
            break
        if _deadline.ACTIVE:
            _deadline.check()
        chunk = domain[start:start + FORALL_CHUNK]
        rows = [key + (entity,) for key in alive for entity in chunk]
        result = _execute(
            node.body, BindingTable(body_columns, rows), ctx)
        positions = result.project_positions(body_columns)
        satisfied: Dict[Tuple[str, ...], int] = {}
        seen_pairs: Set[Tuple[str, ...]] = set()
        for row in result.rows:
            pair = tuple(row[i] for i in positions)
            if pair not in seen_pairs:
                seen_pairs.add(pair)
                key = pair[:-1]
                satisfied[key] = satisfied.get(key, 0) + 1
        need = len(chunk)
        # Keys that missed any entity of this chunk are dropped now,
        # so they stop paying for the rest of the domain scan.
        alive = {key for key in alive if satisfied.get(key, 0) == need}
    kept = [
        row for row in table.rows
        if tuple(row[i] for i in probe_positions) in alive
    ]
    return BindingTable(table.columns, kept)


# ----------------------------------------------------------------------
# The compiled engine
# ----------------------------------------------------------------------
class CompiledEvaluator(Evaluator):
    """The set-at-a-time engine behind ``Database(query_engine=
    "compiled")`` (the default).

    ``evaluate`` / ``ask`` / ``succeeds`` compile the query once and
    run the plan over binding tables; everything else —
    :meth:`~repro.query.evaluate.Evaluator.solutions` for callers that
    stream bindings, safety checking, cache keying — is inherited from
    the reference engine, whose results this class reproduces exactly.
    Cache keys are shared between the engines (same answer sets, same
    version-epoch token), so a snapshot's warm cache serves both.

    With ``plans`` (a :class:`~repro.query.plancache.PlanCache`) set,
    parse + safety + compile are cached per canonical form and
    configuration epoch, and single-atom plans route to the pre-bound
    :class:`~repro.query.plancache.FastProbe` instead of binding-table
    execution (same answers, same errors — held by the fast-path
    equivalence suite).
    """

    def _plan_token(self):
        """The answer-version token plans validate against: the result
        cache's token when one is attached (any base mutation moves
        it), else the view store's own version (standalone evaluators
        over a fixed store, e.g. benchmark harnesses)."""
        if self.cache_token is not None:
            return self.cache_token
        return self.view.store.version

    def _entry(self, query: Union[str, Query]):
        """The plan-cache entry for ``query`` (requires ``plans``)."""
        return self.plans.entry(query, self.view, self.plan_epoch,
                                self._plan_token())

    def _fast_result(self, entry, rows) -> None:
        """Fast-path bookkeeping: the ``exec.fast_path`` counter and a
        one-operator :class:`PlanRun` for the slow-query autopsy."""
        if _obs.ENABLED:
            _obs.TRACER.count("exec.fast_path")
        if _metrics.ENABLED:
            _metrics.METRICS.count("exec.fast_path")
        run = PlanRun(plan=entry.plan)
        run.operators.append(OperatorStats(
            label=f"fast-probe {entry.plan.root.formula}",
            op="fast-probe", est=entry.plan.root.est, calls=1,
            in_rows=1, out_rows=rows))
        _LAST_RUN.run = run

    def evaluate(self, query: Union[str, Query]) -> Set[Tuple[str, ...]]:
        """The value {Q}, via compiled plan execution."""
        if self.plans is not None:
            entry = self._entry(query)
            if entry.error is not None:
                raise QueryError(entry.error)
            query = entry.query
            key_text = entry.key
        else:
            entry = None
            query, key_text = self._resolve(query)
            check_safety(query.formula)
        def compute():
            if entry is not None and entry.fast is not None \
                    and _plancache.FAST_PATH:
                if _obs.ENABLED:
                    with _obs.TRACER.span(
                            "query.evaluate", query=key_text,
                            engine="compiled", fast_path=True) as span:
                        results = entry.fast.evaluate(self.view)
                        span.set(rows=len(results))
                    self._fast_result(entry, len(results))
                else:
                    results = entry.fast.evaluate(self.view)
                    if _metrics.ENABLED or KEEP_LAST_RUN:
                        self._fast_result(entry, len(results))
                return results
            evaluate_span = (
                _obs.TRACER.span("query.evaluate", query=str(query),
                                 engine="compiled")
                if _obs.ENABLED else _obs.NULL_SPAN)
            with evaluate_span as span:
                results = self._run(query, entry)
                span.set(rows=len(results))
            return results

        if self.cache is not None:
            key = ("query", key_text or str(query), self.cache_token)
            return set(self.cache.get_or_compute(
                key, lambda: frozenset(compute())))
        return compute()

    def ask(self, query: Union[str, Query]) -> bool:
        """Truth value of a proposition, via the compiled plan."""
        return self._truth("ask", query, proposition=True)

    def succeeds(self, query: Union[str, Query]) -> bool:
        """True if the query has a non-empty value (probe predicate)."""
        return self._truth("succeeds", query, proposition=False)

    def _truth(self, kind: str, query: Union[str, Query],
               proposition: bool) -> bool:
        """Shared ``ask``/``succeeds`` path: same plan cache, same
        result cache, same fast-path routing — only the proposition
        requirement differs.

        Warm truth queries short-circuit through the plan cache's
        verdict memo keyed on the raw text, skipping entry lookup and
        canonicalization entirely.  The memo engages only when nothing
        observes per-call traffic (no tracer, no metrics, no last-run
        autopsy) and never stores errors — those raise before the
        store-verdict call."""
        memoizing = (self._memoizes_verdicts(query)
                     and not KEEP_LAST_RUN)
        if memoizing:
            raw_text = query
            token = self._verdict_token()
            verdict = self.plans.cached_verdict(
                kind, raw_text, self.plan_epoch, token)
            if verdict is not None:
                return verdict
        if self.plans is not None:
            entry = self._entry(query)
            query = entry.query
            key_text = entry.key
            if proposition and not query.is_proposition:
                raise QueryError(
                    f"not a proposition — free variables:"
                    f" {[v.name for v in query.variables]}")
            if entry.error is not None:
                raise QueryError(entry.error)
        else:
            entry = None
            query, key_text = self._resolve(query)
            if proposition and not query.is_proposition:
                raise QueryError(
                    f"not a proposition — free variables:"
                    f" {[v.name for v in query.variables]}")
            check_safety(query.formula)
        def compute():
            if entry is not None and entry.fast is not None \
                    and _plancache.FAST_PATH:
                result = entry.fast.any(self.view)
                if _obs.ENABLED or _metrics.ENABLED or KEEP_LAST_RUN:
                    self._fast_result(entry, int(result))
                return result
            return self._any(query, entry)

        if self.cache is not None:
            key = (kind, key_text or str(query), self.cache_token)
            result = self.cache.get_or_compute(key, compute)
        else:
            result = compute()
        if memoizing:
            self.plans.store_verdict(
                kind, raw_text, self.plan_epoch, token, result)
        return result

    def evaluate_with_stats(self, query: Union[str, Query]
                            ) -> Tuple[Set[Tuple[str, ...]], PlanRun]:
        """Uncached evaluation that also returns the per-operator run
        statistics — the compiled engine's EXPLAIN ANALYZE source.
        Always executes the full compiled plan (never the fast path)
        with stats collection on."""
        query, _key = self._resolve(query)
        check_safety(query.formula)
        plan = compile_query(query, self.view)
        table, run = execute_plan(plan, self.view)
        results = self._project(query, table)
        _flush_decodes(table.codec)
        return results, run

    # ------------------------------------------------------------------
    def _run(self, query: Query,
             entry=None) -> Set[Tuple[str, ...]]:
        if entry is not None:
            plan = self.plans.plan_for(entry, self.view,
                                       self._plan_token())
        else:
            plan = compile_query(query, self.view)
        collect = _obs.ENABLED or _metrics.ENABLED or KEEP_LAST_RUN
        table, _run = execute_plan(plan, self.view, collect=collect)
        results = self._project(query, table)
        _flush_decodes(table.codec)
        return results

    def _any(self, query: Query, entry=None) -> bool:
        """Truth of a query without projecting: a non-empty final table
        is a non-empty answer set (projection preserves emptiness), so
        ``ask``/``succeeds`` on the id path never decode a single id."""
        if entry is not None:
            plan = self.plans.plan_for(entry, self.view,
                                       self._plan_token())
        else:
            plan = compile_query(query, self.view)
        collect = _obs.ENABLED or _metrics.ENABLED or KEEP_LAST_RUN
        table, _run = execute_plan(plan, self.view, collect=collect)
        _flush_decodes(table.codec)
        return bool(table.rows)

    @staticmethod
    def _project(query: Query,
                 table: BindingTable) -> Set[Tuple[str, ...]]:
        if query.is_proposition:
            return {()} if table.rows else set()
        if not table.rows:
            # A pipeline that went empty mid-way stops without adding
            # the remaining columns; there is nothing to project.
            return set()
        positions = table.project_positions(query.variables)
        codec = table.codec
        # itemgetter keeps the per-row extraction in C; a single
        # position must be re-wrapped since itemgetter then yields the
        # bare component.  On an id-domain run this is also the only
        # place ids become strings: decode is fused into the projection
        # pass, each distinct id decoding once through the memo's
        # ``__missing__`` (dedup on names equals dedup on ids — the
        # codec is injective both ways).
        if len(positions) == 1:
            p = positions[0]
            if codec is None:
                return {(row[p],) for row in table.rows}
            name_of = _DecodeMemo(codec).__getitem__
            return {(name_of(row[p]),) for row in table.rows}
        if positions == list(range(len(table.columns))):
            # Identity projection: the rows already are the output
            # tuples (modulo decode) — skip re-extraction entirely.
            if codec is None:
                return set(table.rows)
            name_of = _DecodeMemo(codec).__getitem__
            return {tuple(map(name_of, row)) for row in table.rows}
        getter = itemgetter(*positions)
        if codec is None:
            return set(map(getter, table.rows))
        name_of = _DecodeMemo(codec).__getitem__
        return {tuple(map(name_of, getter(row))) for row in table.rows}
