"""Set-at-a-time plan execution over binding tables.

The counterpart of :mod:`repro.query.compile`: runs a
:class:`~repro.query.compile.CompiledPlan` against a
:class:`~repro.virtual.computed.FactView`.  Intermediate results are
:class:`BindingTable`\\ s — a tuple of variable columns plus a list of
entity-id row tuples, kept duplicate-free as an invariant — so one
operator invocation does the work the reference engine spreads over
thousands of per-binding dict allocations.

Equivalence contract: :class:`CompiledEvaluator` produces *exactly* the
answer sets of the reference :class:`~repro.query.evaluate.Evaluator`,
and raises the same :class:`~repro.core.errors.QueryError`\\ s (same
messages) on unsafe or range-violating formulas — including the rule
that runtime range errors only surface when the offending operator
actually receives rows.  The randomized equivalence suite
(``tests/test_query_engine_equivalence.py``) holds both engines to this
across every dataset.

Batch-friendly cancellation: deadline checkpoints
(:mod:`repro.core.deadline`) fire at operator entry, every
:data:`CHECK_KEYS` distinct join keys, and every ``∀`` domain chunk —
per batch, not per row — so a compiled query is cancellable without
paying a flag test on the innermost loop.

Example::

    from repro import Database

    db = Database()                       # compiled engine by default
    db.add("JOHN", "∈", "EMPLOYEE")
    db.add("JOHN", "EARNS", "$25000")
    assert db.query("(x, ∈, EMPLOYEE) and (x, EARNS, y)") == {
        ("JOHN", "$25000")}
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..core import deadline as _deadline
from ..core.errors import QueryError
from ..core.facts import Fact, Template, Variable
from ..obs import metrics as _metrics
from ..obs import tracer as _obs
from ..virtual.computed import FactView
from .ast import Query
from .compile import (
    AtomJoin,
    CompiledPlan,
    ForAllProbe,
    Pipeline,
    PlanNode,
    SemiJoin,
    Union,
    compile_query,
)
from .evaluate import Evaluator, _NO_RESULT, check_safety
from . import plancache as _plancache
from .planner import conjunct_rank, estimate_cost

#: Distinct-key interval between deadline checkpoints inside a join.
CHECK_KEYS = 1024

#: Domain chunk size for the ``∀`` anti-probe: small enough that rows
#: which fail early stop scanning, large enough to amortize the batch.
FORALL_CHUNK = 256

#: Fanout-vs-estimate divergence that triggers an adaptive re-order of
#: a pipeline's remaining children (ISSUE 5: ``>10×`` either way).
REPLAN_FACTOR = 10.0

_POSITION = {"s": 0, "r": 1, "t": 2}


class BindingTable:
    """A columnar set of bindings: variable columns + unique row tuples.

    The executor's unit of exchange.  ``rows`` holds tuples of entity
    ids aligned with ``columns``; uniqueness over the full row is an
    invariant every operator preserves (it is what makes "value of a
    query is a *set*" fall out for free at the end).
    """

    __slots__ = ("columns", "index", "rows")

    def __init__(self, columns: Sequence[Variable],
                 rows: List[Tuple[str, ...]]):
        self.columns: Tuple[Variable, ...] = tuple(columns)
        self.index: Dict[Variable, int] = {
            v: i for i, v in enumerate(self.columns)}
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def project_positions(self, variables: Sequence[Variable]) -> List[int]:
        return [self.index[v] for v in variables]

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.columns)
        return f"BindingTable([{names}], {len(self.rows)} rows)"


def unit_table() -> BindingTable:
    """The multiplicative identity: no columns, one empty row."""
    return BindingTable((), [()])


@dataclass
class OperatorStats:
    """Per-operator run accounting (est vs actual), the compiled
    engine's analogue of PR 1's plan-vs-actual conjunct records."""

    label: str
    op: str
    est: float
    depth: int = 0
    calls: int = 0
    in_rows: int = 0
    out_rows: int = 0

    def as_dict(self) -> dict:
        """JSON-able form for bench documents (``benchio``)."""
        return {"label": self.label, "op": self.op, "depth": self.depth,
                "est": round(self.est, 2), "calls": self.calls,
                "in_rows": self.in_rows, "out_rows": self.out_rows}


@dataclass
class PlanRun:
    """One executed plan: the per-operator stats in preorder, plus how
    often the adaptive re-order fired."""

    plan: CompiledPlan
    operators: List[OperatorStats] = field(default_factory=list)
    replans: int = 0

    def describe(self) -> str:
        lines = [f"executed plan: {self.plan.query}"]
        for stats in self.operators:
            lines.append(
                "  " * (stats.depth + 1)
                + f"{stats.label}   [est {stats.est:.1f};"
                f" in {stats.in_rows}; out {stats.out_rows};"
                f" calls {stats.calls}]")
        if self.replans:
            lines.append(f"adaptive re-orders: {self.replans}")
        return "\n".join(lines)


class _Context:
    """Per-execution state: the view, batch probe surfaces, stats.

    With ``collect`` off (the evaluator's hot path when telemetry is
    disabled) no :class:`OperatorStats` rows are built or updated —
    per-operator accounting only exists for a consumer.
    """

    __slots__ = ("view", "store", "virtual", "run", "stats", "collect")

    def __init__(self, view: FactView, run: PlanRun,
                 collect: bool = True):
        self.view = view
        self.store = view.store
        self.virtual = view.virtual
        self.run = run
        self.collect = collect
        # Stats rows are created in plan preorder so PlanRun.operators
        # renders as the plan tree regardless of execution order.
        self.stats: Dict[int, OperatorStats] = {}
        if collect:
            for node, depth in run.plan.walk():
                stats = OperatorStats(label=node.label, op=node.op,
                                      est=node.est, depth=depth)
                self.stats[id(node)] = stats
                run.operators.append(stats)


# Last completed plan run on this thread, kept only while telemetry is
# on — how the serve path reaches est-vs-actual operator stats for the
# slow-query log without threading a PlanRun through every return value.
_LAST_RUN = threading.local()

#: Set by consumers of :func:`last_run` that are neither the tracer nor
#: the metrics registry (the service's slow-query log), so the hook
#: stays populated with both of those disabled.
KEEP_LAST_RUN = False


def last_run() -> Optional[PlanRun]:
    """The most recent :class:`PlanRun` completed on this thread while
    tracing or metrics were enabled (``None`` otherwise)."""
    return getattr(_LAST_RUN, "run", None)


def clear_last_run() -> None:
    _LAST_RUN.run = None


def execute_plan(plan: CompiledPlan, view: FactView,
                 collect: bool = True) -> Tuple[BindingTable, PlanRun]:
    """Run a compiled plan to completion; returns the final binding
    table and the per-operator run statistics.

    ``collect=False`` skips building and updating the per-operator
    stats (``run.operators`` stays empty) — the evaluator passes it
    when no telemetry consumer exists, removing the accounting from
    the hot path.  Direct callers (EXPLAIN ANALYZE, tests) keep the
    default and always get full stats.
    """
    run = PlanRun(plan=plan)
    ctx = _Context(view, run, collect)
    if _obs.ENABLED:
        _obs.TRACER.count("exec.plans")
    if _metrics.ENABLED:
        _metrics.METRICS.count("exec.plans")
    table = _execute(plan.root, unit_table(), ctx)
    if _obs.ENABLED or _metrics.ENABLED or KEEP_LAST_RUN:
        _LAST_RUN.run = run
    return table, run


# ----------------------------------------------------------------------
# Operator dispatch
# ----------------------------------------------------------------------
def _execute(node: PlanNode, table: BindingTable,
             ctx: _Context) -> BindingTable:
    if _deadline.ACTIVE:
        _deadline.check()
    if ctx.collect:
        stats = ctx.stats[id(node)]
        stats.calls += 1
        stats.in_rows += len(table.rows)
    if isinstance(node, AtomJoin):
        out = _exec_atom(node, table, ctx)
    elif isinstance(node, Pipeline):
        out = _exec_pipeline(node, table, ctx)
    elif isinstance(node, Union):
        out = _exec_union(node, table, ctx)
    elif isinstance(node, SemiJoin):
        out = _exec_semijoin(node, table, ctx)
    elif isinstance(node, ForAllProbe):
        out = _exec_forall(node, table, ctx)
    else:
        raise QueryError(f"unknown plan node: {type(node).__name__}")
    if ctx.collect:
        stats.out_rows += len(out.rows)
    return out


# ----------------------------------------------------------------------
# AtomJoin
# ----------------------------------------------------------------------
def _exec_atom(node: AtomJoin, table: BindingTable,
               ctx: _Context) -> BindingTable:
    pattern = node.formula.pattern
    pattern_vars = pattern.variables()
    pattern_var_set = pattern.variable_set()
    bound_vars = tuple(v for v in table.columns if v in pattern_var_set)
    bound_set = set(bound_vars)
    new_vars: List[Variable] = []
    for v in pattern_vars:
        if v not in bound_set and v not in new_vars:
            new_vars.append(v)
    if not table.rows or node.empty_hint:
        # empty_hint: compile time proved (exact counts, no virtual
        # handler) that this template matches nothing for any key.
        return BindingTable(table.columns + tuple(new_vars), [])

    # Hash-group the input rows by their key over the bound variables:
    # one probe per distinct key, not per row.
    key_positions = [table.index[v] for v in bound_vars]
    groups: Dict[Tuple[str, ...], List[Tuple[str, ...]]] = {}
    if key_positions:
        for row in table.rows:
            key = tuple(row[i] for i in key_positions)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = [row]
            else:
                bucket.append(row)
    else:
        groups[()] = table.rows

    keys = list(groups)
    templates = [
        pattern.substitute(dict(zip(bound_vars, key))) if key else pattern
        for key in keys
    ]
    if _obs.ENABLED:
        _obs.TRACER.count("exec.atom.keys", len(keys))
    facts_per_key = _probe_many(ctx, pattern, bound_set, templates)

    # Extraction positions: first occurrence of each new variable.
    # Facts from the probe are guaranteed to match the template
    # (repeated variables included), so first-occurrence is enough.
    new_positions = [
        next(i for i, c in enumerate(pattern) if c == v) for v in new_vars
    ]
    out_columns = table.columns + tuple(new_vars)
    out_rows: List[Tuple[str, ...]] = []
    append = out_rows.append
    for n, key in enumerate(keys):
        if _deadline.ACTIVE and n % CHECK_KEYS == 0:
            _deadline.check()
        facts = facts_per_key[n]
        if not facts:
            continue
        group_rows = groups[key]
        if new_positions:
            extensions = [
                tuple(f[p] for p in new_positions) for f in facts
            ]
            for row in group_rows:
                for extension in extensions:
                    append(row + extension)
        else:
            # Pure filter: the probe succeeded, keep the group's rows.
            out_rows.extend(group_rows)
    return BindingTable(out_columns, out_rows)


def _probe_many(ctx: _Context, pattern: Template, bound_set: Set[Variable],
                templates: List[Template]) -> List[List[Fact]]:
    """Matches for each substituted template: stored facts from the
    best positional index (handle resolved once per operator), merged
    with virtual contributions.

    Virtual facts are re-checked against the template before merging —
    mirroring the reference engine, whose ``view.solutions`` re-matches
    every fact, so a computed relation that ever yielded a non-matching
    fact degrades identically under both engines.
    """
    store = ctx.store
    index_for = getattr(store, "index_for", None)
    repeated_unbound = [
        c for c in pattern
        if isinstance(c, Variable) and c not in bound_set
    ]
    exact = len(repeated_unbound) == len(set(repeated_unbound))

    if index_for is not None and exact:
        # Fast path: every substituted template's candidate set is
        # exactly its stored answer set, and the ground positions are
        # the same for every key — resolve the index handle once.
        spec = "".join(
            letter for letter, component in zip("srt", pattern)
            if not isinstance(component, Variable) or component in bound_set)
        if _obs.ENABLED:
            _obs.TRACER.count("store.lookups", len(templates))
        if spec and getattr(store, "interned", False):
            # Interned columnar store: one batched integer-domain call.
            # Constants are interned once per template, the CSR index
            # is picked once for the whole batch, and each key costs an
            # offset-range probe — facts decode only at emission.
            # (lookup_many does not count store.lookups itself; the
            # batch was counted above.)
            stored = store.lookup_many(spec, templates)
        elif spec == "srt":
            stored = [
                [f] if (f := Fact(t.source, t.relationship, t.target))
                in store else []
                for t in templates
            ]
        elif not spec:
            stored = [list(store.match(t)) for t in templates]
        elif len(spec) == 1:
            handle = index_for(spec)
            p = _POSITION[spec]
            stored = [list(handle.get(t[p], ())) for t in templates]
        else:
            handle = index_for(spec)
            p0, p1 = _POSITION[spec[0]], _POSITION[spec[1]]
            stored = [
                list(handle.get((t[p0], t[p1]), ())) for t in templates
            ]
    else:
        # General path: the store's own batched match handles repeated
        # variables; stores without one (the lazy engine) fall back to
        # per-template matching with a re-check.
        store_many = getattr(store, "match_many", None)
        if store_many is not None:
            stored = store_many(templates)
        else:
            stored = [
                [f for f in store.match(t) if t.match(f) is not None]
                for t in templates
            ]

    virtual_batches = ctx.virtual.match_many(templates, store)
    results: List[List[Fact]] = []
    for template, stored_facts, virtual_facts in zip(
            templates, stored, virtual_batches):
        if not virtual_facts:
            results.append(stored_facts)
            continue
        seen = set(stored_facts)
        merged = list(stored_facts)
        for virtual_fact in virtual_facts:
            if virtual_fact not in seen \
                    and template.match(virtual_fact) is not None:
                seen.add(virtual_fact)
                merged.append(virtual_fact)
        results.append(merged)
    return results


# ----------------------------------------------------------------------
# Pipeline (∧) with adaptive re-order
# ----------------------------------------------------------------------
def _exec_pipeline(node: Pipeline, table: BindingTable,
                   ctx: _Context) -> BindingTable:
    remaining = list(node.parts)
    bound = set(table.columns)
    view = ctx.view
    while remaining:
        child = remaining.pop(0)
        # Per-input-row estimate at this point in the pipeline — the
        # same quantity the reference planner computes per binding, so
        # PR 1's plan-vs-actual records stay comparable across engines.
        # The estimate only exists for a consumer: the conjunct trace,
        # or the adaptive re-order (which needs ≥2 conjuncts left).
        if _obs.ENABLED or len(remaining) >= 2:
            est = estimate_cost(child.formula, bound, view)
        else:
            est = 0.0
        in_rows = len(table.rows)
        table = _execute(child, table, ctx)
        out_rows = len(table.rows)
        if _obs.ENABLED:
            _obs.TRACER.record_conjunct(str(child.formula), est, out_rows)
        bound |= child.formula.free_variables()
        if not out_rows:
            # No bindings survive: the remaining conjuncts can neither
            # produce rows nor raise (the reference engine never
            # reaches them with zero bindings).  The column set of the
            # empty table is irrelevant downstream.
            break
        if len(remaining) >= 2:
            fanout = out_rows / max(1, in_rows)
            if fanout > est * REPLAN_FACTOR \
                    or (fanout + 0.1) * REPLAN_FACTOR < est:
                # The estimate was off by more than 10× either way:
                # re-rank what's left under what is *actually* bound.
                # Stable sort keeps the compiled order between ties, so
                # deferred-quantifier ordering (and therefore which
                # range error could surface) matches the reference.
                remaining.sort(key=lambda part: conjunct_rank(
                    part.formula, bound, view)[0])
                ctx.run.replans += 1
                if _obs.ENABLED:
                    _obs.TRACER.count("exec.replans")
                if _metrics.ENABLED:
                    _metrics.METRICS.count("exec.replans")
    return table


# ----------------------------------------------------------------------
# Union (∨)
# ----------------------------------------------------------------------
def _exec_union(node: Union, table: BindingTable,
                ctx: _Context) -> BindingTable:
    free = node.formula.free_variables()
    columns = set(table.columns)
    new_vars = tuple(sorted(free - columns, key=lambda v: v.name))
    out_columns = table.columns + new_vars
    seen: Set[Tuple[str, ...]] = set()
    out_rows: List[Tuple[str, ...]] = []
    for branch in node.branches:
        missing = free - branch.formula.free_variables() - columns
        result = _execute(branch, table, ctx)
        if not result.rows:
            continue
        if missing:
            # Same guard, message, and rows-required behavior as the
            # reference engine (safety checking rejects this statically
            # for evaluate/ask; direct formula solving can reach it).
            raise QueryError(
                f"disjunct {branch.formula} does not bind"
                f" {[v.name for v in missing]}")
        positions = result.project_positions(out_columns)
        for row in result.rows:
            projected = tuple(row[i] for i in positions)
            if projected not in seen:
                seen.add(projected)
                out_rows.append(projected)
    return BindingTable(out_columns, out_rows)


# ----------------------------------------------------------------------
# SemiJoin (∃)
# ----------------------------------------------------------------------
def _exec_semijoin(node: SemiJoin, table: BindingTable,
                   ctx: _Context) -> BindingTable:
    formula = node.formula
    outer = formula.free_variables()
    # The distinct projection the body actually depends on.  The
    # quantified variable is *not* projected even if bound outside:
    # the outer binding is shadowed inside and restored in the output.
    probe_vars = tuple(v for v in table.columns if v in outer)
    probe_positions = [table.index[v] for v in probe_vars]
    new_vars = tuple(sorted(outer - set(table.columns),
                            key=lambda v: v.name))

    distinct: List[Tuple[str, ...]] = []
    seen_keys: Set[Tuple[str, ...]] = set()
    for row in table.rows:
        key = tuple(row[i] for i in probe_positions)
        if key not in seen_keys:
            seen_keys.add(key)
            distinct.append(key)
    if _obs.ENABLED:
        _obs.TRACER.count("exec.exists.keys", len(distinct))

    result = _execute(node.body, BindingTable(probe_vars, distinct), ctx)

    if not new_vars:
        # Pure semi-join: keep input rows whose projection succeeded.
        if not result.rows:
            return BindingTable(table.columns, [])
        ok_positions = result.project_positions(probe_vars)
        ok = {tuple(row[i] for i in ok_positions) for row in result.rows}
        kept = [
            row for row in table.rows
            if tuple(row[i] for i in probe_positions) in ok
        ]
        return BindingTable(table.columns, kept)

    out_columns = table.columns + new_vars
    if not result.rows:
        return BindingTable(out_columns, [])
    key_positions = result.project_positions(probe_vars)
    value_positions = result.project_positions(new_vars)
    witnesses: Dict[Tuple[str, ...], List[Tuple[str, ...]]] = {}
    witness_seen: Dict[Tuple[str, ...], Set[Tuple[str, ...]]] = {}
    for row in result.rows:
        key = tuple(row[i] for i in key_positions)
        values = tuple(row[i] for i in value_positions)
        marker = witness_seen.get(key)
        if marker is None:
            marker = witness_seen[key] = set()
            witnesses[key] = []
        if values not in marker:
            marker.add(values)
            witnesses[key].append(values)
    out_rows: List[Tuple[str, ...]] = []
    append = out_rows.append
    empty: Tuple[Tuple[str, ...], ...] = ()
    for row in table.rows:
        key = tuple(row[i] for i in probe_positions)
        for values in witnesses.get(key, empty):
            append(row + values)
    return BindingTable(out_columns, out_rows)


# ----------------------------------------------------------------------
# ForAllProbe (∀)
# ----------------------------------------------------------------------
def _exec_forall(node: ForAllProbe, table: BindingTable,
                 ctx: _Context) -> BindingTable:
    if not table.rows:
        # The reference engine only reaches a ∀ per candidate binding;
        # with none, it neither filters nor raises.
        return table
    formula = node.formula
    free = formula.free_variables()
    unbound = free - set(table.columns)
    if unbound:
        raise QueryError(
            "∀ reached with unbound free variables"
            f" {sorted(v.name for v in unbound)}; conjoin a"
            " generating template for them (range restriction)")
    probe_vars = tuple(v for v in table.columns if v in free)
    probe_positions = [table.index[v] for v in probe_vars]
    alive: Set[Tuple[str, ...]] = {
        tuple(row[i] for i in probe_positions) for row in table.rows
    }
    domain = list(ctx.view.entities())
    if _obs.ENABLED:
        _obs.TRACER.count("exec.forall.keys", len(alive))
        _obs.TRACER.gauge("query.forall.domain_size", len(domain))
    body_columns = probe_vars + (formula.variable,)
    for start in range(0, len(domain), FORALL_CHUNK):
        if not alive:
            break
        if _deadline.ACTIVE:
            _deadline.check()
        chunk = domain[start:start + FORALL_CHUNK]
        rows = [key + (entity,) for key in alive for entity in chunk]
        result = _execute(
            node.body, BindingTable(body_columns, rows), ctx)
        positions = result.project_positions(body_columns)
        satisfied: Dict[Tuple[str, ...], int] = {}
        seen_pairs: Set[Tuple[str, ...]] = set()
        for row in result.rows:
            pair = tuple(row[i] for i in positions)
            if pair not in seen_pairs:
                seen_pairs.add(pair)
                key = pair[:-1]
                satisfied[key] = satisfied.get(key, 0) + 1
        need = len(chunk)
        # Keys that missed any entity of this chunk are dropped now,
        # so they stop paying for the rest of the domain scan.
        alive = {key for key in alive if satisfied.get(key, 0) == need}
    kept = [
        row for row in table.rows
        if tuple(row[i] for i in probe_positions) in alive
    ]
    return BindingTable(table.columns, kept)


# ----------------------------------------------------------------------
# The compiled engine
# ----------------------------------------------------------------------
class CompiledEvaluator(Evaluator):
    """The set-at-a-time engine behind ``Database(query_engine=
    "compiled")`` (the default).

    ``evaluate`` / ``ask`` / ``succeeds`` compile the query once and
    run the plan over binding tables; everything else —
    :meth:`~repro.query.evaluate.Evaluator.solutions` for callers that
    stream bindings, safety checking, cache keying — is inherited from
    the reference engine, whose results this class reproduces exactly.
    Cache keys are shared between the engines (same answer sets, same
    version-epoch token), so a snapshot's warm cache serves both.

    With ``plans`` (a :class:`~repro.query.plancache.PlanCache`) set,
    parse + safety + compile are cached per canonical form and
    configuration epoch, and single-atom plans route to the pre-bound
    :class:`~repro.query.plancache.FastProbe` instead of binding-table
    execution (same answers, same errors — held by the fast-path
    equivalence suite).
    """

    def _plan_token(self):
        """The answer-version token plans validate against: the result
        cache's token when one is attached (any base mutation moves
        it), else the view store's own version (standalone evaluators
        over a fixed store, e.g. benchmark harnesses)."""
        if self.cache_token is not None:
            return self.cache_token
        return self.view.store.version

    def _entry(self, query: Union[str, Query]):
        """The plan-cache entry for ``query`` (requires ``plans``)."""
        return self.plans.entry(query, self.view, self.plan_epoch,
                                self._plan_token())

    def _fast_result(self, entry, rows) -> None:
        """Fast-path bookkeeping: the ``exec.fast_path`` counter and a
        one-operator :class:`PlanRun` for the slow-query autopsy."""
        if _obs.ENABLED:
            _obs.TRACER.count("exec.fast_path")
        if _metrics.ENABLED:
            _metrics.METRICS.count("exec.fast_path")
        run = PlanRun(plan=entry.plan)
        run.operators.append(OperatorStats(
            label=f"fast-probe {entry.plan.root.formula}",
            op="fast-probe", est=entry.plan.root.est, calls=1,
            in_rows=1, out_rows=rows))
        _LAST_RUN.run = run

    def evaluate(self, query: Union[str, Query]) -> Set[Tuple[str, ...]]:
        """The value {Q}, via compiled plan execution."""
        if self.plans is not None:
            entry = self._entry(query)
            if entry.error is not None:
                raise QueryError(entry.error)
            query = entry.query
            key_text = entry.key
        else:
            entry = None
            query, key_text = self._resolve(query)
            check_safety(query.formula)
        if self.cache is not None:
            key = ("query", key_text or str(query), self.cache_token)
            hit = self.cache.get(key, _NO_RESULT)
            if hit is not _NO_RESULT:
                return set(hit)
        if entry is not None and entry.fast is not None \
                and _plancache.FAST_PATH:
            if _obs.ENABLED:
                with _obs.TRACER.span(
                        "query.evaluate", query=key_text,
                        engine="compiled", fast_path=True) as span:
                    results = entry.fast.evaluate(self.view)
                    span.set(rows=len(results))
                self._fast_result(entry, len(results))
            else:
                results = entry.fast.evaluate(self.view)
                if _metrics.ENABLED or KEEP_LAST_RUN:
                    self._fast_result(entry, len(results))
        else:
            evaluate_span = (
                _obs.TRACER.span("query.evaluate", query=str(query),
                                 engine="compiled")
                if _obs.ENABLED else _obs.NULL_SPAN)
            with evaluate_span as span:
                results = self._run(query, entry)
                span.set(rows=len(results))
        if self.cache is not None:
            self.cache.put(key, frozenset(results))
        return results

    def ask(self, query: Union[str, Query]) -> bool:
        """Truth value of a proposition, via the compiled plan."""
        return self._truth("ask", query, proposition=True)

    def succeeds(self, query: Union[str, Query]) -> bool:
        """True if the query has a non-empty value (probe predicate)."""
        return self._truth("succeeds", query, proposition=False)

    def _truth(self, kind: str, query: Union[str, Query],
               proposition: bool) -> bool:
        """Shared ``ask``/``succeeds`` path: same plan cache, same
        result cache, same fast-path routing — only the proposition
        requirement differs.

        Warm truth queries short-circuit through the plan cache's
        verdict memo keyed on the raw text, skipping entry lookup and
        canonicalization entirely.  The memo engages only when nothing
        observes per-call traffic (no tracer, no metrics, no last-run
        autopsy) and never stores errors — those raise before the
        store-verdict call."""
        memoizing = (self._memoizes_verdicts(query)
                     and not KEEP_LAST_RUN)
        if memoizing:
            raw_text = query
            token = self._verdict_token()
            verdict = self.plans.cached_verdict(
                kind, raw_text, self.plan_epoch, token)
            if verdict is not None:
                return verdict
        if self.plans is not None:
            entry = self._entry(query)
            query = entry.query
            key_text = entry.key
            if proposition and not query.is_proposition:
                raise QueryError(
                    f"not a proposition — free variables:"
                    f" {[v.name for v in query.variables]}")
            if entry.error is not None:
                raise QueryError(entry.error)
        else:
            entry = None
            query, key_text = self._resolve(query)
            if proposition and not query.is_proposition:
                raise QueryError(
                    f"not a proposition — free variables:"
                    f" {[v.name for v in query.variables]}")
            check_safety(query.formula)
        if self.cache is not None:
            key = (kind, key_text or str(query), self.cache_token)
            hit = self.cache.get(key, _NO_RESULT)
            if hit is not _NO_RESULT:
                return hit
        if entry is not None and entry.fast is not None \
                and _plancache.FAST_PATH:
            result = entry.fast.any(self.view)
            if _obs.ENABLED or _metrics.ENABLED or KEEP_LAST_RUN:
                self._fast_result(entry, int(result))
        else:
            result = bool(self._run(query, entry))
        if self.cache is not None:
            self.cache.put(key, result)
        if memoizing:
            self.plans.store_verdict(
                kind, raw_text, self.plan_epoch, token, result)
        return result

    def evaluate_with_stats(self, query: Union[str, Query]
                            ) -> Tuple[Set[Tuple[str, ...]], PlanRun]:
        """Uncached evaluation that also returns the per-operator run
        statistics — the compiled engine's EXPLAIN ANALYZE source.
        Always executes the full compiled plan (never the fast path)
        with stats collection on."""
        query, _key = self._resolve(query)
        check_safety(query.formula)
        plan = compile_query(query, self.view)
        table, run = execute_plan(plan, self.view)
        return self._project(query, table), run

    # ------------------------------------------------------------------
    def _run(self, query: Query,
             entry=None) -> Set[Tuple[str, ...]]:
        if entry is not None:
            plan = self.plans.plan_for(entry, self.view,
                                       self._plan_token())
        else:
            plan = compile_query(query, self.view)
        collect = _obs.ENABLED or _metrics.ENABLED or KEEP_LAST_RUN
        table, _run = execute_plan(plan, self.view, collect=collect)
        return self._project(query, table)

    @staticmethod
    def _project(query: Query,
                 table: BindingTable) -> Set[Tuple[str, ...]]:
        if query.is_proposition:
            return {()} if table.rows else set()
        if not table.rows:
            # A pipeline that went empty mid-way stops without adding
            # the remaining columns; there is nothing to project.
            return set()
        positions = table.project_positions(query.variables)
        return {
            tuple(row[i] for i in positions) for row in table.rows
        }
