"""Query evaluation (paper §2.7).

"A query Q(x1,…,xn) … Its value is the set of all tuples (c1,…,cn)
which satisfy it."  The evaluator enumerates satisfying bindings over a
:class:`~repro.virtual.computed.FactView` — the materialized closure
plus the virtual relations — with greedy dynamic conjunct ordering.

Quantifier semantics: both ∃ and ∀ range over the *active domain* (the
entities occurring in the closure).  This is the only finite reading of
the paper's predicate calculus, and matches its examples: every worked
query quantifies over entities the database mentions.

Example::

    from repro import Database

    db = Database()
    db.add("JOHN", "∈", "EMPLOYEE")
    assert db.query("(x, ∈, EMPLOYEE)") == {("JOHN",)}
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, Optional, Set, Tuple, Union

from ..core import deadline as _deadline
from ..core.errors import QueryError
from ..core.facts import Binding, Variable
from ..obs import metrics as _metrics
from ..obs import tracer as _obs
from ..virtual.computed import FactView
from .ast import And, Atom, Exists, ForAll, Formula, Or, Query
from .parser import parse_query
from .planner import choose_conjunct

#: Sentinel distinguishing a cache miss from a cached falsy value.
_NO_RESULT = object()


class Evaluator:
    """Evaluates formulas and queries against a fact view.

    With ``cache`` (an :class:`~repro.core.cache.LRUCache`) and
    ``cache_token`` set, query values and truth values are memoized
    under ``(kind, canonical query text, token)``.  The token must
    change whenever the view's answers could (the
    :class:`~repro.db.Database` embeds its store version and
    configuration epoch), so stale entries are never hit and no
    explicit invalidation is needed.

    Queries may be passed as text or as parsed :class:`Query` objects.
    With ``plans`` (a :class:`~repro.query.plancache.PlanCache`) set,
    text is parsed at most once per canonical spelling; without one it
    is parsed per call, as before.
    """

    def __init__(self, view: FactView, cache=None, cache_token=None,
                 plans=None, plan_epoch=None):
        self.view = view
        self.cache = cache
        self.cache_token = cache_token
        self.plans = plans
        self.plan_epoch = plan_epoch

    def _resolve(self, query: Union[str, Query]
                 ) -> Tuple[Query, Optional[str]]:
        """``(parsed query, result-cache key text)`` for either input
        form.  Text resolves through the plan cache's parse memo when
        one is attached and keys on its canonical form; parsed queries
        return ``None`` and key on ``str(query)``, computed lazily only
        when a result cache is attached (exactly as before)."""
        if isinstance(query, str):
            if self.plans is not None:
                key, parsed = self.plans.parsed(query)
                return parsed, key
            parsed = parse_query(query)
            return parsed, str(parsed)
        return query, None

    def _verdict_token(self):
        """The answer-version token verdict memos are stored under:
        the database's cache token when one is attached, else the
        view's (store, version) pair — the store itself participates
        so two stores can never collide on a bare version number."""
        if self.cache_token is not None:
            return self.cache_token
        store = self.view.store
        return (store, store.version)

    def _memoizes_verdicts(self, query) -> bool:
        """Truth-value memoization is a raw-text shortcut past every
        counter, so it only engages when nothing is watching: no
        tracer, no metrics (both count cache/plan traffic per call)."""
        return (self.plans is not None and type(query) is str
                and not _obs.ENABLED and not _metrics.ENABLED)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(self, query: Union[str, Query]) -> Set[Tuple[str, ...]]:
        """The value {Q}: all tuples of entities satisfying the query.

        For a proposition (closed formula) the value is ``{()}`` if it
        is true and ``set()`` otherwise; use :meth:`ask` for a bool.
        """
        query, key_text = self._resolve(query)
        if self.cache is not None:
            key = ("query", key_text or str(query), self.cache_token)
            hit = self.cache.get(key, _NO_RESULT)
            if hit is not _NO_RESULT:
                # Stored frozen; hand out a fresh mutable set each time.
                return set(hit)
        check_safety(query.formula)
        evaluate_span = (_obs.TRACER.span("query.evaluate",
                                          query=str(query))
                         if _obs.ENABLED else _obs.NULL_SPAN)
        with evaluate_span as span:
            results: Set[Tuple[str, ...]] = set()
            for binding in self.solutions(query.formula, {}):
                # Deadline checkpoint: one per result row keeps even a
                # single huge conjunct cancellable (repro.core.deadline).
                if _deadline.ACTIVE:
                    _deadline.check()
                results.add(tuple(binding[v] for v in query.variables))
            span.set(rows=len(results))
        if self.cache is not None:
            self.cache.put(key, frozenset(results))
        return results

    def ask(self, query: Union[str, Query]) -> bool:
        """Truth value of a proposition (§2.7)."""
        if self._memoizes_verdicts(query):
            token = self._verdict_token()
            verdict = self.plans.cached_verdict(
                "ask", query, self.plan_epoch, token)
            if verdict is not None:
                return verdict
            result = self._ask_uncached(query)
            self.plans.store_verdict(
                "ask", query, self.plan_epoch, token, result)
            return result
        return self._ask_uncached(query)

    def _ask_uncached(self, query: Union[str, Query]) -> bool:
        query, key_text = self._resolve(query)
        if not query.is_proposition:
            raise QueryError(
                f"not a proposition — free variables:"
                f" {[v.name for v in query.variables]}")
        if self.cache is not None:
            key = ("ask", key_text or str(query), self.cache_token)
            hit = self.cache.get(key, _NO_RESULT)
            if hit is not _NO_RESULT:
                return hit
        check_safety(query.formula)
        result = any(True for _ in self.solutions(query.formula, {}))
        if self.cache is not None:
            self.cache.put(key, result)
        return result

    def succeeds(self, query: Union[str, Query]) -> bool:
        """True if the query has a non-empty value.

        Probing (§5) is built on this predicate: a query *fails* when
        it succeeds for no tuple.  Cached like :meth:`evaluate` and
        :meth:`ask` — probe-heavy browsing re-tests the same failure
        queries wave after wave, so skipping the cache here made §5
        retraction search re-solve them every time.
        """
        if self._memoizes_verdicts(query):
            token = self._verdict_token()
            verdict = self.plans.cached_verdict(
                "succeeds", query, self.plan_epoch, token)
            if verdict is not None:
                return verdict
            result = self._succeeds_uncached(query)
            self.plans.store_verdict(
                "succeeds", query, self.plan_epoch, token, result)
            return result
        return self._succeeds_uncached(query)

    def _succeeds_uncached(self, query: Union[str, Query]) -> bool:
        query, key_text = self._resolve(query)
        if self.cache is not None:
            key = ("succeeds", key_text or str(query), self.cache_token)
            hit = self.cache.get(key, _NO_RESULT)
            if hit is not _NO_RESULT:
                return hit
        check_safety(query.formula)
        result = any(True for _ in self.solutions(query.formula, {}))
        if self.cache is not None:
            self.cache.put(key, result)
        return result

    # ------------------------------------------------------------------
    # Formula solving
    # ------------------------------------------------------------------
    def solutions(self, formula: Formula,
                  binding: Optional[Binding] = None) -> Iterator[Binding]:
        """All bindings of the formula's free variables that satisfy it,
        each extending the given partial binding."""
        binding = binding or {}
        if isinstance(formula, Atom):
            yield from self.view.solutions(formula.pattern, binding)
            return
        if isinstance(formula, And):
            yield from self._solve_and(list(formula.parts), binding)
            return
        if isinstance(formula, Or):
            yield from self._solve_or(formula, binding)
            return
        if isinstance(formula, Exists):
            yield from self._solve_exists(formula, binding)
            return
        if isinstance(formula, ForAll):
            yield from self._solve_forall(formula, binding)
            return
        raise QueryError(f"unknown formula type: {type(formula).__name__}")

    def _solve_and(self, parts, binding: Binding) -> Iterator[Binding]:
        if not parts:
            yield binding
            return
        # Deadline checkpoint: entered once per conjunct selection, i.e.
        # once per partial binding — frequent enough to bound latency,
        # rare enough not to show up in profiles.
        if _deadline.ACTIVE:
            _deadline.check()
        bound = set(binding)
        index, cost = choose_conjunct(parts, bound, self.view)
        first = parts[index]
        rest = parts[:index] + parts[index + 1:]
        if _obs.ENABLED:
            yield from self._solve_and_traced(first, rest, binding, cost)
            return
        for extended in self.solutions(first, binding):
            yield from self._solve_and(rest, extended)

    def _solve_and_traced(self, first, rest, binding: Binding,
                          cost: float) -> Iterator[Binding]:
        """One conjunct step with plan-vs-actual recording: the
        planner's estimate at selection time next to the rows the
        conjunct actually produced under this binding."""
        rows = 0
        try:
            for extended in self.solutions(first, binding):
                rows += 1
                yield from self._solve_and(rest, extended)
        finally:
            _obs.TRACER.record_conjunct(str(first), cost, rows)

    def _solve_or(self, formula: Or, binding: Binding) -> Iterator[Binding]:
        # Solutions from different disjuncts may repeat; deduplicate on
        # the formula's free variables so {Q} stays a set.
        free = formula.free_variables()
        seen = set()
        for part in formula.parts:
            part_free = part.free_variables()
            missing = free - part_free - set(binding)
            for extended in self.solutions(part, binding):
                if missing:
                    # A disjunct that leaves some of the formula's free
                    # variables unbound cannot produce a tuple; safety
                    # checking rejects this statically, but guard here
                    # for directly built formulas.
                    raise QueryError(
                        f"disjunct {part} does not bind"
                        f" {[v.name for v in missing]}")
                key = tuple(sorted(
                    (v.name, extended[v]) for v in free if v in extended))
                if key not in seen:
                    seen.add(key)
                    yield extended

    def _solve_exists(self, formula: Exists,
                      binding: Binding) -> Iterator[Binding]:
        if _obs.ENABLED:
            _obs.TRACER.count("query.exists.evals")
        variable = formula.variable
        inner = dict(binding)
        inner.pop(variable, None)  # an outer binding of x is shadowed
        seen = set()
        outer_vars = formula.free_variables()
        for witness in self.solutions(formula.body, inner):
            # Project away the quantified variable *and* any variables
            # internal to the body, so nothing leaks into sibling
            # conjuncts that happen to reuse a variable name.
            projected = {
                v: value for v, value in witness.items() if v in outer_vars
            }
            projected.update(binding)
            key = tuple(sorted(
                (v.name, projected[v]) for v in outer_vars
                if v in projected))
            if key not in seen:
                seen.add(key)
                yield projected

    def _solve_forall(self, formula: ForAll,
                      binding: Binding) -> Iterator[Binding]:
        # ∀ is a filter: every other free variable must already be
        # bound, and the body must hold for every entity in the active
        # domain substituted for the quantified variable.
        unbound = formula.free_variables() - set(binding)
        if unbound:
            raise QueryError(
                "∀ reached with unbound free variables"
                f" {sorted(v.name for v in unbound)}; conjoin a"
                " generating template for them (range restriction)")
        variable = formula.variable
        domain = self.view.entities()
        if _obs.ENABLED:
            # The ∀ filter scans the whole active domain per candidate
            # binding; the counter totals entities scanned, the gauge
            # keeps the domain size itself.
            _obs.TRACER.count("query.forall.evals")
            _obs.TRACER.count("query.forall.domain_scanned", len(domain))
            _obs.TRACER.gauge("query.forall.domain_size", len(domain))
        for entity in domain:
            candidate = dict(binding)
            candidate[variable] = entity
            if not any(True for _ in self.solutions(formula.body, candidate)):
                return
        yield binding


# ----------------------------------------------------------------------
# Safety (range restriction)
# ----------------------------------------------------------------------
def limited_variables(formula: Formula) -> FrozenSet[Variable]:
    """Free variables guaranteed to be bound by evaluating the formula.

    A variable is *limited* if every evaluation path binds it: atoms
    bind their variables; a conjunction limits the union of its parts;
    a disjunction only the intersection; quantifiers remove their own
    variable; a ∀ body limits nothing for the outer formula (it is a
    filter)."""
    if isinstance(formula, Atom):
        return formula.pattern.variable_set()
    if isinstance(formula, And):
        result: FrozenSet[Variable] = frozenset()
        for part in formula.parts:
            result |= limited_variables(part)
        return result
    if isinstance(formula, Or):
        parts = [limited_variables(p) for p in formula.parts]
        result = parts[0]
        for part in parts[1:]:
            result &= part
        return result
    if isinstance(formula, Exists):
        return limited_variables(formula.body) - {formula.variable}
    if isinstance(formula, ForAll):
        return frozenset()
    raise QueryError(f"unknown formula type: {type(formula).__name__}")


def check_safety(formula: Formula) -> None:
    """Reject queries whose value is not generated by their own
    templates (the classic range-restriction condition).

    Raises:
        QueryError: if some free variable is not limited.
    """
    free = formula.free_variables()
    limited = limited_variables(formula)
    unsafe = free - limited
    if unsafe:
        names = sorted(v.name for v in unsafe)
        raise QueryError(
            f"unsafe query: free variables {names} are not limited by"
            " any template (every free variable must appear in a"
            " template on every disjunctive branch)")
    _check_forall_bodies(formula, frozenset())


def _check_forall_bodies(formula: Formula,
                         enclosing: FrozenSet[Variable]) -> None:
    """Every ∀'s outer free variables must be limited by the enclosing
    conjunctive context, or evaluation will raise at runtime."""
    if isinstance(formula, Atom):
        return
    if isinstance(formula, (And, Or)):
        limited = enclosing
        if isinstance(formula, And):
            limited = enclosing | limited_variables(formula)
        for part in formula.parts:
            _check_forall_bodies(part, limited)
        return
    if isinstance(formula, Exists):
        _check_forall_bodies(formula.body, enclosing | {formula.variable})
        return
    if isinstance(formula, ForAll):
        unbound = formula.free_variables() - enclosing
        if unbound:
            names = sorted(v.name for v in unbound)
            raise QueryError(
                f"∀ body refers to {names}, which no surrounding"
                " template generates (range restriction)")
        _check_forall_bodies(formula.body, enclosing | {formula.variable})
        return
    raise QueryError(f"unknown formula type: {type(formula).__name__}")
