"""Conjunct ordering by estimated selectivity.

The evaluator solves a conjunction one part at a time, threading
bindings left to right.  Order matters enormously: starting with
``(x, ∈, EMPLOYEE)`` before ``(x, EARNS, y)`` before ``(y, >, 20000)``
touches a handful of facts, while the reverse order enumerates numeric
pairs first.  This planner re-ranks the remaining conjuncts *after
every binding step*, so each join starts from the currently cheapest
part — a greedy dynamic plan, which is plenty for heap-scale data and
keeps virtual relations (whose cost collapses once one side is bound)
well-behaved.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from ..core.facts import Binding, Variable
from ..virtual.computed import FactView
from .ast import And, Atom, Exists, ForAll, Formula, Or

#: Planner cost assigned to quantified sub-formulas, which are opaque
#: to the estimator; they run after anything with a real estimate.
OPAQUE_COST = 10 ** 9


def estimate_cost(part: Formula, bound: Set[Variable],
                  view: FactView) -> float:
    """Estimated result size of one conjunct given bound variables."""
    if isinstance(part, Atom):
        pattern = part.pattern
        # Pretend bound variables are constants by substituting a
        # sentinel binding shape: count_estimate only needs to know
        # which positions are ground, so substitute any entity.
        sentinel: Binding = {
            v: "\x00bound\x00" for v in pattern.variable_set() & bound
        }
        probe = pattern.substitute(sentinel) if sentinel else pattern
        free_positions = sum(
            1 for c in probe if isinstance(c, Variable))
        if free_positions == 0:
            return 0.5  # membership test: cheapest possible
        if not sentinel and getattr(view, "exact_counts", False):
            # Interned columnar stores answer count_estimate exactly
            # (CSR index length lookups), so when no position is a
            # bound-variable sentinel the estimate *is* the result
            # size — rank on it directly, no fudge factors.  An exact
            # zero deliberately ranks before the 0.5 membership test:
            # starting from a provably empty conjunct prunes the whole
            # conjunction immediately.
            return float(view.count_estimate(pattern))
        # The sentinel never occurs in the store, which would make the
        # index estimate 0 and hide the true per-binding fanout; use
        # the un-substituted estimate scaled down per bound variable.
        # (Sampling fallback: also the exact-count path's behavior for
        # patterns with bound variables, where the true per-binding
        # fanout is unknowable from global index lengths alone.)
        raw = view.count_estimate(pattern)
        return raw / (10.0 ** len(sentinel)) + free_positions * 0.1
    if isinstance(part, And):
        return min(
            estimate_cost(p, bound, view) for p in part.parts)
    if isinstance(part, Or):
        return sum(
            estimate_cost(p, bound, view) for p in part.parts)
    if isinstance(part, (Exists, ForAll)):
        return OPAQUE_COST
    return OPAQUE_COST


def is_deferred(part: Formula, bound: Set[Variable]) -> bool:
    """True for quantified parts that should wait for their free
    variables to be bound by some other conjunct.

    A ``∀`` with unbound free variables *raises* if evaluated (it is a
    filter); an ``∃`` with unbound free variables may contain such a
    ``∀`` in its body and is cheaper once its context is ground either
    way.  Deferring both fixes the planner bug where every part costs
    :data:`OPAQUE_COST` and the tie-break picked a quantifier before
    the generator that would have bound its variables.
    """
    return (isinstance(part, (Exists, ForAll))
            and not part.free_variables() <= bound)


def conjunct_rank(part: Formula, bound: Set[Variable],
                  view: FactView) -> Tuple[Tuple[int, int, float], float]:
    """Ordering rank for one conjunct: ``(rank tuple, estimated cost)``.

    Ranks sort generators (and quantifiers whose free variables are
    bound) before deferred quantifiers, deferred ``∃`` (which can still
    generate) before deferred ``∀`` (which cannot), and by estimated
    cost within each class.
    """
    cost = estimate_cost(part, bound, view)
    if is_deferred(part, bound):
        return (1, 1 if isinstance(part, ForAll) else 0, cost), cost
    return (0, 0, cost), cost


def choose_conjunct(parts: Sequence[Formula], bound: Set[Variable],
                    view: FactView) -> Tuple[int, float]:
    """The cheapest remaining conjunct: ``(index, estimated cost)``.

    The cost is returned alongside the index so the instrumented
    evaluator can record plan-vs-actual without re-estimating.
    Quantified parts whose free variables are not yet bound rank after
    every generator regardless of cost (see :func:`is_deferred`), so a
    valid query never hits the runtime "∀ reached with unbound free
    variables" error just because every estimate was opaque.
    """
    best_index = 0
    best_cost = float("inf")
    best_rank = None
    for index, part in enumerate(parts):
        rank, cost = conjunct_rank(part, bound, view)
        if best_rank is None or rank < best_rank:
            best_rank = rank
            best_cost = cost
            best_index = index
    return best_index, best_cost


def next_conjunct(parts: Sequence[Formula], bound: Set[Variable],
                  view: FactView) -> int:
    """Index of the cheapest remaining conjunct to evaluate next."""
    return choose_conjunct(parts, bound, view)[0]


def order_conjuncts(parts: Sequence[Formula], bound: Set[Variable],
                    view: FactView) -> List[Formula]:
    """A full greedy static order (used by tests and EXPLAIN output);
    the evaluator itself re-plans dynamically per binding."""
    remaining = list(parts)
    bound = set(bound)
    ordered: List[Formula] = []
    while remaining:
        index = next_conjunct(remaining, bound, view)
        part = remaining.pop(index)
        ordered.append(part)
        bound |= part.free_variables()
    return ordered
