"""The query language's abstract syntax (paper §2.7).

"Templates are the only predicates, and each predicate is an atomic
formula.  If A and B are formulas and x is a variable, then (A ∧ B),
(A ∨ B), (∃x)A and (∀x)A are formulas."

A :class:`Query` is a formula together with the order of its free
variables; its value is the set of tuples satisfying it.  There is no
negation operator — per the paper, negative assertions use
complementary relationships such as ``≠``.

Example::

    from repro.query import parse_query

    q = parse_query("(x, ∈, EMPLOYEE) and (x, EARNS, y)")
    assert str(q).startswith("Q(x, y)")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple

from ..core.errors import QueryError
from ..core.facts import Template, Variable


class Formula:
    """Base class of all well-formed formulas."""

    def free_variables(self) -> FrozenSet[Variable]:
        raise NotImplementedError

    # Convenience combinators so formulas compose fluently in client
    # code and examples: ``atom1 & atom2 | atom3``.
    def __and__(self, other: "Formula") -> "And":
        return And(_flatten(And, (self, other)))

    def __or__(self, other: "Formula") -> "Or":
        return Or(_flatten(Or, (self, other)))


def _flatten(kind, parts: Iterable[Formula]) -> Tuple[Formula, ...]:
    flattened = []
    for part in parts:
        if isinstance(part, kind):
            flattened.extend(part.parts)
        else:
            flattened.append(part)
    return tuple(flattened)


@dataclass(frozen=True)
class Atom(Formula):
    """An atomic formula: a template predicate."""

    pattern: Template

    def free_variables(self) -> FrozenSet[Variable]:
        return self.pattern.variable_set()

    def __str__(self) -> str:
        return repr(self.pattern)


@dataclass(frozen=True)
class And(Formula):
    """Conjunction of two or more formulas."""

    parts: Tuple[Formula, ...]

    def __post_init__(self):
        if len(self.parts) < 1:
            raise QueryError("conjunction needs at least one part")

    def free_variables(self) -> FrozenSet[Variable]:
        result: FrozenSet[Variable] = frozenset()
        for part in self.parts:
            result |= part.free_variables()
        return result

    def __str__(self) -> str:
        return "(" + " ∧ ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction of two or more formulas."""

    parts: Tuple[Formula, ...]

    def __post_init__(self):
        if len(self.parts) < 1:
            raise QueryError("disjunction needs at least one part")

    def free_variables(self) -> FrozenSet[Variable]:
        result: FrozenSet[Variable] = frozenset()
        for part in self.parts:
            result |= part.free_variables()
        return result

    def __str__(self) -> str:
        return "(" + " ∨ ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Exists(Formula):
    """(∃x) A — existential quantification."""

    variable: Variable
    body: Formula

    def free_variables(self) -> FrozenSet[Variable]:
        return self.body.free_variables() - {self.variable}

    def __str__(self) -> str:
        return f"(∃{self.variable.name}) {self.body}"


@dataclass(frozen=True)
class ForAll(Formula):
    """(∀x) A — universal quantification over the active domain."""

    variable: Variable
    body: Formula

    def free_variables(self) -> FrozenSet[Variable]:
        return self.body.free_variables() - {self.variable}

    def __str__(self) -> str:
        return f"(∀{self.variable.name}) {self.body}"


def atom(source, relationship, target) -> Atom:
    """Shorthand: build an :class:`Atom` from three components."""
    from ..core.facts import template
    return Atom(template(source, relationship, target))


def exists(variables, body: Formula) -> Formula:
    """Wrap ``body`` in one :class:`Exists` per variable."""
    if isinstance(variables, Variable):
        variables = (variables,)
    result = body
    for variable in reversed(tuple(variables)):
        result = Exists(variable, result)
    return result


def forall(variables, body: Formula) -> Formula:
    """Wrap ``body`` in one :class:`ForAll` per variable."""
    if isinstance(variables, Variable):
        variables = (variables,)
    result = body
    for variable in reversed(tuple(variables)):
        result = ForAll(variable, result)
    return result


@dataclass(frozen=True)
class Query:
    """A formula with a fixed order on its free variables (§2.7).

    A query with no free variables is a *proposition*: its value is a
    truth value rather than a set of tuples.
    """

    formula: Formula
    variables: Tuple[Variable, ...]

    @staticmethod
    def of(formula: Formula,
           variables: Optional[Iterable[Variable]] = None) -> "Query":
        """Build a query; variable order defaults to sorted-by-name."""
        free = formula.free_variables()
        if variables is None:
            ordered = tuple(sorted(free, key=lambda v: v.name))
        else:
            ordered = tuple(variables)
            declared = set(ordered)
            if declared != free:
                missing = {v.name for v in free - declared}
                extra = {v.name for v in declared - free}
                raise QueryError(
                    "query variable list must equal the formula's free"
                    f" variables (missing: {sorted(missing)},"
                    f" extra: {sorted(extra)})")
            if len(ordered) != len(declared):
                raise QueryError("duplicate variable in query variable list")
        return Query(formula=formula, variables=ordered)

    @property
    def is_proposition(self) -> bool:
        """True for closed formulas (§2.7)."""
        return not self.variables

    def __str__(self) -> str:
        if self.is_proposition:
            return str(self.formula)
        names = ", ".join(v.name for v in self.variables)
        return f"Q({names}) = {self.formula}"
