"""Named structured views over the loose heap (paper §6.1).

"Representation of information as an unstructured heap of facts …
should not prevent structured views of this information.  On the
contrary, using the standard query language, the user may view this
information as if it is structured according to different data models,
such as the relational or the functional."

A :class:`ViewCatalog` holds named view *definitions* — relational
(`relation(...)` specs), functional (one relationship as a function),
or plain queries — and materializes them on demand against the current
closure.  Views are definitions, not snapshots: re-materializing after
updates reflects the new facts, which is the §1 evolution story told
from the structured side.

Example::

    from repro import Database

    db = Database()
    db.add("JOHN", "EARNS", "$25000")
    db.views.define_function("salary", "EARNS")
    assert db.views.materialize("salary")("JOHN") == ("$25000",)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .core.errors import QueryError

KIND_RELATION = "relation"
KIND_FUNCTION = "function"
KIND_QUERY = "query"


@dataclass(frozen=True)
class ViewDefinition:
    """One named view: its kind and the spec to materialize it."""

    name: str
    kind: str
    #: relation: (class_entity, ((rel, target_class), ...));
    #: function: relationship name; query: query text.
    spec: object

    def describe(self) -> str:
        if self.kind == KIND_RELATION:
            class_entity, columns = self.spec
            parts = ", ".join(f"{r} {t}" for r, t in columns)
            return f"relation({class_entity}, {parts})"
        if self.kind == KIND_FUNCTION:
            return f"function({self.spec})"
        return f"query[{self.spec}]"


class ViewCatalog:
    """Named views over one database."""

    def __init__(self, database):
        self._database = database
        self._definitions: Dict[str, ViewDefinition] = {}

    # ------------------------------------------------------------------
    # Definition
    # ------------------------------------------------------------------
    def _register(self, definition: ViewDefinition) -> None:
        if definition.name in self._definitions:
            raise QueryError(f"view {definition.name!r} already defined"
                             " (undefine it first)")
        self._definitions[definition.name] = definition

    def define_relation(self, name: str, class_entity: str,
                        *columns: Tuple[str, str]) -> None:
        """A named §6.1 ``relation(...)`` view."""
        self._register(ViewDefinition(
            name=name, kind=KIND_RELATION,
            spec=(class_entity, tuple(columns))))

    def define_function(self, name: str, relationship: str) -> None:
        """A named functional-model view of one relationship."""
        self._register(ViewDefinition(
            name=name, kind=KIND_FUNCTION, spec=relationship))

    def define_query(self, name: str, text: str) -> None:
        """A named standard query (its value set is the view)."""
        from .query.parser import parse_query

        parse_query(text)  # validate eagerly
        self._register(ViewDefinition(
            name=name, kind=KIND_QUERY, spec=text))

    def undefine(self, name: str) -> None:
        if name not in self._definitions:
            raise QueryError(f"no view named {name!r}")
        del self._definitions[name]

    def __contains__(self, name: str) -> bool:
        return name in self._definitions

    def names(self) -> List[str]:
        return sorted(self._definitions)

    def definition(self, name: str) -> ViewDefinition:
        try:
            return self._definitions[name]
        except KeyError:
            raise QueryError(
                f"no view named {name!r} (known: {self.names()})")

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def materialize(self, name: str):
        """Evaluate the view against the *current* closure.

        Returns a :class:`~repro.operators.ops.RelationTable`, a
        :class:`~repro.operators.ops.FunctionView`, or a value set,
        depending on the view's kind.
        """
        definition = self.definition(name)
        if definition.kind == KIND_RELATION:
            class_entity, columns = definition.spec
            return self._database.relation(class_entity, *columns)
        if definition.kind == KIND_FUNCTION:
            return self._database.function(definition.spec)
        return self._database.query(definition.spec)

    def render(self, name: str) -> str:
        """A text rendering of the materialized view."""
        definition = self.definition(name)
        materialized = self.materialize(name)
        if definition.kind == KIND_RELATION:
            return materialized.render()
        if definition.kind == KIND_FUNCTION:
            lines = [f"{definition.spec}:"]
            lines.extend(
                f"  {entity} -> {', '.join(images)}"
                for entity, images in materialized.items())
            return "\n".join(lines)
        rows = sorted(materialized)
        if not rows:
            return "(empty)"
        return "\n".join(", ".join(row) for row in rows)

    def render_catalog(self) -> str:
        """One line per defined view."""
        if not self._definitions:
            return "(no views defined)"
        return "\n".join(
            f"  {name}: {self._definitions[name].describe()}"
            for name in self.names())
