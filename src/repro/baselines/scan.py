"""An unindexed fact store: the "extensive scan" baseline.

The paper's introduction argues that finding "something interesting
about John" in an organized system requires either schema knowledge or
"an extensive scan".  This store *is* that extensive scan: the same
interface as :class:`~repro.core.store.FactStore` but every template
match walks the whole heap.  Benchmark F5 plots the two against each
other as the heap grows.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Set

from ..core.facts import Binding, Fact, Template


class ScanStore:
    """A list of facts; matching is a full scan."""

    def __init__(self, facts: Iterable[Fact] = ()):
        self._facts: List[Fact] = []
        self._present: Set[Fact] = set()
        for fact in facts:
            self.add(fact)

    def add(self, fact: Fact) -> bool:
        if fact in self._present:
            return False
        self._present.add(fact)
        self._facts.append(fact)
        return True

    def add_all(self, facts: Iterable[Fact]) -> int:
        return sum(1 for f in facts if self.add(f))

    def discard(self, fact: Fact) -> bool:
        if fact not in self._present:
            return False
        self._present.remove(fact)
        self._facts.remove(fact)
        return True

    def __contains__(self, fact: Fact) -> bool:
        return fact in self._present

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def entities(self) -> Set[str]:
        result: Set[str] = set()
        for fact in self._facts:
            result.update(fact)
        return result

    def relationships(self) -> Set[str]:
        return {fact.relationship for fact in self._facts}

    def has_entity(self, entity: str) -> bool:
        return any(entity in fact for fact in self._facts)

    def match(self, pattern: Template,
              binding: Optional[Binding] = None) -> Iterator[Fact]:
        """Full-scan template matching."""
        if binding:
            pattern = pattern.substitute(binding)
        for fact in self._facts:
            if pattern.match(fact) is not None:
                yield fact

    def solutions(self, pattern: Template,
                  binding: Optional[Binding] = None) -> Iterator[Binding]:
        base = binding or {}
        substituted = pattern.substitute(base) if base else pattern
        for fact in self._facts:
            extended = substituted.match(fact, base)
            if extended is not None:
                yield extended

    def count_estimate(self, pattern: Template,
                       binding: Optional[Binding] = None) -> int:
        """A scan store cannot estimate without scanning; report the
        heap size (which is also its true cost)."""
        return len(self._facts)

    def facts_mentioning(self, entity: str) -> Set[Fact]:
        return {fact for fact in self._facts if entity in fact}
