"""A schema-organized relational baseline (benchmark F3).

The paper's §1 trade-off: "investment in organization is compensated by
convenient and efficient retrieval."  This module is the *organized*
side of that trade-off — a miniature relational engine with named
relations, declared attributes, and hash indexes — so the benchmarks
can price both sides: building it (design + load + index cost, and the
schema knowledge required to query it at all) versus querying it.

It is deliberately the kind of system SDMS/TIMBER-style browsers
presuppose: to retrieve anything you must name a relation and its
attributes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.errors import QueryError

Row = Tuple[str, ...]


@dataclass
class Relation:
    """A named relation with a fixed attribute list and hash indexes."""

    name: str
    attributes: Tuple[str, ...]
    rows: List[Row] = field(default_factory=list)
    _indexes: Dict[str, Dict[str, List[Row]]] = field(default_factory=dict)

    def attribute_index(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise QueryError(
                f"relation {self.name!r} has no attribute {attribute!r}"
                f" (schema: {', '.join(self.attributes)})")

    def insert(self, row: Sequence[str]) -> None:
        if len(row) != len(self.attributes):
            raise QueryError(
                f"arity mismatch for {self.name!r}: expected"
                f" {len(self.attributes)} values, got {len(row)}")
        stored = tuple(row)
        self.rows.append(stored)
        for attribute, value_map in self._indexes.items():
            position = self.attribute_index(attribute)
            value_map.setdefault(stored[position], []).append(stored)

    def create_index(self, attribute: str) -> None:
        position = self.attribute_index(attribute)
        value_map: Dict[str, List[Row]] = {}
        for row in self.rows:
            value_map.setdefault(row[position], []).append(row)
        self._indexes[attribute] = value_map

    def select(self, attribute: str, value: str) -> List[Row]:
        """σ(attribute = value) — indexed when an index exists."""
        if attribute in self._indexes:
            return list(self._indexes[attribute].get(value, ()))
        position = self.attribute_index(attribute)
        return [row for row in self.rows if row[position] == value]

    def project(self, attributes: Sequence[str],
                rows: Optional[Iterable[Row]] = None) -> List[Row]:
        positions = [self.attribute_index(a) for a in attributes]
        source = self.rows if rows is None else rows
        return [tuple(row[p] for p in positions) for row in source]

    def __len__(self) -> int:
        return len(self.rows)


class RelationalDatabase:
    """A catalog of relations.  Querying requires schema knowledge:
    every access names a relation and its attributes, which is exactly
    the knowledge browsing is designed to avoid needing."""

    def __init__(self):
        self._relations: Dict[str, Relation] = {}

    def create_relation(self, name: str,
                        attributes: Sequence[str]) -> Relation:
        if name in self._relations:
            raise QueryError(f"relation {name!r} already exists")
        relation = Relation(name=name, attributes=tuple(attributes))
        self._relations[name] = relation
        return relation

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise QueryError(
                f"no relation named {name!r} (schema knowledge required:"
                f" known relations are {sorted(self._relations)})")

    def relations(self) -> List[str]:
        return sorted(self._relations)

    def __len__(self) -> int:
        return sum(len(r) for r in self._relations.values())

    # ------------------------------------------------------------------
    # The operations benchmark F3 prices
    # ------------------------------------------------------------------
    def lookup(self, relation_name: str, attribute: str,
               value: str) -> List[Row]:
        """Indexed point lookup — the organized system's fast path."""
        return self.relation(relation_name).select(attribute, value)

    def join(self, left_name: str, left_attribute: str, right_name: str,
             right_attribute: str) -> Iterator[Tuple[Row, Row]]:
        """Hash join of two relations on one attribute pair."""
        left = self.relation(left_name)
        right = self.relation(right_name)
        right_position = right.attribute_index(right_attribute)
        buckets: Dict[str, List[Row]] = defaultdict(list)
        for row in right.rows:
            buckets[row[right_position]].append(row)
        left_position = left.attribute_index(left_attribute)
        for row in left.rows:
            for match in buckets.get(row[left_position], ()):
                yield row, match

    def find_mentions(self, value: str) -> List[Tuple[str, Row]]:
        """Find a value *without* knowing which relation holds it —
        the operation the paper's introduction says organized systems
        make hard ("an extensive scan will be required").  Scans every
        relation."""
        mentions: List[Tuple[str, Row]] = []
        for name in self.relations():
            for row in self._relations[name].rows:
                if value in row:
                    mentions.append((name, row))
        return mentions
