"""Baselines the benchmarks compare against: the naive closure engine
(:func:`repro.rules.engine.naive_closure`), the unindexed scan store,
and the schema-organized relational engine."""

from .relational import Relation, RelationalDatabase
from .scan import ScanStore

__all__ = ["Relation", "RelationalDatabase", "ScanStore"]
