"""The §4.1 navigation dataset: John, his music, and the Mozarts.

Reconstructed from the paper's three navigation tables so that running
the paper's session reproduces them, *including the derived entries*:

* ``(JOHN, ∈, PERSON)`` comes from ``JOHN ∈ EMPLOYEE`` + ``EMPLOYEE ≺
  PERSON`` (membership-upward inference);
* ``(JOHN, LIKES, CAT)`` comes from ``JOHN LIKES FELIX`` + ``FELIX ∈
  CAT`` (membership-target);
* ``(JOHN, WORKS-FOR, DEPARTMENT)`` comes from ``JOHN WORKS-FOR
  SHIPPING`` + ``SHIPPING ∈ DEPARTMENT``;
* ``(PC#9-WAM, FAVORITE-OF, JOHN)`` comes from the inversion fact
  ``FAVORITE-MUSIC ↔ FAVORITE-OF``;
* ``(LEOPOLD, PERFORMED.PC#9-WAM.COMPOSED-BY, MOZART)`` — the §4.1
  composed association — comes from inverting ``PERFORMED-BY`` and
  composing through the concerto, with ``limit(2)``.

Entity spellings follow the supplied text's tables (``HEALTHCLIFF``,
``SIRKIN``, ``PC#2-PIT``, ``S#5-LVB``); see EXPERIMENTS.md E1.
"""

from __future__ import annotations

from typing import List

from ..core.entities import INV, ISA, MEMBER
from ..core.facts import Fact
from ..db import Database

#: John's world: memberships and the ≺ link that derives PERSON.
_MEMBERSHIP_FACTS = [
    Fact("JOHN", MEMBER, "EMPLOYEE"),
    Fact("EMPLOYEE", ISA, "PERSON"),
    Fact("JOHN", MEMBER, "PET-OWNER"),
    Fact("JOHN", MEMBER, "MUSIC-LOVER"),
]

#: Who John likes; CAT is derived from the cats' memberships.
_LIKES_FACTS = [
    Fact("JOHN", "LIKES", "FELIX"),
    Fact("JOHN", "LIKES", "HEALTHCLIFF"),
    Fact("JOHN", "LIKES", "MOZART"),
    Fact("JOHN", "LIKES", "MARY"),
    Fact("FELIX", MEMBER, "CAT"),
    Fact("HEALTHCLIFF", MEMBER, "CAT"),
]

#: Work: DEPARTMENT is derived from SHIPPING's membership.
_WORK_FACTS = [
    Fact("JOHN", "WORKS-FOR", "SHIPPING"),
    Fact("SHIPPING", MEMBER, "DEPARTMENT"),
    Fact("JOHN", "BOSS", "PETER"),
]

#: John's favorite music, and what those pieces are.
_MUSIC_FACTS = [
    Fact("JOHN", "FAVORITE-MUSIC", "PC#9-WAM"),
    Fact("JOHN", "FAVORITE-MUSIC", "PC#2-PIT"),
    Fact("JOHN", "FAVORITE-MUSIC", "S#5-LVB"),
    Fact("PC#9-WAM", MEMBER, "CONCERTO"),
    Fact("CONCERTO", ISA, "CLASSICAL-COMPOSITION"),
    Fact("PC#9-WAM", "COMPOSED-BY", "MOZART"),
    Fact("PC#9-WAM", "PERFORMED-BY", "SIRKIN"),
    Fact("PC#9-WAM", "PERFORMED-BY", "BARENBOIM"),
    Fact("PC#9-WAM", "PERFORMED-BY", "LEOPOLD"),
    Fact("FAVORITE-MUSIC", INV, "FAVORITE-OF"),
    Fact("PERFORMED-BY", INV, "PERFORMED"),
]

#: The Mozart family.
_FAMILY_FACTS = [
    Fact("LEOPOLD", "FATHER-OF", "MOZART"),
]

#: Declared class relationships (§2.2).  FAVORITE-MUSIC relates John to
#: the *specific piece*, not to every class the piece belongs to — if
#: it were individual, membership inference would add
#: ``(JOHN, FAVORITE-MUSIC, CONCERTO)`` and the paper's table 1 shows
#: no such entry.  Likewise its inverse.
_CLASS_RELATIONSHIPS = ["FAVORITE-MUSIC", "FAVORITE-OF"]


def facts() -> List[Fact]:
    """All base facts of the music dataset."""
    return (_MEMBERSHIP_FACTS + _LIKES_FACTS + _WORK_FACTS + _MUSIC_FACTS
            + _FAMILY_FACTS)


def load(db: "Database" = None) -> "Database":
    """A database loaded with the §4.1 world (composition off, as the
    paper's first two tables require; enable ``limit(2)`` before the
    LEOPOLD↔MOZART step)."""
    if db is None:
        db = Database()
    db.add_facts(facts())
    for relationship in _CLASS_RELATIONSHIPS:
        db.declare_class_relationship(relationship)
    return db
