"""Datasets: the paper's worked examples and synthetic generators."""

from . import books, movies, music, paper, synthetic, university

__all__ = ["books", "movies", "music", "paper", "synthetic", "university"]
