"""Datasets: the paper's worked examples and synthetic generators.

Each non-synthetic module rebuilds one of the paper's running examples
(John and the music world, the university, books/citations, plus a
larger film world) as a ``load()`` function returning a ready
:class:`~repro.db.Database`; :mod:`repro.datasets.synthetic` generates
parameterized hierarchies, memberships, and random heaps for the
benchmarks.

Example::

    from repro.datasets import music
    from repro.datasets.synthetic import hierarchy_facts

    db = music.load()
    assert db.ask("(JOHN, ∈, EMPLOYEE)")
    tree, leaves = hierarchy_facts(depth=2, fanout=2)
    assert len(leaves) == 4
"""

from . import books, movies, music, paper, synthetic, university

__all__ = ["books", "movies", "music", "paper", "synthetic", "university"]
