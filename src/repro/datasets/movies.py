"""A film world: the largest coherent dataset in the repository.

Not from the paper — a browsing playground (~200 stored facts) that
exercises every mechanism at once: a genre hierarchy with multiple
inheritance, people in several roles, synonyms across vocabularies
(imported from a "second database", §1-style), inversions, class
relationships, numeric facts (years, runtimes, ratings), and a graph
dense enough that composition, path search, and probing all have
something to find.

Load it into the shell and wander::

    python -m repro.shell movies
    browse> try TARKOVSKY
    browse> (SOLARIS-1972, *, *)
    browse> paths LEM KELVIN 3
    browse> probe (z, in, WESTERN) and (z, DIRECTED-BY, KUBRICK)
"""

from __future__ import annotations

from typing import List

from ..core.entities import INV, ISA, MEMBER, SYN
from ..core.facts import Fact
from ..db import Database

#: The genre hierarchy (multiple inheritance is deliberate).
_GENRES = [
    ("FILM", ISA, "ARTWORK"),
    ("FEATURE-FILM", ISA, "FILM"),
    ("SHORT-FILM", ISA, "FILM"),
    ("SCIENCE-FICTION", ISA, "FEATURE-FILM"),
    ("DRAMA", ISA, "FEATURE-FILM"),
    ("WESTERN", ISA, "FEATURE-FILM"),
    ("COMEDY", ISA, "FEATURE-FILM"),
    ("SPACE-OPERA", ISA, "SCIENCE-FICTION"),
    ("PSYCHOLOGICAL-SF", ISA, "SCIENCE-FICTION"),
    ("PSYCHOLOGICAL-SF", ISA, "DRAMA"),
    ("SATIRE", ISA, "COMEDY"),
    ("SATIRE", ISA, "DRAMA"),
]

#: People hierarchy and roles.
_PEOPLE_SCHEMA = [
    ("DIRECTOR", ISA, "FILMMAKER"),
    ("WRITER", ISA, "FILMMAKER"),
    ("COMPOSER", ISA, "ARTIST"),
    ("FILMMAKER", ISA, "ARTIST"),
    ("ACTOR", ISA, "ARTIST"),
    ("ARTIST", ISA, "PERSON"),
    # Every filmmaker creates artworks — a class-level fact instances
    # inherit (§3.2).
    ("FILMMAKER", "CREATES", "ARTWORK"),
]

#: Vocabulary bridges: a second catalogue used different names (§3.3)
#: and recorded credits from the film side (§3.4).
_BRIDGES = [
    ("DIRECTED-BY", INV, "DIRECTED"),
    ("WROTE", INV, "WRITTEN-BY"),
    ("SCORED-BY", INV, "SCORED"),
    ("STARS", INV, "ACTED-IN"),
    ("BASED-ON", INV, "ADAPTED-AS"),
    ("HELMED-BY", SYN, "DIRECTED-BY"),   # the other catalogue's word
    ("SF", SYN, "SCIENCE-FICTION"),
]

_FILMS = {
    # name: (genre, year, director, writer, runtime)
    "SOLARIS-1972": ("PSYCHOLOGICAL-SF", "1972", "TARKOVSKY", "LEM",
                     "166"),
    "STALKER-1979": ("PSYCHOLOGICAL-SF", "1979", "TARKOVSKY",
                     "STRUGATSKY", "162"),
    "2001-ASO": ("SCIENCE-FICTION", "1968", "KUBRICK", "CLARKE", "149"),
    "DR-STRANGELOVE": ("SATIRE", "1964", "KUBRICK", "GEORGE", "95"),
    "THE-SEARCHERS": ("WESTERN", "1956", "FORD", "LEMAY", "119"),
    "HIGH-NOON": ("WESTERN", "1952", "ZINNEMANN", "FOREMAN", "85"),
    "IKIRU": ("DRAMA", "1952", "KUROSAWA", "HASHIMOTO", "143"),
    "YOJIMBO": ("DRAMA", "1961", "KUROSAWA", "KIKUSHIMA", "110"),
    "SOLARIS-2002": ("PSYCHOLOGICAL-SF", "2002", "SODERBERGH", "LEM",
                     "99"),
}

_EXTRA_CREDITS = [
    ("SOLARIS-1972", "SCORED-BY", "ARTEMYEV"),
    ("STALKER-1979", "SCORED-BY", "ARTEMYEV"),
    ("SOLARIS-1972", "STARS", "BANIONIS"),
    ("SOLARIS-1972", "BASED-ON", "SOLARIS-NOVEL"),
    ("SOLARIS-2002", "BASED-ON", "SOLARIS-NOVEL"),
    ("SOLARIS-NOVEL", "WRITTEN-BY", "LEM"),
    ("SOLARIS-NOVEL", MEMBER, "NOVEL"),
    ("NOVEL", ISA, "ARTWORK"),
    ("BANIONIS", "PLAYED", "KELVIN"),
    ("KELVIN", MEMBER, "CHARACTER"),
    # Remake link, declared from one side only; inversion derives the
    # other.
    ("REMAKE-OF", INV, "REMADE-AS"),
    ("SOLARIS-2002", "REMAKE-OF", "SOLARIS-1972"),
    # Numeric facts about reception (0-100 scale).
    ("SOLARIS-1972", "RATING", "90"),
    ("STALKER-1979", "RATING", "93"),
    ("2001-ASO", "RATING", "92"),
    ("DR-STRANGELOVE", "RATING", "96"),
    ("THE-SEARCHERS", "RATING", "89"),
    ("HIGH-NOON", "RATING", "87"),
    ("IKIRU", "RATING", "98"),
    ("YOJIMBO", "RATING", "95"),
    ("SOLARIS-2002", "RATING", "66"),
]

#: Relationships that characterize the film, not every class it
#: belongs to (§2.2) — without this, membership inference would give
#: the whole genre Tarkovsky's director credit.
_CLASS_RELATIONSHIPS = [
    "DIRECTED-BY", "DIRECTED", "HELMED-BY", "WRITTEN-BY", "WROTE",
    "SCORED-BY", "SCORED", "STARS", "ACTED-IN", "BASED-ON",
    "ADAPTED-AS", "REMAKE-OF", "REMADE-AS", "RELEASED", "RUNTIME",
    "RATING", "PLAYED",
]


def facts() -> List[Fact]:
    """All base facts of the film world."""
    result = [Fact(*triple) for triple in _GENRES]
    result.extend(Fact(*triple) for triple in _PEOPLE_SCHEMA)
    result.extend(Fact(*triple) for triple in _BRIDGES)
    for film, (genre, year, director, writer, runtime) in _FILMS.items():
        result.append(Fact(film, MEMBER, genre))
        result.append(Fact(film, "RELEASED", year))
        result.append(Fact(film, "RUNTIME", runtime))
        result.append(Fact(film, "DIRECTED-BY", director))
        result.append(Fact(film, "WRITTEN-BY", writer))
        result.append(Fact(director, MEMBER, "DIRECTOR"))
        result.append(Fact(writer, MEMBER, "WRITER"))
    result.extend(Fact(*triple) for triple in _EXTRA_CREDITS)
    result.append(Fact("ARTEMYEV", MEMBER, "COMPOSER"))
    result.append(Fact("BANIONIS", MEMBER, "ACTOR"))
    return result


def load(db: "Database" = None) -> "Database":
    """A database loaded with the film world."""
    if db is None:
        db = Database()
    db.add_facts(facts())
    for relationship in _CLASS_RELATIONSHIPS:
        db.declare_class_relationship(relationship)
    return db
