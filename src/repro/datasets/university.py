"""The §5 probing datasets: opera lovers, students, and quarterbacks.

Three worked examples live here:

* **§5.1 opera** — minimal generalizations ``LOVES ≺ ENJOYS``,
  ``OPERA ≺ MUSIC``, ``OPERA ≺ THEATER`` and the broader queries they
  induce (experiment E2);
* **§5.2 students** — the retraction-menu example: the query "free
  things that all students love" fails, and exactly the FRESHMAN- and
  CHEAP-retractions succeed (experiment E3);
* **§5 quarterbacks** — the motivating USC example, plus the
  misspelled-relationship case that ends in "no such database
  entities".

Also includes the §2.6 complex-fact decomposition (Tom's enrollment
E123) so the paper's aggregation idiom is exercised.
"""

from __future__ import annotations

from typing import List

from ..core.entities import ISA, MEMBER
from ..core.facts import Fact
from ..db import Database

#: §5.1 — everybody who loves opera.
_OPERA_FACTS = [
    Fact("LOVES", ISA, "ENJOYS"),
    Fact("OPERA", ISA, "MUSIC"),
    Fact("OPERA", ISA, "THEATER"),
    Fact("ANNA", "LOVES", "OPERA"),
    Fact("BELA", "ENJOYS", "OPERA"),
    Fact("CARL", "LOVES", "BALLET"),
    Fact("BALLET", ISA, "THEATER"),
]

#: §5.2 — the retraction-menu world.  The original query
#: (STUDENT, LOVE, z) ∧ (z, COSTS, FREE) fails; the FRESHMAN and CHEAP
#: retractions succeed; the LIKE and Δ retractions fail.
_STUDENT_FACTS = [
    Fact("FRESHMAN", ISA, "STUDENT"),
    Fact("LOVE", ISA, "LIKE"),
    Fact("FREE", ISA, "CHEAP"),
    # What all students love (none of it free or cheap).
    Fact("STUDENT", "LOVE", "FOOTBALL-GAMES"),
    Fact("FOOTBALL-GAMES", "COSTS", "$10"),
    # What all students love that is cheap (the CHEAP retraction).
    Fact("STUDENT", "LOVE", "COFFEE"),
    Fact("COFFEE", "COSTS", "CHEAP"),
    # What all freshmen love that is free (the FRESHMAN retraction).
    Fact("FRESHMAN", "LOVE", "CAMPUS-CONCERTS"),
    Fact("CAMPUS-CONCERTS", "COSTS", "FREE"),
]

#: §5 — quarterbacks who graduated from USC (none; one attended).
_QUARTERBACK_FACTS = [
    Fact("QUARTERBACK", ISA, "FOOTBALL-PLAYER"),
    Fact("FOOTBALL-PLAYER", ISA, "ATHLETE"),
    Fact("GRADUATE-OF", ISA, "ATTENDED"),
    Fact("JAKE", MEMBER, "QUARTERBACK"),
    Fact("JAKE", "ATTENDED", "USC"),
    Fact("BOB", MEMBER, "QUARTERBACK"),
    Fact("BOB", "GRADUATE-OF", "UCLA"),
]

#: §2.6 — the complex fact "Tom is enrolled in CS100 and received the
#: grade A", broken into three atomic facts around the entity E123.
_ENROLLMENT_FACTS = [
    Fact("E123", "ENROLL-STUDENT", "TOM"),
    Fact("E123", "ENROLL-COURSE", "CS100"),
    Fact("E123", "ENROLL-GRADE", "A"),
    Fact("TOM", MEMBER, "STUDENT"),
    Fact("CS100", "TAUGHT-BY", "HARRY"),
    Fact("TOM", "ENROLLED-IN", "CS100"),
]


def facts() -> List[Fact]:
    """All base facts of the university dataset."""
    return (_OPERA_FACTS + _STUDENT_FACTS + _QUARTERBACK_FACTS
            + _ENROLLMENT_FACTS)


def load(db: "Database" = None) -> "Database":
    """A database loaded with the §5 probing world."""
    if db is None:
        db = Database()
    db.add_facts(facts())
    return db


#: The §5.2 query, in surface syntax, for examples and benches.
STUDENTS_LOVE_FREE = "(STUDENT, LOVE, z) and (z, COSTS, FREE)"

#: The §5 motivating query.
QUARTERBACKS_FROM_USC = "(z, in, QUARTERBACK) and (z, GRADUATE-OF, USC)"

#: The §5.1 query whose retraction set the paper enumerates.
LOVES_OPERA = "(z, LOVES, OPERA)"

#: A query with a misspelled relationship (§5.2's diagnosis case).
MISSPELLED = "(STUDENT, LUVS, z)"
