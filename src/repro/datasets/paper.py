"""The §6.1 ``relation()`` dataset: employees, departments, salaries.

Loading it and running::

    db.relation("EMPLOYEE", ("WORKS-FOR", "DEPARTMENT"),
                ("EARNS", "SALARY"))

regenerates the paper's table::

    EMPLOYEE  WORKS-FOR DEPARTMENT  EARNS SALARY
    JOHN      SHIPPING              $26000
    TOM       ACCOUNTING            $27000
    MARY      RECEIVING             $25000

(The paper also uses this world for its §2/§3 running examples —
employees earn salaries, salaries are compensation, managers are
employees — so those inferences are testable on it.)
"""

from __future__ import annotations

from typing import List

from ..core.entities import ISA, MEMBER
from ..core.facts import Fact
from ..db import Database

_EMPLOYEES = [
    ("JOHN", "SHIPPING", "$26000"),
    ("TOM", "ACCOUNTING", "$27000"),
    ("MARY", "RECEIVING", "$25000"),
]

_SCHEMA_LEVEL_FACTS = [
    # §2.2: EARN is an attribute of every individual employee;
    # TOTAL-NUMBER characterizes the aggregate.
    Fact("EMPLOYEE", "EARNS", "SALARY"),
    Fact("EMPLOYEE", "WORKS-FOR", "DEPARTMENT"),
    Fact("EMPLOYEE", "TOTAL-NUMBER", "180"),
    # §3.1: generalizations.
    Fact("MANAGER", ISA, "EMPLOYEE"),
    Fact("EMPLOYEE", ISA, "PERSON"),
    Fact("SALARY", ISA, "COMPENSATION"),
    Fact("WORKS-FOR", ISA, "IS-PAID-BY"),
]


def facts() -> List[Fact]:
    """All base facts of the employee dataset."""
    result = list(_SCHEMA_LEVEL_FACTS)
    for name, department, salary in _EMPLOYEES:
        result.append(Fact(name, MEMBER, "EMPLOYEE"))
        result.append(Fact(name, "WORKS-FOR", department))
        result.append(Fact(name, "EARNS", salary))
        result.append(Fact(department, MEMBER, "DEPARTMENT"))
        result.append(Fact(salary, MEMBER, "SALARY"))
    return result


def load(db: "Database" = None) -> "Database":
    """A database loaded with the §6.1 employee world."""
    if db is None:
        db = Database()
    db.add_facts(facts())
    # TOTAL-NUMBER characterizes the class EMPLOYEE, not each employee
    # (§2.2) — without this, membership inference would give every
    # employee a TOTAL-NUMBER of 180.
    db.declare_class_relationship("TOTAL-NUMBER")
    return db
