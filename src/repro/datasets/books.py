"""The §2.7 book dataset: citations, authors, and copies.

Supports the paper's query-language examples (experiment E4):

* all books — ``(y, ∈, BOOK)``;
* self-citations — ``(x, CITES, x)``;
* authors who cite themselves — ``∃x (x,∈,BOOK) ∧ (y,∈,PERSON) ∧
  (x,CITES,x) ∧ (x,AUTHOR,y)``;
* books whose author is not John — the ``≠`` idiom replacing negation.

Also models the §2.3 two-level membership: ISBN-914894 is an instance
of BOOK and itself has instances (its physical copies).

The supplied text's OCR spells the citation relationship ``CITATES``;
we use ``CITES`` and record the repair in EXPERIMENTS.md (E4).
"""

from __future__ import annotations

from typing import List

from ..core.entities import ISA, MEMBER
from ..core.facts import Fact
from ..db import Database

_BOOKS = {
    "ISBN-914894": "SARAH",     # cites itself
    "ISBN-100200": "JOHN",
    "ISBN-100201": "JOHN",
    "ISBN-300500": "DAVE",      # cites itself
    "ISBN-300501": "RICK",
}

_CITATIONS = [
    ("ISBN-914894", "ISBN-914894"),
    ("ISBN-914894", "ISBN-100200"),
    ("ISBN-100200", "ISBN-300500"),
    ("ISBN-100201", "ISBN-914894"),
    ("ISBN-300500", "ISBN-300500"),
    ("ISBN-300501", "ISBN-100201"),
]


def facts() -> List[Fact]:
    """All base facts of the book dataset."""
    result: List[Fact] = []
    for book, author in _BOOKS.items():
        result.append(Fact(book, MEMBER, "BOOK"))
        result.append(Fact(book, "AUTHOR", author))
        result.append(Fact(author, MEMBER, "PERSON"))
    for citing, cited in _CITATIONS:
        result.append(Fact(citing, "CITES", cited))
    # §2.3: an instance may have instances of its own.
    result.append(Fact("ISBN-914894-COPY1", MEMBER, "ISBN-914894"))
    result.append(Fact("ISBN-914894-COPY2", MEMBER, "ISBN-914894"))
    return result


def load(db: "Database" = None) -> "Database":
    """A database loaded with the §2.7 book world.

    AUTHOR and CITES are declared class relationships so the two-level
    membership (copies ∈ ISBN-914894 ∈ BOOK) does not copy book-level
    attributes onto physical copies.
    """
    if db is None:
        db = Database()
    db.add_facts(facts())
    db.declare_class_relationship("AUTHOR")
    db.declare_class_relationship("CITES")
    return db


#: §2.7 example queries, in surface syntax.
ALL_BOOKS = "(y, in, BOOK)"
SELF_CITATIONS = "(x, CITES, x)"
SELF_CITING_AUTHORS = ("exists x: (x, in, BOOK) and (y, in, PERSON)"
                       " and (x, CITES, x) and (x, AUTHOR, y)")
BOOKS_NOT_BY_JOHN = ("exists y: (x, in, BOOK) and (x, AUTHOR, y)"
                     " and (y, !=, JOHN)")
