"""Parameterized synthetic workloads for the F-series benchmarks.

All generators are deterministic given a seed, so benchmark runs are
reproducible.  They return plain fact lists; callers load them into a
:class:`~repro.db.Database` or a baseline store.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.entities import ISA, MEMBER
from ..core.facts import Fact


def hierarchy_facts(depth: int, fanout: int,
                    prefix: str = "C") -> Tuple[List[Fact], List[str]]:
    """A complete generalization tree of ``≺`` facts.

    Level 0 is the single root ``{prefix}0``; every node at level *d*
    has ``fanout`` children at level *d+1*, each generalized by its
    parent.  Returns ``(facts, leaves)``.
    """
    if depth < 0 or fanout < 1:
        raise ValueError("depth must be >= 0 and fanout >= 1")
    facts: List[Fact] = []
    level = [f"{prefix}0"]
    counter = 1
    for _ in range(depth):
        next_level: List[str] = []
        for parent in level:
            for _ in range(fanout):
                child = f"{prefix}{counter}"
                counter += 1
                facts.append(Fact(child, ISA, parent))
                next_level.append(child)
        level = next_level
    return facts, level


def membership_facts(classes: Sequence[str], instances_per_class: int,
                     prefix: str = "I") -> List[Fact]:
    """``instances_per_class`` fresh instances under each class."""
    facts: List[Fact] = []
    counter = 0
    for class_entity in classes:
        for _ in range(instances_per_class):
            facts.append(Fact(f"{prefix}{counter}", MEMBER, class_entity))
            counter += 1
    return facts


def random_heap(n_facts: int, n_entities: int, n_relationships: int,
                seed: int = 0) -> List[Fact]:
    """A uniformly random loose heap (no special relationships)."""
    rng = random.Random(seed)
    entities = [f"E{i}" for i in range(n_entities)]
    relationships = [f"R{i}" for i in range(n_relationships)]
    facts = set()
    while len(facts) < n_facts:
        facts.add(Fact(rng.choice(entities), rng.choice(relationships),
                       rng.choice(entities)))
    return sorted(facts)


def chain_facts(length: int, relationship: str = "NEXT",
                prefix: str = "N") -> List[Fact]:
    """A linear chain — the worst case for unlimited composition:
    ``length`` facts compose into Θ(length²) path facts."""
    return [
        Fact(f"{prefix}{i}", relationship, f"{prefix}{i + 1}")
        for i in range(length)
    ]


def layered_dag_facts(layers: int, width: int, out_degree: int,
                      seed: int = 0, prefix: str = "D") -> List[Fact]:
    """A layered acyclic association graph for composition sweeps:
    ``layers`` layers of ``width`` entities; each entity points to
    ``out_degree`` random entities of the next layer."""
    rng = random.Random(seed)
    facts: List[Fact] = []
    for layer in range(layers - 1):
        targets = [f"{prefix}{layer + 1}_{j}" for j in range(width)]
        for i in range(width):
            source = f"{prefix}{layer}_{i}"
            for target in rng.sample(targets, min(out_degree, width)):
                facts.append(Fact(source, f"L{layer}", target))
    return facts


@dataclass
class EmployeeWorkload:
    """The organization-vs-utility workload (benchmark F3): the same
    data as a loose fact heap and as schema'd relational tuples."""

    facts: List[Fact]
    employees: List[str]
    departments: List[str]
    #: (employee, department, salary) rows — the organized form.
    rows: List[Tuple[str, str, str]]
    salaries: Dict[str, int] = field(default_factory=dict)


def employee_workload(n_employees: int, n_departments: int,
                      seed: int = 0) -> EmployeeWorkload:
    """Employees with departments and salaries, in both shapes."""
    rng = random.Random(seed)
    departments = [f"DEPT{i}" for i in range(n_departments)]
    facts: List[Fact] = [Fact("EMPLOYEE", ISA, "PERSON")]
    for department in departments:
        facts.append(Fact(department, MEMBER, "DEPARTMENT"))
    employees: List[str] = []
    rows: List[Tuple[str, str, str]] = []
    salaries: Dict[str, int] = {}
    for i in range(n_employees):
        employee = f"EMP{i}"
        department = rng.choice(departments)
        salary = rng.randrange(20000, 90000, 500)
        employees.append(employee)
        salaries[employee] = salary
        rows.append((employee, department, str(salary)))
        facts.append(Fact(employee, MEMBER, "EMPLOYEE"))
        facts.append(Fact(employee, "WORKS-FOR", department))
        facts.append(Fact(employee, "EARNS", str(salary)))
    return EmployeeWorkload(facts=facts, employees=employees,
                            departments=departments, rows=rows,
                            salaries=salaries)


def deep_retraction_workload(depth: int,
                             prefix: str = "REL") -> Tuple[List[Fact], str]:
    """A workload where probing must climb exactly ``depth`` waves.

    The generalization chain runs over *relationship* entities
    (``REL0 ≺ REL1 ≺ … ≺ REL{depth}``) and the only stored data fact
    uses the top one, so the query phrased with ``REL0`` fails and each
    wave broadens the relationship one level (benchmark F4).  Chains
    over target entities would terminate early: a ``≺`` fact itself
    witnesses ``Δ``-relationship retractions of its endpoints.

    Returns ``(facts, query_text)``.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    facts: List[Fact] = []
    for level in range(depth):
        facts.append(Fact(f"{prefix}{level}", ISA, f"{prefix}{level + 1}"))
    facts.append(Fact("SOMEONE", f"{prefix}{depth}", "THING"))
    query = f"(SOMEONE, {prefix}0, THING)"
    return facts, query
