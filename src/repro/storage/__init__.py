"""Persistence substrate: journal, snapshot, durable sessions."""

from .interchange import dumps, loads, read_facts, write_facts
from .journal import OP_ADD, OP_REMOVE, Journal, JournalEntry
from .session import DurableSession, open_database
from .snapshot import SnapshotState, read_snapshot, write_snapshot

__all__ = [
    "dumps", "loads", "read_facts", "write_facts",
    "OP_ADD", "OP_REMOVE", "Journal", "JournalEntry", "DurableSession",
    "open_database", "SnapshotState", "read_snapshot", "write_snapshot",
]
