"""Persistence substrate: journal, snapshot, durable sessions.

The paper defers storage to future work (§6.2); this package provides
the minimal durable substrate a usable library needs: an append-only
JSON-lines journal of mutations, atomically written snapshot files,
and :class:`~repro.storage.session.DurableSession` tying both to a
live database with replay-on-open recovery.  A one-fact-per-line text
interchange format rounds it out for export/import and merging.

Example::

    import tempfile

    from repro.storage.session import open_database

    directory = tempfile.mkdtemp() + "/db"
    db, session = open_database(directory)
    db.add("A", "R", "B")                  # journaled automatically
    session.close()
    db2, session2 = open_database(directory)
    assert db2.ask("(A, R, B)")            # recovered by replay
    session2.close()
"""

from .interchange import dumps, loads, read_facts, write_facts
from .journal import OP_ADD, OP_REMOVE, Journal, JournalEntry
from .session import DurableSession, open_database
from .snapshot import SnapshotState, read_snapshot, write_snapshot

__all__ = [
    "dumps", "loads", "read_facts", "write_facts",
    "OP_ADD", "OP_REMOVE", "Journal", "JournalEntry", "DurableSession",
    "open_database", "SnapshotState", "read_snapshot", "write_snapshot",
]
