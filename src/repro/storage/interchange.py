"""Plain-text fact interchange.

A loose heap's natural exchange format is one fact per line::

    JOHN LIKES FELIX
    "NEW YORK" ∈ CITY
    # comments and blank lines are ignored

Components are whitespace-separated; entities containing whitespace or
quotes are double-quoted with backslash escapes.  The format is
deliberately trivial — greppable, diffable, and stable — so heaps can
be versioned, mailed, and merged (§1's multi-database motivation) with
ordinary text tools.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, Iterator, List, TextIO, Union

from ..core.errors import StorageError
from ..core.facts import Fact, fact as make_fact

_TOKEN_RE = re.compile(
    r'\s*("(?:[^"\\]|\\.)*"|\S+)')

_NEEDS_QUOTING_RE = re.compile(r'[\s"\\#]')


def format_component(entity: str) -> str:
    """One entity, quoted if the bare spelling would be ambiguous."""
    if not entity or _NEEDS_QUOTING_RE.search(entity):
        escaped = entity.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return entity


def format_fact(fact: Fact) -> str:
    """One fact as one line."""
    return " ".join(format_component(component) for component in fact)


def parse_line(line: str, line_number: int = 0) -> Fact:
    """Parse one fact line.

    Raises:
        StorageError: on malformed lines (wrong arity, bad quoting).
    """
    tokens: List[str] = []
    position = 0
    while position < len(line):
        match = _TOKEN_RE.match(line, position)
        if match is None:
            break
        raw = match.group(1)
        if raw.startswith('"'):
            if len(raw) < 2 or not raw.endswith('"'):
                raise StorageError(
                    f"line {line_number}: unterminated quote: {line!r}")
            tokens.append(re.sub(r"\\(.)", r"\1", raw[1:-1]))
        else:
            tokens.append(raw)
        position = match.end()
    if len(tokens) != 3:
        raise StorageError(
            f"line {line_number}: expected 3 components, found"
            f" {len(tokens)}: {line!r}")
    try:
        return make_fact(*tokens)
    except Exception as error:
        raise StorageError(
            f"line {line_number}: invalid fact: {error}") from error


def dump_lines(facts: Iterable[Fact]) -> Iterator[str]:
    """Facts as lines, sorted for stable diffs."""
    for fact in sorted(facts):
        yield format_fact(fact)


def dumps(facts: Iterable[Fact]) -> str:
    """The whole heap as one text block."""
    return "\n".join(dump_lines(facts)) + "\n"


def loads(text: str) -> List[Fact]:
    """Parse a text block; comments (#) and blank lines are skipped."""
    facts: List[Fact] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        facts.append(parse_line(stripped, line_number))
    return facts


def write_facts(path: Union[str, Path], facts: Iterable[Fact],
                header: str = "") -> int:
    """Write a heap to a file; returns the fact count."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for line in dump_lines(facts):
            handle.write(line + "\n")
            count += 1
    return count


def read_facts(path: Union[str, Path]) -> List[Fact]:
    """Read a heap from a file."""
    path = Path(path)
    if not path.exists():
        raise StorageError(f"no fact file at {path}")
    with open(path, encoding="utf-8") as handle:
        return loads(handle.read())
