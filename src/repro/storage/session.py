"""Durable sessions: snapshot + journal under one directory.

Layout::

    <directory>/
        snapshot.json   # latest checkpoint (atomic)
        journal.jsonl   # mutations since that checkpoint

``open_database`` recovers the state (snapshot, then journal replay);
``attach`` wires a live :class:`~repro.db.Database` so subsequent
mutations journal automatically; ``checkpoint`` folds the journal into
a fresh snapshot.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from .journal import OP_ADD, OP_REMOVE, Journal
from .snapshot import SnapshotState, read_snapshot, write_snapshot

SNAPSHOT_NAME = "snapshot.json"
JOURNAL_NAME = "journal.jsonl"


class DurableSession:
    """Binds a database to an on-disk directory."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.snapshot_path = self.directory / SNAPSHOT_NAME
        self.journal = Journal(self.directory / JOURNAL_NAME)
        self._database = None

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self, strict_journal: bool = False):
        """Rebuild a Database from snapshot + journal replay."""
        from ..db import Database

        if self.snapshot_path.exists():
            state = read_snapshot(self.snapshot_path)
            database = Database(with_axioms=False)
            database.rules.restore_state(state.rule_states)
            database.composition_limit = state.composition_limit
            database.add_facts(state.facts)
        else:
            database = Database()
        for entry in self.journal.entries(strict=strict_journal):
            if entry.op == OP_ADD:
                database.add_fact(entry.fact)
            else:
                database.remove_fact(entry.fact)
        return database

    def recover_state(self, strict_journal: bool = False) -> SnapshotState:
        """Replay snapshot + journal into plain state, no Database built.

        The replica bootstrap path
        (:func:`repro.serve.replica.bootstrap_from_directory`) uses
        this so a worker process can read the durable directory itself
        instead of receiving the whole fact heap over its pipe; the
        worker then constructs its own :class:`~repro.db.Database`
        from the returned facts.  Replay preserves journal order, so
        the returned fact list is exactly the primary's stored heap as
        of the last journaled batch.
        """
        from ..db import AXIOM_FACTS
        from ..rules.composition import COMPOSITION_OFF

        if self.snapshot_path.exists():
            state = read_snapshot(self.snapshot_path)
            facts = dict.fromkeys(state.facts)
            rule_states = dict(state.rule_states)
            limit = state.composition_limit
        else:
            facts = dict.fromkeys(AXIOM_FACTS)
            rule_states = {}
            limit = COMPOSITION_OFF
        for entry in self.journal.entries(strict=strict_journal):
            if entry.op == OP_ADD:
                facts[entry.fact] = None
            else:
                facts.pop(entry.fact, None)
        return SnapshotState(facts=list(facts), rule_states=rule_states,
                             composition_limit=limit)

    # ------------------------------------------------------------------
    # Live attachment
    # ------------------------------------------------------------------
    def attach(self, database) -> None:
        """Journal every subsequent mutation of ``database``."""
        self._database = database
        database._on_mutation = self._record  # noqa: SLF001 (by design)

    def detach(self) -> None:
        if self._database is not None:
            self._database._on_mutation = None
            self._database = None

    def _record(self, op: str, fact) -> None:
        self.journal.append(OP_ADD if op == "add" else OP_REMOVE, fact)

    def record_batch(self, mutations) -> int:
        """Journal many ``(op, fact)`` pairs with one write+flush.

        ``op`` is ``"add"`` or ``"remove"`` (the mutation-callback
        vocabulary).  Used by :class:`repro.serve.DatabaseService`,
        whose writer coalesces queued mutations and journals them as
        one batch instead of attaching per-fact callbacks.
        """
        return self.journal.append_batch(
            (OP_ADD if op == "add" else OP_REMOVE, fact)
            for op, fact in mutations)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, database=None) -> None:
        """Fold the journal into a fresh snapshot.

        ``database`` defaults to the attached one; the serving layer
        passes its master database explicitly because it journals
        batches itself instead of attaching.
        """
        if database is None:
            database = self._database
        if database is None:
            raise RuntimeError("no database attached; call attach() first"
                               " or pass database=")
        state = SnapshotState(
            facts=list(database.facts),
            rule_states=database.rules.snapshot_state(),
            composition_limit=database.composition_limit,
        )
        write_snapshot(self.snapshot_path, state)
        self.journal.truncate()

    def close(self) -> None:
        self.detach()
        self.journal.close()

    def __enter__(self) -> "DurableSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_database(directory: Union[str, Path],
                  strict_journal: bool = False):
    """Open (or create) a durable database at ``directory``.

    Returns ``(database, session)``; mutations journal automatically.
    Call ``session.checkpoint()`` to compact, ``session.close()`` when
    done.
    """
    session = DurableSession(directory)
    database = session.recover(strict_journal=strict_journal)
    session.attach(database)
    return database, session
