"""Snapshots: a full, atomic image of the database state.

A snapshot records the base facts (never the closure — derived facts
are recomputed), the rule enable/disable map, and the composition
limit.  Written via a temporary file + rename so a crash mid-write
leaves the previous snapshot intact.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.errors import StorageError
from ..core.facts import Fact

FORMAT_VERSION = 1


@dataclass
class SnapshotState:
    """Everything a snapshot round-trips."""

    facts: List[Fact]
    rule_states: Dict[str, bool] = field(default_factory=dict)
    composition_limit: Optional[int] = 1

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": FORMAT_VERSION,
                "composition_limit": self.composition_limit,
                "rule_states": self.rule_states,
                "facts": sorted(list(f) for f in self.facts),
            },
            ensure_ascii=False, indent=0)

    @staticmethod
    def from_json(text: str) -> "SnapshotState":
        try:
            record = json.loads(text)
        except json.JSONDecodeError as error:
            raise StorageError("malformed snapshot") from error
        if not isinstance(record, dict):
            raise StorageError("snapshot is not an object")
        version = record.get("version")
        if version != FORMAT_VERSION:
            raise StorageError(f"unsupported snapshot version: {version!r}")
        raw_facts = record.get("facts", [])
        facts: List[Fact] = []
        for raw in raw_facts:
            if (not isinstance(raw, list) or len(raw) != 3
                    or not all(isinstance(c, str) for c in raw)):
                raise StorageError(f"malformed fact in snapshot: {raw!r}")
            facts.append(Fact(*raw))
        rule_states = record.get("rule_states", {})
        if not isinstance(rule_states, dict) or not all(
                isinstance(k, str) and isinstance(v, bool)
                for k, v in rule_states.items()):
            raise StorageError("malformed rule_states in snapshot")
        limit = record.get("composition_limit", 1)
        if limit is not None and not isinstance(limit, int):
            raise StorageError("malformed composition_limit in snapshot")
        return SnapshotState(facts=facts, rule_states=rule_states,
                             composition_limit=limit)


def write_snapshot(path: Union[str, Path], state: SnapshotState) -> None:
    """Atomically write a snapshot (tmp file + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temporary = path.with_suffix(path.suffix + ".tmp")
    with open(temporary, "w", encoding="utf-8") as handle:
        handle.write(state.to_json())
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, path)


def read_snapshot(path: Union[str, Path]) -> SnapshotState:
    """Load a snapshot; raises :class:`StorageError` when malformed."""
    path = Path(path)
    if not path.exists():
        raise StorageError(f"no snapshot at {path}")
    with open(path, encoding="utf-8") as handle:
        return SnapshotState.from_json(handle.read())
