"""Append-only journal of fact mutations.

The paper defers storage strategies to future work (§6.2); this is the
minimal durable substrate a usable library needs: every ``add`` /
``remove`` appends one JSON line, and recovery replays the journal over
the latest snapshot.  One line per mutation keeps the format greppable
and the writes crash-safe up to the last completed line (a torn final
line is detected and ignored on replay).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Union

from ..core.errors import StorageError
from ..core.facts import Fact

OP_ADD = "add"
OP_REMOVE = "remove"

_VALID_OPS = frozenset({OP_ADD, OP_REMOVE})


@dataclass(frozen=True)
class JournalEntry:
    """One recorded mutation."""

    op: str
    fact: Fact

    def to_json(self) -> str:
        return json.dumps({"op": self.op, "fact": list(self.fact)},
                          ensure_ascii=False)

    @staticmethod
    def from_json(line: str) -> "JournalEntry":
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise StorageError(f"malformed journal line: {line!r}") from error
        if not isinstance(record, dict):
            raise StorageError(f"journal line is not an object: {line!r}")
        op = record.get("op")
        raw_fact = record.get("fact")
        if op not in _VALID_OPS:
            raise StorageError(f"unknown journal op in line: {line!r}")
        if (not isinstance(raw_fact, list) or len(raw_fact) != 3
                or not all(isinstance(c, str) for c in raw_fact)):
            raise StorageError(f"malformed fact in journal line: {line!r}")
        return JournalEntry(op=op, fact=Fact(*raw_fact))


class Journal:
    """A file-backed, append-only mutation log."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._handle = None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _ensure_open(self):
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def append(self, op: str, fact: Fact) -> None:
        """Record one mutation and flush it to the OS."""
        if op not in _VALID_OPS:
            raise StorageError(f"unknown journal op: {op!r}")
        handle = self._ensure_open()
        handle.write(JournalEntry(op, fact).to_json() + "\n")
        handle.flush()

    def append_batch(self, mutations) -> int:
        """Record many mutations with one write and one flush.

        ``mutations`` is an iterable of ``(op, fact)`` pairs.  The
        serving layer journals each writer batch this way, so the
        per-mutation flush cost is paid once per *batch* — the storage
        half of write coalescing.  Returns the number of entries
        written.  Crash safety is per line, exactly as with
        :meth:`append`: a torn final line is dropped on lenient replay.
        """
        lines = []
        for op, fact in mutations:
            if op not in _VALID_OPS:
                raise StorageError(f"unknown journal op: {op!r}")
            lines.append(JournalEntry(op, fact).to_json())
        if not lines:
            return 0
        handle = self._ensure_open()
        handle.write("\n".join(lines) + "\n")
        handle.flush()
        return len(lines)

    def sync(self) -> None:
        """fsync the journal (durability point)."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def truncate(self) -> None:
        """Discard all entries (after a snapshot has captured them)."""
        self.close()
        if self.path.exists():
            self.path.unlink()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def entries(self, strict: bool = True) -> Iterator[JournalEntry]:
        """Replay the journal.

        Args:
            strict: if False, a malformed *final* line (torn write) is
                ignored instead of raising; malformed interior lines
                always raise.
        """
        if not self.path.exists():
            return
        with open(self.path, encoding="utf-8") as handle:
            lines: List[str] = [
                line.rstrip("\n") for line in handle
            ]
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                yield JournalEntry.from_json(line)
            except StorageError:
                if not strict and index == len(lines) - 1:
                    return
                raise

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())
