"""Process-local tracing: nested spans, counters, and gauges.

The instrumentation substrate for the whole system.  A single
module-level tracer is shared by every layer (store, closure engine,
query evaluator, browsers); hot paths guard each instrumentation site
with one module-attribute lookup::

    from ..obs import tracer as _obs
    ...
    if _obs.ENABLED:
        _obs.TRACER.count("store.adds")

so that with tracing off (the default) the cost per site is a single
attribute load and a falsy branch — no method call, no allocation.

Three kinds of signal are collected:

* **spans** — named, nested wall/CPU timings with free-form attributes
  (``closure.semi_naive`` > ``closure.round`` > …);
* **counters** — monotone event counts (``store.adds``,
  ``browse.probe.retractions``);
* **gauges** — value observations (``engine.closure_seconds``); each
  keeps its last value *and* a running min/max/sum/count envelope
  (:class:`~repro.obs.metrics.GaugeAggregate`), readable via
  :attr:`Tracer.gauge_stats` — ``Tracer.gauges`` stays the historical
  ``{name: last_value}`` view.

plus one domain-specific aggregate, **conjunct records**: per-conjunct
(estimated cost, actual rows produced) pairs from the query evaluator,
the raw material of ``EXPLAIN ANALYZE``.

The tracer is *process-local* and not thread-safe by design: the paper's
browser is a single interactive loop, and keeping the enabled path
lock-free is what makes the disabled path free.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from .metrics import GaugeAggregate

#: Fast-path flag.  Instrumented call sites test this and nothing else.
ENABLED = False


@dataclass
class Span:
    """One timed region: name, wall/CPU duration, attributes, children."""

    name: str
    attributes: Dict[str, Any] = field(default_factory=dict)
    parent: Optional["Span"] = None
    children: List["Span"] = field(default_factory=list)
    wall: float = 0.0
    cpu: float = 0.0
    finished: bool = False

    def set(self, **attributes: Any) -> None:
        """Attach (or overwrite) attributes on the span."""
        self.attributes.update(attributes)

    @property
    def depth(self) -> int:
        depth, span = 0, self
        while span.parent is not None:
            depth, span = depth + 1, span.parent
        return depth

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        state = f"{self.wall:.6f}s" if self.finished else "open"
        return f"Span({self.name!r}, {state}, {len(self.children)} children)"


@dataclass
class ConjunctStats:
    """Aggregated plan-vs-actual numbers for one conjunct.

    ``evals`` counts how many times the evaluator selected the conjunct
    (once per enclosing binding under dynamic re-planning); ``rows`` the
    total bindings it produced; ``estimate_total`` the sum of the
    planner's :func:`~repro.query.planner.estimate_cost` at each
    selection, so ``estimate_mean`` is directly comparable to
    ``rows / evals``.
    """

    evals: int = 0
    rows: int = 0
    estimate_total: float = 0.0

    @property
    def estimate_mean(self) -> float:
        return self.estimate_total / self.evals if self.evals else 0.0

    @property
    def rows_mean(self) -> float:
        return self.rows / self.evals if self.evals else 0.0


class Tracer:
    """Collects spans, counters, gauges, and conjunct records."""

    enabled = True

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauge_stats: Dict[str, GaugeAggregate] = {}
        self.roots: List[Span] = []
        self.conjuncts: Dict[str, ConjunctStats] = {}
        self._stack: List[Span] = []

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """A timed region.  Nested spans attach to the innermost open
        span; the yielded :class:`Span` accepts extra attributes via
        :meth:`Span.set`."""
        span = Span(name=name, attributes=dict(attributes),
                    parent=self._stack[-1] if self._stack else None)
        if span.parent is not None:
            span.parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        start_wall = time.perf_counter()
        start_cpu = time.process_time()
        try:
            yield span
        finally:
            span.wall = time.perf_counter() - start_wall
            span.cpu = time.process_time() - start_cpu
            span.finished = True
            self._stack.pop()

    def spans(self, name: Optional[str] = None) -> List[Span]:
        """All recorded spans (preorder), optionally filtered by name."""
        found: List[Span] = []
        for root in self.roots:
            for span in root.walk():
                if name is None or span.name == name:
                    found.append(span)
        return found

    # ------------------------------------------------------------------
    # Counters / gauges / conjunct records
    # ------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Increment a monotone counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Record a gauge observation.  Beyond the historical
        last-value, each gauge accumulates min/max/sum/count
        (see :attr:`gauge_stats`)."""
        stats = self.gauge_stats.get(name)
        if stats is None:
            stats = self.gauge_stats[name] = GaugeAggregate()
        stats.set(value)

    @property
    def gauges(self) -> Dict[str, float]:
        """The historical ``{name: last_value}`` view of the gauges
        (a fresh dict; mutate nothing through it)."""
        return {name: stats.last
                for name, stats in self.gauge_stats.items()}

    def record_conjunct(self, key: str, estimate: float, rows: int) -> None:
        """Aggregate one conjunct evaluation (planner estimate at
        selection time vs actual rows produced)."""
        stats = self.conjuncts.get(key)
        if stats is None:
            stats = self.conjuncts[key] = ConjunctStats()
        stats.evals += 1
        stats.rows += rows
        stats.estimate_total += estimate

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop everything collected so far.  Open spans (if any) stay
        on the stack so an in-flight ``with tracer.span(...)`` still
        closes cleanly, but they are detached from the record."""
        self.counters.clear()
        self.gauge_stats.clear()
        self.roots.clear()
        self.conjuncts.clear()
        for span in self._stack:
            span.children = []
            span.parent = None

    def __repr__(self) -> str:
        return (f"Tracer({len(self.roots)} root spans,"
                f" {len(self.counters)} counters)")


class _NullSpan:
    """The do-nothing span: context manager and attribute sink."""

    __slots__ = ()
    name = ""
    wall = 0.0
    cpu = 0.0
    finished = False
    attributes: Dict[str, Any] = {}
    children: List["Span"] = []
    parent = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, **attributes: Any) -> None:
        pass

    def walk(self):
        return iter(())


#: The shared no-op span; ``TRACER.span(...)`` returns it when tracing
#: is off, so code holding a span reference never needs a None check.
NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op, every read is
    empty.  A single module-level instance (:data:`NULL_TRACER`) backs
    :data:`TRACER` whenever tracing is off."""

    enabled = False

    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    gauge_stats: Dict[str, GaugeAggregate] = {}
    roots: List[Span] = []
    conjuncts: Dict[str, ConjunctStats] = {}

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return NULL_SPAN

    def spans(self, name: Optional[str] = None) -> List[Span]:
        return []

    def count(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def record_conjunct(self, key: str, estimate: float, rows: int) -> None:
        pass

    def reset(self) -> None:
        pass

    def __repr__(self) -> str:
        return "NullTracer()"


NULL_TRACER = NullTracer()

#: The active tracer.  :data:`NULL_TRACER` until :func:`enable_tracing`.
TRACER = NULL_TRACER


def enable_tracing(fresh: bool = False) -> Tracer:
    """Turn tracing on, installing (and returning) the process tracer.

    Re-enabling keeps previously collected data unless ``fresh`` is
    true.  Idempotent.
    """
    global TRACER, ENABLED
    if fresh or not isinstance(TRACER, Tracer):
        TRACER = Tracer()
    ENABLED = True
    return TRACER


def disable_tracing() -> None:
    """Turn tracing off.  Collected data stays readable on
    :func:`active_tracer` until the next ``enable_tracing(fresh=True)``."""
    global ENABLED
    ENABLED = False


def tracing_enabled() -> bool:
    return ENABLED


def active_tracer():
    """The tracer that collected the most recent data (may be the
    null tracer if tracing was never enabled)."""
    return TRACER


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Temporarily install ``tracer`` as the active tracer (enabled),
    restoring the previous tracer and enablement state on exit.  This is
    how ``explain_analyze``, the shell's ``profile`` command, and the
    benchmark harness observe one operation without perturbing global
    state."""
    global TRACER, ENABLED
    saved_tracer, saved_enabled = TRACER, ENABLED
    TRACER, ENABLED = tracer, True
    try:
        yield tracer
    finally:
        TRACER, ENABLED = saved_tracer, saved_enabled


def pattern_shape(pattern) -> str:
    """The bound-position signature of a template: which of source /
    relationship / target are ground (``"sr"``, ``"t"``, …; ``"open"``
    for the fully free template).  Used to key per-pattern counters so
    index-usage profiles stay low-cardinality."""
    shape = "".join(
        letter for letter, component in zip("srt", pattern)
        if isinstance(component, str))
    return shape or "open"
