"""Slow-query log: a ring buffer of requests that blew their budget.

When a served request exceeds the service's ``slow_query_seconds``
threshold, a JSON-able record is appended here capturing what an
operator needs to diagnose it after the fact: the op and its payload
text, measured wall time vs the threshold, which process served it
(primary or a replica worker), the trace id if the request was traced,
and — for compiled queries — the plan's est-vs-actual operator rows
and replan count from :func:`repro.query.exec.last_run`.

The log is a bounded deque: old entries fall off, ``total`` keeps
counting, and :meth:`snapshot` is what the ``slowlog`` protocol verb
returns.  Worker processes don't hold the log — a replica measures its
own elapsed time and ships the record back inside the read result, and
the pool appends it to the primary's log — so one log covers the whole
pool.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional


def build_record(op: str, seconds: float, threshold: float,
                 text: str = "", source: str = "primary",
                 trace_id: Optional[str] = None,
                 deadline: Optional[float] = None,
                 plan: Optional[Dict[str, Any]] = None,
                 probe: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble one slow-query record.  ``plan`` is the dict shape
    produced by :func:`plan_summary`; ``probe`` is the autopsy dict
    from :func:`repro.browse.retraction.last_probe` (waves, attempted
    candidates, menu-cache outcome) for slow probe requests."""
    record: Dict[str, Any] = {
        "ts": time.time(),
        "op": op,
        "seconds": seconds,
        "threshold": threshold,
        "source": source,
    }
    if text:
        record["text"] = text
    if trace_id:
        record["trace_id"] = trace_id
    if deadline is not None:
        record["deadline"] = deadline
    if plan:
        record["plan"] = plan
    if probe:
        record["probe"] = probe
    return record


def plan_summary(run: Any) -> Optional[Dict[str, Any]]:
    """Compress a :class:`repro.query.exec.PlanRun` into the slow-log
    plan block: replan count plus per-operator est-vs-actual rows."""
    if run is None:
        return None
    return {
        "replans": getattr(run, "replans", 0),
        # Whether the run executed in the integer domain; False means
        # the string path (plain store, custom virtual registry, or
        # the fast-probe route) — the first thing to check when an
        # interned-store query shows up slow.
        "id_domain": bool(getattr(run, "id_domain", False)),
        "operators": [stats.as_dict() for stats in run.operators],
    }


class SlowQueryLog:
    """Thread-safe bounded log of slow-request records."""

    def __init__(self, size: int = 128) -> None:
        self._lock = threading.Lock()
        self._records: Deque[Dict[str, Any]] = deque(maxlen=max(1, size))
        self.total = 0

    def add(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._records.append(record)
            self.total += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def records(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Most recent records, oldest first (bounded by ``limit``)."""
        with self._lock:
            items = list(self._records)
        if limit is not None and limit >= 0:
            items = items[-limit:]
        return items

    def snapshot(self, limit: Optional[int] = None) -> Dict[str, Any]:
        return {"total": self.total, "records": self.records(limit)}

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self.total = 0
