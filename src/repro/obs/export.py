"""Exporters for collected trace data.

Two formats:

* **JSON lines** — one event per line (spans preorder with parent
  references, then counters, gauges, and conjunct records), suitable
  for offline analysis or attaching to a benchmark artifact;
* **text summary** — a fixed-width report reusing
  :func:`repro.benchio.reporting.format_table`, what the shell's
  ``profile`` command prints.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Union

from ..benchio.reporting import format_table
from .tracer import Span, Tracer


def to_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """Flatten a tracer into a list of event dicts.

    Spans are numbered preorder; each carries the id of its parent so
    the tree is reconstructible.  Attribute values are kept as-is (they
    must be JSON-serializable to survive :func:`write_jsonl`).
    """
    events: List[Dict[str, Any]] = []
    ids: Dict[int, int] = {}
    next_id = 0
    for root in tracer.roots:
        for span in root.walk():
            ids[id(span)] = next_id
            events.append({
                "type": "span",
                "id": next_id,
                "parent": (ids[id(span.parent)]
                           if span.parent is not None else None),
                "name": span.name,
                "wall": span.wall,
                "cpu": span.cpu,
                "attributes": dict(span.attributes),
            })
            next_id += 1
    for name in sorted(tracer.counters):
        events.append({"type": "counter", "name": name,
                       "value": tracer.counters[name]})
    gauge_stats = getattr(tracer, "gauge_stats", {})
    for name in sorted(tracer.gauges):
        event = {"type": "gauge", "name": name,
                 "value": tracer.gauges[name]}
        stats = gauge_stats.get(name)
        if stats is not None and stats.count:
            event.update(min=stats.min, max=stats.max,
                         mean=stats.mean, count=stats.count)
        events.append(event)
    for key in sorted(tracer.conjuncts):
        stats = tracer.conjuncts[key]
        events.append({"type": "conjunct", "key": key,
                       "evals": stats.evals, "rows": stats.rows,
                       "estimate_total": stats.estimate_total})
    return events


def write_jsonl(tracer: Tracer, destination: Union[str, Any]) -> int:
    """Write the tracer's events as JSON lines; returns the event count.

    ``destination`` is a path or an open text file.
    """
    events = to_events(tracer)
    if hasattr(destination, "write"):
        for event in events:
            destination.write(json.dumps(event, ensure_ascii=False) + "\n")
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event, ensure_ascii=False) + "\n")
    return len(events)


def read_jsonl(source: Union[str, Any]) -> List[Dict[str, Any]]:
    """Read back a JSON-lines event log written by :func:`write_jsonl`."""
    if hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    return [json.loads(line) for line in lines if line.strip()]


def _aggregate_spans(tracer: Tracer) -> List[List[object]]:
    """Rows (name, count, total wall s, total cpu s) aggregated by
    span name, sorted by total wall time descending."""
    totals: Dict[str, List[float]] = {}
    for root in tracer.roots:
        for span in root.walk():
            entry = totals.setdefault(span.name, [0, 0.0, 0.0])
            entry[0] += 1
            entry[1] += span.wall
            entry[2] += span.cpu
    rows = [[name, int(entry[0]), entry[1], entry[2]]
            for name, entry in totals.items()]
    rows.sort(key=lambda row: row[2], reverse=True)
    return rows


def summary(tracer: Tracer, title: str = "trace summary") -> str:
    """A fixed-width text report of everything the tracer collected."""
    sections: List[str] = [f"== {title} =="]
    span_rows = _aggregate_spans(tracer)
    if span_rows:
        sections.append(format_table(
            ["span", "count", "wall_s", "cpu_s"], span_rows))
    if tracer.counters:
        counter_rows = [[name, tracer.counters[name]]
                        for name in sorted(tracer.counters)]
        sections.append(format_table(["counter", "value"], counter_rows))
    if tracer.gauges:
        gauge_stats = getattr(tracer, "gauge_stats", {})
        gauge_rows = []
        for name in sorted(tracer.gauges):
            stats = gauge_stats.get(name)
            if stats is not None and stats.count:
                gauge_rows.append([name, stats.last, stats.min,
                                   stats.max, stats.count])
            else:
                gauge_rows.append([name, tracer.gauges[name],
                                   tracer.gauges[name],
                                   tracer.gauges[name], 1])
        sections.append(format_table(
            ["gauge", "last", "min", "max", "count"], gauge_rows))
    if tracer.conjuncts:
        conjunct_rows = [
            [key, stats.evals, stats.estimate_mean, stats.rows]
            for key, stats in sorted(tracer.conjuncts.items())
        ]
        sections.append(format_table(
            ["conjunct", "evals", "est_mean", "rows"], conjunct_rows))
    if len(sections) == 1:
        sections.append("(nothing collected)")
    return "\n\n".join(sections)
