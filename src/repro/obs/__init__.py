"""Observability: tracing spans, counters, gauges, and exporters.

This package answers "where did the time go?" for every layer of the
system — the fact store, the closure engine, the query evaluator, and
the browsers all report into one process-local tracer when tracing is
enabled, and pay a single attribute lookup per site when it is not.

Typical use::

    from repro import obs

    tracer = obs.enable_tracing()
    db.query("(x, EARNS, y)")
    print(obs.summary(tracer))
    obs.disable_tracing()

or, scoped to one operation::

    with obs.use_tracer(obs.Tracer()) as tracer:
        db.closure()
    print(tracer.counters["engine.rounds"])

Note this is distinct from ``Database(trace=True)``, which records
*derivation provenance* (why a fact holds); obs tracing records
*execution behavior* (what ran, how often, how long).
"""

from .export import read_jsonl, summary, to_events, write_jsonl
from .tracer import (
    NULL_SPAN,
    NULL_TRACER,
    ConjunctStats,
    NullTracer,
    Span,
    Tracer,
    active_tracer,
    disable_tracing,
    enable_tracing,
    pattern_shape,
    tracing_enabled,
    use_tracer,
)

__all__ = [
    "ConjunctStats", "NULL_SPAN", "NULL_TRACER", "NullTracer", "Span",
    "Tracer", "active_tracer", "disable_tracing", "enable_tracing",
    "pattern_shape", "tracing_enabled", "use_tracer",
    "read_jsonl", "summary", "to_events", "write_jsonl",
]
