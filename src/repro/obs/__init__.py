"""Observability: tracing spans, counters, gauges, and exporters.

This package answers "where did the time go?" for every layer of the
system — the fact store, the closure engine, the query evaluator, and
the browsers all report into one process-local tracer when tracing is
enabled, and pay a single attribute lookup per site when it is not.

Typical use::

    from repro import obs

    tracer = obs.enable_tracing()
    db.query("(x, EARNS, y)")
    print(obs.summary(tracer))
    obs.disable_tracing()

or, scoped to one operation::

    with obs.use_tracer(obs.Tracer()) as tracer:
        db.closure()
    print(tracer.counters["engine.rounds"])

Note this is distinct from ``Database(trace=True)``, which records
*derivation provenance* (why a fact holds); obs tracing records
*execution behavior* (what ran, how often, how long).

Alongside the process-local tracer this package carries the
cross-process telemetry stack: :mod:`repro.obs.metrics` (mergeable
counter/gauge/histogram snapshots with Prometheus exposition),
:mod:`repro.obs.context` (trace contexts whose span records ride back
on responses so the client ends up holding the stitched tree),
:mod:`repro.obs.slowlog` (bounded slow-query ring buffer), and
:mod:`repro.obs.monitor` (text dashboard rendered from snapshots).
"""

from .context import (
    SpanRecord,
    TraceContext,
    new_span_id,
    render_trace,
    stitch,
    trace_processes,
)
from .export import read_jsonl, summary, to_events, write_jsonl
from .metrics import (
    METRICS,
    Counter,
    GaugeAggregate,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    active_metrics,
    disable_metrics,
    enable_metrics,
    merge_snapshots,
    metrics_enabled,
    parse_prometheus,
    to_prometheus,
    use_metrics,
)
from .monitor import dashboard_rows, render_dashboard
from .slowlog import SlowQueryLog, build_record, plan_summary
from .tracer import (
    NULL_SPAN,
    NULL_TRACER,
    ConjunctStats,
    NullTracer,
    Span,
    Tracer,
    active_tracer,
    disable_tracing,
    enable_tracing,
    pattern_shape,
    tracing_enabled,
    use_tracer,
)

__all__ = [
    "ConjunctStats", "NULL_SPAN", "NULL_TRACER", "NullTracer", "Span",
    "Tracer", "active_tracer", "disable_tracing", "enable_tracing",
    "pattern_shape", "tracing_enabled", "use_tracer",
    "read_jsonl", "summary", "to_events", "write_jsonl",
    "Counter", "GaugeAggregate", "Histogram", "METRICS",
    "MetricsRegistry", "NullMetrics", "active_metrics",
    "disable_metrics", "enable_metrics", "merge_snapshots",
    "metrics_enabled", "parse_prometheus", "to_prometheus",
    "use_metrics",
    "SpanRecord", "TraceContext", "new_span_id", "render_trace",
    "stitch", "trace_processes",
    "SlowQueryLog", "build_record", "plan_summary",
    "dashboard_rows", "render_dashboard",
]
