"""Process-local metrics: counters, gauge aggregates, and histograms.

The tracer (:mod:`repro.obs.tracer`) answers "where did the time go?"
for one operation; this module answers "how is the *service* doing?"
over thousands of them.  It follows the same zero-overhead-when-
disabled discipline — every instrumented site guards itself with one
module-attribute lookup::

    from ..obs import metrics as _metrics
    ...
    if _metrics.ENABLED:
        _metrics.METRICS.count("serve.requests")

so that with metrics off (the default) the cost per site is a single
attribute load and a falsy branch.

Three metric kinds, all cheap enough for hot serving paths:

* **counters** — monotone event counts (``serve.requests``,
  ``exec.replans``);
* **gauges** — last-value observations *with* a running
  min/max/sum/count aggregate (``serve.queue_depth``), so a scrape
  sees the envelope, not just whatever happened to be last;
* **histograms** — fixed-bucket streaming latency distributions
  (``serve.request_seconds.query``): p50/p95/p99 come from bucket
  counts, no samples are stored, and merging two histograms is an
  element-wise add — which is what lets replica worker processes ship
  their registries to the primary and have the pool present one
  pool-wide view (:func:`merge_snapshots`).

Unlike the tracer, the registry *is* thread-safe: serving reads happen
on many threads at once.  Each metric carries its own small lock; the
registry-level lock is only taken to create a metric the first time
its name appears.

Example::

    from repro.obs import metrics

    registry = metrics.MetricsRegistry()
    with metrics.use_metrics(registry):
        registry.observe("request_seconds", 0.004)
        registry.count("requests")
    snap = registry.snapshot()
    assert snap["counters"]["requests"] == 1
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Fast-path flag.  Instrumented call sites test this and nothing else.
ENABLED = False

#: Default histogram bounds (seconds): 50µs → 10s, roughly ×2.5 per
#: bucket.  Wide enough for µs point reads and multi-second closures;
#: values above the last bound land in the implicit +Inf bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotone event count."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def add(self, n: int = 1) -> None:
        with self._lock:
            self.value += n


class GaugeAggregate:
    """A last-value observation plus its running envelope.

    Keeps ``last``, ``min``, ``max``, ``sum`` and ``count`` so a
    scrape that samples once a second still sees the extremes between
    scrapes (the flaw of the tracer's original last-value-only gauge).
    """

    __slots__ = ("last", "min", "max", "sum", "count", "_lock")

    def __init__(self) -> None:
        self.last = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.last = value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self.sum += value
            self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        if not self.count:
            return {"last": 0.0, "min": 0.0, "max": 0.0,
                    "sum": 0.0, "count": 0}
        return {"last": self.last, "min": self.min, "max": self.max,
                "sum": self.sum, "count": self.count}


class Histogram:
    """A fixed-bucket streaming distribution.

    ``bounds`` are the inclusive upper edges of each bucket; one extra
    overflow bucket catches everything above the last bound.  Only the
    per-bucket counts (plus sum/count/min/max) are stored, so memory is
    constant however many observations arrive, percentiles are
    estimated from the cumulative counts, and two histograms with the
    same bounds merge by adding counts element-wise.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "min", "max", "_lock")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def percentile(self, fraction: float) -> float:
        """Estimate the ``fraction`` quantile from the bucket counts.

        Linear interpolation inside the bucket that crosses the rank;
        the overflow bucket reports the observed maximum (the upper
        edge would be +Inf).
        """
        if not self.count:
            return 0.0
        rank = fraction * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index >= len(self.bounds):
                    return self.max
                lower = self.bounds[index - 1] if index else 0.0
                upper = self.bounds[index]
                fill = (rank - previous) / bucket_count
                return lower + (upper - lower) * min(1.0, max(0.0, fill))
        return self.max

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """All of a process's metrics, keyed by dotted name.

    The update paths (:meth:`count` / :meth:`gauge` / :meth:`observe`)
    take the registry lock only on first use of a name; afterwards a
    GIL-atomic dict lookup finds the metric and its own lock covers
    the few-instruction update.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, GaugeAggregate] = {}
        self.histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Update paths
    # ------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Increment a monotone counter."""
        counter = self.counters.get(name)
        if counter is None:
            with self._lock:
                counter = self.counters.setdefault(name, Counter())
        counter.add(n)

    def gauge(self, name: str, value: float) -> None:
        """Record a gauge observation (last + min/max/sum/count)."""
        gauge = self.gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self.gauges.setdefault(name, GaugeAggregate())
        gauge.set(value)

    def observe(self, name: str, value: float,
                bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        """Add one observation to a fixed-bucket histogram."""
        histogram = self.histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self.histograms.setdefault(
                    name, Histogram(bounds))
        histogram.observe(value)

    @contextmanager
    def time(self, name: str):
        """Observe the wall-clock duration of the body into ``name``."""
        import time as _time

        started = _time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, _time.perf_counter() - started)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter_value(self, name: str) -> int:
        counter = self.counters.get(name)
        return counter.value if counter is not None else 0

    def snapshot(self) -> Dict[str, Any]:
        """The registry as one JSON-able document.

        The wire format for everything downstream: worker heartbeats,
        the ``metrics`` protocol verb, Prometheus exposition, and the
        metrics block benchmarks stamp into ``BENCH_*.json``.
        """
        with self._lock:
            counters = dict(self.counters)
            gauges = dict(self.gauges)
            histograms = dict(self.histograms)
        return {
            "counters": {name: counter.value
                         for name, counter in sorted(counters.items())},
            "gauges": {name: gauge.as_dict()
                       for name, gauge in sorted(gauges.items())},
            "histograms": {name: histogram.as_dict()
                           for name, histogram in
                           sorted(histograms.items())},
        }

    def reset(self) -> None:
        """Drop every metric collected so far."""
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()

    def __repr__(self) -> str:
        return (f"MetricsRegistry({len(self.counters)} counters,"
                f" {len(self.gauges)} gauges,"
                f" {len(self.histograms)} histograms)")


class NullMetrics:
    """The disabled registry: every operation is a no-op."""

    enabled = False

    counters: Dict[str, Counter] = {}
    gauges: Dict[str, GaugeAggregate] = {}
    histograms: Dict[str, Histogram] = {}

    def count(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float, bounds=None) -> None:
        pass

    @contextmanager
    def time(self, name: str):
        yield

    def counter_value(self, name: str) -> int:
        return 0

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def reset(self) -> None:
        pass

    def __repr__(self) -> str:
        return "NullMetrics()"


NULL_METRICS = NullMetrics()

#: The active registry.  :data:`NULL_METRICS` until
#: :func:`enable_metrics`.
METRICS = NULL_METRICS


def enable_metrics(fresh: bool = False) -> MetricsRegistry:
    """Turn metrics on, installing (and returning) the process
    registry.  Re-enabling keeps previously collected data unless
    ``fresh`` is true.  Idempotent."""
    global METRICS, ENABLED
    if fresh or not isinstance(METRICS, MetricsRegistry):
        METRICS = MetricsRegistry()
    ENABLED = True
    return METRICS


def disable_metrics() -> None:
    """Turn metrics off.  Collected data stays readable on
    :func:`active_metrics` until the next ``enable_metrics(fresh=True)``."""
    global ENABLED
    ENABLED = False


def metrics_enabled() -> bool:
    return ENABLED


def active_metrics():
    """The registry that collected the most recent data (may be the
    null registry if metrics were never enabled)."""
    return METRICS


@contextmanager
def use_metrics(registry: MetricsRegistry):
    """Temporarily install ``registry`` as the active registry
    (enabled), restoring the previous registry and enablement state on
    exit — how benchmarks collect a metrics snapshot for their JSON
    artifact without perturbing global state."""
    global METRICS, ENABLED
    saved_registry, saved_enabled = METRICS, ENABLED
    METRICS, ENABLED = registry, True
    try:
        yield registry
    finally:
        METRICS, ENABLED = saved_registry, saved_enabled


# ----------------------------------------------------------------------
# Snapshot algebra (cross-process aggregation)
# ----------------------------------------------------------------------
def _merge_gauge(into: Dict[str, float], other: Dict[str, float]) -> None:
    if not other.get("count"):
        return
    if not into.get("count"):
        into.update(other)
        return
    into["last"] = other["last"]
    into["min"] = min(into["min"], other["min"])
    into["max"] = max(into["max"], other["max"])
    into["sum"] = into["sum"] + other["sum"]
    into["count"] = into["count"] + other["count"]


def _merge_histogram(into: Dict[str, Any], other: Dict[str, Any]) -> None:
    if not other.get("count"):
        return
    if not into.get("count"):
        into.update({key: (list(value) if isinstance(value, list)
                           else value) for key, value in other.items()})
        return
    if list(into["bounds"]) != list(other["bounds"]):
        # Different bucket layouts cannot be added bin-wise; keep the
        # side with more observations rather than fabricating counts.
        if other["count"] > into["count"]:
            into.update({key: (list(value) if isinstance(value, list)
                               else value)
                         for key, value in other.items()})
        return
    into["counts"] = [a + b for a, b in zip(into["counts"],
                                            other["counts"])]
    into["sum"] += other["sum"]
    into["count"] += other["count"]
    into["min"] = min(into["min"], other["min"])
    into["max"] = max(into["max"], other["max"])
    rebuilt = Histogram(into["bounds"])
    rebuilt.counts = list(into["counts"])
    rebuilt.sum = into["sum"]
    rebuilt.count = into["count"]
    rebuilt.min = into["min"]
    rebuilt.max = into["max"]
    into["p50"] = rebuilt.percentile(0.50)
    into["p95"] = rebuilt.percentile(0.95)
    into["p99"] = rebuilt.percentile(0.99)


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold several registry snapshots into one pool-wide view.

    Counters add; gauges combine min/max and add sum/count (``last``
    is the last snapshot's last); histograms with identical bounds add
    counts element-wise and re-derive their percentiles.  The inputs
    are not modified.
    """
    merged: Dict[str, Any] = {"counters": {}, "gauges": {},
                              "histograms": {}}
    for snapshot in snapshots:
        if not snapshot:
            continue
        for name, value in snapshot.get("counters", {}).items():
            merged["counters"][name] = (
                merged["counters"].get(name, 0) + value)
        for name, gauge in snapshot.get("gauges", {}).items():
            into = merged["gauges"].setdefault(name, {"count": 0})
            _merge_gauge(into, gauge)
        for name, histogram in snapshot.get("histograms", {}).items():
            into = merged["histograms"].setdefault(name, {"count": 0})
            _merge_histogram(into, histogram)
    merged["counters"] = dict(sorted(merged["counters"].items()))
    merged["gauges"] = dict(sorted(merged["gauges"].items()))
    merged["histograms"] = dict(sorted(merged["histograms"].items()))
    return merged


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(prefix: str, name: str) -> str:
    flat = _PROM_NAME_RE.sub("_", name)
    return f"{prefix}_{flat}" if prefix else flat


def _prom_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def to_prometheus(snapshot: Dict[str, Any], prefix: str = "repro") -> str:
    """Render a registry snapshot in the Prometheus text exposition
    format (version 0.0.4: ``# TYPE`` lines, ``_total`` counters,
    histogram ``_bucket{le=...}`` series).

    ``snapshot`` is anything :meth:`MetricsRegistry.snapshot` or
    :func:`merge_snapshots` produced.
    """
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = _prom_name(prefix, name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, gauge in snapshot.get("gauges", {}).items():
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_number(gauge.get('last', 0.0))}")
        for part in ("min", "max"):
            lines.append(f"# TYPE {metric}_{part} gauge")
            lines.append(
                f"{metric}_{part} {_prom_number(gauge.get(part, 0.0))}")
    for name, histogram in snapshot.get("histograms", {}).items():
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        bounds = list(histogram.get("bounds", ())) + [float("inf")]
        for bound, count in zip(bounds, histogram.get("counts", ())):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_prom_number(bound)}"}}'
                f" {cumulative}")
        lines.append(f"{metric}_sum {_prom_number(histogram.get('sum', 0.0))}")
        lines.append(f"{metric}_count {histogram.get('count', 0)}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse exposition text back into ``{series: value}`` (labels kept
    verbatim in the series name).  Used by the smoke checks and tests
    to assert the exporter emits well-formed output."""
    series: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if not name:
            raise ValueError(f"malformed exposition line: {line!r}")
        series[name] = float(value)
    return series
