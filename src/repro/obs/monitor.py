"""Live monitoring dashboard rendered from metrics snapshots.

The dashboard is a pure function of two snapshots: the current one and
the previous one from ``interval`` seconds ago.  Counter deltas divided
by the interval give rates (throughput per request class); histograms
give tail latency; gauges report instantaneous state (queue depth,
publish pause, replica lag).  Nothing here talks to the network — the
shell's ``monitor`` mode feeds it snapshots from a
:class:`~repro.serve.net.ServiceClient` and redraws on a timer, and
tests feed it hand-built snapshots.
"""
from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["dashboard_rows", "render_dashboard"]

_REQUEST_PREFIX = "serve.requests."
_LATENCY_PREFIX = "serve.request_seconds."


def _counter_delta(sample: Dict[str, Any], previous: Optional[Dict[str, Any]],
                   name: str) -> int:
    now = sample.get("counters", {}).get(name, 0)
    if previous is None:
        return now
    before = previous.get("counters", {}).get(name, 0)
    # A restarted process resets counters; clamp instead of reporting
    # a huge negative rate.
    return max(0, now - before)


def _histogram(sample: Dict[str, Any], name: str) -> Optional[Dict[str, Any]]:
    return sample.get("histograms", {}).get(name)


def _gauge_last(sample: Dict[str, Any], name: str) -> Optional[float]:
    gauge = sample.get("gauges", {}).get(name)
    if gauge is None or not gauge.get("count"):
        return None
    return gauge.get("last")


def _ms(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    return f"{seconds * 1000:.2f}ms"


def dashboard_rows(sample: Dict[str, Any],
                   previous: Optional[Dict[str, Any]] = None,
                   interval: float = 1.0) -> List[Dict[str, Any]]:
    """Per-request-class rows: throughput plus latency percentiles."""
    interval = max(interval, 1e-9)
    classes = sorted(
        {name[len(_REQUEST_PREFIX):]
         for name in sample.get("counters", {})
         if name.startswith(_REQUEST_PREFIX)} |
        {name[len(_LATENCY_PREFIX):]
         for name in sample.get("histograms", {})
         if name.startswith(_LATENCY_PREFIX)})
    rows = []
    for request_class in classes:
        delta = _counter_delta(sample, previous,
                               _REQUEST_PREFIX + request_class)
        histogram = _histogram(sample, _LATENCY_PREFIX + request_class)
        rows.append({
            "class": request_class,
            "rate": delta / interval,
            "total": sample.get("counters", {}).get(
                _REQUEST_PREFIX + request_class, 0),
            "p50": histogram.get("p50") if histogram else None,
            "p99": histogram.get("p99") if histogram else None,
        })
    return rows


def render_dashboard(sample: Dict[str, Any],
                     previous: Optional[Dict[str, Any]] = None,
                     interval: float = 1.0,
                     title: str = "repro monitor") -> str:
    """Render a text dashboard from a metrics snapshot.

    ``sample``/``previous`` are :meth:`MetricsRegistry.snapshot` dicts
    (possibly merged across processes).  ``previous`` may be ``None``
    for the first frame, in which case rates cover the process lifetime.
    """
    interval = max(interval, 1e-9)
    lines = [title, "=" * len(title)]

    rows = dashboard_rows(sample, previous, interval)
    total_rate = sum(row["rate"] for row in rows)
    lines.append(f"throughput: {total_rate:,.0f} req/s"
                 f" over {interval:.1f}s window")
    if rows:
        lines.append(f"  {'class':<12} {'req/s':>10} {'p50':>10}"
                     f" {'p99':>10} {'total':>10}")
        for row in rows:
            lines.append(f"  {row['class']:<12} {row['rate']:>10,.0f}"
                         f" {_ms(row['p50']):>10} {_ms(row['p99']):>10}"
                         f" {row['total']:>10,}")

    hits = _counter_delta(sample, previous, "cache.hits")
    misses = _counter_delta(sample, previous, "cache.misses")
    if hits or misses:
        ratio = hits / (hits + misses)
        lines.append(f"cache: {ratio:.1%} hit rate"
                     f" ({hits:,} hits / {misses:,} misses)")

    lag = _histogram(sample, "serve.pool.lag_seconds")
    if lag and lag.get("count"):
        lines.append(f"replica lag: p50 {_ms(lag.get('p50'))}"
                     f" p99 {_ms(lag.get('p99'))}"
                     f" max {_ms(lag.get('max'))}")

    pause = _gauge_last(sample, "serve.publish_pause_seconds")
    if pause is not None:
        pause_hist = _histogram(sample, "serve.publish_pause")
        worst = pause_hist.get("max") if pause_hist else None
        lines.append(f"publish pause: last {_ms(pause)}"
                     f" worst {_ms(worst)}")

    depth = _gauge_last(sample, "serve.queue_depth")
    if depth is not None:
        lines.append(f"write queue depth: {depth:.0f}")

    slow = _counter_delta(sample, previous, "serve.slow_queries")
    if slow:
        lines.append(f"slow queries this window: {slow:,}")

    replans = sample.get("counters", {}).get("exec.replans", 0)
    plans = sample.get("counters", {}).get("exec.plans", 0)
    if plans:
        lines.append(f"plans executed: {plans:,}"
                     f" ({replans:,} mid-flight replans)")
    return "\n".join(lines)
