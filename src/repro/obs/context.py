"""Distributed trace context: one request, one span tree, many processes.

The in-process tracer nests spans on a stack, which stops working the
moment a request crosses a socket or a pipe.  This module carries a
*trace context* — a trace id plus the span id of the caller — across
those boundaries, and lets each participant contribute flat
:class:`SpanRecord` rows that are later stitched back into a tree.

The transport model is **response-carried**: there is no central
collector.  A replica worker returns its span records inside the read
result; the pool appends its routing span and hands the pile to the
service layer; the TCP server attaches everything to the response's
``trace`` field; the client merges that into its own context.  After
one round trip the *client* holds the complete tree — client span,
server dispatch span, service/pool spans, and the worker's spans from
another process — with no side channel to configure.

Usage, client side::

    ctx = TraceContext.new()
    with ctx.span("client.request", role="client"):
        response = send(request, trace=ctx.wire())
    ctx.absorb(response.get("trace", ()))
    tree = stitch(ctx.records)

and on any server hop::

    ctx = TraceContext.from_wire(request.get("trace"))
    with ctx.span("service.read", role="service", op="probe"):
        ...
    response["trace"] = ctx.collect()

``TraceContext.from_wire(None)`` returns ``None``, and every
instrumented site treats a ``None`` context as "tracing off", so
untraced requests pay a single identity check per hop.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    """A fresh span/trace id (for callers assembling
    :class:`SpanRecord` rows by hand, e.g. the writer thread)."""
    return _new_id()


@dataclass
class SpanRecord:
    """One flat span row — JSON-able, orderable, process-tagged."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    role: str = ""
    pid: int = 0
    start: float = 0.0
    wall: float = 0.0
    attributes: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "role": self.role,
            "pid": self.pid,
            "start": self.start,
            "wall": self.wall,
        }
        if self.attributes:
            record["attributes"] = self.attributes
        if self.error is not None:
            record["error"] = self.error
        return record

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanRecord":
        return cls(
            trace_id=data.get("trace_id", ""),
            span_id=data.get("span_id", ""),
            parent_id=data.get("parent_id"),
            name=data.get("name", ""),
            role=data.get("role", ""),
            pid=data.get("pid", 0),
            start=data.get("start", 0.0),
            wall=data.get("wall", 0.0),
            attributes=dict(data.get("attributes", {})),
            error=data.get("error"),
        )


class TraceContext:
    """A request's identity plus the spans this process contributed.

    ``parent_id`` names the span on the *calling* side under which new
    spans here should hang; :meth:`span` updates it for the duration of
    the body so sibling calls nest naturally within one process.
    Collection is additive and thread-safe: worker receiver threads and
    the writer thread may append concurrently.
    """

    __slots__ = ("trace_id", "parent_id", "records", "_lock")

    def __init__(self, trace_id: str, parent_id: Optional[str] = None,
                 records: Optional[List[SpanRecord]] = None) -> None:
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.records: List[SpanRecord] = records if records is not None else []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Construction / wire format
    # ------------------------------------------------------------------
    @classmethod
    def new(cls) -> "TraceContext":
        return cls(trace_id=_new_id())

    @classmethod
    def from_wire(cls, wire: Optional[Dict[str, Any]]
                  ) -> Optional["TraceContext"]:
        """Rebuild a context from a request's ``trace`` field.

        ``None`` (field absent → request untraced) maps to ``None`` so
        call sites can use the context's truthiness as the fast path.
        """
        if not wire or not wire.get("id"):
            return None
        return cls(trace_id=str(wire["id"]),
                   parent_id=wire.get("parent") or None)

    def wire(self) -> Dict[str, Any]:
        """The compact form that rides in a request: id + parent only
        (records travel in *responses*, not requests)."""
        payload: Dict[str, Any] = {"id": self.trace_id}
        if self.parent_id:
            payload["parent"] = self.parent_id
        return payload

    def child(self) -> "TraceContext":
        """A context for handing to a downstream hop: same trace, same
        parent, its own record pile (merged back via :meth:`absorb`)."""
        return TraceContext(self.trace_id, self.parent_id)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, role: str = "", **attributes: Any):
        """Record a span around the body.

        Yields the :class:`SpanRecord` so the body can add attributes
        discovered mid-flight (row counts, worker slot, ...).  While
        the body runs, new spans started through *this context* hang
        under this span.
        """
        record = SpanRecord(
            trace_id=self.trace_id,
            span_id=_new_id(),
            parent_id=self.parent_id,
            name=name,
            role=role,
            pid=os.getpid(),
            start=time.time(),
            attributes=dict(attributes),
        )
        saved_parent = self.parent_id
        self.parent_id = record.span_id
        started = time.perf_counter()
        try:
            yield record
        except BaseException as error:
            record.error = f"{type(error).__name__}: {error}"
            raise
        finally:
            record.wall = time.perf_counter() - started
            self.parent_id = saved_parent
            with self._lock:
                self.records.append(record)

    def add_record(self, record: SpanRecord) -> None:
        with self._lock:
            self.records.append(record)

    def absorb(self, wire_records: Iterable[Dict[str, Any]]) -> None:
        """Merge span dicts from a response (another hop's
        :meth:`collect`) into this context."""
        if not wire_records:
            return
        parsed = [SpanRecord.from_dict(record) for record in wire_records]
        with self._lock:
            self.records.extend(parsed)

    def collect(self) -> List[Dict[str, Any]]:
        """This process's records as wire dicts (for a response's
        ``trace`` field)."""
        with self._lock:
            return [record.as_dict() for record in self.records]


# ----------------------------------------------------------------------
# Stitching and rendering
# ----------------------------------------------------------------------
def stitch(records: Sequence[Any]) -> List[Dict[str, Any]]:
    """Assemble flat span records (dicts or :class:`SpanRecord`) into
    a forest of ``{"span": record_dict, "children": [...]}`` nodes,
    roots first, children ordered by start time.

    Spans whose parent never arrived (a hop that dropped its records)
    surface as extra roots rather than vanishing.
    """
    as_dicts: List[Dict[str, Any]] = []
    for record in records:
        as_dicts.append(record.as_dict()
                        if isinstance(record, SpanRecord) else dict(record))
    nodes = {record["span_id"]: {"span": record, "children": []}
             for record in as_dicts}
    roots: List[Dict[str, Any]] = []
    for record in as_dicts:
        parent = record.get("parent_id")
        if parent and parent in nodes and parent != record["span_id"]:
            nodes[parent]["children"].append(nodes[record["span_id"]])
        else:
            roots.append(nodes[record["span_id"]])

    def _sort(node: Dict[str, Any]) -> None:
        node["children"].sort(key=lambda child: child["span"]["start"])
        for child in node["children"]:
            _sort(child)

    roots.sort(key=lambda node: node["span"]["start"])
    for root in roots:
        _sort(root)
    return roots


def trace_processes(records: Sequence[Any]) -> List[int]:
    """Distinct pids that contributed spans, in first-seen order."""
    seen: List[int] = []
    for record in records:
        pid = (record.pid if isinstance(record, SpanRecord)
               else record.get("pid", 0))
        if pid and pid not in seen:
            seen.append(pid)
    return seen


def render_trace(records: Sequence[Any]) -> str:
    """A human-readable tree of a stitched trace::

        client.request                    client  pid=101   3.214ms
          net.dispatch probe              server  pid=202   2.801ms
            pool.read worker=1            pool    pid=202   2.455ms
              replica.read probe          replica pid=303   0.412ms
    """
    lines: List[str] = []

    def _walk(node: Dict[str, Any], depth: int) -> None:
        span = node["span"]
        label = span["name"]
        attributes = span.get("attributes") or {}
        if attributes:
            detail = " ".join(f"{key}={value}"
                              for key, value in sorted(attributes.items()))
            label = f"{label} [{detail}]"
        indent = "  " * depth
        text = f"{indent}{label}"
        lines.append(f"{text:<56} {span.get('role', ''):<8}"
                     f" pid={span.get('pid', 0):<8}"
                     f" {span.get('wall', 0.0) * 1000:8.3f}ms"
                     + (f"  ERROR {span['error']}"
                        if span.get("error") else ""))
        for child in node["children"]:
            _walk(child, depth + 1)

    for root in stitch(records):
        _walk(root, 0)
    return "\n".join(lines)
