"""Rules: pairs of template sets (paper §2.6).

"Each rule may therefore be specified with two sets of templates ...
A rule is a pair <L, R>."  A :class:`Rule` here is exactly that —
a conjunctive body of templates implying a set of head templates —
plus *conditions*, the side constraints the paper writes as
quantifier restrictions ("∀ r ∈ R_i") and inequality guards
("by insisting that the source of the first fact is different from
the target of the second fact").

Conditions are small declarative objects (not bare lambdas) so rules
can be printed, compared, and listed in documentation and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Sequence, Tuple, Union

from ..core.entities import (
    CLASS_RELATIONSHIP,
    INDIVIDUAL_RELATIONSHIP,
    MEMBER,
    is_composed,
    is_special_relationship,
)
from ..core.facts import Binding, Component, Template, Variable
from ..core.store import FactStore
from ..core.errors import RuleError


class RelationshipClassifier:
    """Partition of relationships into R_i and R_c (paper §2.2).

    Classification is itself stored as facts: ``(r, ∈, CLASS-RELATIONSHIP)``
    puts ``r`` into R_c; ``(r, ∈, INDIVIDUAL-RELATIONSHIP)`` (or no
    declaration at all) leaves it in R_i.  ``∈`` is a class relationship
    and ``≺`` an individual one by definition (§2.3); composed (path)
    relationships are treated as class relationships so inheritance does
    not multiply paths.
    """

    def __init__(self, store: FactStore):
        self._class_declared: FrozenSet[str] = frozenset(
            f.source
            for f in store.match(
                Template(Variable("r"), MEMBER, CLASS_RELATIONSHIP)))
        self._individual_declared: FrozenSet[str] = frozenset(
            f.source
            for f in store.match(
                Template(Variable("r"), MEMBER, INDIVIDUAL_RELATIONSHIP)))

    def is_individual(self, relationship: str) -> bool:
        """True if ``relationship`` belongs to R_i."""
        if relationship in self._individual_declared:
            return True
        if relationship == MEMBER:
            return False
        if relationship in self._class_declared:
            return False
        if is_composed(relationship):
            return False
        return True

    def is_class(self, relationship: str) -> bool:
        """True if ``relationship`` belongs to R_c."""
        return not self.is_individual(relationship)


@dataclass
class RuleContext:
    """Everything a condition may consult during rule evaluation."""

    classifier: RelationshipClassifier


class Condition:
    """A side constraint on a rule's variable binding."""

    def holds(self, binding: Binding, context: RuleContext) -> bool:
        raise NotImplementedError

    def variables(self) -> FrozenSet[Variable]:
        """Variables this condition needs bound before it can be
        checked (used for eager pruning during joins)."""
        raise NotImplementedError


def _resolve(component: Component, binding: Binding) -> Optional[str]:
    """The entity a component denotes under a binding, or None."""
    if isinstance(component, Variable):
        return binding.get(component)
    return component


@dataclass(frozen=True)
class Distinct(Condition):
    """The two components must denote different entities."""

    left: Component
    right: Component

    def holds(self, binding: Binding, context: RuleContext) -> bool:
        return _resolve(self.left, binding) != _resolve(self.right, binding)

    def variables(self) -> FrozenSet[Variable]:
        return frozenset(
            c for c in (self.left, self.right) if isinstance(c, Variable))

    def __str__(self) -> str:
        return f"{self.left} ≠ {self.right}"


@dataclass(frozen=True)
class IndividualRelationship(Condition):
    """The component must denote a relationship in R_i (§2.2)."""

    component: Component

    def holds(self, binding: Binding, context: RuleContext) -> bool:
        entity = _resolve(self.component, binding)
        return entity is not None and context.classifier.is_individual(entity)

    def variables(self) -> FrozenSet[Variable]:
        if isinstance(self.component, Variable):
            return frozenset({self.component})
        return frozenset()

    def __str__(self) -> str:
        return f"{self.component} ∈ R_i"


@dataclass(frozen=True)
class NotSpecial(Condition):
    """The component must not be one of the special relationship
    entities (``≺ ∈ ≈ ↔ ⊥`` and the comparators), which have their own
    dedicated rules."""

    component: Component

    def holds(self, binding: Binding, context: RuleContext) -> bool:
        entity = _resolve(self.component, binding)
        return entity is not None and not is_special_relationship(entity)

    def variables(self) -> FrozenSet[Variable]:
        if isinstance(self.component, Variable):
            return frozenset({self.component})
        return frozenset()

    def __str__(self) -> str:
        return f"{self.component} not special"


# ----------------------------------------------------------------------
# Relationship signatures (static dispatch / stratification analysis)
# ----------------------------------------------------------------------
class _RelationshipWildcard:
    """A non-ground relationship-position signature (see
    :func:`atom_relationship_spec`)."""

    __slots__ = ("label",)

    def __init__(self, label: str):
        self.label = label

    def __repr__(self) -> str:
        return f"<{self.label}>"


#: The atom's relationship position is an unconstrained variable: it can
#: match (or, in a head, produce) a fact with *any* relationship.
ANY_RELATIONSHIP = _RelationshipWildcard("any-relationship")

#: The atom's relationship position is a variable guarded by a
#: :class:`NotSpecial` condition: it can only match/produce facts whose
#: relationship is not one of the special entities (``≺ ∈ ≈ ↔ ⊥`` and
#: the comparators).
NONSPECIAL_RELATIONSHIP = _RelationshipWildcard("nonspecial-relationship")

#: What a template's relationship position can statically match: a
#: ground relationship entity, or one of the two wildcard signatures.
RelationshipSpec = Union[str, _RelationshipWildcard]


def atom_relationship_spec(atom: Template,
                           conditions: Sequence[Condition]
                           ) -> RelationshipSpec:
    """The static signature of one atom's relationship position.

    A ground position is its own signature.  A variable position is
    :data:`NONSPECIAL_RELATIONSHIP` when some :class:`NotSpecial`
    condition constrains that variable (the guard is checked as soon as
    the variable is bound, so facts with special relationships can
    never satisfy the atom), :data:`ANY_RELATIONSHIP` otherwise.
    """
    relationship = atom.relationship
    if not isinstance(relationship, Variable):
        return relationship
    for condition in conditions:
        if (isinstance(condition, NotSpecial)
                and condition.component == relationship):
            return NONSPECIAL_RELATIONSHIP
    return ANY_RELATIONSHIP


def specs_overlap(produced: RelationshipSpec,
                  consumed: RelationshipSpec) -> bool:
    """True if a fact produced under one signature could match an atom
    consuming under the other (a sound overapproximation)."""
    if produced is ANY_RELATIONSHIP or consumed is ANY_RELATIONSHIP:
        return True
    if produced is NONSPECIAL_RELATIONSHIP:
        return (consumed is NONSPECIAL_RELATIONSHIP
                or not is_special_relationship(consumed))
    if consumed is NONSPECIAL_RELATIONSHIP:
        return not is_special_relationship(produced)
    return produced == consumed


@dataclass(frozen=True)
class Rule:
    """An inference rule or integrity constraint: ``body ⇒ head``.

    Attributes:
        name: unique name, the handle for ``include``/``exclude`` (§6.1).
        body: conjunction of templates (the rule's L).
        head: templates derived when the body matches (the rule's R).
        conditions: side constraints on the binding.
        description: one-line human explanation (shown in docs/benches).
        is_constraint: True for integrity constraints — rules whose
            derived facts express *required* relationships (§2.5); the
            integrity checker reports, rather than silently tolerates,
            their contradiction.
    """

    name: str
    body: Tuple[Template, ...]
    head: Tuple[Template, ...]
    conditions: Tuple[Condition, ...] = ()
    description: str = ""
    is_constraint: bool = False

    def __post_init__(self):
        if not self.name:
            raise RuleError("rule must have a name")
        if not self.body:
            raise RuleError(f"rule {self.name!r} has an empty body")
        if not self.head:
            raise RuleError(f"rule {self.name!r} has an empty head")
        body_vars = set()
        for atom in self.body:
            body_vars.update(atom.variable_set())
        for atom in self.head:
            unsafe = atom.variable_set() - body_vars
            if unsafe:
                names = ", ".join(sorted(v.name for v in unsafe))
                raise RuleError(
                    f"rule {self.name!r} is unsafe: head variables"
                    f" {{{names}}} do not occur in the body")

    def body_variables(self) -> FrozenSet[Variable]:
        variables = set()
        for atom in self.body:
            variables.update(atom.variable_set())
        return frozenset(variables)

    def consumed_relationship_specs(self) -> Tuple[RelationshipSpec, ...]:
        """Per body atom, the relationships it can match (see
        :func:`atom_relationship_spec`) — the rule's input signature
        for dispatch and stratification."""
        return tuple(atom_relationship_spec(atom, self.conditions)
                     for atom in self.body)

    def produced_relationship_specs(self) -> Tuple[RelationshipSpec, ...]:
        """Per head atom, the relationships its derived facts can carry
        — the rule's output signature for stratification."""
        return tuple(atom_relationship_spec(atom, self.conditions)
                     for atom in self.head)

    def rename_apart(self, suffix: str) -> "Rule":
        """A copy with every variable renamed (standardizing apart)."""
        mapping: Dict[Variable, Variable] = {
            v: Variable(f"{v.name}{suffix}") for v in self.body_variables()
        }
        return Rule(
            name=self.name,
            body=tuple(atom.rename(mapping) for atom in self.body),
            head=tuple(atom.rename(mapping) for atom in self.head),
            conditions=tuple(
                _rename_condition(c, mapping) for c in self.conditions),
            description=self.description,
            is_constraint=self.is_constraint,
        )

    def __str__(self) -> str:
        body = " ∧ ".join(repr(t) for t in self.body)
        head = " ∧ ".join(repr(t) for t in self.head)
        guards = ""
        if self.conditions:
            guards = "  [" + "; ".join(str(c) for c in self.conditions) + "]"
        return f"{self.name}: {body} ⇒ {head}{guards}"


def _rename_condition(condition: Condition,
                      mapping: Dict[Variable, Variable]) -> Condition:
    def rename(component: Component) -> Component:
        if isinstance(component, Variable):
            return mapping.get(component, component)
        return component

    if isinstance(condition, Distinct):
        return Distinct(rename(condition.left), rename(condition.right))
    if isinstance(condition, IndividualRelationship):
        return IndividualRelationship(rename(condition.component))
    if isinstance(condition, NotSpecial):
        return NotSpecial(rename(condition.component))
    raise RuleError(f"cannot rename unknown condition type: {condition!r}")
