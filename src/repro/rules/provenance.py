"""Derivation provenance: why is a fact in the closure?

The paper's probing answers "why did my query *fail*?"; this module
answers the complementary question — why does an answer *hold* — by
recording, for every derived fact, the rule and premises that first
produced it, and unwinding them into a derivation tree::

    (JOHN, EARNS, SALARY)   [mem-source]
    ├── (JOHN, ∈, EMPLOYEE)   [stored]
    └── (EMPLOYEE, EARNS, SALARY)   [stored]

Provenance also sharpens integrity reports: a contradiction between
two *derived* facts can be traced back to the stored facts responsible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.entities import compose_relationship, is_special_relationship
from ..core.errors import ReproError
from ..core.facts import Fact
from ..core.store import FactStore
from .engine import ClosureResult, Justification

#: Justification rule name for composition-derived facts.
COMPOSITION_RULE = "composition"


@dataclass
class DerivationTree:
    """One fact with the full derivation beneath it."""

    fact: Fact
    rule: Optional[str]  # None for stored facts
    premises: Tuple["DerivationTree", ...] = ()

    @property
    def is_stored(self) -> bool:
        return self.rule is None

    def depth(self) -> int:
        """Length of the longest derivation chain under this fact."""
        if not self.premises:
            return 0
        return 1 + max(premise.depth() for premise in self.premises)

    def stored_support(self) -> Set[Fact]:
        """The stored facts this derivation ultimately rests on."""
        if self.is_stored:
            return {self.fact}
        support: Set[Fact] = set()
        for premise in self.premises:
            support |= premise.stored_support()
        return support

    def render(self, indent: str = "") -> str:
        label = "stored" if self.is_stored else self.rule
        lines = [f"{self.fact}   [{label}]"]
        for index, premise in enumerate(self.premises):
            last = index == len(self.premises) - 1
            connector = "└── " if last else "├── "
            continuation = "    " if last else "│   "
            subtree = premise.render().splitlines()
            lines.append(indent + connector + subtree[0])
            lines.extend(indent + continuation + line
                         for line in subtree[1:])
        return "\n".join(lines)


class ProvenanceError(ReproError, LookupError):
    """The fact is not in the closure, or tracing was not enabled."""


def explain_fact(fact: Fact, base: FactStore,
                 provenance: Dict[Fact, Justification],
                 _seen: Optional[Set[Fact]] = None) -> DerivationTree:
    """Build the derivation tree of ``fact``.

    Args:
        fact: the fact to explain.
        base: the stored facts (derivation leaves).
        provenance: the engine's justification map.

    Raises:
        ProvenanceError: if the fact is neither stored nor justified.
    """
    if fact in base:
        return DerivationTree(fact=fact, rule=None)
    justification = provenance.get(fact)
    if justification is None:
        raise ProvenanceError(
            f"{fact} is not stored and has no recorded justification"
            " (is it in the closure? was tracing enabled?)")
    seen = _seen if _seen is not None else set()
    if fact in seen:
        # The engine records the *first* justification of every fact,
        # so justification edges always point at facts derived earlier
        # and cycles cannot occur; guard anyway for malformed maps.
        raise ProvenanceError(f"cyclic justification at {fact}")
    seen = seen | {fact}
    premises = tuple(
        explain_fact(premise, base, provenance, seen)
        for premise in justification.premises)
    return DerivationTree(fact=fact, rule=justification.rule,
                          premises=premises)


def add_composition_provenance(
        provenance: Dict[Fact, Justification],
        chain_lengths: Dict[Fact, int],
        composed: Set[Fact]) -> None:
    """Record justifications for composition facts.

    The composed name encodes its own derivation — ``r1.t.r2`` came
    from ``(s, r1, t)`` and ``(t, r2, target)`` — so premises are
    reconstructed by splitting the relationship at the intermediate
    entity with the shorter chain consistent with the recorded lengths.
    """
    for fact in composed:
        if fact in provenance:
            continue
        split = _split_composed(fact, chain_lengths)
        if split is not None:
            provenance[fact] = Justification(COMPOSITION_RULE, split)


def _split_composed(fact: Fact,
                    chain_lengths: Dict[Fact, int]) -> Optional[Tuple[Fact, Fact]]:
    """Recover one (left, right) decomposition of a composed fact."""
    name = fact.relationship
    segments = name.split(".")
    # Try every odd split point (relationship names occupy even
    # indices, intermediates odd ones) and keep the first whose parts
    # are known facts.
    for cut in range(1, len(segments), 2):
        left_rel = ".".join(segments[:cut])
        intermediate = segments[cut]
        right_rel = ".".join(segments[cut + 1:])
        if not right_rel:
            continue
        left = Fact(fact.source, left_rel, intermediate)
        right = Fact(intermediate, right_rel, fact.target)
        if left in chain_lengths and right in chain_lengths:
            return left, right
    return None
