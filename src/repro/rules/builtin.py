"""The paper's standard inference rules (§3), as :class:`Rule` objects.

The published text states each rule formally and then illustrates it
with worked examples; where OCR garbles the quantifier subscripts, the
examples disambiguate (see DESIGN.md §5).  Each rule below cites the
example that pins its reading down.

All of these are registered (enabled) by default in a
:class:`~repro.db.Database`; each can be toggled with
``include``/``exclude`` (§6.1), which benchmark F7 exercises.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.entities import CONTRA, INV, ISA, MEMBER, SYN
from ..core.facts import Template, Variable
from .rule import Distinct, IndividualRelationship, NotSpecial, Rule

_S = Variable("s")
_R = Variable("r")
_T = Variable("t")
_S2 = Variable("s2")
_R2 = Variable("r2")
_T2 = Variable("t2")

#: Ordinary-relationship guard: the rules of §3.1/§3.2 quantify over
#: R_i and must not re-derive the special relationships' own semantics.
_ORDINARY_R = (IndividualRelationship(_R), NotSpecial(_R))


GEN_TRANSITIVE = Rule(
    name="gen-transitive",
    body=(Template(_S, ISA, _T), Template(_T, ISA, _T2)),
    head=(Template(_S, ISA, _T2),),
    conditions=(Distinct(_S, _T), Distinct(_T, _T2)),
    description="(s,≺,t) ∧ (t,≺,t') ⇒ (s,≺,t') — transitivity of "
                "generalization (§3.1, derived from rule (1) with r=≺)",
)

GEN_SOURCE = Rule(
    name="gen-source",
    body=(Template(_S, _R, _T), Template(_S2, ISA, _S)),
    head=(Template(_S2, _R, _T),),
    conditions=_ORDINARY_R + (Distinct(_S2, _S),),
    description="(s,r,t) ∧ (s',≺,s) ⇒ (s',r,t) — e.g. every MANAGER "
                "WORKS-FOR a DEPARTMENT because every EMPLOYEE does (§3.1)",
)

GEN_RELATIONSHIP = Rule(
    name="gen-relationship",
    body=(Template(_S, _R, _T), Template(_R, ISA, _R2)),
    head=(Template(_S, _R2, _T),),
    conditions=_ORDINARY_R + (NotSpecial(_R2), Distinct(_R, _R2)),
    description="(s,r,t) ∧ (r,≺,r') ⇒ (s,r',t) — e.g. WORKS-FOR ≺ "
                "IS-PAID-BY lets JOHN IS-PAID-BY SHIPPING (§3.1)",
)

GEN_TARGET = Rule(
    name="gen-target",
    body=(Template(_S, _R, _T), Template(_T, ISA, _T2)),
    head=(Template(_S, _R, _T2),),
    conditions=_ORDINARY_R + (Distinct(_T, _T2),),
    description="(s,r,t) ∧ (t,≺,t') ⇒ (s,r,t') — e.g. EMPLOYEE EARNS "
                "COMPENSATION because SALARY ≺ COMPENSATION (§3.1)",
)

MEM_UPWARD = Rule(
    name="mem-upward",
    body=(Template(_S, MEMBER, _T), Template(_T, ISA, _T2)),
    head=(Template(_S, MEMBER, _T2),),
    conditions=(Distinct(_T, _T2),),
    description="(s,∈,c) ∧ (c,≺,c') ⇒ (s,∈,c') — an instance of an "
                "entity is an instance of every more general entity (§3.2)",
)

MEM_SOURCE = Rule(
    name="mem-source",
    body=(Template(_S2, MEMBER, _S), Template(_S, _R, _T)),
    head=(Template(_S2, _R, _T),),
    conditions=_ORDINARY_R,
    description="(s',∈,s) ∧ (s,r,t) ⇒ (s',r,t) — JOHN ∈ EMPLOYEE and "
                "EMPLOYEE WORKS-FOR DEPARTMENT give JOHN WORKS-FOR "
                "DEPARTMENT (§3.2)",
)

MEM_TARGET = Rule(
    name="mem-target",
    body=(Template(_S, _R, _T), Template(_T, MEMBER, _T2)),
    head=(Template(_S, _R, _T2),),
    conditions=_ORDINARY_R,
    description="(s,r,t) ∧ (t,∈,t') ⇒ (s,r,t') — TOM WORKS-FOR SHIPPING "
                "and SHIPPING ∈ DEPARTMENT give TOM WORKS-FOR "
                "DEPARTMENT (§3.2)",
)

SYN_TO_GEN = Rule(
    name="syn-to-gen",
    body=(Template(_S, SYN, _T),),
    head=(Template(_S, ISA, _T), Template(_T, ISA, _S)),
    conditions=(Distinct(_S, _T),),
    description="(s,≈,t) ⇒ (s,≺,t) ∧ (t,≺,s) — synonyms generalize "
                "each other (§3.3)",
)

GEN_TO_SYN = Rule(
    name="gen-to-syn",
    body=(Template(_S, ISA, _T), Template(_T, ISA, _S)),
    head=(Template(_S, SYN, _T),),
    conditions=(Distinct(_S, _T),),
    description="(s,≺,t) ∧ (t,≺,s) ⇒ (s,≈,t) — the definition of the "
                "synonym relationship, read back (§3.3)",
)

SYN_SOURCE = Rule(
    name="syn-source",
    body=(Template(_S, SYN, _S2), Template(_S, _R, _T)),
    head=(Template(_S2, _R, _T),),
    conditions=(Distinct(_S, _S2),),
    description="given (s,≈,s'), s may be replaced with s' in the "
                "source of every fact — including ∈/≺ facts, so JOHNNY "
                "∈ EMPLOYEE follows from JOHN ∈ EMPLOYEE (§3.3)",
)

SYN_RELATIONSHIP = Rule(
    name="syn-relationship",
    body=(Template(_R, SYN, _R2), Template(_S, _R, _T)),
    head=(Template(_S, _R2, _T),),
    conditions=(Distinct(_R, _R2), NotSpecial(_R), NotSpecial(_R2)),
    description="given (r,≈,r'), r may be replaced with r' as the "
                "relationship of every fact — SALARY ≈ WAGE ≈ PAY (§3.3)",
)

SYN_TARGET = Rule(
    name="syn-target",
    body=(Template(_T, SYN, _T2), Template(_S, _R, _T)),
    head=(Template(_S, _R, _T2),),
    conditions=(Distinct(_T, _T2),),
    description="given (t,≈,t'), t may be replaced with t' in the "
                "target of every fact (§3.3)",
)

SYN_SYMMETRY = Rule(
    name="syn-symmetry",
    body=(Template(_S, SYN, _T),),
    head=(Template(_T, SYN, _S),),
    conditions=(Distinct(_S, _T),),
    description="(s,≈,t) ⇒ (t,≈,s) — symmetry of the synonym "
                "relationship (obvious from its definition, §3.3)",
)

INVERSION = Rule(
    name="inversion",
    body=(Template(_S, _R, _T), Template(_R, INV, _R2)),
    head=(Template(_T, _R2, _S),),
    conditions=(NotSpecial(_R2),),
    description="(s,r,t) ∧ (r,↔,r') ⇒ (t,r',s) — TEACHES ↔ TAUGHT-BY "
                "(§3.4); with the axiom (↔,↔,↔), inversion facts come "
                "in pairs",
)

INVERSION_SYMMETRY = Rule(
    name="inversion-symmetry",
    body=(Template(_R, INV, _R2),),
    head=(Template(_R2, INV, _R),),
    description="(r,↔,r') ⇒ (r',↔,r) — guaranteed by the fact "
                "(↔,↔,↔) (§3.4); stated directly so it survives "
                "exclusion of the general inversion rule",
)

CONTRADICTION_SYMMETRY = Rule(
    name="contradiction-symmetry",
    body=(Template(_R, CONTRA, _R2),),
    head=(Template(_R2, CONTRA, _R),),
    description="(r,⊥,r') ⇒ (r',⊥,r) — ⊥ is its own inverse (§3.5)",
)

#: The standard rule set, in the order the paper presents them.
STANDARD_RULES: List[Rule] = [
    GEN_TRANSITIVE,
    GEN_SOURCE,
    GEN_RELATIONSHIP,
    GEN_TARGET,
    MEM_UPWARD,
    MEM_SOURCE,
    MEM_TARGET,
    SYN_TO_GEN,
    GEN_TO_SYN,
    SYN_SOURCE,
    SYN_RELATIONSHIP,
    SYN_TARGET,
    SYN_SYMMETRY,
    INVERSION,
    INVERSION_SYMMETRY,
    CONTRADICTION_SYMMETRY,
]

STANDARD_RULES_BY_NAME: Dict[str, Rule] = {r.name: r for r in STANDARD_RULES}
