"""Rules: inference, integrity, composition, and closure engines.

The §2.5–§3 inference machinery: conjunctive rules ``<L, R>``, the
standard rule set (generalization, membership, synonymy, inversion),
three equivalent forward-chaining closure engines (naive, semi-naive,
and the compiled *dispatched* fast path), incremental maintenance
under insertion and deletion, composition bounded by ``limit(n)``,
integrity constraints, provenance, and a tabled lazy evaluator.

Example::

    from repro import Database

    db = Database()
    db.define_rule("sym", "(a, MARRIED-TO, b) => (b, MARRIED-TO, a)")
    db.add("ANN", "MARRIED-TO", "BOB")
    assert db.ask("(BOB, MARRIED-TO, ANN)")          # derived
"""

from .builtin import STANDARD_RULES, STANDARD_RULES_BY_NAME
from .composition import (
    COMPOSITION_OFF,
    UNLIMITED,
    CompositionResult,
    composable,
    compose_closure,
    compose_pair,
)
from .dispatch import (
    CompiledRuleSet,
    compile_ruleset,
    dispatched_closure,
    stratify,
)
from .engine import (
    ClosureResult,
    Justification,
    extend_closure,
    naive_closure,
    semi_naive_closure,
)
from .lazy import LazyEngine, canonical_goal
from .provenance import (
    DerivationTree,
    ProvenanceError,
    explain_fact,
)
from .integrity import (
    Violation,
    contradictory_pairs,
    find_contradictions,
    is_consistent,
)
from .registry import RuleRegistry
from .rule import (
    Condition,
    Distinct,
    IndividualRelationship,
    NotSpecial,
    RelationshipClassifier,
    Rule,
    RuleContext,
)

__all__ = [
    "STANDARD_RULES", "STANDARD_RULES_BY_NAME", "COMPOSITION_OFF",
    "UNLIMITED", "CompositionResult", "composable", "compose_closure",
    "compose_pair", "ClosureResult", "Justification", "extend_closure",
    "naive_closure", "semi_naive_closure", "CompiledRuleSet",
    "compile_ruleset", "dispatched_closure", "stratify",
    "LazyEngine", "canonical_goal",
    "DerivationTree", "ProvenanceError", "explain_fact",
    "Violation", "contradictory_pairs", "find_contradictions",
    "is_consistent", "RuleRegistry", "Condition", "Distinct",
    "IndividualRelationship", "NotSpecial", "RelationshipClassifier",
    "Rule", "RuleContext",
]
